"""Shared fixtures for the PPHCR test suite."""

from __future__ import annotations

import pytest

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.roadnet import CityGeneratorConfig, generate_city


@pytest.fixture(scope="session")
def small_city():
    """A small deterministic city shared by road/trajectory tests."""
    return generate_city(
        CityGeneratorConfig(grid_rows=8, grid_cols=8, block_size_m=500.0, poi_count=10, seed=3)
    )


@pytest.fixture(scope="session")
def small_world():
    """A compact but fully populated synthetic world (shared, read-mostly).

    Tests that mutate server state in ways that could interfere with other
    tests (feedback, tracking) should either use their own users or build a
    private world.
    """
    config = WorldConfig(
        seed=1234,
        city=CityGeneratorConfig(grid_rows=10, grid_cols=10, block_size_m=600.0, poi_count=16, seed=5),
        broadcaster=BroadcasterConfig(seed=6, clips_per_day=90),
        commuters=CommuterConfig(seed=7, commuters=8, history_days=6),
        classifier_documents_per_category=8,
        feedback_events_per_user=24,
    )
    return build_world(config)

"""Shared fixtures for the PPHCR test suite."""

from __future__ import annotations

import os

import pytest

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.roadnet import CityGeneratorConfig, generate_city
from repro.util.rng import DeterministicRng

#: Seed the randomized tests run with unless ``REPRO_TEST_SEED`` overrides it.
DEFAULT_TEST_SEED = 20260808


@pytest.fixture
def seeded_rng(request):
    """The one rng every randomized test draws from.

    Honours ``REPRO_TEST_SEED`` so a failure seen anywhere can be replayed
    exactly; the seed in use is attached to the test report, and a failing
    test prints the ``REPRO_TEST_SEED=<seed>`` re-run line.  Tests should
    :meth:`~repro.util.rng.DeterministicRng.fork` labeled sub-streams off
    this fixture rather than hand-seeding ``random.Random``.
    """
    raw = os.environ.get("REPRO_TEST_SEED", "")
    seed = int(raw) if raw.strip() else DEFAULT_TEST_SEED
    request.node.user_properties.append(("repro_test_seed", seed))
    return DeterministicRng(seed)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    for name, value in item.user_properties:
        if name == "repro_test_seed":
            report.sections.append(
                (
                    "seeded_rng",
                    f"test ran with seed {value}; "
                    f"re-run it with REPRO_TEST_SEED={value}",
                )
            )


@pytest.fixture(scope="session")
def small_city():
    """A small deterministic city shared by road/trajectory tests."""
    return generate_city(
        CityGeneratorConfig(grid_rows=8, grid_cols=8, block_size_m=500.0, poi_count=10, seed=3)
    )


@pytest.fixture(scope="session")
def small_world():
    """A compact but fully populated synthetic world (shared, read-mostly).

    Tests that mutate server state in ways that could interfere with other
    tests (feedback, tracking) should either use their own users or build a
    private world.
    """
    config = WorldConfig(
        seed=1234,
        city=CityGeneratorConfig(grid_rows=10, grid_cols=10, block_size_m=600.0, poi_count=16, seed=5),
        broadcaster=BroadcasterConfig(seed=6, clips_per_day=90),
        commuters=CommuterConfig(seed=7, commuters=8, history_days=6),
        classifier_documents_per_category=8,
        feedback_events_per_user=24,
    )
    return build_world(config)

"""Tests for time utilities (clock parsing, windows, merging)."""

import pytest

from repro.errors import ValidationError
from repro.util.timeutils import (
    TimeWindow,
    format_clock,
    merge_windows,
    parse_clock,
    time_of_day_bucket,
    total_coverage,
)


class TestClockParsing:
    @pytest.mark.parametrize(
        "text, expected",
        [("00:00", 0.0), ("10:42:30", 38550.0), ("23:59:59", 86399.0), ("06:30", 23400.0)],
    )
    def test_parse(self, text, expected):
        assert parse_clock(text) == expected

    @pytest.mark.parametrize("bad", ["25:00", "10:61", "abc", "10", "10:10:70"])
    def test_parse_rejects_invalid(self, bad):
        with pytest.raises(ValidationError):
            parse_clock(bad)

    def test_roundtrip(self):
        assert format_clock(parse_clock("10:42:30")) == "10:42:30"

    def test_format_wraps_past_midnight(self):
        assert format_clock(86400.0 + 60.0) == "00:01:00"


class TestTimeOfDay:
    @pytest.mark.parametrize(
        "clock, name",
        [("03:00", "night"), ("08:00", "morning"), ("13:00", "afternoon"), ("21:00", "evening")],
    )
    def test_buckets(self, clock, name):
        assert time_of_day_bucket(parse_clock(clock)).name == name

    def test_wraps_over_day(self):
        assert time_of_day_bucket(86400.0 + parse_clock("08:00")).name == "morning"


class TestTimeWindow:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValidationError):
            TimeWindow(10.0, 5.0)

    def test_contains_half_open(self):
        window = TimeWindow(0.0, 10.0)
        assert window.contains(0.0)
        assert not window.contains(10.0)

    def test_overlaps(self):
        assert TimeWindow(0, 10).overlaps(TimeWindow(5, 15))
        assert not TimeWindow(0, 10).overlaps(TimeWindow(10, 20))

    def test_intersection(self):
        inter = TimeWindow(0, 10).intersection(TimeWindow(5, 15))
        assert (inter.start_s, inter.end_s) == (5, 10)

    def test_intersection_disjoint_is_empty(self):
        inter = TimeWindow(0, 5).intersection(TimeWindow(10, 20))
        assert inter.duration_s == 0.0

    def test_shift(self):
        shifted = TimeWindow(0, 10).shift(5)
        assert (shifted.start_s, shifted.end_s) == (5, 15)

    def test_split(self):
        left, right = TimeWindow(0, 10).split(4)
        assert left.duration_s == 4
        assert right.duration_s == 6

    def test_split_outside_raises(self):
        with pytest.raises(ValidationError):
            TimeWindow(0, 10).split(11)

    def test_iter_steps(self):
        instants = list(TimeWindow(0, 10).iter_steps(3))
        assert instants == [0, 3, 6, 9]

    def test_iter_steps_rejects_bad_step(self):
        with pytest.raises(ValidationError):
            list(TimeWindow(0, 10).iter_steps(0))


class TestMergeWindows:
    def test_merges_overlapping(self):
        merged = merge_windows([TimeWindow(0, 5), TimeWindow(3, 10), TimeWindow(20, 25)])
        assert len(merged) == 2
        assert merged[0].end_s == 10

    def test_adjacent_windows_merge(self):
        merged = merge_windows([TimeWindow(0, 5), TimeWindow(5, 10)])
        assert len(merged) == 1

    def test_empty(self):
        assert merge_windows([]) == []

    def test_total_coverage_no_double_counting(self):
        assert total_coverage([TimeWindow(0, 10), TimeWindow(5, 15)]) == 15.0

"""Tests for the vectorized geo-scoring fast path.

Covers the arc-length-indexed polyline sampling, the batched
:class:`RouteRelevanceScorer` (with and without grid-index pruning) against
the reference :func:`geographic_relevance`, the per-clip decay forwarding,
and the repository's publish-time / geo secondary indexes.
"""

import math

import pytest

from repro.content.geo_relevance import (
    DEFAULT_DECAY_M,
    GeoTag,
    RouteRelevanceScorer,
    RouteSamples,
    best_route_point,
    clip_geo_tag,
    distance_along_route_to_point,
    geographic_relevance,
)
from repro.content.model import AudioClip, ContentKind
from repro.content.repository import ContentRepository
from repro.errors import GeometryError
from repro.geo import GeoPoint, GridIndex, Polyline
from repro.geo.geodesy import destination_point, haversine_m
from repro.util.rng import DeterministicRng

BASE = GeoPoint(45.07, 7.68)


def random_polyline(rng: DeterministicRng, points: int = 30) -> Polyline:
    """A random-walk polyline with segment lengths from 50 m to 3 km."""
    vertices = [BASE.offset(rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2))]
    for _ in range(points - 1):
        bearing = rng.uniform(0.0, 360.0)
        step = rng.uniform(50.0, 3000.0)
        vertices.append(destination_point(vertices[-1], bearing, step))
    return Polyline(vertices)


def make_clip(clip_id: str, location=None, radius_m=None, decay_m=None) -> AudioClip:
    return AudioClip(
        clip_id=clip_id,
        title=f"clip {clip_id}",
        kind=ContentKind.PODCAST,
        duration_s=300.0,
        geo_location=location,
        geo_radius_m=radius_m,
        geo_decay_m=decay_m,
    )


class TestPolylineSampling:
    def brute_force_point(self, line: Polyline, distance_m: float) -> GeoPoint:
        """Reference implementation: linear scan over the segments."""
        points = line.points
        cumulative = [line.distance_along(i) for i in range(len(points))]
        distance = max(0.0, min(line.length_m, distance_m))
        low = 0
        for index in range(len(points) - 1):
            if cumulative[index] <= distance:
                low = index
        start, end = points[low], points[low + 1]
        segment = cumulative[low + 1] - cumulative[low]
        if segment == 0.0:
            return start
        fraction = (distance - cumulative[low]) / segment
        return GeoPoint(
            start.lat + fraction * (end.lat - start.lat),
            start.lon + fraction * (end.lon - start.lon),
        )

    def test_point_at_distance_matches_brute_force_on_random_polylines(self):
        rng = DeterministicRng(42)
        for trial in range(10):
            line = random_polyline(rng.fork("line", trial), points=25)
            for _ in range(40):
                distance = rng.uniform(-500.0, line.length_m + 500.0)
                fast = line.point_at_distance(distance)
                slow = self.brute_force_point(line, distance)
                assert abs(fast.lat - slow.lat) < 1e-12
                assert abs(fast.lon - slow.lon) < 1e-12

    def test_point_at_distance_endpoints(self):
        line = random_polyline(DeterministicRng(7))
        assert line.point_at_distance(0.0) == line.start
        assert line.point_at_distance(line.length_m) == line.end
        assert line.point_at_distance(-10.0) == line.start
        assert line.point_at_distance(line.length_m + 10.0) == line.end

    def test_point_at_distance_with_duplicate_vertices(self):
        p = GeoPoint(45.0, 7.0)
        q = destination_point(p, 90.0, 1000.0)
        line = Polyline([p, p, q, q])
        mid = line.point_at_distance(500.0)
        assert abs(haversine_m(p, mid) - 500.0) < 1.0

    def test_sample_points_matches_repeated_interpolation(self):
        line = random_polyline(DeterministicRng(3))
        count = 17
        sampled = line.sample_points(count)
        expected = [
            line.point_at_distance(i / (count - 1) * line.length_m) for i in range(count)
        ]
        assert sampled == expected

    def test_sample_points_degenerate(self):
        single = Polyline([BASE])
        assert single.sample_points(5) == [BASE]
        line = random_polyline(DeterministicRng(5))
        assert line.sample_points(1) == [line.start]
        with pytest.raises(GeometryError):
            line.sample_points(0)


class TestRouteSamples:
    def test_from_route_arcs_and_points_align(self):
        line = random_polyline(DeterministicRng(11))
        table = RouteSamples.from_route(line, 20)
        assert len(table) == 20
        assert table.arcs[0] == 0.0
        assert table.arcs[-1] == pytest.approx(line.length_m)
        for arc, point in zip(table.arcs, table.points):
            assert point == line.point_at_distance(arc)

    def test_nearest_matches_sequential_scan(self):
        rng = DeterministicRng(13)
        line = random_polyline(rng)
        table = RouteSamples.from_route(line, 60)
        for trial in range(25):
            target = BASE.offset(rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3))
            index, distance = table.nearest(target)
            expected = [haversine_m(point, target) for point in table.points]
            best = min(range(len(expected)), key=lambda i: (expected[i], i))
            assert index == best
            assert distance == pytest.approx(expected[best], abs=1e-9)


class TestClipGeoTagDecay:
    def test_decay_forwarded(self):
        clip = make_clip("c1", location=BASE, radius_m=1500.0, decay_m=900.0)
        tag = clip_geo_tag(clip)
        assert tag is not None
        assert tag.radius_m == 1500.0
        assert tag.decay_m == 900.0

    def test_decay_defaults_when_unset(self):
        clip = make_clip("c2", location=BASE, radius_m=1500.0)
        tag = clip_geo_tag(clip)
        assert tag.decay_m == DEFAULT_DECAY_M

    def test_decay_changes_relevance(self):
        near = clip_geo_tag(make_clip("c3", location=BASE, radius_m=100.0, decay_m=100.0))
        far = clip_geo_tag(make_clip("c4", location=BASE, radius_m=100.0, decay_m=10000.0))
        probe = destination_point(BASE, 0.0, 5000.0)
        assert near.relevance_at(probe) < far.relevance_at(probe)


class TestFastPathEquality:
    def build_workload(self, seed: int, clip_count: int = 120):
        rng = DeterministicRng(seed)
        route = random_polyline(rng.fork("route"), points=40)
        position = route.start
        destination = route.end
        clips = []
        for index in range(clip_count):
            crng = rng.fork("clip", index)
            if crng.uniform(0.0, 1.0) < 0.25:
                clips.append(make_clip(f"clip-{index}"))  # not geo-tagged
                continue
            # Spread tags from on-route to far away so both the plateau,
            # the decay slope, and the pruned regime are exercised.
            anchor = route.point_at_distance(crng.uniform(0.0, route.length_m))
            offset_m = crng.uniform(0.0, 120000.0)
            location = destination_point(anchor, crng.uniform(0.0, 360.0), offset_m)
            clips.append(
                make_clip(
                    f"clip-{index}",
                    location=location,
                    radius_m=crng.uniform(200.0, 5000.0),
                    decay_m=crng.uniform(500.0, 8000.0),
                )
            )
        return route, position, destination, clips

    def test_scorer_matches_reference_exactly(self):
        route, position, destination, clips = self.build_workload(101)
        scorer = RouteRelevanceScorer(
            current_position=position, route=route, destination=destination
        )
        fast = scorer.score_many(clips)
        for clip in clips:
            slow = geographic_relevance(
                clip, current_position=position, route=route, destination=destination
            )
            assert abs(fast[clip.clip_id] - slow) <= 1e-9

    def test_scorer_with_grid_pruning_matches_within_tolerance(self):
        route, position, destination, clips = self.build_workload(202)
        index: GridIndex[str] = GridIndex(cell_size_m=2000.0)
        for clip in clips:
            if clip.geo_location is not None:
                index.insert(clip.clip_id, clip.geo_location)
        scorer = RouteRelevanceScorer(
            current_position=position, route=route, destination=destination
        )
        pruned = scorer.score_many(clips, geo_index=index)
        for clip in clips:
            slow = geographic_relevance(
                clip, current_position=position, route=route, destination=destination
            )
            assert abs(pruned[clip.clip_id] - slow) <= 1e-9

    def test_scorer_prunes_far_clips_to_zero(self):
        route, position, destination, clips = self.build_workload(303)
        far_clip = make_clip(
            "far-away", location=destination_point(BASE, 10.0, 900000.0), radius_m=500.0
        )
        index: GridIndex[str] = GridIndex(cell_size_m=2000.0)
        index.insert(far_clip.clip_id, far_clip.geo_location)
        scorer = RouteRelevanceScorer(
            current_position=position, route=route, destination=destination
        )
        scores = scorer.score_many([far_clip], geo_index=index)
        assert scores[far_clip.clip_id] == 0.0

    def test_scorer_without_probes(self):
        geo = make_clip("g", location=BASE)
        plain = make_clip("p")
        scorer = RouteRelevanceScorer()
        assert scorer.score(geo) == 0.0
        assert scorer.score(plain) == 0.5

    def test_route_sample_reuse_in_reference_path(self):
        route, position, destination, clips = self.build_workload(404, clip_count=30)
        table = RouteSamples.from_route(route, 25)
        for clip in clips:
            shared = geographic_relevance(
                clip, current_position=position, destination=destination, samples=table
            )
            fresh = geographic_relevance(
                clip, current_position=position, route=route, destination=destination
            )
            assert abs(shared - fresh) <= 1e-12

    def test_scheduler_helpers_match_shared_table(self):
        route, _position, _destination, clips = self.build_workload(505, clip_count=30)
        table50 = RouteSamples.from_route(route, 50)
        table100 = RouteSamples.from_route(route, 100)
        for clip in clips:
            if clip.geo_location is None:
                continue
            assert best_route_point(clip, route, table=table50) == best_route_point(
                clip, route
            )
            point = best_route_point(clip, route)
            assert distance_along_route_to_point(
                route, point, table=table100
            ) == distance_along_route_to_point(route, point)


class TestRepositoryIndexes:
    def repo_with_clips(self):
        repo = ContentRepository()
        specs = [
            ("a", 100.0, None),
            ("b", 300.0, BASE),
            ("c", 200.0, destination_point(BASE, 90.0, 5000.0)),
            ("d", 300.0, None),  # same publish time as "b": insertion order tie
            ("e", 50.0, None),
        ]
        for clip_id, published, location in specs:
            clip = AudioClip(
                clip_id=clip_id,
                title=f"clip {clip_id}",
                kind=ContentKind.PODCAST,
                duration_s=120.0,
                geo_location=location,
                published_s=published,
            )
            repo.add_clip(clip)
        return repo

    def test_published_after_uses_index_and_matches_reference(self):
        repo = self.repo_with_clips()
        result = [clip.clip_id for clip in repo.clips_published_after(150.0)]
        # Newest first; ties ("b", "d" at 300.0) keep insertion order.
        assert result == ["b", "d", "c"]

    def test_clips_newest_first(self):
        repo = self.repo_with_clips()
        result = [clip.clip_id for clip in repo.clips_newest_first()]
        assert result == ["b", "d", "c", "a", "e"]

    def test_replace_clip_republishes(self):
        repo = self.repo_with_clips()
        updated = AudioClip(
            clip_id="e",
            title="clip e",
            kind=ContentKind.PODCAST,
            duration_s=120.0,
            published_s=500.0,
        )
        repo.replace_clip(updated)
        result = [clip.clip_id for clip in repo.clips_newest_first()]
        assert result == ["e", "b", "d", "c", "a"]
        assert [c.clip_id for c in repo.clips_published_after(400.0)] == ["e"]

    def test_geo_index_tracks_clips(self):
        repo = self.repo_with_clips()
        assert "b" in repo.geo_index
        assert "c" in repo.geo_index
        assert "a" not in repo.geo_index
        near = repo.geo_clips_near(BASE, 1000.0)
        assert [clip.clip_id for clip in near] == ["b"]

    def test_replace_clip_updates_geo_index(self):
        repo = self.repo_with_clips()
        moved = AudioClip(
            clip_id="b",
            title="clip b",
            kind=ContentKind.PODCAST,
            duration_s=120.0,
            geo_location=destination_point(BASE, 0.0, 50000.0),
            published_s=300.0,
        )
        repo.replace_clip(moved)
        assert [clip.clip_id for clip in repo.geo_clips_near(BASE, 1000.0)] == []
        untagged = AudioClip(
            clip_id="b",
            title="clip b",
            kind=ContentKind.PODCAST,
            duration_s=120.0,
            published_s=300.0,
        )
        repo.replace_clip(untagged)
        assert "b" not in repo.geo_index

    def test_geo_clips_in_bbox(self):
        repo = self.repo_with_clips()
        from repro.geo import BoundingBox

        box = BoundingBox.around(BASE, 2000.0)
        ids = {clip.clip_id for clip in repo.geo_clips_in_bbox(box)}
        assert ids == {"b"}


class TestGeoTagValidation:
    def test_reach_scales_with_radius_and_decay(self):
        small = GeoTag(BASE, radius_m=100.0, decay_m=100.0)
        large = GeoTag(BASE, radius_m=100.0, decay_m=10000.0)
        assert large.reach_m > small.reach_m
        # Beyond the reach the relevance really is negligible.
        probe = destination_point(BASE, 0.0, min(small.reach_m * 1.01, 1000000.0))
        assert small.relevance_at(probe) < 1e-9

    def test_relevance_at_distance_plateau(self):
        tag = GeoTag(BASE, radius_m=1000.0, decay_m=2000.0)
        assert tag.relevance_at_distance(500.0) == 1.0
        assert tag.relevance_at_distance(1000.0) == 1.0
        assert tag.relevance_at_distance(3000.0) == pytest.approx(math.exp(-1.0))

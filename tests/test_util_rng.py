"""Tests for the deterministic RNG."""

import pytest

from repro.errors import ValidationError
from repro.util.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_labels_different_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_base_different_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(5)
        b = DeterministicRng(5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_fork_independent_of_parent_consumption(self):
        a = DeterministicRng(5)
        fork_before = a.fork("child").random()
        a.random()
        fork_after = DeterministicRng(5).fork("child").random()
        assert fork_before == fork_after

    def test_invalid_seed_type(self):
        with pytest.raises(ValidationError):
            DeterministicRng("seed")  # type: ignore[arg-type]

    def test_uniform_within_bounds(self):
        rng = DeterministicRng(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_inclusive(self):
        rng = DeterministicRng(2)
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_empty_raises(self):
        with pytest.raises(ValidationError):
            DeterministicRng(1).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(3)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_validates_lengths(self):
        with pytest.raises(ValidationError):
            DeterministicRng(1).weighted_choice(["a"], [0.5, 0.5])

    def test_weighted_choice_requires_positive_total(self):
        with pytest.raises(ValidationError):
            DeterministicRng(1).weighted_choice(["a", "b"], [0.0, 0.0])

    def test_sample_size_validation(self):
        rng = DeterministicRng(4)
        with pytest.raises(ValidationError):
            rng.sample([1, 2], 3)
        with pytest.raises(ValidationError):
            rng.sample([1, 2], -1)

    def test_shuffle_returns_permutation(self):
        rng = DeterministicRng(5)
        items = list(range(20))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    def test_bernoulli_bounds(self):
        rng = DeterministicRng(6)
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False
        with pytest.raises(ValidationError):
            rng.bernoulli(1.5)

    def test_exponential_positive(self):
        rng = DeterministicRng(7)
        assert rng.exponential(10.0) > 0
        with pytest.raises(ValidationError):
            rng.exponential(0.0)

    def test_poisson_zero_rate(self):
        assert DeterministicRng(8).poisson(0.0) == 0

    def test_poisson_mean_roughly_matches(self):
        rng = DeterministicRng(9)
        samples = [rng.poisson(4.0) for _ in range(500)]
        mean = sum(samples) / len(samples)
        assert 3.0 < mean < 5.0

    def test_pick_index(self):
        rng = DeterministicRng(10)
        assert rng.pick_index([0.0, 1.0]) == 1

"""Tests for the signature-cached trajectory-clustering fast path.

Covers the three equivalence claims of the fast path:

* :func:`route_similarity_signatures` over cached :class:`RouteSignature`
  objects equals the reference :func:`route_similarity` on randomized trips;
* a cluster's incrementally maintained :meth:`geometric_coherence` equals
  the from-scratch pairwise mean after arbitrary add sequences (including
  direct ``trips`` mutations);
* :func:`find_cluster` through a :class:`RouteClusterIndex` equals the
  linear reference scan.
"""

import pytest

from repro.errors import TrajectoryError
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.trajectory.clustering import (
    RouteCluster,
    RouteClusterIndex,
    cluster_trips,
    find_cluster,
)
from repro.trajectory.features import (
    DestinationFrequency,
    TrajectoryFeatures,
    destination_frequencies,
    route_signature,
    route_similarity,
    route_similarity_signatures,
    RouteSignature,
)
from repro.trajectory.model import Trajectory, TrajectoryPoint
from repro.trajectory.staypoints import StayPoint

BASE = GeoPoint(45.07, 7.68)


def random_trip(rng, *, origin=None, bearing=None, user_id="u1", start_s=0.0):
    """A jittery drive with a random point count, length and heading."""
    position = origin or destination_point(BASE, rng.uniform(0.0, 360.0), rng.uniform(0.0, 5000.0))
    heading = bearing if bearing is not None else rng.uniform(0.0, 360.0)
    points = []
    timestamp = start_s
    for _ in range(rng.randint(5, 40)):
        points.append(TrajectoryPoint(timestamp, position, 10.0))
        position = destination_point(
            position, heading + rng.uniform(-25.0, 25.0), rng.uniform(50.0, 300.0)
        )
        timestamp += 15.0
    return Trajectory(user_id, points)


def reference_coherence(trips):
    """The seed implementation: mean pairwise route similarity."""
    if len(trips) < 2:
        return 1.0
    total = 0.0
    pairs = 0
    for index, trip_a in enumerate(trips):
        for trip_b in trips[index + 1 :]:
            total += route_similarity(trip_a, trip_b)
            pairs += 1
    return total / pairs


class TestRouteSignature:
    def test_randomized_pairs_match_reference(self, seeded_rng):
        trips = [random_trip(seeded_rng.fork("trip", index)) for index in range(25)]
        signatures = [route_signature(trip) for trip in trips]
        for i in range(len(trips)):
            for j in range(i + 1, len(trips)):
                reference = route_similarity(trips[i], trips[j])
                fast = route_similarity_signatures(signatures[i], signatures[j])
                assert abs(fast - reference) <= 1e-9, (i, j)

    def test_nondefault_sample_count_matches_reference(self, seeded_rng):
        a, b = random_trip(seeded_rng.fork("a")), random_trip(seeded_rng.fork("b"))
        reference = route_similarity(a, b, samples=7)
        fast = route_similarity_signatures(
            route_signature(a, samples=7), route_signature(b, samples=7)
        )
        assert abs(fast - reference) <= 1e-9

    def test_zero_length_trip_scores_zero(self, seeded_rng):
        stationary = Trajectory(
            "u1", [TrajectoryPoint(0.0, BASE, 0.0), TrajectoryPoint(10.0, BASE, 0.0)]
        )
        moving = random_trip(seeded_rng.fork("moving"))
        assert route_similarity(stationary, moving) == 0.0
        assert (
            route_similarity_signatures(
                route_signature(stationary), route_signature(moving)
            )
            == 0.0
        )

    def test_sample_count_mismatch_raises(self, seeded_rng):
        a, b = random_trip(seeded_rng.fork("a")), random_trip(seeded_rng.fork("b"))
        with pytest.raises(TrajectoryError):
            route_similarity_signatures(
                route_signature(a, samples=10), route_signature(b, samples=20)
            )

    def test_signature_validates_samples(self, seeded_rng):
        with pytest.raises(TrajectoryError):
            RouteSignature(random_trip(seeded_rng.fork("trip")), samples=1)

    def test_cache_returns_same_object_per_trip_and_sample_count(self, seeded_rng):
        trip = random_trip(seeded_rng.fork("trip"))
        assert route_signature(trip) is route_signature(trip)
        assert route_signature(trip, samples=11) is route_signature(trip, samples=11)
        assert route_signature(trip) is not route_signature(trip, samples=11)


class TestIncrementalCoherence:
    def test_add_trip_sequences_match_from_scratch_mean(self, seeded_rng):
        rng = seeded_rng.fork("sequences")
        for case in range(5):
            cluster = RouteCluster(cluster_id=0, origin_stay_point=0, destination_stay_point=1)
            trips = [
                random_trip(rng.fork("trip", case, index), origin=BASE, bearing=40.0)
                for index in range(rng.randint(2, 12))
            ]
            for trip in trips:
                # Arbitrary add sequences: method joins and raw appends mixed.
                if rng.random() < 0.5:
                    cluster.add_trip(trip)
                else:
                    cluster.trips.append(trip)
                expected = reference_coherence(cluster.trips)
                assert cluster.geometric_coherence() == pytest.approx(expected, abs=1e-9)

    def test_wholesale_trip_replacement_resyncs(self, seeded_rng):
        cluster = RouteCluster(cluster_id=0, origin_stay_point=0, destination_stay_point=1)
        for index in range(4):
            cluster.add_trip(random_trip(seeded_rng.fork("a", index)))
        cluster.geometric_coherence()
        replacement = [random_trip(seeded_rng.fork("b", index)) for index in range(3)]
        cluster.trips = list(replacement)
        assert cluster.geometric_coherence() == pytest.approx(
            reference_coherence(replacement), abs=1e-9
        )

    def test_single_trip_is_fully_coherent(self, seeded_rng):
        cluster = RouteCluster(cluster_id=0, origin_stay_point=0, destination_stay_point=1)
        cluster.add_trip(random_trip(seeded_rng.fork("trip")))
        assert cluster.geometric_coherence() == 1.0

    def test_copy_carries_running_state_and_is_independent(self, seeded_rng):
        cluster = RouteCluster(cluster_id=0, origin_stay_point=0, destination_stay_point=1)
        for index in range(3):
            cluster.add_trip(random_trip(seeded_rng.fork("c", index)))
        clone = cluster.copy()
        assert clone.geometric_coherence() == cluster.geometric_coherence()
        clone.add_trip(random_trip(seeded_rng.fork("c", 99)))
        assert len(cluster.trips) == 3
        assert clone.geometric_coherence() == pytest.approx(
            reference_coherence(clone.trips), abs=1e-9
        )


class TestRouteClusterIndex:
    @staticmethod
    def build_clusters(rng):
        anchors = {
            0: BASE,
            1: destination_point(BASE, 45.0, 4000.0),
            2: destination_point(BASE, 170.0, 5000.0),
        }
        stay_points = [
            StayPoint(stay_point_id=sp_id, center=center, support=5, total_dwell_s=600.0)
            for sp_id, center in anchors.items()
        ]
        trips = []
        for index, (origin_id, destination_id) in enumerate(
            [(0, 1), (1, 0), (0, 2), (0, 1), (1, 0), (0, 1)]
        ):
            trips.append(
                trip_between(
                    anchors[origin_id],
                    anchors[destination_id],
                    rng=rng.fork("between", index),
                )
            )
        return cluster_trips(trips, stay_points), stay_points

    def test_indexed_lookup_equals_linear_scan(self, seeded_rng):
        clusters, stay_points = self.build_clusters(seeded_rng.fork("clusters"))
        assert len(clusters) >= 2
        index = RouteClusterIndex(clusters)
        ids = [sp.stay_point_id for sp in stay_points] + [97]
        for origin_id in ids:
            for destination_id in ids:
                linear = find_cluster(clusters, origin_id, destination_id)
                indexed = find_cluster(clusters, origin_id, destination_id, index=index)
                assert indexed is linear, (origin_id, destination_id)

    def test_first_registration_wins_like_linear_scan(self):
        first = RouteCluster(cluster_id=0, origin_stay_point=3, destination_stay_point=4)
        duplicate = RouteCluster(cluster_id=1, origin_stay_point=3, destination_stay_point=4)
        clusters = [first, duplicate]
        index = RouteClusterIndex(clusters)
        assert find_cluster(clusters, 3, 4) is first
        assert find_cluster(clusters, 3, 4, index=index) is first

    def test_incremental_add(self):
        index = RouteClusterIndex()
        assert index.find(0, 1) is None
        cluster = RouteCluster(cluster_id=0, origin_stay_point=0, destination_stay_point=1)
        index.add(cluster)
        assert index.find(0, 1) is cluster
        assert len(index) == 1


def trip_between(origin, destination, *, rng):
    """A direct drive between two anchors with light jitter."""
    from repro.geo.geodesy import initial_bearing_deg

    bearing = initial_bearing_deg(origin, destination) + rng.uniform(-2.0, 2.0)
    total = origin.distance_m(destination)
    points = []
    steps = 20
    for step in range(steps + 1):
        position = destination_point(origin, bearing, total * step / steps)
        points.append(TrajectoryPoint(step * 30.0, position, 10.0))
    return Trajectory("u1", points)


class TestDestinationFrequenciesRegression:
    @staticmethod
    def feature(destination_stay_point, time_of_day, index):
        return TrajectoryFeatures(
            user_id="u1",
            origin=BASE,
            destination=destination_point(BASE, 10.0, 100.0 * index),
            start_time_s=float(index),
            duration_s=600.0,
            length_m=4000.0,
            mean_speed_mps=10.0,
            max_speed_mps=14.0,
            time_of_day=time_of_day,
            complexity=0.1,
            simplified_points=10,
            raw_points=30,
            origin_stay_point=0,
            destination_stay_point=destination_stay_point,
        )

    @staticmethod
    def reference(features):
        """The seed implementation: per-destination rescan of all features."""
        from collections import Counter

        with_destination = [f for f in features if f.destination_stay_point is not None]
        if not with_destination:
            return []
        counts = Counter(f.destination_stay_point for f in with_destination)
        total = sum(counts.values())
        result = []
        for stay_point_id, count in counts.most_common():
            by_tod = {}
            for feature in with_destination:
                if feature.destination_stay_point == stay_point_id:
                    by_tod[feature.time_of_day] = by_tod.get(feature.time_of_day, 0) + 1
            result.append(
                DestinationFrequency(
                    stay_point_id=stay_point_id,
                    count=count,
                    share=count / total,
                    by_time_of_day=by_tod,
                )
            )
        return result

    def test_one_pass_output_identical_to_reference(self, seeded_rng):
        rng = seeded_rng.fork("features")
        buckets = ["morning", "midday", "evening", "night"]
        features = [
            self.feature(
                rng.choice([1, 2, 3, 7, None]), rng.choice(buckets), index
            )
            for index in range(200)
        ]
        assert destination_frequencies(features) == self.reference(features)

    def test_tie_break_order_preserved(self):
        # Destinations with equal counts must keep first-seen order.
        features = [
            self.feature(5, "morning", 0),
            self.feature(9, "evening", 1),
            self.feature(5, "evening", 2),
            self.feature(9, "morning", 3),
        ]
        result = destination_frequencies(features)
        assert [f.stay_point_id for f in result] == [5, 9]
        assert result == self.reference(features)

"""Incremental mobility model vs. the batch miner, and the server wiring."""

import random

import pytest

from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.pipeline import PphcrServer
from repro.spatialdb import GpsFix
from repro.streaming import (
    IncrementalConfig,
    IncrementalMobilityModel,
    StreamingMobilityEngine,
)
from repro.users import UserProfile


def trip_key(trip):
    return [(p.timestamp_s, p.position.lat, p.position.lon, p.speed_mps) for p in trip.points]


def stay_point_key(stay_point):
    return (
        stay_point.stay_point_id,
        round(stay_point.center.lat, 12),
        round(stay_point.center.lon, 12),
        stay_point.support,
        stay_point.total_dwell_s,
    )


def cluster_key(cluster):
    return (
        cluster.cluster_id,
        cluster.origin_stay_point,
        cluster.destination_stay_point,
        [trip_key(trip) for trip in cluster.trips],
    )


def commute_history(user_id, *, days=6, seed=0, anchors=2):
    """A multi-day, multi-anchor synthetic commute history (no road network).

    Each day the user drives between consecutive anchors with jittered
    departures, dwell noise at the endpoints, and overnight gaps — enough
    structure for stay points and recurring route clusters to form.
    """
    rng = random.Random(seed)
    base = GeoPoint(45.05, 7.65)
    points = [
        destination_point(base, rng.uniform(0.0, 360.0) if i else 0.0, 4000.0 * i)
        for i in range(anchors)
    ]
    fixes = []
    for day in range(days):
        day_start = day * 86400.0
        for leg in range(anchors):
            origin = points[leg % anchors]
            destination = points[(leg + 1) % anchors]
            departure = day_start + 7 * 3600.0 + leg * 5 * 3600.0 + rng.uniform(-600.0, 600.0)
            distance = origin.distance_m(destination)
            speed = rng.uniform(10.0, 14.0)
            steps = max(6, int(distance / (speed * 20.0)))
            bearing_jitter = rng.uniform(-3.0, 3.0)
            timestamp = departure
            for step in range(steps + 1):
                fraction = step / steps
                # March along the great-circle-ish segment with light noise.
                position = destination_point(
                    origin,
                    _bearing(origin, destination) + bearing_jitter,
                    distance * fraction,
                )
                position = destination_point(
                    position, rng.uniform(0.0, 360.0), abs(rng.gauss(0.0, 6.0))
                )
                fixes.append(GpsFix(user_id, timestamp, position, speed_mps=speed))
                timestamp += 20.0
    fixes.sort(key=lambda fix: fix.timestamp_s)
    return fixes


def _bearing(a, b):
    from repro.geo.geodesy import initial_bearing_deg

    return initial_bearing_deg(a, b)


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_repaired_stream_model_equals_batch_rebuild(self, seed):
        """Satellite: replaying a fix stream through sessionizer + incremental
        model yields the same trips, stay points and clusters as
        ``rebuild_mobility_model`` over the full history."""
        server = PphcrServer()
        user_id = f"commuter-{seed}"
        server.register_user(UserProfile(user_id=user_id, display_name="C"))
        fixes = commute_history(user_id, days=5, seed=seed)

        # Stream the history through the server's ingestion path (the
        # engine listens on the user manager), then take the full snapshot.
        server.users.ingest_fixes(fixes)
        engine = server.streaming
        assert engine is not None
        streamed = engine.model_snapshot(user_id, include_open_tail=True)

        # The batch reference over the very same raw history.
        batch = server.rebuild_mobility_model(user_id)

        assert streamed.trip_count == batch.trip_count
        assert [stay_point_key(sp) for sp in streamed.stay_points] == [
            stay_point_key(sp) for sp in batch.stay_points
        ]
        assert [cluster_key(c) for c in streamed.clusters] == [
            cluster_key(c) for c in batch.clusters
        ]

    def test_streamed_trips_equal_batch_trips(self):
        from repro.trajectory.model import Trajectory, split_into_trips

        user_id = "commuter-t"
        fixes = commute_history(user_id, days=4, seed=7)
        engine = StreamingMobilityEngine()
        for fix in fixes:
            engine.observe_fix(fix)
        streamed = [
            trip_key(t)
            for t in engine.model._states[user_id].trips  # noqa: SLF001 - white-box
        ] + [trip_key(t) for t in engine.sessionizer.peek_tail_trips(user_id)]
        batch = [trip_key(t) for t in split_into_trips(Trajectory.from_fixes(user_id, fixes))]
        assert streamed == batch

    def test_incremental_model_without_repair_is_structurally_close(self):
        """Between repairs the online model matches the batch structure on a
        clean commute: same stay-point count, nearby centers, same cluster
        support multiset."""
        user_id = "commuter-s"
        fixes = commute_history(user_id, days=6, seed=3)
        engine = StreamingMobilityEngine()
        for fix in fixes:
            engine.observe_fix(fix)
        engine.close_user(user_id)
        online = engine.model.snapshot(user_id, auto_repair=False)

        server = PphcrServer()
        server.register_user(UserProfile(user_id=user_id, display_name="C"))
        server.users.ingest_fixes(fixes)
        batch = server.rebuild_mobility_model(user_id)

        assert len(online.stay_points) == len(batch.stay_points)
        eps = engine.model.config.eps_m
        for stay_point in online.stay_points:
            assert any(
                stay_point.center.distance_m(ref.center) <= eps for ref in batch.stay_points
            )
        assert sorted(c.support for c in online.clusters) == sorted(
            c.support for c in batch.clusters
        )


class TestIncrementalMechanics:
    def _trip(self, user_id, origin, destination, start_s, *, points=8):
        from repro.trajectory.model import Trajectory, TrajectoryPoint

        distance = origin.distance_m(destination)
        bearing = _bearing(origin, destination)
        samples = [
            TrajectoryPoint(
                start_s + i * 30.0,
                destination_point(origin, bearing, distance * i / (points - 1)),
                10.0,
            )
            for i in range(points)
        ]
        return Trajectory(user_id, samples)

    def test_stay_points_spawn_from_density(self):
        model = IncrementalMobilityModel(IncrementalConfig(min_samples=2))
        home = GeoPoint(45.0, 7.6)
        work = destination_point(home, 90.0, 5000.0)
        first = model.add_trip(self._trip("u", home, work, 0.0))
        # One endpoint observation each: nothing is dense enough yet.
        assert first["spawned_stay_points"] == 0
        second = model.add_trip(self._trip("u", work, home, 40000.0))
        # The return leg lands near both prior endpoints: two stay points.
        assert second["spawned_stay_points"] == 2
        snapshot = model.snapshot("u", auto_repair=False)
        assert len(snapshot.stay_points) == 2
        assert model.spawned_stay_points == 2

    def test_trips_join_existing_clusters(self):
        model = IncrementalMobilityModel(IncrementalConfig(min_samples=2))
        home = GeoPoint(45.0, 7.6)
        work = destination_point(home, 90.0, 5000.0)
        model.add_trip(self._trip("u", home, work, 0.0))
        model.add_trip(self._trip("u", work, home, 40000.0))
        outcome = model.add_trip(self._trip("u", home, work, 90000.0))
        assert outcome["new_cluster"] == 0 or outcome["new_cluster"] == 1
        # Two more commutes: the forward cluster must accumulate support.
        model.add_trip(self._trip("u", home, work, 180000.0))
        snapshot = model.snapshot("u", auto_repair=False)
        assert snapshot.trip_count == 4
        assert any(cluster.support >= 2 for cluster in snapshot.clusters)

    def test_dirty_counter_and_epoch(self):
        model = IncrementalMobilityModel(IncrementalConfig(repair_every=3))
        home = GeoPoint(45.0, 7.6)
        work = destination_point(home, 90.0, 5000.0)
        model.add_trip(self._trip("u", home, work, 0.0))
        model.add_trip(self._trip("u", work, home, 40000.0))
        assert model.dirty_trips("u") == 2
        assert not model.needs_repair("u")
        model.add_trip(self._trip("u", home, work, 90000.0))
        assert model.needs_repair("u")
        # snapshot() notices the drift and repairs automatically.
        snapshot = model.snapshot("u")
        assert snapshot.dirty_trips == 0
        assert snapshot.epoch == 1
        assert model.epoch("u") == 1
        assert model.repairs == 1
        # A repair with no new trips afterwards leaves the model clean.
        assert not model.needs_repair("u")

    def test_engine_publishes_tracking_events(self):
        from repro.pipeline.messaging import MessageBus

        bus = MessageBus()
        engine = StreamingMobilityEngine(bus=bus)
        user_id = "commuter-e"
        for fix in commute_history(user_id, days=3, seed=11):
            engine.observe_fix(fix)
        engine.close_user(user_id)
        assert bus.published_messages("tracking.trip_completed")
        assert bus.published_messages("tracking.staypoint_spawned")
        engine.repair_user(user_id)
        repaired = bus.published_messages("tracking.model_repaired")
        assert repaired and repaired[-1].body["user_id"] == user_id

    def test_trip_retention_stays_bounded(self):
        config = IncrementalConfig(max_trips_per_user=10, repair_every=4)
        model = IncrementalMobilityModel(config)
        home = GeoPoint(45.0, 7.6)
        work = destination_point(home, 90.0, 5000.0)
        for index in range(60):
            origin, destination = (home, work) if index % 2 == 0 else (work, home)
            model.add_trip(self._trip("u", origin, destination, index * 50000.0))
        # Pure ingest, nobody snapshotting: the inline backstop must trim.
        assert model.trip_count("u") <= config.max_trips_per_user + config.repair_every
        snapshot = model.snapshot("u")
        assert snapshot.trip_count <= config.max_trips_per_user + config.repair_every
        assert snapshot.stay_points  # the recurring anchors survive trimming

    def test_tail_only_user_gets_a_full_snapshot(self):
        """A continuous first drive (never closed) must still yield a model."""
        from repro.geo.geodesy import destination_point as dp

        engine = StreamingMobilityEngine()
        position = GeoPoint(45.0, 7.6)
        for index in range(30):
            engine.observe_fix(GpsFix("u", index * 20.0, position, speed_mps=12.0))
            position = dp(position, 90.0, 250.0)
        assert engine.model_snapshot("u") is None  # nothing finalized yet
        snapshot = engine.model_snapshot("u", include_open_tail=True)
        assert snapshot is not None and snapshot.trip_count == 1

    def test_snapshots_are_frozen_views(self):
        model = IncrementalMobilityModel(IncrementalConfig())
        home = GeoPoint(45.0, 7.6)
        work = destination_point(home, 90.0, 5000.0)
        for index in range(6):
            origin, destination = (home, work) if index % 2 == 0 else (work, home)
            model.add_trip(self._trip("u", origin, destination, index * 50000.0))
        snapshot = model.snapshot("u", auto_repair=False)
        supports = [cluster.support for cluster in snapshot.clusters]
        model.add_trip(self._trip("u", home, work, 99 * 50000.0))
        assert [cluster.support for cluster in snapshot.clusters] == supports

    def test_snapshot_for_unknown_user_is_none(self):
        engine = StreamingMobilityEngine()
        assert engine.model_snapshot("ghost") is None
        assert engine.model_snapshot("ghost", include_open_tail=True) is None
        assert engine.repair_user("ghost") is None


class TestServerStreamingIntegration:
    def test_mobility_model_served_from_stream_without_batch_rebuild(self):
        server = PphcrServer()
        user_id = "commuter-live"
        server.register_user(UserProfile(user_id=user_id, display_name="C"))
        server.users.ingest_fixes(commute_history(user_id, days=5, seed=21))
        # No rebuild_mobility_model call: the model is served from the stream.
        model = server.mobility_model(user_id)
        assert model.trip_count >= server.config.min_trips_for_model
        assert model.stay_points
        assert model.clusters
        assert not server.bus.published_messages("tracking.model_rebuilt")

    def test_direct_store_writes_force_batch_path(self):
        """Fixes bypassing the ingestion listeners must not be lost: the
        server detects the engine's incomplete view and re-mines from the
        raw history instead of serving/caching the streaming model."""
        server = PphcrServer()
        user_id = "commuter-direct"
        server.register_user(UserProfile(user_id=user_id, display_name="C"))
        fixes = commute_history(user_id, days=5, seed=41)
        split = len(fixes) // 2
        server.users.ingest_fixes(fixes[:split])  # engine sees these
        server.users.tracking.add_fixes(fixes[split:])  # engine never sees these
        model = server.mobility_model(user_id)
        # The batch path ran (its event carries source=batch) and the model
        # covers the full history, not just the streamed half.
        rebuilt = server.bus.published_messages("tracking.model_rebuilt")
        assert rebuilt and rebuilt[-1].body["source"] == "batch"
        reference = server.rebuild_mobility_model(user_id)
        assert model.trip_count == reference.trip_count

    def test_streaming_disabled_falls_back_to_batch(self):
        from dataclasses import replace

        from repro.pipeline.server import ServerConfig
        from repro.streaming import StreamingConfig

        config = ServerConfig(streaming=StreamingConfig(enabled=False))
        server = PphcrServer(config=config)
        assert server.streaming is None
        user_id = "commuter-b"
        server.register_user(UserProfile(user_id=user_id, display_name="C"))
        server.users.ingest_fixes(commute_history(user_id, days=4, seed=31))
        model = server.mobility_model(user_id)
        assert model.stay_points
        assert server.bus.published_messages("tracking.model_rebuilt")
        assert replace is not None  # silence unused-import linters

"""Durability subsystem: frame codec, torn-tail salvage, replay parity,
checkpoint compaction and log-shipped read replicas.

The contract under test: every committed write is recoverable from the
WAL alone (replay-from-birth), a snapshot plus the log tail recovers to
the last durable commit, damage at a log's tail truncates cleanly at the
last complete commit, and a replica that has applied the same frames
serves byte-identical cacheable reads.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import replace

import pytest

from repro.client.dashboard import ControlDashboard
from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.errors import PipelineError, ValidationError
from repro.loadgen.invariants import state_fingerprint
from repro.pipeline import Gateway
from repro.pipeline.server import PphcrServer, ServerConfig
from repro.roadnet import CityGeneratorConfig
from repro.storage import Column, Database, IndexSpec, Schema
from repro.storage.replica import ReadReplica
from repro.storage.wal import (
    DurabilityConfig,
    apply_table_changes,
    encode_frame,
    log_paths,
    read_log_commits,
    salvage_file,
    scan_frames,
)
from repro.util.ids import reset_ids
from repro.util.timeutils import SECONDS_PER_DAY

#: The small world below has 3 days of history; probe mid-morning of the
#: live day so the candidate recency window still has content in it.
PROBE_S = 3 * SECONDS_PER_DAY + 8 * 3600.0


def durable_world(directory):
    """A compact world whose server logs every write from birth."""
    reset_ids()
    config = ServerConfig(
        durability=DurabilityConfig(enabled=True, directory=str(directory))
    )
    return build_world(
        WorldConfig(
            seed=2024,
            city=CityGeneratorConfig(
                grid_rows=6, grid_cols=6, block_size_m=600.0, poi_count=8, seed=5
            ),
            broadcaster=BroadcasterConfig(seed=6, clips_per_day=20),
            commuters=CommuterConfig(seed=7, commuters=3, history_days=3),
            classifier_documents_per_category=4,
            feedback_events_per_user=8,
            server=config,
        )
    )


def fingerprint(world_or_server, user_ids):
    server = getattr(world_or_server, "server", world_or_server)
    return state_fingerprint(server, user_ids=user_ids, now_s=PROBE_S)


def _commits():
    return [
        {"lsn": 1, "records": [{"kind": "server", "op": "refresh_text_model"}]},
        {"lsn": 2, "records": [{"kind": "fixes", "shard": 0, "fixes": []}]},
        {"lsn": 3, "records": []},
    ]


def _frames():
    return [encode_frame(commit) for commit in _commits()]


def _flip_last_byte(frame):
    return frame[:-1] + bytes([frame[-1] ^ 0xFF])


def _raw_frame(raw: bytes) -> bytes:
    """A well-formed header + checksum over an arbitrary payload."""
    return struct.pack(">II", len(raw), zlib.crc32(raw) & 0xFFFFFFFF) + raw


# ---------------------------------------------------------------------------
# Frame codec and salvage
# ---------------------------------------------------------------------------


class TestFrameCodec:
    def test_round_trip(self):
        blob = b"".join(_frames())
        decoded, good, reason = scan_frames(blob)
        assert decoded == _commits()
        assert good == len(blob)
        assert reason is None

    def test_empty_blob_is_clean(self):
        assert scan_frames(b"") == ([], 0, None)

    @pytest.mark.parametrize(
        "build,expected_lsns,expected_reason",
        [
            # Crash mid-append: the last frame's payload is cut short.
            (
                lambda f: b"".join(f[:2]) + f[2][:-3],
                [1, 2],
                "truncated frame payload",
            ),
            # A few stray bytes after the last complete frame.
            (lambda f: b"".join(f) + b"\x00\x01", [1, 2, 3], "short frame header"),
            # Garbage that happens to parse as an absurd length prefix.
            (
                lambda f: b"".join(f) + b"\x7f\xff\xff\xff garbage!",
                [1, 2, 3],
                "implausible frame length",
            ),
            # Bit rot inside the last frame's payload.
            (
                lambda f: b"".join(f[:2]) + _flip_last_byte(f[2]),
                [1, 2],
                "frame checksum mismatch",
            ),
            # Checksummed but not JSON.
            (
                lambda f: b"".join(f[:2]) + _raw_frame(b"\xffnot json"),
                [1, 2],
                "malformed frame payload",
            ),
            # Valid JSON that is not a commit envelope.
            (
                lambda f: b"".join(f[:2]) + _raw_frame(b"[1, 2, 3]"),
                [1, 2],
                "frame payload is not a commit",
            ),
        ],
    )
    def test_damage_stops_at_last_complete_commit(
        self, build, expected_lsns, expected_reason
    ):
        frames = _frames()
        blob = build(frames)
        decoded, good, reason = scan_frames(blob)
        assert [commit["lsn"] for commit in decoded] == expected_lsns
        assert good == sum(len(frames[lsn - 1]) for lsn in expected_lsns)
        assert reason.startswith(expected_reason)

    def test_salvage_truncates_in_place_and_appends_continue(self, tmp_path):
        path = tmp_path / "shard-000.log"
        path.write_bytes(b"".join(_frames()) + b"\xde\xad half-written tail")
        report = salvage_file(path, truncate=True)
        assert report["frames"] == 3
        assert report["bytes_dropped"] > 0
        assert report["reason"] is not None
        # The file is now clean and appendable.
        assert scan_frames(path.read_bytes())[2] is None
        with open(path, "ab") as handle:
            handle.write(encode_frame({"lsn": 4, "records": []}))
        decoded, _good, reason = scan_frames(path.read_bytes())
        assert [commit["lsn"] for commit in decoded] == [1, 2, 3, 4]
        assert reason is None

    def test_read_only_scan_does_not_truncate(self, tmp_path):
        path = tmp_path / "global.log"
        path.write_bytes(encode_frame({"lsn": 1, "records": []}) + b"torn")
        before = path.read_bytes()
        commits = read_log_commits(tmp_path, after_lsn=0)
        assert [commit["lsn"] for commit in commits] == [1]
        assert path.read_bytes() == before


class TestDurabilityConfig:
    def test_enabled_requires_directory(self):
        with pytest.raises(ValidationError):
            DurabilityConfig(enabled=True)

    def test_compact_budget_validated(self):
        with pytest.raises(ValidationError):
            DurabilityConfig(compact_min_bytes=0)


# ---------------------------------------------------------------------------
# Table-change replay (including the clear() regression)
# ---------------------------------------------------------------------------


def _tracked_pair():
    """(live db, twin db, captured-records list) with WAL-style capture."""

    def schema():
        return Schema(
            name="items",
            primary_key="item_id",
            columns=[
                Column("item_id", str),
                Column("owner", str),
                Column("rank", float),
            ],
            indexes=[
                IndexSpec("owner"),
                IndexSpec("by_rank", kind="sorted", columns=("rank",)),
            ],
        )

    live = Database("live")
    live.create_table(schema())
    twin = Database("twin")
    twin.create_table(schema())
    captured = []

    def on_commit(commit):
        for table_name, changes in commit:
            encoded = []
            for change in changes:
                entry = {"op": change.op, "key": change.key, "row": change.row}
                if change.prev_key is not None:
                    entry["prev"] = change.prev_key
                encoded.append(entry)
            captured.append((table_name, encoded))

    live.add_commit_listener(on_commit)
    return live, twin, captured


def _replay_into(twin, captured):
    for table_name, changes in captured:
        apply_table_changes(twin.table(table_name), changes)
    captured.clear()


def _table_state(table):
    return {
        "rows": sorted(table.rows(), key=lambda row: row["item_id"]),
        "version": table.version,
        "by_owner": sorted(
            row["item_id"] for row in table.find_by_index("owner", "ada")
        ),
        "by_rank": [row["item_id"] for row in table.find_range("by_rank")],
    }


class TestTableChangeReplay:
    def test_insert_update_delete_round_trip(self):
        live, twin, captured = _tracked_pair()
        table = live.table("items")
        table.insert({"item_id": "a", "owner": "ada", "rank": 2.0})
        table.insert({"item_id": "b", "owner": "bob", "rank": 1.0})
        table.update("a", {"rank": 0.5})
        table.delete("b")
        _replay_into(twin, captured)
        assert _table_state(twin.table("items")) == _table_state(table)

    def test_clear_replay_resets_indexes_and_versions_identically(self):
        """Regression: a replayed ``clear`` frame must behave like a live
        ``clear()`` — indexes emptied, version bumped, later writes land
        in identical state."""
        live, twin, captured = _tracked_pair()
        table = live.table("items")
        for i in range(6):
            table.insert(
                {
                    "item_id": f"i{i}",
                    "owner": "ada" if i % 2 else "bob",
                    "rank": float(i),
                }
            )
        table.clear()
        # Life after the clear must evolve identically too.
        table.insert({"item_id": "z", "owner": "ada", "rank": 9.0})
        _replay_into(twin, captured)
        assert _table_state(twin.table("items")) == _table_state(table)
        assert twin.table("items").version == table.version
        assert twin.table("items").find_by_index("owner", "bob") == []

    def test_batch_commits_replay_atomically(self):
        live, twin, captured = _tracked_pair()
        table = live.table("items")
        with live.batch():
            table.insert({"item_id": "a", "owner": "ada", "rank": 1.0})
            table.insert({"item_id": "b", "owner": "ada", "rank": 2.0})
        # One batch → one commit delivery.
        assert len(captured) == 1
        _replay_into(twin, captured)
        assert _table_state(twin.table("items")) == _table_state(table)


# ---------------------------------------------------------------------------
# Whole-server recovery
# ---------------------------------------------------------------------------


class TestServerRecovery:
    def test_replay_from_birth_reconstructs_everything(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        user_ids = sorted(world.server.users.user_ids())
        live = fingerprint(world, user_ids)
        survivor = PphcrServer(city=world.city, config=world.server.config)
        report = survivor.durability.replay_into(survivor, after_lsn=0)
        assert report["frames_replayed"] > 0
        assert fingerprint(survivor, user_ids) == live

    def test_snapshot_plus_tail_recovers_past_the_snapshot(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        user_ids = sorted(world.server.users.user_ids())
        durable = json.loads(json.dumps(world.server.snapshot()))
        assert "wal_lsn" in durable
        # Keep writing after the snapshot: the tail the WAL must cover.
        _commuter, drive = world.live_drives()[0]
        world.server.users.ingest_fixes(list(drive.fixes())[:25], skip_stale=True)
        live = fingerprint(world, user_ids)

        survivor = PphcrServer(city=world.city, config=world.server.config)
        survivor.restore_snapshot(durable, replay_log=True)
        assert fingerprint(survivor, user_ids) == live

    def test_replay_log_requires_durability_and_watermark(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        durable = world.server.snapshot()
        plain = PphcrServer(
            city=world.city,
            config=replace(world.server.config, durability=DurabilityConfig()),
        )
        with pytest.raises(PipelineError):
            plain.restore_snapshot(durable, replay_log=True)
        undurable = dict(durable)
        undurable.pop("wal_lsn")
        with pytest.raises(PipelineError):
            world.server.restore_snapshot(undurable, replay_log=True)

    def test_torn_tail_recovers_to_last_complete_commit(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        user_ids = sorted(world.server.users.user_ids())
        live = fingerprint(world, user_ids)
        world.server.durability.flush()
        # The crash interrupts an append: garbage past the last commit.
        victim = max(
            log_paths(world.server.durability.directory),
            key=lambda path: path.stat().st_size,
        )
        with open(victim, "ab") as handle:
            handle.write(b"\x00\x00\x01\x00\xba\xad half-written")
        survivor = PphcrServer(city=world.city, config=world.server.config)
        torn = [
            report
            for report in survivor.durability.recovery_report
            if report["bytes_dropped"]
        ]
        assert [report["path"] for report in torn] == [victim.name]
        report = survivor.durability.replay_into(survivor, after_lsn=0)
        assert report["last_lsn"] == world.server.durability.last_lsn
        assert fingerprint(survivor, user_ids) == live

    def test_restored_server_does_not_relog_restored_writes(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        lsn_before = world.server.durability.last_lsn
        world.server.restore_snapshot(json.loads(json.dumps(world.server.snapshot())))
        assert world.server.durability.last_lsn == lsn_before


class TestClassifierDurability:
    """train_classifier() is state, not configuration: the corpus rides the
    WAL (a ``server``/``train_classifier`` record) and the snapshot, so a
    recovered process classifies exactly as the one that crashed."""

    def test_training_replays_from_the_log(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        probe = "notizie traffico citta"
        expected = world.server._classifier.predict_proba(probe)
        survivor = PphcrServer(city=world.city, config=world.server.config)
        assert survivor._classifier is None
        survivor.durability.replay_into(survivor, after_lsn=0)
        assert survivor._classifier is not None
        assert survivor._classifier.is_trained
        assert survivor._classifier.predict_proba(probe) == expected

    def test_corpus_rides_the_snapshot(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        durable = json.loads(json.dumps(world.server.snapshot()))
        assert durable["classifier_corpus"] is not None
        probe = "notizie traffico citta"
        expected = world.server._classifier.predict_proba(probe)
        plain = PphcrServer(
            city=world.city,
            config=replace(world.server.config, durability=DurabilityConfig()),
        )
        undurable = dict(durable)
        undurable.pop("wal_lsn")
        plain.restore_snapshot(undurable)
        assert plain._classifier is not None
        assert plain._classifier.predict_proba(probe) == expected

    def test_retraining_past_the_snapshot_recovers_via_tail(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        durable = json.loads(json.dumps(world.server.snapshot()))
        world.server.train_classifier(
            ["partita pallone campionato", "meteo pioggia vento"],
            ["sport", "weather"],
        )
        probe = "partita pallone"
        expected = world.server._classifier.predict_proba(probe)
        survivor = PphcrServer(city=world.city, config=world.server.config)
        survivor.restore_snapshot(durable, replay_log=True)
        assert survivor._classifier.predict_proba(probe) == expected


class TestCompaction:
    def test_maintenance_tick_compacts_over_budget(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        server = world.server
        # Shrink the budget so the accumulated build traffic is over it.
        server.durability._config = replace(
            server.durability._config, compact_min_bytes=1024
        )
        summary = server.maintenance_tick()
        assert summary["wal_compacted"] == 1
        assert server.durability.load_checkpoint() is not None
        # All frames were folded into the checkpoint: empty tails.
        assert server.durability.read_commits(after_lsn=0) == []
        # Under budget now — the next tick does not compact again.
        assert server.maintenance_tick()["wal_compacted"] == 0

    def test_recovery_prefers_checkpoint_plus_tail(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        user_ids = sorted(world.server.users.user_ids())
        report = world.server.durability.maybe_compact(world.server, force=True)
        assert report is not None and report["reclaimed_bytes"] > 0
        # Post-checkpoint traffic lands on the (fresh) tail.
        _commuter, drive = world.live_drives()[0]
        world.server.users.ingest_fixes(list(drive.fixes())[:10], skip_stale=True)
        live = fingerprint(world, user_ids)

        survivor = PphcrServer(city=world.city, config=world.server.config)
        checkpoint = survivor.durability.load_checkpoint()
        assert checkpoint is not None
        survivor.restore_snapshot(checkpoint["snapshot"], replay_log=True)
        assert fingerprint(survivor, user_ids) == live


# ---------------------------------------------------------------------------
# Read replicas
# ---------------------------------------------------------------------------


def _replica_for(world):
    replica_config = replace(world.server.config, durability=DurabilityConfig())
    return ReadReplica(
        world.server.durability.directory,
        build_server=lambda: PphcrServer(city=world.city, config=replica_config),
    )


def _feedback_body(world):
    return json.dumps(
        {
            "user_id": world.commuters[0].user_id,
            "content_id": world.catalogue.clips[0].clip_id,
            "kind": "like",
            "timestamp_s": PROBE_S,
        }
    )


class TestReadReplica:
    def test_lag_zero_reads_are_byte_identical(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        replica = _replica_for(world)
        assert replica.catch_up() > 0
        assert replica.lag_frames() == 0
        primary = Gateway(world.server)
        user_id = world.commuters[0].user_id
        clip_id = world.catalogue.clips[0].clip_id
        probes = [
            (f"/v1/users/{user_id}", {}),
            (f"/v1/clips/{clip_id}", {}),
            (f"/v1/recommendations/{user_id}", {"now_s": str(PROBE_S)}),
        ]
        for path, query in probes:
            p_status, p_body, p_headers = primary.handle_wire(
                "GET", path, None, query=query
            )
            r_status, r_body, r_headers = replica.handle_wire(
                "GET", path, None, query=query
            )
            assert (r_status, r_body) == (p_status, p_body)
            assert "etag" in p_headers
            assert r_headers.get("etag") == p_headers.get("etag")

    def test_catch_up_follows_new_primary_writes(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        replica = _replica_for(world)
        replica.catch_up()
        commuter, drive = world.live_drives()[0]
        world.server.users.ingest_fixes(list(drive.fixes())[:10], skip_stale=True)
        lag = replica.lag_frames()
        assert lag > 0
        assert replica.catch_up() == lag
        assert replica.lag_frames() == 0
        assert replica.server.users.tracking.fix_count(
            commuter.user_id
        ) == world.server.users.tracking.fix_count(commuter.user_id)

    def test_writes_rejected_until_promoted(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        replica = _replica_for(world)
        replica.catch_up()
        status, _body, headers = replica.handle_wire(
            "POST", "/v1/feedback", _feedback_body(world)
        )
        assert status == 405
        assert headers.get("Allow") == "GET"
        assert not replica.promoted
        assert replica.promote() is replica.server
        assert replica.promoted
        status, _body, _headers = replica.handle_wire(
            "POST", "/v1/feedback", _feedback_body(world)
        )
        assert status < 400

    def test_replica_server_must_not_have_its_own_wal(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        durable_config = replace(
            world.server.config,
            durability=DurabilityConfig(
                enabled=True, directory=str(tmp_path / "replica-wal")
            ),
        )
        with pytest.raises(ValidationError):
            ReadReplica(
                world.server.durability.directory,
                build_server=lambda: PphcrServer(
                    city=world.city, config=durable_config
                ),
            )

    def test_lag_gauge_exported(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        replica = _replica_for(world)
        replica.catch_up()
        snapshot = replica.server.telemetry.metrics_snapshot()
        series = snapshot["gauges"]["replica_lag_frames"]["series"]
        assert series and series[0]["value"] == 0


# ---------------------------------------------------------------------------
# Telemetry and ops surfaces
# ---------------------------------------------------------------------------


class TestWalTelemetry:
    def test_ops_metrics_expose_wal_counters(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        gateway = Gateway(world.server)
        status, body, _headers = gateway.handle_wire("GET", "/v1/ops/metrics", None)
        assert status == 200
        payload = json.loads(body)["metrics"]
        appends = payload["counters"]["wal_appends_total"]["series"]
        assert sum(entry["value"] for entry in appends) > 0
        assert {entry["labels"]["shard"] for entry in appends} >= {"global"}
        wal_bytes = payload["counters"]["wal_bytes_total"]["series"]
        assert sum(entry["value"] for entry in wal_bytes) > 0
        fsync = payload["histograms"]["wal_fsync_seconds"]["series"]
        assert fsync and fsync[0]["count"] > 0

    def test_compaction_counters_and_dashboard_lines(self, tmp_path):
        world = durable_world(tmp_path / "wal")
        server = world.server
        server.durability.maybe_compact(server, force=True)
        dashboard = ControlDashboard(
            server.users, server.content, editorial=server.editorial
        )
        report = dashboard.ops_report(telemetry=server.telemetry)
        lines = report.summary_lines()
        assert any("write-ahead log:" in line for line in lines), lines
        assert any("compactions: 1" in line for line in lines)
        counters = report.metrics["counters"]
        assert (
            sum(
                entry["value"]
                for entry in counters["wal_compactions_total"]["series"]
            )
            == 1
        )

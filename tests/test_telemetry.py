"""Unified telemetry: histogram accuracy, tracing, slow-query log, ops API.

The contracts under test:

* histogram p50/p95/p99 estimates always land in the same bucket as the
  exact nearest-rank reference over the raw samples (bounded error), on
  randomized workloads and the degenerate edge cases;
* trace context propagates from the caller across ``ShardWorkerPool``
  worker threads (capture/adopt), tagging spans with their shard;
* a wire workload through the gateway yields per-route percentiles from
  ``GET /v1/ops/metrics`` matching an exact offline computation within
  the documented bucket error, and slow table operations surface in
  ``GET /v1/ops/traces`` with their shard and ``explain()`` plan;
* the message bus records dead letters per event (topic, handler, reason)
  and surfaces them as a registry counter;
* serial and parallel compaction reports agree on everything except the
  per-shard wall-time breakdown;
* telemetry is excluded from server snapshots by design, and a disabled
  configuration degrades every surface to a cheap no-op.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.errors import PipelineError, ValidationError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Telemetry,
    TelemetryConfig,
    Tracer,
)
from repro.pipeline import Gateway
from repro.pipeline.messaging import MessageBus
from repro.pipeline.server import PphcrServer, ServerConfig
from repro.spatialdb import GpsFix
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.client.dashboard import ControlDashboard
from repro.storage import ShardingConfig, ShardWorkerPool
from repro.users.profile import UserProfile
from repro.util.ids import reset_ids
from repro.util.rng import DeterministicRng


# Histogram quantile accuracy ----------------------------------------------


def _exact_nearest_rank(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _histogram_series(**kwargs):
    registry = MetricsRegistry(**kwargs)
    return registry.histogram("h_seconds", "test histogram").labels()


def _assert_quantiles_bounded(series, samples):
    for q in (0.50, 0.95, 0.99):
        exact = _exact_nearest_rank(samples, q)
        estimate = series.quantile(q)
        low, high = series.bucket_range(exact)
        assert low < estimate <= high or estimate == exact, (
            f"q={q}: estimate {estimate} not in bucket ({low}, {high}] of exact {exact}"
        )
        assert min(samples) <= estimate <= max(samples)


def test_histogram_quantiles_match_reference_on_randomized_workloads():
    rng = DeterministicRng(7)
    workloads = {
        "uniform": [rng.uniform(0.0001, 2.0) for _ in range(500)],
        "exponential": [rng.exponential(0.02) for _ in range(500)],
        "bimodal": [
            rng.uniform(0.0005, 0.002) if rng.bernoulli(0.8) else rng.uniform(0.5, 4.0)
            for _ in range(500)
        ],
    }
    for name, samples in workloads.items():
        series = _histogram_series()
        for value in samples:
            series.record(value)
        _assert_quantiles_bounded(series, samples)


def test_histogram_single_sample_and_all_equal():
    single = _histogram_series()
    single.record(0.0123)
    for q in (0.5, 0.95, 0.99, 1.0):
        assert single.quantile(q) == pytest.approx(0.0123)

    equal = _histogram_series()
    for _ in range(100):
        equal.record(0.25)
    for q in (0.5, 0.95, 0.99):
        assert equal.quantile(q) == pytest.approx(0.25)


def test_histogram_bucket_edges_are_le_inclusive():
    series = _histogram_series()
    # Values sitting exactly on bucket bounds must count into the bucket
    # whose ``le`` equals the value (Prometheus semantics).
    for bound in DEFAULT_LATENCY_BUCKETS[:5]:
        series.record(bound)
    snapshot = series.snapshot()
    populated = {bucket["le"]: bucket["count"] for bucket in snapshot["buckets"]}
    assert populated == {bound: 1 for bound in DEFAULT_LATENCY_BUCKETS[:5]}
    samples = list(DEFAULT_LATENCY_BUCKETS[:5])
    _assert_quantiles_bounded(series, samples)


def test_histogram_overflow_bucket_uses_observed_max():
    series = _histogram_series()
    top = DEFAULT_LATENCY_BUCKETS[-1]
    samples = [top * 2, top * 3, top * 10]
    for value in samples:
        series.record(value)
    assert series.snapshot()["overflow"] == 3
    # All mass is above every bound: the estimate falls back to the max.
    assert series.quantile(0.99) == top * 10
    _assert_quantiles_bounded(series, samples)


def test_histogram_empty_and_invalid_quantile():
    series = _histogram_series()
    assert series.quantile(0.5) is None
    with pytest.raises(ValidationError):
        series.quantile(0.0)
    with pytest.raises(ValidationError):
        series.quantile(1.5)


def test_registry_declarations_are_idempotent_but_typed():
    registry = MetricsRegistry()
    counter = registry.counter("events_total", "help", labels=("kind",))
    assert registry.counter("events_total", "help", labels=("kind",)) is counter
    with pytest.raises(ValidationError):
        registry.gauge("events_total")  # same name, different kind
    with pytest.raises(ValidationError):
        registry.counter("events_total", labels=("other",))  # label mismatch
    with pytest.raises(ValidationError):
        counter.labels(kind="x").inc(-1)  # counters only go up


def test_prometheus_text_exposition_shape():
    registry = MetricsRegistry()
    histogram = registry.histogram("req_seconds", "request latency", labels=("route",))
    histogram.labels(route="GET /x").record(0.001)
    histogram.labels(route="GET /x").record(100.0)  # overflow
    text = registry.prometheus_text()
    assert "# TYPE req_seconds histogram" in text
    assert 'req_seconds_bucket{route="GET /x",le="+Inf"} 2' in text
    assert 'req_seconds_count{route="GET /x"} 2' in text
    assert 'req_seconds_sum{route="GET /x"}' in text


# Trace propagation across the worker pool ---------------------------------


def test_trace_context_propagates_across_shard_worker_threads():
    tracer = Tracer()
    pool = ShardWorkerPool(3, tracer=tracer)
    try:
        with tracer.trace("batch.ingest", users=6):
            futures = []
            for shard in range(3):
                for _ in range(2):
                    futures.append(
                        pool.submit(shard, lambda: threading.current_thread().name)
                    )
            names = {future.result() for future in futures}
        assert len(names) == 3  # one worker thread per shard
        trace = tracer.recent(1)[0]
        assert trace["name"] == "batch.ingest"
        shard_tags = sorted(
            span["tags"]["shard"]
            for span in trace["spans"]
            if span["name"] == "shard.task"
        )
        assert shard_tags == [0, 0, 1, 1, 2, 2]
        stats = pool.stats()
        assert all(entry["queue_depth"] == 0 for entry in stats["shards"])
        assert [entry["submitted"] for entry in stats["shards"]] == [2, 2, 2]
        assert all(entry["busy_s"] >= 0.0 for entry in stats["shards"])
        assert stats["busy_imbalance"] >= 1.0
    finally:
        pool.shutdown()


def test_untraced_pool_work_opens_no_spans():
    tracer = Tracer()
    pool = ShardWorkerPool(2, tracer=tracer)
    try:
        pool.submit(0, lambda: None).result()
        assert tracer.recent() == []
    finally:
        pool.shutdown()


def test_tracer_ring_buffers_and_slow_marking():
    tracer = Tracer(buffer=2, slow_threshold_s=0.0)
    for index in range(3):
        with tracer.trace(f"t{index}"):
            pass
    recent = tracer.recent()
    assert [trace["name"] for trace in recent] == ["t2", "t1"]  # newest first
    assert all(trace["slow"] for trace in tracer.slow())


# Wire workload: ops metrics vs exact reference ----------------------------


def _fixes_for(user_id, *, t0=0.0, count=10):
    origin = GeoPoint(45.06, 7.66)
    fixes = []
    for index in range(count):
        point = destination_point(origin, 90.0, 250.0 * index)
        fixes.append(
            GpsFix(user_id, t0 + 30.0 * index, point, speed_mps=14.0, accuracy_m=8.0)
        )
    return fixes


def _telemetry_server(*, shards=4, telemetry=None):
    reset_ids()
    config = ServerConfig(
        sharding=ShardingConfig(shards=shards),
        telemetry=telemetry if telemetry is not None else TelemetryConfig(),
    )
    server = PphcrServer(config=config)
    gateway = Gateway(server)
    for index in range(6):
        server.register_user(
            UserProfile(user_id=f"user-{index:03d}", display_name=f"User {index}")
        )
    return server, gateway


def _drive_mixed_workload(gateway):
    for index in range(6):
        user_id = f"user-{index:03d}"
        fixes = [
            {"lat": fix.position.lat, "lon": fix.position.lon, "timestamp_s": fix.timestamp_s}
            for fix in _fixes_for(user_id)
        ]
        status, _, _ = gateway.handle_wire(
            "POST", "/v1/tracking/batch",
            json.dumps({"user_id": user_id, "fixes": fixes}),
        )
        assert status == 202
        for _ in range(3):
            status, _, _ = gateway.handle_wire("GET", f"/v1/users/{user_id}")
            assert status == 200
        status, _, _ = gateway.handle_wire(
            "POST", "/v1/feedback",
            json.dumps({
                "user_id": user_id, "content_id": f"clip-{index}",
                "kind": "like", "timestamp_s": 100.0 * index,
            }),
        )
        assert status == 201
        status, _, _ = gateway.handle_wire("GET", f"/v1/users/{user_id}/feedback")
        assert status == 200
    status, _, _ = gateway.handle_wire("GET", "/v1/users/ghost")
    assert status == 404
    status, _, _ = gateway.handle_wire("GET", "/v1/users")
    assert status == 200


def test_ops_metrics_percentiles_match_exact_reference():
    server, gateway = _telemetry_server(
        telemetry=TelemetryConfig(keep_samples=True)
    )
    _drive_mixed_workload(gateway)
    status, body, _ = gateway.handle_wire("GET", "/v1/ops/metrics")
    assert status == 200
    payload = json.loads(body)
    assert payload["enabled"] is True
    latency = payload["metrics"]["histograms"]["api_request_seconds"]
    family = server.telemetry.metrics.histogram(
        "api_request_seconds", labels=("route",)
    )
    checked = 0
    for entry in latency["series"]:
        route = entry["labels"]["route"]
        series = family.labels(route=route)
        samples = series.samples
        assert samples and len(samples) == entry["count"]
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            exact = _exact_nearest_rank(samples, q)
            low, high = series.bucket_range(exact)
            assert low < entry[name] <= high or entry[name] == exact, (
                f"{route} {name}: {entry[name]} vs exact {exact} in ({low}, {high}]"
            )
        checked += 1
    assert checked >= 5  # several distinct routes were exercised
    statuses = payload["metrics"]["counters"]["api_requests_total"]["series"]
    classes = {entry["labels"]["status_class"] for entry in statuses}
    assert "2xx" in classes and "4xx" in classes


def test_ops_metrics_prometheus_format_and_bad_format():
    server, gateway = _telemetry_server()
    gateway.handle_wire("GET", "/v1/users")
    status, body, headers = gateway.handle_wire(
        "GET", "/v1/ops/metrics", query={"format": "prometheus"}
    )
    assert status == 200
    assert headers["content-type"].startswith("text/plain")
    payload = json.loads(body)
    assert payload["format"] == "prometheus"
    assert "api_request_seconds_bucket" in payload["text"]
    status, _, _ = gateway.handle_wire(
        "GET", "/v1/ops/metrics", query={"format": "xml"}
    )
    assert status == 400


def test_slow_queries_surface_in_ops_traces_with_shard_and_plan():
    # A zero threshold makes every observed table operation "slow", so the
    # ordinary wire traffic below deliberately produces slow queries.
    server, gateway = _telemetry_server(
        telemetry=TelemetryConfig(slow_query_threshold_s=0.0)
    )
    _drive_mixed_workload(gateway)
    # One planner query through the metadata database as well.
    server.content.clips_max_duration(600.0)
    status, body, _ = gateway.handle_wire(
        "GET", "/v1/ops/traces", query={"limit": "200"}
    )
    assert status == 200
    payload = json.loads(body)
    assert payload["enabled"] is True
    slow = payload["slow_queries"]
    assert slow
    # The feedback history read is a per-shard keyset walk: it reports the
    # owning shard and an index_page plan.
    sharded = [
        entry for entry in slow
        if entry["database"] == "feedbacks" and entry["shard"] is not None
    ]
    assert sharded
    assert sharded[0]["plan"]["strategy"] == "index_page"
    assert sharded[0]["table"] == "feedback"
    assert sharded[0]["elapsed_ms"] >= 0.0
    # The planner query reports its full explain() plan.
    planner = [entry for entry in slow if entry["database"] == "metadata"]
    assert planner and "strategy" in planner[0]["plan"]
    # Slow queries inside a request also mark the request trace slow, with
    # the plan attached to the storage.query span.
    slow_traces = payload["slow"]
    assert slow_traces
    spans = [
        span
        for trace in slow_traces
        for span in trace["spans"]
        if span["name"] == "storage.query"
    ]
    assert spans
    assert any("shard" in span["tags"] for span in spans)
    assert all("strategy" in span["tags"] for span in spans)


def test_ops_traces_validates_limit():
    server, gateway = _telemetry_server()
    status, _, _ = gateway.handle_wire("GET", "/v1/ops/traces", query={"limit": "x"})
    assert status == 400
    status, _, _ = gateway.handle_wire("GET", "/v1/ops/traces", query={"limit": "0"})
    assert status == 400


def test_storage_and_worker_collectors_populate_gauges():
    server, gateway = _telemetry_server()
    _drive_mixed_workload(gateway)
    snapshot = server.telemetry.metrics_snapshot()
    rows = snapshot["gauges"]["storage_rows"]["series"]
    by_key = {
        (entry["labels"]["database"], entry["labels"]["shard"]): entry["value"]
        for entry in rows
    }
    assert by_key[("profiles", "all")] == 6.0
    # Per-shard entries sum to the merged value.
    per_shard = sum(
        value for (database, shard), value in by_key.items()
        if database == "profiles" and shard != "all"
    )
    assert per_shard == by_key[("profiles", "all")]
    strategies = {
        entry["labels"]["strategy"]
        for entry in snapshot["counters"]["storage_queries_total"]["series"]
    }
    assert "index_page" in strategies


# Message bus dead letters -------------------------------------------------


def test_dead_letter_records_and_counter():
    bus = MessageBus()
    registry = MetricsRegistry()
    bus.publish("orphan.topic", {})  # before attach: replayed on attach
    bus.attach_metrics(registry)

    def bad_handler(message):
        raise RuntimeError("boom")

    def good_handler(message):
        pass

    bus.subscribe("mixed.topic", bad_handler)
    bus.subscribe("mixed.topic", good_handler)
    bus.subscribe("failing.topic", bad_handler)
    bus.publish("mixed.topic", {})
    bus.publish("failing.topic", {})

    # Legacy message-level dead letters: only undelivered messages.
    assert [message.topic for message in bus.dead_letters()] == [
        "orphan.topic", "failing.topic",
    ]
    records = bus.dead_letter_records()
    assert [(r.topic, r.reason) for r in records] == [
        ("orphan.topic", "no_subscriber"),
        ("mixed.topic", "handler_error"),
        ("failing.topic", "handler_error"),
        ("failing.topic", "all_handlers_failed"),
    ]
    assert records[1].handler and "bad_handler" in records[1].handler
    assert "boom" in records[1].error
    assert records[0].handler is None
    assert bus.dead_letter_records(topic="mixed.topic")[0].reason == "handler_error"

    counter = registry.counter(
        "bus_dead_letters_total", labels=("topic", "reason")
    )
    assert counter.labels(topic="orphan.topic", reason="no_subscriber").value == 1.0
    assert counter.labels(topic="failing.topic", reason="handler_error").value == 1.0
    assert counter.labels(topic="failing.topic", reason="all_handlers_failed").value == 1.0


def test_server_bus_dead_letters_flow_into_registry():
    server, gateway = _telemetry_server()

    def failing(message):
        raise RuntimeError("subscriber crashed")

    server.bus.subscribe("user.registered", failing)
    server.register_user(UserProfile(user_id="u-new", display_name="New"))
    snapshot = server.telemetry.metrics_snapshot()
    series = snapshot["counters"]["bus_dead_letters_total"]["series"]
    reasons = {
        (entry["labels"]["topic"], entry["labels"]["reason"]): entry["value"]
        for entry in series
    }
    assert reasons[("user.registered", "handler_error")] >= 1.0


# Compaction parity --------------------------------------------------------


def _ingest_rounds(server, *, rounds=3):
    for round_index in range(rounds):
        for index in range(6):
            user_id = f"user-{index:03d}"
            server.users.ingest_fixes(
                _fixes_for(user_id, t0=round_index * 86400.0), skip_stale=True
            )


def test_compaction_reports_identical_apart_from_timing_fields():
    reset_ids()
    serial = PphcrServer(config=ServerConfig(sharding=ShardingConfig(shards=4)))
    reset_ids()
    parallel = PphcrServer(
        config=ServerConfig(sharding=ShardingConfig(shards=4, parallel=True))
    )
    for server in (serial, parallel):
        for index in range(6):
            server.register_user(
                UserProfile(user_id=f"user-{index:03d}", display_name=f"User {index}")
            )
        reset_ids()
        _ingest_rounds(server)
    keep = 86400.0
    report_serial = serial.compactor.run_pass(keep_window_s=keep)
    report_parallel = parallel.compactor.run_pass(
        keep_window_s=keep, parallel=True, pool=parallel.workers
    )
    # Identical apart from the timing field...
    assert report_parallel.removed == report_serial.removed
    assert sorted(report_parallel.visited_users) == sorted(report_serial.visited_users)
    assert report_parallel.unchanged_users == report_serial.unchanged_users
    assert report_parallel.deferred_users == report_serial.deferred_users
    assert report_parallel.skipped_users == report_serial.skipped_users
    # ...which covers the same shards in both modes (values differ).
    assert set(report_parallel.shard_elapsed_s) == set(report_serial.shard_elapsed_s)
    assert all(value >= 0.0 for value in report_serial.shard_elapsed_s.values())
    assert all(value >= 0.0 for value in report_parallel.shard_elapsed_s.values())
    expected_shards = {
        serial.compactor.shard_of(user) for user in report_serial.visited_users
    }
    assert expected_shards <= set(report_serial.shard_elapsed_s)


def test_compaction_pass_records_metrics():
    server, gateway = _telemetry_server()
    _ingest_rounds(server)
    server.compact_tracking_data(keep_window_s=86400.0)
    snapshot = server.telemetry.metrics_snapshot()
    pass_hist = snapshot["histograms"]["compaction_pass_seconds"]["series"]
    assert pass_hist and pass_hist[0]["count"] == 1
    shard_gauge = snapshot["gauges"]["compaction_shard_seconds"]["series"]
    assert shard_gauge
    removed_total = snapshot["counters"]["compaction_fixes_removed_total"]["series"]
    assert removed_total and removed_total[0]["value"] >= 0.0


# Streaming instrumentation ------------------------------------------------


def test_streaming_batch_ingest_records_per_shard_histograms():
    server, gateway = _telemetry_server()
    _ingest_rounds(server, rounds=1)
    snapshot = server.telemetry.metrics_snapshot()
    ingest = snapshot["histograms"]["streaming_ingest_seconds"]["series"]
    assert ingest
    assert all(entry["count"] >= 1 for entry in ingest)


# Dashboard ----------------------------------------------------------------


def test_dashboard_ops_report_includes_telemetry():
    server, gateway = _telemetry_server(
        telemetry=TelemetryConfig(slow_query_threshold_s=0.0)
    )
    _drive_mixed_workload(gateway)
    dashboard = ControlDashboard(server.users, server.content)
    report = dashboard.ops_report(gateway, telemetry=server.telemetry)
    assert report.metrics is not None
    assert report.slow_queries
    lines = report.summary_lines()
    assert any("route latency" in line for line in lines)
    assert any("slow queries" in line for line in lines)
    # The static-analysis tooling posture rides along on every report.
    assert report.analysis is not None and report.analysis["rules"] >= 6
    assert any(line.startswith("static analysis:") for line in lines)
    # Legacy shape still works without telemetry.
    legacy = dashboard.ops_report(gateway)
    assert legacy.metrics is None and legacy.slow_queries is None


# Disabled path and snapshot exclusion -------------------------------------


def test_disabled_telemetry_is_a_noop_everywhere():
    server, gateway = _telemetry_server(
        telemetry=TelemetryConfig(enabled=False)
    )
    assert isinstance(server.telemetry.metrics, NullRegistry)
    assert isinstance(server.telemetry.tracer, NullTracer)
    _drive_mixed_workload(gateway)
    status, body, _ = gateway.handle_wire("GET", "/v1/ops/metrics")
    assert (status, json.loads(body)) == (200, {"enabled": False})
    status, body, _ = gateway.handle_wire("GET", "/v1/ops/traces")
    assert (status, json.loads(body)) == (200, {"enabled": False})
    snapshot = server.telemetry.metrics_snapshot()
    assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}
    assert server.telemetry.prometheus_text() == ""
    assert server.telemetry.tracer.recent() == []
    # The MetricsMiddleware's own counters still work without a registry.
    assert gateway.metrics_snapshot()["requests"] > 0


def test_telemetry_config_validates():
    with pytest.raises(PipelineError):
        TelemetryConfig(slow_query_threshold_s=-1.0)
    with pytest.raises(PipelineError):
        TelemetryConfig(trace_buffer=0)


def test_telemetry_excluded_from_server_snapshot_by_design():
    server, gateway = _telemetry_server()
    _drive_mixed_workload(gateway)
    payload = server.snapshot()
    assert "telemetry" not in payload
    assert "metrics" not in payload
    # A restore into a fresh server starts with fresh counters — exactly
    # like a restarted process would.
    reset_ids()
    restored = PphcrServer(
        config=ServerConfig(sharding=ShardingConfig(shards=4))
    )
    restored.restore_snapshot(payload)
    families = restored.telemetry.metrics_snapshot()
    latency = families["histograms"].get("api_request_seconds", {"series": []})
    assert latency["series"] == []

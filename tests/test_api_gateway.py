"""Tests for the public API gateway: routes, middleware, batching, caching.

Covers every ``/v1`` route's success *and* error paths, the middleware
chain (auth 401s, token-bucket 429s, metrics, exception mapping), batch
ingest parity with the single-fix path, cursor pagination, ETag/304
revalidation, the wire-level JSON entry point, the legacy façade's
compatibility contract, and the server's round-robin maintenance tick.
"""

from __future__ import annotations

import json

import pytest

import repro.errors as errors
from repro.content import AudioClip, ContentKind
from repro.content.model import RadioService
from repro.errors import ValidationError
from repro.pipeline.gateway.routing import Route
from repro.pipeline import (
    Gateway,
    GatewayConfig,
    PphcrServer,
    PublicApi,
    RateLimitConfig,
    ServerConfig,
)
from repro.spatialdb import GpsFix
from repro.geo import GeoPoint
from repro.streaming.compactor import CompactionConfig
from repro.users import UserProfile


def make_server(**kwargs) -> PphcrServer:
    server = PphcrServer(**kwargs)
    server.register_user(UserProfile(user_id="alice", display_name="Alice"))
    return server


def make_gateway(server=None, config=GatewayConfig()):
    server = server if server is not None else make_server()
    return server, Gateway(server, config)


def drive_fixes(n=40, *, t0=0.0, interval_s=20.0, speed=12.0):
    """A straight synthetic drive as wire-format fix dictionaries."""
    return [
        {
            "lat": 45.07 + 0.002 * i,
            "lon": 7.68 + 0.002 * i,
            "timestamp_s": t0 + interval_s * i,
            "speed_mps": speed,
        }
        for i in range(n)
    ]


class TestRouting:
    def test_unknown_path_is_404(self):
        _, gateway = make_gateway()
        response = gateway.request("GET", "/v1/nope")
        assert response.status == 404
        assert "no route" in response.body["error"]

    def test_wrong_method_is_405_with_allow(self):
        _, gateway = make_gateway()
        response = gateway.request("DELETE", "/v1/services")
        assert response.status == 405
        assert response.header("allow") == "GET"

    def test_route_table_is_declarative(self):
        _, gateway = make_gateway()
        names = {route.name for route in gateway.routes}
        assert "POST /v1/tracking/batch" in names
        assert "GET /v1/recommendations/{user_id}" in names

    def test_duplicate_route_rejected(self):
        from repro.pipeline.gateway import Route, RouteTable

        table = RouteTable()
        table.add(Route("GET", "/v1/things/{a}", lambda ctx: None))
        with pytest.raises(ValidationError):
            table.add(Route("GET", "/v1/things/{b}", lambda ctx: None))


class TestUserRoutes:
    def test_register_get_404_and_409(self):
        _, gateway = make_gateway()
        created = gateway.request(
            "POST", "/v1/users", body={"user_id": "bob", "display_name": "Bob", "age": 40}
        )
        assert created.status == 201 and created.body == {"user_id": "bob"}
        profile = gateway.request("GET", "/v1/users/bob")
        assert profile.ok and profile.body["display_name"] == "Bob"
        assert gateway.request("GET", "/v1/users/ghost").status == 404
        duplicate = gateway.request(
            "POST", "/v1/users", body={"user_id": "bob", "display_name": "Bob"}
        )
        assert duplicate.status == 409

    def test_register_schema_validation(self):
        _, gateway = make_gateway()
        missing = gateway.request("POST", "/v1/users", body={"user_id": "x"})
        assert missing.status == 400 and "display_name" in missing.body["error"]
        wrong_type = gateway.request(
            "POST", "/v1/users", body={"user_id": 7, "display_name": "X"}
        )
        assert wrong_type.status == 400
        bad_age = gateway.request(
            "POST", "/v1/users", body={"user_id": "x", "display_name": "X", "age": 300}
        )
        assert bad_age.status == 400

    def test_register_rejects_bad_extra_fields_with_400(self):
        """Client-controlled extras must map to 400, not an uncaught
        TypeError escaping the exception mapper."""
        _, gateway = make_gateway()
        unknown_field = gateway.request(
            "POST", "/v1/users", body={"user_id": "x", "display_name": "X", "nickname": "n"}
        )
        assert unknown_field.status == 400
        mistyped = gateway.request(
            "POST", "/v1/users", body={"user_id": "x", "display_name": "X", "age": "old"}
        )
        assert mistyped.status == 400


class TestHistoryRoutes:
    """Paginated per-user feedback and tracking history reads."""

    def make_world(self, events=7, fixes=9):
        server = make_server()
        gateway = Gateway(server)
        for index in range(events):
            gateway.request(
                "POST",
                "/v1/feedback",
                body={
                    "user_id": "alice",
                    "content_id": f"c{index}",
                    "kind": "like",
                    "timestamp_s": float(index),
                },
            )
        for index in range(fixes):
            gateway.request(
                "POST",
                "/v1/tracking",
                body={
                    "user_id": "alice",
                    "lat": 45.0 + index * 1e-4,
                    "lon": 7.6,
                    "timestamp_s": float(index * 10),
                },
            )
        return server, gateway

    def walk(self, gateway, path, item_key, *, limit="3"):
        items, cursor, pages = [], None, 0
        while True:
            query = {"limit": limit}
            if cursor is not None:
                query["cursor"] = cursor
            response = gateway.request("GET", path, query=query)
            assert response.ok
            items.extend(response.body[item_key])
            pages += 1
            cursor = response.body["next_cursor"]
            if cursor is None:
                return items, pages

    def test_feedback_history_walk_time_ordered(self):
        _, gateway = self.make_world()
        events, pages = self.walk(gateway, "/v1/users/alice/feedback", "events")
        assert pages == 3
        assert [event["timestamp_s"] for event in events] == [float(i) for i in range(7)]
        assert {event["kind"] for event in events} == {"like"}

    def test_tracking_history_walk_and_stability_under_ingest(self):
        _, gateway = self.make_world()
        first = gateway.request("GET", "/v1/users/alice/tracking", query={"limit": "4"})
        assert first.ok and len(first.body["fixes"]) == 4
        # New fixes arriving mid-walk only ever append past the cursor.
        gateway.request(
            "POST",
            "/v1/tracking",
            body={"user_id": "alice", "lat": 45.1, "lon": 7.6, "timestamp_s": 999.0},
        )
        rest, cursor = [], first.body["next_cursor"]
        while cursor is not None:
            response = gateway.request(
                "GET", "/v1/users/alice/tracking", query={"limit": "4", "cursor": cursor}
            )
            rest.extend(response.body["fixes"])
            cursor = response.body["next_cursor"]
        times = [fix["timestamp_s"] for fix in first.body["fixes"]] + [
            fix["timestamp_s"] for fix in rest
        ]
        assert times == [float(i * 10) for i in range(9)] + [999.0]

    def test_empty_history_is_200_not_404(self):
        _, gateway = self.make_world(events=0, fixes=0)
        feedback = gateway.request("GET", "/v1/users/alice/feedback")
        assert feedback.ok and feedback.body["events"] == []
        assert feedback.body["next_cursor"] is None
        tracking = gateway.request("GET", "/v1/users/alice/tracking")
        assert tracking.ok and tracking.body["fixes"] == []

    def test_unknown_user_is_404(self):
        _, gateway = self.make_world(events=0, fixes=0)
        assert gateway.request("GET", "/v1/users/ghost/feedback").status == 404
        assert gateway.request("GET", "/v1/users/ghost/tracking").status == 404

    def test_malformed_cursors_are_400(self):
        _, gateway = self.make_world()
        for path in ("/v1/users/alice/feedback", "/v1/users/alice/tracking"):
            assert gateway.request("GET", path, query={"cursor": "bogus"}).status == 400
            assert gateway.request("GET", path, query={"limit": "0"}).status == 400


class TestProfileAndClipEtags:
    def test_profile_etag_revalidates_and_invalidates(self):
        server, gateway = make_gateway()
        server.content.add_clip(
            AudioClip(
                clip_id="clip-a",
                title="A",
                kind=ContentKind.PODCAST,
                duration_s=60.0,
                category_scores={"comedy": 1.0},
            )
        )
        first = gateway.request("GET", "/v1/users/alice")
        etag = first.headers["etag"]
        revalidated = gateway.request("GET", "/v1/users/alice", headers={"if-none-match": etag})
        assert revalidated.status == 304 and revalidated.headers["etag"] == etag
        # Feedback that moves the learned profile invalidates the ETag.
        gateway.request(
            "POST",
            "/v1/feedback",
            body={"user_id": "alice", "content_id": "clip-a", "kind": "like", "timestamp_s": 5.0},
        )
        changed = gateway.request("GET", "/v1/users/alice", headers={"if-none-match": etag})
        assert changed.status == 200 and changed.headers["etag"] != etag

    def test_clip_etag_keyed_on_catalogue_version(self):
        server, gateway = make_gateway()
        server.content.add_clip(
            AudioClip(clip_id="clip-a", title="A", kind=ContentKind.PODCAST, duration_s=60.0)
        )
        first = gateway.request("GET", "/v1/clips/clip-a")
        etag = first.headers["etag"]
        assert gateway.request(
            "GET", "/v1/clips/clip-a", headers={"if-none-match": etag}
        ).status == 304
        # Any catalogue write invalidates (weak, storage-version keyed).
        server.content.add_clip(
            AudioClip(clip_id="clip-b", title="B", kind=ContentKind.PODCAST, duration_s=60.0)
        )
        changed = gateway.request("GET", "/v1/clips/clip-a", headers={"if-none-match": etag})
        assert changed.status == 200 and changed.headers["etag"] != etag


class TestFeedbackRoutes:
    def make_world(self):
        server = make_server()
        server.content.add_clip(
            AudioClip(
                clip_id="clip-a",
                title="A",
                kind=ContentKind.PODCAST,
                duration_s=60.0,
                category_scores={"comedy": 1.0},
            )
        )
        return server, Gateway(server)

    def test_feedback_success_and_errors(self):
        _, gateway = self.make_world()
        ok = gateway.request(
            "POST",
            "/v1/feedback",
            body={"user_id": "alice", "content_id": "clip-a", "kind": "like", "timestamp_s": 10.0},
        )
        assert ok.status == 201 and ok.body["event_id"]
        bad_kind = gateway.request(
            "POST",
            "/v1/feedback",
            body={"user_id": "alice", "content_id": "clip-a", "kind": "meh", "timestamp_s": 10.0},
        )
        assert bad_kind.status == 400
        unknown_user = gateway.request(
            "POST",
            "/v1/feedback",
            body={"user_id": "ghost", "content_id": "clip-a", "kind": "like", "timestamp_s": 10.0},
        )
        assert unknown_user.status == 404

    def test_validation_failure_is_400_not_404(self):
        """Regression: the seed PublicApi mapped *every* feedback error to
        404; validation failures must be 400 (the gateway's status mapper
        makes this structural)."""
        _, gateway = self.make_world()
        negative = gateway.request(
            "POST",
            "/v1/feedback",
            body={
                "user_id": "alice",
                "content_id": "clip-a",
                "kind": "like",
                "timestamp_s": 10.0,
                "listened_s": -5.0,
            },
        )
        assert negative.status == 400
        # Same contract through the legacy façade.
        server, _ = self.make_world()
        api = PublicApi(server)
        response = api.post_feedback(
            "alice", "clip-a", "like", timestamp_s=10.0, listened_s=-5.0
        )
        assert response.status == 400

    def test_feedback_batch_all_recorded(self):
        _, gateway = self.make_world()
        events = [
            {"user_id": "alice", "content_id": "clip-a", "kind": "like", "timestamp_s": 10.0},
            {"user_id": "alice", "content_id": "clip-a", "kind": "skip", "timestamp_s": 20.0},
        ]
        response = gateway.request("POST", "/v1/feedback/batch", body={"events": events})
        assert response.status == 201
        assert response.body["recorded"] == 2 and len(response.body["event_ids"]) == 2
        assert response.body["failed"] == []

    def test_feedback_batch_partial_failure(self):
        _, gateway = self.make_world()
        events = [
            {"user_id": "alice", "content_id": "clip-a", "kind": "like", "timestamp_s": 10.0},
            {"user_id": "ghost", "content_id": "clip-a", "kind": "like", "timestamp_s": 11.0},
            {"user_id": "alice", "content_id": "clip-a", "kind": "meh", "timestamp_s": 12.0},
        ]
        response = gateway.request("POST", "/v1/feedback/batch", body={"events": events})
        assert response.status == 200
        assert response.body["recorded"] == 1
        statuses = {item["index"]: item["status"] for item in response.body["failed"]}
        assert statuses == {1: 404, 2: 400}

    def test_feedback_batch_empty_rejected(self):
        _, gateway = self.make_world()
        assert gateway.request("POST", "/v1/feedback/batch", body={"events": []}).status == 400
        assert gateway.request("POST", "/v1/feedback/batch", body={}).status == 400


class TestTrackingRoutes:
    def test_single_fix_success_and_errors(self):
        _, gateway = make_gateway()
        ok = gateway.request(
            "POST",
            "/v1/tracking",
            body={"user_id": "alice", "lat": 45.07, "lon": 7.68, "timestamp_s": 100.0},
        )
        assert ok.status == 202 and ok.body == {"stored": True}
        bad_lat = gateway.request(
            "POST",
            "/v1/tracking",
            body={"user_id": "alice", "lat": 123.0, "lon": 7.68, "timestamp_s": 110.0},
        )
        assert bad_lat.status == 400
        unknown = gateway.request(
            "POST",
            "/v1/tracking",
            body={"user_id": "ghost", "lat": 45.0, "lon": 7.68, "timestamp_s": 120.0},
        )
        assert unknown.status == 404
        out_of_order = gateway.request(
            "POST",
            "/v1/tracking",
            body={"user_id": "alice", "lat": 45.07, "lon": 7.68, "timestamp_s": 50.0},
        )
        assert out_of_order.status == 400

    def test_batch_ingest_success_and_stale_skip(self):
        _, gateway = make_gateway()
        fixes = drive_fixes(30)
        response = gateway.request(
            "POST", "/v1/tracking/batch", body={"user_id": "alice", "fixes": fixes}
        )
        assert response.status == 202
        assert response.body == {"submitted": 30, "accepted": 30, "skipped_stale": 0}
        # Replaying the drive plus a few new fixes: fixes strictly older
        # than the stored latest are skipped (the boundary fix is re-accepted,
        # matching ingest_fixes' documented skip_stale semantics).
        replay = fixes[:-1] + drive_fixes(5, t0=30 * 20.0)
        response = gateway.request(
            "POST", "/v1/tracking/batch", body={"user_id": "alice", "fixes": replay}
        )
        assert response.status == 202
        assert response.body["accepted"] == 5
        assert response.body["skipped_stale"] == 29

    def test_batch_errors(self):
        _, gateway = make_gateway()
        unknown = gateway.request(
            "POST", "/v1/tracking/batch", body={"user_id": "ghost", "fixes": drive_fixes(3)}
        )
        assert unknown.status == 404
        empty = gateway.request(
            "POST", "/v1/tracking/batch", body={"user_id": "alice", "fixes": []}
        )
        assert empty.status == 400
        bad_item = gateway.request(
            "POST",
            "/v1/tracking/batch",
            body={"user_id": "alice", "fixes": [{"lat": 91.0, "lon": 0.0, "timestamp_s": 1.0}]},
        )
        assert bad_item.status == 400 and "fixes[0]" in bad_item.body["error"]

    def test_batch_parity_with_single_fix_ingest(self):
        """The same drive ingested per fix and in one batch must leave the
        tracking store and the streaming mobility models identical."""
        server_single = make_server()
        server_batch = make_server()
        gateway_single = Gateway(server_single)
        gateway_batch = Gateway(server_batch)
        fixes = drive_fixes(120) + drive_fixes(120, t0=8 * 3600.0)
        for fix in fixes:
            response = gateway_single.request(
                "POST", "/v1/tracking", body={"user_id": "alice", **fix}
            )
            assert response.status == 202
        response = gateway_batch.request(
            "POST", "/v1/tracking/batch", body={"user_id": "alice", "fixes": fixes}
        )
        assert response.status == 202 and response.body["accepted"] == len(fixes)

        assert server_single.users.tracking.fixes_for("alice") == server_batch.users.tracking.fixes_for("alice")
        snap_single = server_single.streaming.model_snapshot("alice", include_open_tail=True)
        snap_batch = server_batch.streaming.model_snapshot("alice", include_open_tail=True)
        assert (snap_single is None) == (snap_batch is None)
        if snap_single is not None:
            assert snap_single.trip_count == snap_batch.trip_count
            assert [
                (sp.stay_point_id, sp.center, sp.support) for sp in snap_single.stay_points
            ] == [(sp.stay_point_id, sp.center, sp.support) for sp in snap_batch.stay_points]
            assert [
                (c.cluster_id, c.origin_stay_point, c.destination_stay_point, c.support)
                for c in snap_single.clusters
            ] == [
                (c.cluster_id, c.origin_stay_point, c.destination_stay_point, c.support)
                for c in snap_batch.clusters
            ]
        assert server_single.streaming.observed_fix_count("alice") == server_batch.streaming.observed_fix_count("alice")


class TestContentRoutes:
    def make_catalogue(self, services=7, clips=12):
        server = make_server()
        for index in range(services):
            server.content.add_service(
                RadioService(service_id=f"svc-{index:02d}", name=f"Service {index}")
            )
        for index in range(clips):
            server.content.add_clip(
                AudioClip(
                    clip_id=f"clip-{index:02d}",
                    title=f"Clip {index}",
                    kind=ContentKind.PODCAST,
                    duration_s=60.0,
                    published_s=float(index // 3),  # ties exercise the seq order
                )
            )
        return server, Gateway(server)

    def test_get_clip(self):
        _, gateway = self.make_catalogue()
        ok = gateway.request("GET", "/v1/clips/clip-03")
        assert ok.ok and ok.body["clip_id"] == "clip-03"
        assert gateway.request("GET", "/v1/clips/ghost").status == 404

    def test_services_pagination_walk(self):
        _, gateway = self.make_catalogue(services=7)
        seen = []
        cursor = None
        pages = 0
        while True:
            query = {"limit": "3"}
            if cursor is not None:
                query["cursor"] = cursor
            response = gateway.request("GET", "/v1/services", query=query)
            assert response.ok
            seen.extend(item["service_id"] for item in response.body["services"])
            pages += 1
            cursor = response.body["next_cursor"]
            if cursor is None:
                break
        assert pages == 3
        assert seen == [f"svc-{index:02d}" for index in range(7)]

    def test_clips_pagination_newest_first_and_stable_under_inserts(self):
        server, gateway = self.make_catalogue(clips=10)
        first = gateway.request("GET", "/v1/clips", query={"limit": "4"})
        assert first.ok and len(first.body["clips"]) == 4
        ids_first = [clip["clip_id"] for clip in first.body["clips"]]
        # Newest first: descending publish time, insertion order within ties
        # (clips 06..08 share published_s=2.0).
        assert ids_first == ["clip-09", "clip-06", "clip-07", "clip-08"]
        # A clip published mid-walk must not disturb the remaining pages.
        server.content.add_clip(
            AudioClip(
                clip_id="clip-new",
                title="New",
                kind=ContentKind.NEWS,
                duration_s=30.0,
                published_s=99.0,
            )
        )
        rest = []
        cursor = first.body["next_cursor"]
        while cursor is not None:
            response = gateway.request("GET", "/v1/clips", query={"limit": "4", "cursor": cursor})
            rest.extend(clip["clip_id"] for clip in response.body["clips"])
            cursor = response.body["next_cursor"]
        assert rest == ["clip-03", "clip-04", "clip-05", "clip-00", "clip-01", "clip-02"]
        # A fresh walk starts at the newly published clip.
        fresh = gateway.request("GET", "/v1/clips", query={"limit": "1"})
        assert fresh.body["clips"][0]["clip_id"] == "clip-new"

    def test_pagination_limit_validation(self):
        _, gateway = self.make_catalogue()
        assert gateway.request("GET", "/v1/clips", query={"limit": "0"}).status == 400
        assert gateway.request("GET", "/v1/clips", query={"limit": "abc"}).status == 400
        assert gateway.request("GET", "/v1/clips", query={"cursor": "bogus"}).status == 400
        # Limits above the configured maximum are clamped, not rejected.
        clamped = gateway.request("GET", "/v1/clips", query={"limit": "100000"})
        assert clamped.ok


class TestRecommendationCaching:
    def test_missing_or_bad_now_s_is_400(self, small_world):
        gateway = Gateway(small_world.server)
        user_id = small_world.commuters[0].user_id
        assert gateway.request("GET", f"/v1/recommendations/{user_id}").status == 400
        bad = gateway.request(
            "GET", f"/v1/recommendations/{user_id}", query={"now_s": "soon"}
        )
        assert bad.status == 400

    def test_unknown_user_is_404(self, small_world):
        gateway = Gateway(small_world.server)
        response = gateway.request(
            "GET", "/v1/recommendations/ghost", query={"now_s": "1000.0"}
        )
        assert response.status == 404

    def test_etag_revalidation_304(self, small_world):
        server = small_world.server
        gateway = Gateway(server)
        commuter = small_world.commuters[6]
        now_s = small_world.today_start_s + 8 * 3600.0
        first = gateway.request(
            "GET", f"/v1/recommendations/{commuter.user_id}", query={"now_s": repr(now_s)}
        )
        assert first.status == 200
        etag = first.header("etag")
        assert etag and etag.startswith('W/"rec-')
        decisions_before = len(server.bus.published_messages("recommendation.decision"))
        revalidated = gateway.request(
            "GET",
            f"/v1/recommendations/{commuter.user_id}",
            query={"now_s": repr(now_s)},
            headers={"If-None-Match": etag},
        )
        assert revalidated.status == 304
        assert revalidated.body == {}
        assert revalidated.header("etag") == etag
        # The 304 path never ran the recommender pipeline.
        assert len(server.bus.published_messages("recommendation.decision")) == decisions_before

    def test_etag_invalidated_by_new_fixes(self, small_world):
        server = small_world.server
        gateway = Gateway(server)
        commuter = small_world.commuters[7]
        now_s = small_world.today_start_s + 9 * 3600.0
        first = gateway.request(
            "GET", f"/v1/recommendations/{commuter.user_id}", query={"now_s": repr(now_s)}
        )
        etag = first.header("etag")
        latest = server.users.tracking.latest_fix(commuter.user_id).timestamp_s
        server.users.ingest_fix(
            GpsFix(commuter.user_id, latest + 5.0, GeoPoint(45.07, 7.68), speed_mps=3.0)
        )
        second = gateway.request(
            "GET",
            f"/v1/recommendations/{commuter.user_id}",
            query={"now_s": repr(now_s)},
            headers={"If-None-Match": etag},
        )
        assert second.status == 200
        assert second.header("etag") != etag

    def test_etag_invalidated_by_feedback(self, small_world):
        """Feedback moves the learned preferences, so a revalidating
        client must not keep getting 304s for a stale plan."""
        server = small_world.server
        gateway = Gateway(server)
        commuter = small_world.commuters[2]
        now_s = small_world.today_start_s + 11 * 3600.0
        first = gateway.request(
            "GET", f"/v1/recommendations/{commuter.user_id}", query={"now_s": repr(now_s)}
        )
        etag = first.header("etag")
        # A clip with category scores so the preference profile moves.
        clip = next(c for c in server.content.clips() if c.category_scores)
        feedback = gateway.request(
            "POST",
            "/v1/feedback",
            body={
                "user_id": commuter.user_id,
                "content_id": clip.clip_id,
                "kind": "like",
                "timestamp_s": now_s,
            },
        )
        assert feedback.status == 201
        second = gateway.request(
            "GET",
            f"/v1/recommendations/{commuter.user_id}",
            query={"now_s": repr(now_s)},
            headers={"If-None-Match": etag},
        )
        assert second.status == 200
        assert second.header("etag") != etag

    def test_etag_invalidated_across_time_buckets(self, small_world):
        gateway = Gateway(small_world.server, GatewayConfig(recommendation_ttl_s=60.0))
        commuter = small_world.commuters[0]
        now_s = small_world.today_start_s + 10 * 3600.0
        first = gateway.request(
            "GET", f"/v1/recommendations/{commuter.user_id}", query={"now_s": repr(now_s)}
        )
        later = gateway.request(
            "GET",
            f"/v1/recommendations/{commuter.user_id}",
            query={"now_s": repr(now_s + 3600.0)},
            headers={"If-None-Match": first.header("etag")},
        )
        assert later.status == 200


class TestMiddleware:
    def test_rate_limit_429_and_refill(self):
        clock = {"now": 0.0}
        config = GatewayConfig(
            rate_limit=RateLimitConfig(capacity=3.0, refill_per_s=1.0),
            clock=lambda: clock["now"],
        )
        _, gateway = make_gateway(config=config)
        for _ in range(3):
            assert gateway.request("GET", "/v1/users/alice").ok
        limited = gateway.request("GET", "/v1/users/alice")
        assert limited.status == 429
        assert int(limited.header("retry-after")) >= 1
        # Another user has their own bucket.
        other = gateway.request("GET", "/v1/users/ghost")
        assert other.status == 404
        # After the bucket refills, requests pass again.
        clock["now"] += 2.0
        assert gateway.request("GET", "/v1/users/alice").ok

    def test_auth_required(self):
        server = make_server()
        gateway = Gateway(server, GatewayConfig(require_auth=True))
        missing = gateway.request("GET", "/v1/users/alice")
        assert missing.status == 401
        assert missing.header("www-authenticate") == "Bearer"
        bad = gateway.request(
            "GET", "/v1/users/alice", headers={"Authorization": "Bearer nope"}
        )
        assert bad.status == 401
        token = gateway.auth.issue("alice")
        ok = gateway.request(
            "GET", "/v1/users/alice", headers={"Authorization": f"Bearer {token}"}
        )
        assert ok.ok
        gateway.auth.revoke(token)
        revoked = gateway.request(
            "GET", "/v1/users/alice", headers={"Authorization": f"Bearer {token}"}
        )
        assert revoked.status == 401

    def test_facade_sends_auth_token(self):
        server = make_server()
        gateway = Gateway(server, GatewayConfig(require_auth=True))
        token = gateway.auth.issue("alice")
        api = PublicApi(server, gateway=gateway, auth_token=token)
        assert api.get_profile("alice").ok
        anonymous = PublicApi(server, gateway=gateway)
        assert anonymous.get_profile("alice").status == 401

    def test_metrics_published_and_counted(self):
        server, gateway = make_gateway()
        gateway.request("GET", "/v1/users/alice")
        gateway.request("GET", "/v1/users/ghost")
        gateway.request("GET", "/v1/bogus")
        messages = server.bus.published_messages("api.request")
        assert len(messages) == 3
        assert messages[0].body["route"] == "GET /v1/users/{user_id}"
        assert messages[0].body["status"] == 200
        assert messages[1].body["status"] == 404
        assert messages[2].body["route"] == "<unmatched>"
        snapshot = gateway.metrics_snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["by_status"] == {200: 1, 404: 2}
        assert snapshot["by_route"]["GET /v1/users/{user_id}"] == 2


class TestErrorTaxonomyWire:
    """Every ReproError subclass maps to its documented wire status.

    A throwaway route raises each class through the full middleware chain,
    so the assertion covers the real dispatch path — not map_error in
    isolation.  The expectation table doubles as a completeness check:
    a new subclass in repro.errors fails here (and in the
    error-mapping-coverage lint) until a status is decided.
    """

    EXPECTED = {
        errors.ValidationError: 400,
        errors.QueryError: 400,
        errors.GeometryError: 400,
        errors.NotFoundError: 404,
        errors.DuplicateError: 409,
        errors.DeliveryError: 409,
        errors.TrajectoryError: 422,
        errors.PredictionError: 422,
        errors.SchedulingError: 422,
        errors.ClassificationError: 503,
        errors.SchemaError: 500,
        errors.ConfigurationError: 500,
        errors.PipelineError: 500,
    }

    @staticmethod
    def _taxonomy():
        return {
            obj
            for obj in vars(errors).values()
            if isinstance(obj, type)
            and issubclass(obj, errors.ReproError)
            and obj is not errors.ReproError
        }

    def test_expectation_table_covers_the_whole_taxonomy(self):
        assert self._taxonomy() == set(self.EXPECTED)

    def test_statuses_over_the_wire(self):
        _, gateway = make_gateway()
        for exc_type in self.EXPECTED:

            def boom(ctx, _exc=exc_type):
                raise _exc("boom")

            gateway._routes.add(
                Route("GET", f"/v1/_boom/{exc_type.__name__}", boom)
            )
        for exc_type, expected in self.EXPECTED.items():
            status, body, _headers = gateway.handle_wire(
                "GET", f"/v1/_boom/{exc_type.__name__}"
            )
            assert status == expected, exc_type.__name__
            assert json.loads(body)["error"] == "boom"

    def test_unknown_subclass_falls_back_to_500(self):
        class MysteryError(errors.ReproError):
            pass

        _, gateway = make_gateway()

        def boom(ctx):
            raise MysteryError("boom")

        gateway._routes.add(Route("GET", "/v1/_boom/mystery", boom))
        status, _body, _headers = gateway.handle_wire("GET", "/v1/_boom/mystery")
        assert status == 500


class TestWireLevel:
    def test_json_roundtrip(self):
        _, gateway = make_gateway()
        status, body, _headers = gateway.handle_wire(
            "POST",
            "/v1/tracking",
            json.dumps({"user_id": "alice", "lat": 45.07, "lon": 7.68, "timestamp_s": 1.0}),
        )
        assert status == 202
        assert json.loads(body) == {"stored": True}

    def test_malformed_json_is_400(self):
        _, gateway = make_gateway()
        status, body, _headers = gateway.handle_wire("POST", "/v1/tracking", "{not json")
        assert status == 400
        assert "malformed JSON" in json.loads(body)["error"]
        status, _body, _headers = gateway.handle_wire("POST", "/v1/tracking", "[1, 2]")
        assert status == 400

    def test_all_route_bodies_are_json_serializable(self, small_world):
        gateway = Gateway(small_world.server)
        user_id = small_world.commuters[0].user_id
        now_s = small_world.today_start_s + 8 * 3600.0
        for method, path, query in [
            ("GET", f"/v1/users/{user_id}", None),
            ("GET", "/v1/services", None),
            ("GET", "/v1/clips", None),
            ("GET", f"/v1/recommendations/{user_id}", {"now_s": repr(now_s)}),
        ]:
            status, body, _headers = gateway.handle_wire(method, path, None, query=query)
            assert status == 200
            json.loads(body)


class TestLegacyFacade:
    """The v1 façade keeps the legacy response contract (and the gateway's
    machinery — metrics, limits — applies to it transparently)."""

    def test_duplicate_registration_stays_400(self):
        api = PublicApi(PphcrServer())
        assert api.register_user("u1", "User").status == 201
        assert api.register_user("u1", "User").status == 400

    def test_facade_requests_are_metered(self):
        server = make_server()
        api = PublicApi(server)
        api.get_profile("alice")
        api.list_services()
        assert len(server.bus.published_messages("api.request")) == 2

    def test_list_services_body_shape(self):
        server = make_server()
        server.content.add_service(RadioService(service_id="s1", name="One"))
        response = PublicApi(server).list_services()
        assert response.ok
        assert response.body["services"][0]["service_id"] == "s1"
        assert response.body["next_cursor"] is None

    def test_list_services_returns_complete_listing(self):
        """Legacy contract: all services, even beyond one gateway page."""
        server = make_server()
        gateway = Gateway(server, GatewayConfig(default_page_limit=4, max_page_limit=4))
        for index in range(11):
            server.content.add_service(
                RadioService(service_id=f"svc-{index:02d}", name=f"Service {index}")
            )
        response = PublicApi(server, gateway=gateway).list_services()
        assert response.ok
        assert len(response.body["services"]) == 11


class TestMaintenanceTick:
    def test_round_robin_covers_all_shards(self):
        config = ServerConfig(compaction=CompactionConfig(shards=4))
        server = PphcrServer(config=config)
        shard_count = config.compaction.shards
        assert server.maintenance_shard == 0
        seen = []
        for _ in range(shard_count + 1):
            seen.append(server.maintenance_tick()["shard"])
        assert seen == [0, 1, 2, 3, 0]
        assert server.maintenance_shard == 1

    def test_tick_compacts_only_its_shard(self):
        config = ServerConfig(compaction=CompactionConfig(shards=2))
        server = PphcrServer(config=config)
        users = [f"user-{index}" for index in range(8)]
        for user_id in users:
            server.register_user(UserProfile(user_id=user_id, display_name=user_id))
            for fix in drive_fixes(12):
                server.users.ingest_fix(
                    GpsFix(user_id, fix["timestamp_s"], GeoPoint(fix["lat"], fix["lon"]), speed_mps=fix["speed_mps"])
                )
        by_shard = {0: set(), 1: set()}
        for user_id in users:
            by_shard[server.compactor.shard_of(user_id)].add(user_id)
        # Two ticks cover both shards; each pass reports only its shard.
        first = server.maintenance_tick()
        second = server.maintenance_tick()
        assert first["shard"] == 0 and second["shard"] == 1
        compacted = server.bus.published_messages("tracking.compacted")
        assert [message.body["shard"] for message in compacted] == [0, 1]
        assert not server.compactor.dirty_users()

"""Tests for categories, content entities and RadioDNS metadata."""

import pytest

from repro.content import (
    CATEGORIES,
    AudioClip,
    Bearer,
    Category,
    ContentKind,
    LiveProgramme,
    RadioService,
    ServiceIdentifier,
    ServiceInformation,
    category_by_name,
    category_names,
)
from repro.content.categories import categories_in_group, category_groups
from repro.content.radiodns import ServiceDirectory
from repro.errors import NotFoundError, ValidationError
from repro.geo import GeoPoint


class TestCategories:
    def test_exactly_thirty(self):
        assert len(CATEGORIES) == 30
        assert len(category_names()) == 30

    def test_unique_names(self):
        assert len(set(category_names())) == 30

    def test_art_to_economics_span(self):
        names = category_names()
        assert "art" in names
        assert "culture" in names
        assert "economics" in names
        assert any(name.startswith("music") for name in names)

    def test_lookup(self):
        category = category_by_name("economics")
        assert isinstance(category, Category)
        assert category.group == "news"
        with pytest.raises(NotFoundError):
            category_by_name("astrology")

    def test_groups(self):
        groups = category_groups()
        assert "culture" in groups and "news" in groups
        assert all(categories_in_group(group) for group in groups)
        with pytest.raises(NotFoundError):
            categories_in_group("nonexistent")

    def test_indices_are_positional(self):
        for index, category in enumerate(CATEGORIES):
            assert category.index == index


class TestRadioServiceAndProgramme:
    def test_service_validation(self):
        with pytest.raises(ValidationError):
            RadioService(service_id="", name="x")
        with pytest.raises(ValidationError):
            RadioService(service_id="s", name="x", bitrate_kbps=0)

    def test_programme_requires_known_categories(self):
        with pytest.raises(NotFoundError):
            LiveProgramme(
                programme_id="p1", service_id="s1", title="T", categories=["astrology"]
            )

    def test_programme_ok(self):
        programme = LiveProgramme(
            programme_id="p1", service_id="s1", title="T", categories=["economics"]
        )
        assert programme.categories == ["economics"]


class TestAudioClip:
    def make_clip(self, **overrides):
        defaults = dict(
            clip_id="c1",
            title="Test clip",
            kind=ContentKind.PODCAST,
            duration_s=300.0,
            category_scores={"economics": 0.7, "technology": 0.3},
        )
        defaults.update(overrides)
        return AudioClip(**defaults)

    def test_primary_category(self):
        assert self.make_clip().primary_category == "economics"
        assert self.make_clip(category_scores={}).primary_category is None

    def test_normalized_scores_sum_to_one(self):
        scores = self.make_clip().normalized_scores()
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_normalized_scores_empty(self):
        assert self.make_clip(category_scores={}).normalized_scores() == {}

    def test_validation(self):
        with pytest.raises(ValidationError):
            self.make_clip(duration_s=0.0)
        with pytest.raises(NotFoundError):
            self.make_clip(category_scores={"astrology": 1.0})
        with pytest.raises(ValidationError):
            self.make_clip(category_scores={"economics": -0.1})
        with pytest.raises(ValidationError):
            self.make_clip(geo_location=GeoPoint(45, 7), geo_radius_m=0.0)

    def test_geo_tagging(self):
        clip = self.make_clip(geo_location=GeoPoint(45, 7), geo_radius_m=1000.0)
        assert clip.is_geo_tagged
        assert not self.make_clip().is_geo_tagged

    def test_estimated_size(self):
        clip = self.make_clip(duration_s=100.0)
        assert clip.estimated_size_bytes(96) == 100 * 96 * 1000 // 8
        explicit = self.make_clip(size_bytes=12345)
        assert explicit.estimated_size_bytes() == 12345


class TestRadioDns:
    def test_fm_identifier_fqdn(self):
        identifier = ServiceIdentifier(system="fm", pi_code="5201", frequency_khz=90200)
        assert identifier.fqdn() == "90200.5201.it.fm.radiodns.org"

    def test_dab_identifier_fqdn(self):
        identifier = ServiceIdentifier(system="dab", eid="e1", sid="s1")
        assert identifier.fqdn().endswith(".dab.radiodns.org")

    def test_identifier_validation(self):
        with pytest.raises(ValidationError):
            ServiceIdentifier(system="fm")
        with pytest.raises(ValidationError):
            ServiceIdentifier(system="dab")
        with pytest.raises(ValidationError):
            ServiceIdentifier(system="am")

    def test_bearer_validation(self):
        with pytest.raises(ValidationError):
            Bearer(bearer_id="b", kind="ip")  # missing url
        with pytest.raises(ValidationError):
            Bearer(bearer_id="b", kind="satellite")
        assert Bearer(bearer_id="b", kind="dab").is_broadcast
        assert not Bearer(bearer_id="b", kind="ip", url="http://x").is_broadcast

    def make_info(self):
        info = ServiceInformation(
            service_id="radio-uno",
            name="Radio Uno",
            identifiers=[ServiceIdentifier(system="fm", pi_code="5201", frequency_khz=90200)],
        )
        info.add_bearer(Bearer(bearer_id="dab1", kind="dab", cost_rank=0))
        info.add_bearer(Bearer(bearer_id="ip1", kind="ip", cost_rank=1, url="http://x"))
        return info

    def test_preferred_bearer_prefers_broadcast(self):
        info = self.make_info()
        assert info.preferred_bearer().kind == "dab"
        assert info.preferred_bearer(broadcast_available=False).kind == "ip"

    def test_duplicate_bearer_rejected(self):
        info = self.make_info()
        with pytest.raises(ValidationError):
            info.add_bearer(Bearer(bearer_id="dab1", kind="dab"))

    def test_no_usable_bearer(self):
        info = ServiceInformation(service_id="x", name="X")
        with pytest.raises(NotFoundError):
            info.preferred_bearer()

    def test_directory_lookup(self):
        directory = ServiceDirectory()
        info = self.make_info()
        directory.register(info)
        assert directory.lookup("radio-uno") is info
        with pytest.raises(NotFoundError):
            directory.lookup("radio-ghost")
        found = directory.lookup_by_identifier(
            ServiceIdentifier(system="fm", pi_code="5201", frequency_khz=90200)
        )
        assert found.service_id == "radio-uno"
        with pytest.raises(NotFoundError):
            directory.lookup_by_identifier(
                ServiceIdentifier(system="fm", pi_code="9999", frequency_khz=88000)
            )
        assert directory.service_ids() == ["radio-uno"]

"""Tests for the road network, city generator, routing and intersections."""

import pytest

from repro.errors import NotFoundError, ValidationError
from repro.geo import GeoPoint
from repro.roadnet import (
    CityGeneratorConfig,
    IntersectionKind,
    RoadNetwork,
    RoadNode,
    RoadSegment,
    RoutePlanner,
    classify_intersections,
    distraction_zones_along,
    generate_city,
)
from repro.roadnet.intersections import classify_node, route_complexity


def tiny_network():
    """A hand-built 4-node network: a -- b -- c with a spur b -- d."""
    network = RoadNetwork()
    positions = {
        "a": GeoPoint(45.00, 7.60),
        "b": GeoPoint(45.00, 7.61),
        "c": GeoPoint(45.00, 7.62),
        "d": GeoPoint(45.01, 7.61),
    }
    for node_id, position in positions.items():
        network.add_node(RoadNode(node_id, position))
    network.connect("a", "b")
    network.connect("b", "c")
    network.connect("b", "d")
    return network


class TestRoadNetwork:
    def test_segment_validation(self):
        with pytest.raises(ValidationError):
            RoadSegment("a", "b", length_m=0.0, speed_limit_mps=10.0)
        with pytest.raises(ValidationError):
            RoadSegment("a", "b", length_m=10.0, speed_limit_mps=0.0)

    def test_add_segment_requires_nodes(self):
        network = RoadNetwork()
        network.add_node(RoadNode("a", GeoPoint(45, 7)))
        with pytest.raises(NotFoundError):
            network.add_segment(RoadSegment("a", "missing", 10.0, 10.0))

    def test_connect_defaults_length_to_geo_distance(self):
        network = tiny_network()
        segment = network.segment_between("a", "b")
        assert segment.length_m == pytest.approx(
            network.node("a").position.distance_m(network.node("b").position), rel=1e-6
        )

    def test_counts_and_neighbors(self):
        network = tiny_network()
        assert network.node_count() == 4
        assert network.segment_count() == 3
        assert network.neighbors("b") == ["a", "c", "d"]
        assert network.degree("b") == 3
        assert network.degree("a") == 1

    def test_missing_lookups(self):
        network = tiny_network()
        with pytest.raises(NotFoundError):
            network.node("zzz")
        with pytest.raises(NotFoundError):
            network.neighbors("zzz")
        with pytest.raises(NotFoundError):
            network.segment_between("a", "d")

    def test_nearest_node(self):
        network = tiny_network()
        near_b = GeoPoint(45.0001, 7.6101)
        assert network.nearest_node(near_b).node_id == "b"

    def test_nearest_node_empty_network(self):
        with pytest.raises(NotFoundError):
            RoadNetwork().nearest_node(GeoPoint(45, 7))

    def test_total_length_positive(self):
        assert tiny_network().total_length_m() > 0

    def test_apply_congestion_scales_travel_time(self):
        network = tiny_network()
        before = network.graph.get_edge_data("a", "b")["travel_time_s"]
        network.apply_congestion({"urban": 2.0})
        after = network.graph.get_edge_data("a", "b")["travel_time_s"]
        assert after == pytest.approx(2.0 * before)

    def test_apply_congestion_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            tiny_network().apply_congestion({"urban": 0.0})


class TestCityGenerator:
    def test_config_validation(self):
        with pytest.raises(ValidationError):
            CityGeneratorConfig(grid_rows=1)
        with pytest.raises(ValidationError):
            CityGeneratorConfig(block_size_m=0)
        with pytest.raises(ValidationError):
            CityGeneratorConfig(roundabout_fraction=1.5)

    def test_generated_city_is_connected(self, small_city):
        import networkx as nx

        assert nx.is_connected(small_city.network.graph)

    def test_node_count_matches_grid(self, small_city):
        config = small_city.config
        assert small_city.network.node_count() == config.grid_rows * config.grid_cols

    def test_pois_exist_and_lookup(self, small_city):
        assert len(small_city.pois) == small_city.config.poi_count
        name = small_city.poi_names()[0]
        assert isinstance(small_city.poi(name), GeoPoint)
        with pytest.raises(ValidationError):
            small_city.poi("nonexistent-poi")

    def test_determinism(self):
        config = CityGeneratorConfig(grid_rows=5, grid_cols=5, poi_count=4, seed=9)
        a = generate_city(config)
        b = generate_city(config)
        assert a.network.node_ids() == b.network.node_ids()
        assert a.poi_names() == b.poi_names()
        first = a.network.node_ids()[0]
        assert a.network.node(first).position == b.network.node(first).position

    def test_has_multiple_road_classes(self, small_city):
        classes = {
            data["road_class"] for _u, _v, data in small_city.network.graph.edges(data=True)
        }
        assert {"urban", "highway"}.issubset(classes)


class TestRoutePlanner:
    def test_route_between_nodes(self, small_city):
        planner = RoutePlanner(small_city.network)
        nodes = small_city.network.node_ids()
        route = planner.route_between_nodes(nodes[0], nodes[-1])
        assert route.length_m > 0
        assert route.travel_time_s > 0
        assert route.node_ids[0] == nodes[0]
        assert route.node_ids[-1] == nodes[-1]
        assert route.mean_speed_mps > 0

    def test_route_between_points_snaps_to_nodes(self, small_city):
        planner = RoutePlanner(small_city.network)
        nodes = small_city.network.node_ids()
        origin = small_city.network.node(nodes[0]).position
        destination = small_city.network.node(nodes[-1]).position
        route = planner.route_between_points(origin, destination)
        assert route.length_m > 0

    def test_unknown_endpoint(self, small_city):
        planner = RoutePlanner(small_city.network)
        with pytest.raises(NotFoundError):
            planner.route_between_nodes("ghost", small_city.network.node_ids()[0])

    def test_travel_time_consistent_with_route(self, small_city):
        planner = RoutePlanner(small_city.network)
        nodes = small_city.network.node_ids()
        origin = small_city.network.node(nodes[0]).position
        destination = small_city.network.node(nodes[-1]).position
        route = planner.route_between_points(origin, destination)
        assert planner.travel_time_s(origin, destination) == pytest.approx(route.travel_time_s)

    def test_reachable_nodes_grow_with_budget(self, small_city):
        planner = RoutePlanner(small_city.network)
        origin = small_city.network.node(small_city.network.node_ids()[0]).position
        small_set = planner.reachable_nodes(origin, 30.0)
        large_set = planner.reachable_nodes(origin, 600.0)
        assert set(small_set).issubset(set(large_set))
        assert len(large_set) > len(small_set)

    def test_remaining_route_shrinks(self, small_city):
        planner = RoutePlanner(small_city.network)
        nodes = small_city.network.node_ids()
        route = planner.route_between_nodes(nodes[0], nodes[-1])
        midpoint_node = small_city.network.node(route.node_ids[len(route.node_ids) // 2])
        remaining = planner.remaining_route(route, midpoint_node.position)
        assert remaining is not None
        assert remaining.length_m < route.length_m

    def test_remaining_route_at_destination_is_none(self, small_city):
        planner = RoutePlanner(small_city.network)
        nodes = small_city.network.node_ids()
        route = planner.route_between_nodes(nodes[0], nodes[-1])
        final = small_city.network.node(route.node_ids[-1]).position
        assert planner.remaining_route(route, final) is None


class TestIntersections:
    def test_classify_degrees(self):
        network = tiny_network()
        assert classify_node(network, "a") == IntersectionKind.PLAIN
        assert classify_node(network, "b") == IntersectionKind.MINOR_JUNCTION

    def test_classify_roundabout(self):
        network = RoadNetwork()
        network.add_node(RoadNode("r", GeoPoint(45, 7), kind="roundabout"))
        assert classify_node(network, "r") == IntersectionKind.ROUNDABOUT

    def test_classify_all(self, small_city):
        kinds = classify_intersections(small_city.network)
        assert len(kinds) == small_city.network.node_count()
        assert any(kind == IntersectionKind.MAJOR_JUNCTION for kind in kinds.values())

    def test_distraction_zones_on_route(self, small_city):
        planner = RoutePlanner(small_city.network)
        nodes = small_city.network.node_ids()
        route = planner.route_between_nodes(nodes[0], nodes[-1])
        zones = distraction_zones_along(small_city.network, route, departure_s=1000.0)
        assert all(zone.window.start_s >= 1000.0 for zone in zones)
        # Zones appear in route order (non-decreasing start times).
        starts = [zone.window.start_s for zone in zones]
        assert starts == sorted(starts)

    def test_distraction_zone_margins_validated(self, small_city):
        planner = RoutePlanner(small_city.network)
        nodes = small_city.network.node_ids()
        route = planner.route_between_nodes(nodes[0], nodes[1])
        with pytest.raises(ValidationError):
            distraction_zones_along(small_city.network, route, approach_margin_s=-1.0)

    def test_route_complexity_bounds(self, small_city):
        planner = RoutePlanner(small_city.network)
        nodes = small_city.network.node_ids()
        route = planner.route_between_nodes(nodes[0], nodes[-1])
        value = route_complexity(small_city.network, route)
        assert 0.0 <= value < 1.0

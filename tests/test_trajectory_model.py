"""Tests for trajectory model, simplification, stay points and features."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrajectoryError
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.spatialdb import GpsFix
from repro.trajectory import (
    Trajectory,
    TrajectoryPoint,
    dbscan,
    detect_stay_points,
    extract_features,
    simplify_trajectory,
    split_into_trips,
)
from repro.trajectory.features import destination_frequencies, route_similarity, trajectory_complexity
from repro.trajectory.simplify import simplification_ratio
from repro.trajectory.staypoints import nearest_stay_point, stay_points_from_trips

HOME = GeoPoint(45.05, 7.65)
WORK = GeoPoint(45.09, 7.70)


def straight_drive(user_id="u1", *, start_s=0.0, points=30, speed_mps=12.0, bearing=60.0, origin=HOME):
    """A constant-speed straight drive."""
    samples = []
    for i in range(points):
        position = destination_point(origin, bearing, i * speed_mps * 10.0)
        samples.append(TrajectoryPoint(start_s + i * 10.0, position, speed_mps))
    return Trajectory(user_id, samples)


def wiggly_drive(user_id="u1", *, start_s=0.0, points=40, speed_mps=10.0, origin=HOME):
    """A drive that changes heading every segment (high complexity)."""
    samples = []
    position = origin
    for i in range(points):
        bearing = 60.0 + (45.0 if i % 2 else -45.0)
        position = destination_point(position, bearing, speed_mps * 10.0)
        samples.append(TrajectoryPoint(start_s + i * 10.0, position, speed_mps))
    return Trajectory(user_id, samples)


class TestTrajectory:
    def test_requires_points(self):
        with pytest.raises(TrajectoryError):
            Trajectory("u", [])

    def test_requires_time_order(self):
        with pytest.raises(TrajectoryError):
            Trajectory("u", [TrajectoryPoint(10.0, HOME), TrajectoryPoint(5.0, WORK)])

    def test_basic_properties(self):
        trajectory = straight_drive(points=10, speed_mps=10.0)
        assert len(trajectory) == 10
        assert trajectory.duration_s == 90.0
        assert trajectory.length_m == pytest.approx(900.0, rel=0.02)
        assert trajectory.mean_speed_mps == pytest.approx(10.0, rel=0.02)
        assert trajectory.origin == trajectory[0].position
        assert trajectory.destination == trajectory[9].position

    def test_from_fixes(self):
        fixes = [GpsFix("u1", i * 5.0, destination_point(HOME, 0.0, i * 50.0)) for i in range(5)]
        trajectory = Trajectory.from_fixes("u1", fixes)
        assert len(trajectory) == 5
        assert trajectory.user_id == "u1"

    def test_time_of_day(self):
        morning = straight_drive(start_s=8 * 3600.0)
        assert morning.start_time_of_day == "morning"

    def test_slice_time(self):
        trajectory = straight_drive(points=20)
        sliced = trajectory.slice_time(50.0, 100.0)
        assert len(sliced) == 5
        with pytest.raises(TrajectoryError):
            trajectory.slice_time(1e6, 2e6)

    def test_speeds_and_displacement(self):
        trajectory = straight_drive(points=10, speed_mps=10.0)
        speeds = trajectory.speeds_mps()
        assert len(speeds) == 9
        assert all(s == pytest.approx(10.0, rel=0.05) for s in speeds)
        assert trajectory.displacement_m() == pytest.approx(trajectory.length_m, rel=0.01)

    def test_polyline_and_bbox(self):
        trajectory = straight_drive(points=5)
        assert trajectory.to_polyline().length_m == pytest.approx(trajectory.length_m, rel=1e-6)
        assert trajectory.bounding_box().contains(trajectory.origin)


class TestSplitIntoTrips:
    def test_splits_on_reporting_gap(self):
        morning = straight_drive(start_s=8 * 3600.0, points=30)
        evening = straight_drive(start_s=18 * 3600.0, points=30, origin=WORK, bearing=240.0)
        combined = Trajectory("u1", morning.points + evening.points)
        trips = split_into_trips(combined)
        assert len(trips) == 2

    def test_splits_on_dwell(self):
        drive = straight_drive(points=30, speed_mps=12.0)
        # Dwell at the final position for 10 minutes with fixes every 30 s.
        dwell_origin = drive.destination
        dwell_points = [
            TrajectoryPoint(drive.end.timestamp_s + 30.0 * (i + 1), dwell_origin, 0.0)
            for i in range(20)
        ]
        second = straight_drive(
            start_s=dwell_points[-1].timestamp_s + 30.0, points=30, origin=dwell_origin, bearing=200.0
        )
        combined = Trajectory("u1", drive.points + dwell_points + second.points)
        trips = split_into_trips(combined, max_gap_s=10_000.0)
        assert len(trips) == 2

    def test_short_trips_discarded(self):
        tiny = straight_drive(points=3)
        assert split_into_trips(tiny) == []

    def test_single_point(self):
        assert split_into_trips(Trajectory("u", [TrajectoryPoint(0.0, HOME)])) == []


class TestSimplification:
    def test_straight_drive_compresses_heavily(self):
        drive = straight_drive(points=60)
        simplified = simplify_trajectory(drive, tolerance_m=20.0)
        assert len(simplified) <= 5
        assert simplification_ratio(drive, 20.0) > 0.9

    def test_wiggly_drive_keeps_more_points(self):
        drive = wiggly_drive(points=40)
        simplified = simplify_trajectory(drive, tolerance_m=10.0)
        assert len(simplified) > 10

    def test_preserves_endpoints_and_timestamps(self):
        drive = straight_drive(points=20)
        simplified = simplify_trajectory(drive)
        assert simplified[0].timestamp_s == drive[0].timestamp_s
        assert simplified[-1].timestamp_s == drive[-1].timestamp_s


class TestDbscanStayPoints:
    def cluster_points(self, center: GeoPoint, count: int, spread_m: float = 40.0):
        return [destination_point(center, (i * 67) % 360, (i % 5) * spread_m / 5.0) for i in range(count)]

    def test_dbscan_two_clusters_and_noise(self):
        points = (
            self.cluster_points(HOME, 6)
            + self.cluster_points(WORK, 6)
            + [destination_point(HOME, 45.0, 30000.0)]
        )
        labels = dbscan(points, eps_m=150.0, min_samples=3)
        assert len(set(label for label in labels if label >= 0)) == 2
        assert labels[-1] == -1

    def test_dbscan_all_noise_when_sparse(self):
        points = [destination_point(HOME, i * 40.0, i * 5000.0) for i in range(5)]
        labels = dbscan(points, eps_m=100.0, min_samples=2)
        assert all(label == -1 for label in labels)

    def test_dbscan_empty(self):
        assert dbscan([], eps_m=100.0, min_samples=2) == []

    def test_dbscan_validates_parameters(self):
        with pytest.raises(TrajectoryError):
            dbscan([HOME], eps_m=0.0)
        with pytest.raises(TrajectoryError):
            dbscan([HOME], eps_m=10.0, min_samples=0)

    def test_detect_stay_points_ranked_by_support(self):
        observations = self.cluster_points(HOME, 8) + self.cluster_points(WORK, 4)
        stay_points = detect_stay_points(observations, eps_m=150.0, min_samples=3)
        assert len(stay_points) == 2
        assert stay_points[0].support == 8
        assert stay_points[0].stay_point_id == 0
        assert stay_points[0].center.distance_m(HOME) < 200.0

    def test_detect_stay_points_dwell_alignment_validated(self):
        with pytest.raises(TrajectoryError):
            detect_stay_points([HOME, WORK], dwell_s=[1.0])

    def test_stay_points_from_trips(self):
        morning = straight_drive(start_s=8 * 3600.0, origin=HOME, bearing=60.0)
        evening = straight_drive(
            start_s=18 * 3600.0, origin=morning.destination, bearing=240.0
        )
        trips = [morning, evening, straight_drive(start_s=32 * 3600.0, origin=HOME, bearing=60.0)]
        stay_points = stay_points_from_trips(trips, eps_m=300.0, min_samples=2)
        assert len(stay_points) >= 2

    def test_nearest_stay_point(self):
        stay_points = detect_stay_points(self.cluster_points(HOME, 5), eps_m=150.0, min_samples=3)
        assert nearest_stay_point(stay_points, HOME) is not None
        assert nearest_stay_point(stay_points, WORK, max_distance_m=100.0) is None

    def test_with_label(self):
        stay_points = detect_stay_points(self.cluster_points(HOME, 5), eps_m=150.0, min_samples=3)
        labeled = stay_points[0].with_label("home")
        assert labeled.label == "home"
        assert labeled.center == stay_points[0].center


class TestFeatures:
    def test_straight_drive_low_complexity(self):
        assert trajectory_complexity(straight_drive(points=40)) < 0.15

    def test_wiggly_drive_higher_complexity(self):
        straight = trajectory_complexity(straight_drive(points=40))
        wiggly = trajectory_complexity(wiggly_drive(points=40))
        assert wiggly > straight

    def test_complexity_bounds(self):
        value = trajectory_complexity(wiggly_drive(points=60))
        assert 0.0 <= value < 1.0

    def test_extract_features_fields(self):
        drive = straight_drive(start_s=8 * 3600.0, points=30, speed_mps=12.0)
        features = extract_features(drive)
        assert features.user_id == "u1"
        assert features.time_of_day == "morning"
        assert features.duration_s == drive.duration_s
        assert features.mean_speed_mps == pytest.approx(12.0, rel=0.05)
        assert features.raw_points == 30
        assert features.simplified_points <= 30
        assert 0.0 <= features.compression_ratio <= 1.0

    def test_extract_features_requires_two_points(self):
        with pytest.raises(TrajectoryError):
            extract_features(Trajectory("u", [TrajectoryPoint(0.0, HOME)]))

    def test_extract_features_with_stay_points(self):
        drive = straight_drive(points=30)
        stay_points = detect_stay_points(
            [drive.origin] * 3 + [drive.destination] * 3, eps_m=100.0, min_samples=2
        )
        features = extract_features(drive, stay_points=stay_points)
        assert features.origin_stay_point is not None
        assert features.destination_stay_point is not None
        assert features.origin_stay_point != features.destination_stay_point

    def test_destination_frequencies(self):
        drive = straight_drive(points=30)
        stay_points = detect_stay_points(
            [drive.origin] * 3 + [drive.destination] * 3, eps_m=100.0, min_samples=2
        )
        features = [extract_features(drive, stay_points=stay_points) for _ in range(3)]
        frequencies = destination_frequencies(features)
        assert len(frequencies) == 1
        assert frequencies[0].count == 3
        assert frequencies[0].share == 1.0

    def test_destination_frequencies_empty(self):
        assert destination_frequencies([]) == []

    def test_route_similarity_identical_is_high(self):
        a = straight_drive(points=30)
        assert route_similarity(a, a) > 0.95

    def test_route_similarity_far_routes_low(self):
        a = straight_drive(points=30, origin=HOME)
        b = straight_drive(points=30, origin=destination_point(HOME, 90.0, 20000.0))
        assert route_similarity(a, b) < 0.2

    def test_route_similarity_validates_samples(self):
        a = straight_drive(points=10)
        with pytest.raises(TrajectoryError):
            route_similarity(a, a, samples=1)


class TestPropertyBased:
    @given(st.integers(min_value=5, max_value=50), st.floats(min_value=5.0, max_value=25.0))
    @settings(max_examples=25, deadline=None)
    def test_simplified_length_never_exceeds_original(self, points, speed):
        drive = wiggly_drive(points=points, speed_mps=speed)
        simplified = simplify_trajectory(drive, tolerance_m=15.0)
        assert simplified.length_m <= drive.length_m + 1e-6
        assert 2 <= len(simplified) <= len(drive)

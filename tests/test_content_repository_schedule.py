"""Tests for the linear schedule, content repository and geographic relevance."""

import pytest

from repro.content import (
    AudioClip,
    ContentKind,
    ContentRepository,
    GeoTag,
    LinearSchedule,
    LiveProgramme,
    RadioService,
    geographic_relevance,
)
from repro.content.geo_relevance import best_route_point, distance_along_route_to_point
from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.geo import GeoPoint, Polyline
from repro.geo.geodesy import destination_point
from repro.util.timeutils import TimeWindow, parse_clock

TORINO = GeoPoint(45.0703, 7.6869)


def make_programme(programme_id, service_id="radio-uno", categories=None):
    return LiveProgramme(
        programme_id=programme_id,
        service_id=service_id,
        title=programme_id.title(),
        categories=categories or ["news-national"],
    )


class TestLinearSchedule:
    def build(self):
        schedule = LinearSchedule("radio-uno")
        schedule.add(make_programme("morning-news"), TimeWindow(parse_clock("07:00"), parse_clock("08:00")))
        schedule.add(make_programme("talk"), TimeWindow(parse_clock("08:00"), parse_clock("09:30")))
        schedule.add(make_programme("music"), TimeWindow(parse_clock("10:00"), parse_clock("11:00")))
        return schedule

    def test_programme_at(self):
        schedule = self.build()
        assert schedule.programme_at(parse_clock("07:30")).programme_id == "morning-news"
        assert schedule.programme_at(parse_clock("09:45")) is None
        assert schedule.programme_at(parse_clock("06:00")) is None

    def test_entries_sorted(self):
        schedule = LinearSchedule("radio-uno")
        schedule.add(make_programme("later"), TimeWindow(200.0, 300.0))
        schedule.add(make_programme("earlier"), TimeWindow(0.0, 100.0))
        assert [entry.programme_id for entry in schedule.entries()] == ["earlier", "later"]

    def test_overlap_rejected(self):
        schedule = self.build()
        with pytest.raises(ValidationError):
            schedule.add(make_programme("overlap"), TimeWindow(parse_clock("07:30"), parse_clock("08:30")))

    def test_wrong_service_rejected(self):
        schedule = LinearSchedule("radio-due")
        with pytest.raises(ValidationError):
            schedule.add(make_programme("x", service_id="radio-uno"), TimeWindow(0, 10))

    def test_next_boundary(self):
        schedule = self.build()
        assert schedule.next_boundary_after(parse_clock("07:30")) == parse_clock("08:00")
        assert schedule.next_boundary_after(parse_clock("12:00")) is None

    def test_entries_between(self):
        schedule = self.build()
        entries = schedule.entries_between(parse_clock("07:30"), parse_clock("10:30"))
        assert [entry.programme_id for entry in entries] == ["morning-news", "talk", "music"]

    def test_remaining_in_current(self):
        schedule = self.build()
        assert schedule.remaining_in_current(parse_clock("07:45")) == pytest.approx(900.0)
        assert schedule.remaining_in_current(parse_clock("09:45")) == 0.0

    def test_find(self):
        schedule = self.build()
        assert schedule.find("talk").duration_s == pytest.approx(5400.0)
        with pytest.raises(NotFoundError):
            schedule.find("ghost")

    def test_coverage_window(self):
        schedule = self.build()
        coverage = schedule.coverage_window()
        assert coverage.start_s == parse_clock("07:00")
        assert coverage.end_s == parse_clock("11:00")
        assert LinearSchedule("x").coverage_window() is None


class TestContentRepository:
    def build(self):
        repo = ContentRepository()
        repo.add_service(RadioService(service_id="radio-uno", name="Radio Uno"))
        repo.add_programme(make_programme("morning-news"))
        repo.schedule_programme("morning-news", TimeWindow(parse_clock("07:00"), parse_clock("08:00")))
        for i, category in enumerate(["economics", "technology", "comedy"]):
            repo.add_clip(
                AudioClip(
                    clip_id=f"clip-{i}",
                    title=f"Clip {i}",
                    kind=ContentKind.PODCAST if i else ContentKind.NEWS,
                    duration_s=200.0 + i * 100.0,
                    category_scores={category: 1.0},
                    published_s=float(i * 1000),
                )
            )
        return repo

    def test_service_lookup_and_duplicates(self):
        repo = self.build()
        assert repo.service("radio-uno").name == "Radio Uno"
        with pytest.raises(DuplicateError):
            repo.add_service(RadioService(service_id="radio-uno", name="Again"))
        with pytest.raises(NotFoundError):
            repo.service("ghost")

    def test_programme_requires_service(self):
        repo = ContentRepository()
        with pytest.raises(NotFoundError):
            repo.add_programme(make_programme("p", service_id="ghost"))

    def test_schedule_integration(self):
        repo = self.build()
        schedule = repo.schedule("radio-uno")
        assert schedule.programme_at(parse_clock("07:30")).programme_id == "morning-news"

    def test_clip_lookup_and_duplicates(self):
        repo = self.build()
        assert repo.clip_count() == 3
        assert repo.clip("clip-0").kind == ContentKind.NEWS
        with pytest.raises(DuplicateError):
            repo.add_clip(repo.clip("clip-0"))
        with pytest.raises(NotFoundError):
            repo.clip("ghost")

    def test_clips_by_kind_and_category(self):
        repo = self.build()
        assert len(repo.clips_by_kind(ContentKind.PODCAST)) == 2
        assert [clip.clip_id for clip in repo.clips_by_category("economics")] == ["clip-0"]

    def test_clips_published_after(self):
        repo = self.build()
        recent = repo.clips_published_after(500.0)
        assert {clip.clip_id for clip in recent} == {"clip-1", "clip-2"}
        # Ordered by recency, newest first.
        assert recent[0].clip_id == "clip-2"

    def test_clips_max_duration(self):
        repo = self.build()
        assert {c.clip_id for c in repo.clips_max_duration(250.0)} == {"clip-0"}

    def test_replace_clip_updates_index(self):
        repo = self.build()
        original = repo.clip("clip-0")
        updated = AudioClip(
            clip_id="clip-0",
            title=original.title,
            kind=original.kind,
            duration_s=original.duration_s,
            category_scores={"comedy": 1.0},
            published_s=original.published_s,
        )
        repo.replace_clip(updated)
        assert [c.clip_id for c in repo.clips_by_category("economics")] == []
        assert "clip-0" in [c.clip_id for c in repo.clips_by_category("comedy")]
        with pytest.raises(NotFoundError):
            repo.replace_clip(AudioClip(clip_id="ghost", title="g", kind=ContentKind.NEWS, duration_s=10.0))

    def test_geo_tagged_clips(self):
        repo = self.build()
        repo.add_clip(
            AudioClip(
                clip_id="geo-1",
                title="Local",
                kind=ContentKind.NEWS,
                duration_s=120.0,
                geo_location=TORINO,
                geo_radius_m=1000.0,
            )
        )
        assert [clip.clip_id for clip in repo.geo_tagged_clips()] == ["geo-1"]


class TestGeoRelevance:
    def geo_clip(self, location, radius=1000.0):
        return AudioClip(
            clip_id="geo",
            title="Local news",
            kind=ContentKind.NEWS,
            duration_s=120.0,
            geo_location=location,
            geo_radius_m=radius,
        )

    def test_geotag_validation(self):
        with pytest.raises(ValidationError):
            GeoTag(TORINO, radius_m=0.0)
        with pytest.raises(ValidationError):
            GeoTag(TORINO, decay_m=0.0)

    def test_relevance_inside_radius_is_one(self):
        tag = GeoTag(TORINO, radius_m=1000.0)
        assert tag.relevance_at(destination_point(TORINO, 0.0, 500.0)) == 1.0

    def test_relevance_decays_outside(self):
        tag = GeoTag(TORINO, radius_m=1000.0, decay_m=2000.0)
        near = tag.relevance_at(destination_point(TORINO, 0.0, 2000.0))
        far = tag.relevance_at(destination_point(TORINO, 0.0, 10000.0))
        assert 0.0 < far < near < 1.0

    def test_untagged_clip_is_neutral(self):
        clip = AudioClip(clip_id="c", title="t", kind=ContentKind.PODCAST, duration_s=60.0)
        assert geographic_relevance(clip, current_position=TORINO) == 0.5

    def test_relevance_uses_route(self):
        target = destination_point(TORINO, 90.0, 5000.0)
        clip = self.geo_clip(target)
        route = Polyline([TORINO, destination_point(TORINO, 90.0, 10000.0)])
        assert geographic_relevance(clip, route=route) == pytest.approx(1.0)
        # Without the route the listener's position alone is far away.
        assert geographic_relevance(clip, current_position=TORINO) < 0.5

    def test_relevance_uses_destination(self):
        destination = destination_point(TORINO, 45.0, 8000.0)
        clip = self.geo_clip(destination)
        assert geographic_relevance(clip, destination=destination) == 1.0

    def test_best_route_point_near_tag(self):
        target = destination_point(TORINO, 90.0, 4000.0)
        clip = self.geo_clip(target)
        route = Polyline([TORINO, destination_point(TORINO, 90.0, 8000.0)])
        best = best_route_point(clip, route)
        assert best is not None
        assert best.distance_m(target) < 500.0

    def test_best_route_point_untagged_none(self):
        clip = AudioClip(clip_id="c", title="t", kind=ContentKind.PODCAST, duration_s=60.0)
        route = Polyline([TORINO, destination_point(TORINO, 90.0, 1000.0)])
        assert best_route_point(clip, route) is None

    def test_distance_along_route_to_point(self):
        route = Polyline([TORINO, destination_point(TORINO, 90.0, 10000.0)])
        target = destination_point(TORINO, 90.0, 2500.0)
        arc = distance_along_route_to_point(route, target)
        assert arc == pytest.approx(2500.0, abs=300.0)

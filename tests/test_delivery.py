"""Tests for broadcast/unicast channels, buffering, the hybrid player and the optimizer."""

import pytest

from repro.content import AudioClip, ContentKind, LinearSchedule, LiveProgramme, RadioService
from repro.delivery import (
    BroadcastChannel,
    BufferManager,
    DeliveryCostModel,
    HybridPlayer,
    SegmentSource,
    UnicastServer,
)
from repro.errors import DeliveryError, NotFoundError, ValidationError
from repro.util.timeutils import TimeWindow, parse_clock


def make_schedule(service_id="radio-uno"):
    schedule = LinearSchedule(service_id)
    for index, (start, end) in enumerate(
        [("07:00", "07:30"), ("07:30", "08:00"), ("08:00", "09:00"), ("09:00", "10:00")]
    ):
        programme = LiveProgramme(
            programme_id=f"prog-{index}",
            service_id=service_id,
            title=f"Programme {index}",
            categories=["news-national"],
        )
        schedule.add(programme, TimeWindow(parse_clock(start), parse_clock(end)))
    return schedule


def make_clip(clip_id="clip-1", duration=600.0):
    return AudioClip(
        clip_id=clip_id,
        title=clip_id,
        kind=ContentKind.PODCAST,
        duration_s=duration,
        category_scores={"culture": 1.0},
    )


class TestBroadcastChannel:
    def test_carry_and_reception(self):
        channel = BroadcastChannel()
        channel.carry(RadioService(service_id="radio-uno", name="Uno", bitrate_kbps=96))
        assert channel.carries("radio-uno")
        window = channel.record_reception("u1", "radio-uno", 0.0, 3600.0)
        assert window.duration_s == 3600.0
        assert channel.total_listening_s() == 3600.0
        # One hour at 96 kbps = 43.2 MB unicast equivalent.
        assert channel.equivalent_unicast_bytes() == 3600 * 96 * 1000 // 8

    def test_unknown_service_rejected(self):
        channel = BroadcastChannel()
        with pytest.raises(NotFoundError):
            channel.record_reception("u1", "ghost", 0.0, 10.0)

    def test_invalid_window_rejected(self):
        channel = BroadcastChannel()
        channel.carry(RadioService(service_id="s", name="S"))
        with pytest.raises(DeliveryError):
            channel.record_reception("u1", "s", 10.0, 5.0)


class TestUnicastServer:
    def test_byte_accounting_by_purpose(self):
        server = UnicastServer(default_bitrate_kbps=96)
        server.stream_live("u1", "radio-uno", 100.0)
        server.download_clip("u1", "clip-1", 2_000_000)
        server.stream_time_shift("u1", "prog-1", 50.0)
        expected_live = 100 * 96 * 1000 // 8
        expected_shift = 50 * 96 * 1000 // 8
        assert server.total_bytes(purpose="live_stream") == expected_live
        assert server.total_bytes(purpose="clip") == 2_000_000
        assert server.total_bytes(purpose="time_shift") == expected_shift
        assert server.total_bytes() == expected_live + 2_000_000 + expected_shift
        assert server.session_count() == 1

    def test_sessions_reused_per_user(self):
        server = UnicastServer()
        first = server.open_session("u1")
        second = server.open_session("u1")
        assert first is second

    def test_validation(self):
        server = UnicastServer()
        with pytest.raises(DeliveryError):
            server.stream_live("u1", "s", -1.0)
        with pytest.raises(DeliveryError):
            server.download_clip("u1", "c", -1)
        with pytest.raises(DeliveryError):
            UnicastServer(default_bitrate_kbps=0)

    def test_session_for_missing(self):
        assert UnicastServer().session_for("ghost") is None


class TestBufferManager:
    def test_requires_tuning(self):
        with pytest.raises(DeliveryError):
            BufferManager().record_reception(from_s=0.0, to_s=10.0)

    def test_reception_accumulates_and_merges(self):
        buffer = BufferManager()
        buffer.tune("radio-uno", at_s=100.0)
        buffer.record_reception(from_s=100.0, to_s=200.0)
        buffer.record_reception(from_s=200.0, to_s=300.0)
        assert buffer.buffered_duration_s() == 200.0
        assert buffer.oldest_instant_s() == 100.0
        assert buffer.newest_instant_s() == 300.0
        assert buffer.is_available(150.0)
        assert buffer.can_resume_at(150.0)
        assert buffer.max_time_shift_s() == 200.0

    def test_capacity_eviction(self):
        buffer = BufferManager(capacity_s=100.0)
        buffer.tune("radio-uno", at_s=0.0)
        buffer.record_reception(from_s=0.0, to_s=300.0)
        assert buffer.buffered_duration_s() == pytest.approx(100.0)
        assert not buffer.is_available(50.0)
        assert buffer.is_available(250.0)

    def test_live_edge_always_resumable(self):
        buffer = BufferManager()
        buffer.tune("radio-uno", at_s=0.0)
        buffer.record_reception(from_s=0.0, to_s=100.0)
        assert buffer.can_resume_at(100.0)
        assert buffer.can_resume_at(150.0)  # the future is just live playback

    def test_retune_drops_buffer(self):
        buffer = BufferManager()
        buffer.tune("radio-uno", at_s=0.0)
        buffer.record_reception(from_s=0.0, to_s=100.0)
        buffer.tune("radio-due", at_s=200.0)
        assert buffer.buffered_duration_s() == 0.0
        assert buffer.service_id == "radio-due"

    def test_invalid_interval(self):
        buffer = BufferManager()
        buffer.tune("s", at_s=0.0)
        with pytest.raises(DeliveryError):
            buffer.record_reception(from_s=10.0, to_s=5.0)

    def test_invalid_capacity(self):
        with pytest.raises(DeliveryError):
            BufferManager(capacity_s=0.0)


class TestHybridPlayer:
    def test_requires_tuning(self):
        player = HybridPlayer("u1")
        with pytest.raises(DeliveryError):
            player.play_live(10.0)
        with pytest.raises(DeliveryError):
            player.play_clip(make_clip())

    def test_schedule_service_mismatch(self):
        player = HybridPlayer("u1")
        with pytest.raises(DeliveryError):
            player.tune("radio-due", make_schedule("radio-uno"), at_s=parse_clock("07:10"))

    def test_live_playback_segments(self):
        player = HybridPlayer("u1")
        player.tune("radio-uno", make_schedule(), at_s=parse_clock("07:10"))
        segment = player.play_live(600.0)
        assert segment.source == SegmentSource.LIVE
        assert segment.programme_id == "prog-0"
        assert player.playback_offset_s == 0.0
        assert player.total_listened_s() == 600.0

    def test_clip_replacement_accumulates_offset(self):
        player = HybridPlayer("u1")
        player.tune("radio-uno", make_schedule(), at_s=parse_clock("07:10"))
        player.play_live(300.0)
        clip_segment = player.play_clip(make_clip(duration=600.0))
        assert clip_segment.source == SegmentSource.CLIP
        assert player.playback_offset_s == pytest.approx(600.0)
        # Resuming the service now plays from the buffer (time-shifted).
        live_again = player.play_live(300.0)
        assert live_again.source == SegmentSource.TIME_SHIFTED
        assert live_again.broadcast_offset_s == pytest.approx(600.0)
        # The time-shifted programme is the one that was on air 10 minutes ago.
        assert live_again.programme_id == "prog-0"

    def test_clip_share_and_timeline(self):
        player = HybridPlayer("u1")
        player.tune("radio-uno", make_schedule(), at_s=parse_clock("07:10"))
        player.play_live(300.0)
        player.play_clip(make_clip(duration=300.0))
        assert player.clip_share() == pytest.approx(0.5)
        assert len(player.timeline()) == 2
        assert "CLIP" in player.timeline()[1]

    def test_skip_to_live_resets_offset(self):
        player = HybridPlayer("u1")
        player.tune("radio-uno", make_schedule(), at_s=parse_clock("07:10"))
        player.play_clip(make_clip(duration=300.0))
        assert player.playback_offset_s > 0
        player.skip_to_live()
        assert player.playback_offset_s == 0.0

    def test_skip_current_programme(self):
        player = HybridPlayer("u1")
        player.tune("radio-uno", make_schedule(), at_s=parse_clock("07:10"))
        skipped = player.skip_current_programme()
        assert skipped == pytest.approx(20 * 60.0)  # prog-0 ends at 07:30

    def test_can_resume_programme_from_buffer(self):
        player = HybridPlayer("u1")
        player.tune("radio-uno", make_schedule(), at_s=parse_clock("07:10"))
        player.play_live(3600.0)
        # prog-1 started at 07:30, which is inside the buffered hour.
        assert player.can_resume_programme(parse_clock("07:30"))
        assert not player.can_resume_programme(parse_clock("06:00"))

    def test_invalid_duration(self):
        player = HybridPlayer("u1")
        player.tune("radio-uno", make_schedule(), at_s=parse_clock("07:10"))
        with pytest.raises(DeliveryError):
            player.play_live(0.0)


class TestDeliveryCostModel:
    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            DeliveryCostModel(bitrate_kbps=0)
        with pytest.raises(ValidationError):
            DeliveryCostModel(clip_replacement_share=1.5)
        with pytest.raises(ValidationError):
            DeliveryCostModel(broadcast_coverage=-0.1)

    def test_pure_streaming_scales_linearly(self):
        model = DeliveryCostModel()
        assert model.pure_streaming_bytes(200) == 2 * model.pure_streaming_bytes(100)

    def test_hybrid_cheaper_than_streaming(self):
        model = DeliveryCostModel(clip_replacement_share=0.2, broadcast_coverage=0.85)
        for listeners in (10, 100, 1000, 10000):
            report = model.report(listeners)
            assert report.hybrid_unicast_bytes < report.pure_streaming_bytes
            assert report.savings_ratio > 0.4

    def test_savings_grow_with_coverage(self):
        low = DeliveryCostModel(broadcast_coverage=0.3).report(1000)
        high = DeliveryCostModel(broadcast_coverage=0.95).report(1000)
        assert high.savings_ratio > low.savings_ratio

    def test_savings_shrink_with_clip_share(self):
        light = DeliveryCostModel(clip_replacement_share=0.1).report(1000)
        heavy = DeliveryCostModel(clip_replacement_share=0.8).report(1000)
        assert light.savings_ratio > heavy.savings_ratio

    def test_full_clip_share_with_full_coverage_saves_nothing_on_audio(self):
        model = DeliveryCostModel(clip_replacement_share=1.0, broadcast_coverage=1.0)
        report = model.report(500)
        assert report.savings_bytes == pytest.approx(0.0, abs=1.0)
        assert model.crossover_clip_share() == 1.0

    def test_sweep_and_parameters(self):
        model = DeliveryCostModel()
        reports = model.sweep([10, 100])
        assert [report.listeners for report in reports] == [10, 100]
        assert model.per_listener_saving_bytes() > 0
        assert set(model.parameters()) >= {"bitrate_kbps", "broadcast_coverage"}

    def test_zero_listeners(self):
        report = DeliveryCostModel().report(0)
        assert report.pure_streaming_bytes == 0
        assert report.hybrid_unicast_bytes == 0
        assert report.savings_ratio == 0.0

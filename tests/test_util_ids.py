"""Tests for identifier helpers."""

import pytest

from repro.errors import ValidationError
from repro.util.ids import new_id, slugify


class TestNewId:
    def test_monotonic_per_prefix(self):
        first = new_id("testpfx")
        second = new_id("testpfx")
        assert first != second
        assert first.split("-")[-1] < second.split("-")[-1]

    def test_prefix_embedded(self):
        assert new_id("abc").startswith("abc-")

    def test_rejects_empty_prefix(self):
        with pytest.raises(ValidationError):
            new_id("")


class TestSlugify:
    def test_basic(self):
        assert slugify("Hello World!") == "hello-world"

    def test_collapses_punctuation(self):
        assert slugify("a--b__c") == "a-b-c"

    def test_empty_falls_back(self):
        assert slugify("!!!") == "item"

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            slugify(42)  # type: ignore[arg-type]

"""Tests for the message bus, the PPHCR server and the public API."""

import pytest

from repro.asr import SyntheticNewsCorpus
from repro.content import AudioClip, ContentKind
from repro.errors import PipelineError
from repro.pipeline import MessageBus, PphcrServer, PublicApi, ServerConfig
from repro.users import UserProfile


class TestMessageBus:
    def test_publish_delivers_to_subscribers(self):
        bus = MessageBus()
        received = []
        bus.subscribe("topic.a", lambda message: received.append(message.body["x"]))
        bus.publish("topic.a", {"x": 1})
        bus.publish("topic.a", {"x": 2})
        assert received == [1, 2]
        assert bus.delivery_count() == 2

    def test_unrouted_messages_dead_lettered(self):
        bus = MessageBus()
        bus.publish("nobody.listens", {"x": 1})
        assert len(bus.dead_letters()) == 1

    def test_failing_handler_does_not_break_others(self):
        bus = MessageBus()
        received = []

        def bad_handler(_message):
            raise RuntimeError("boom")

        bus.subscribe("t", bad_handler)
        bus.subscribe("t", lambda message: received.append(1))
        bus.publish("t", {})
        assert received == [1]
        assert bus.dead_letters() == []

    def test_all_handlers_fail_dead_letter(self):
        bus = MessageBus()
        bus.subscribe("t", lambda message: (_ for _ in ()).throw(RuntimeError()))
        bus.publish("t", {})
        assert len(bus.dead_letters()) == 1

    def test_published_filter_and_topics(self):
        bus = MessageBus()
        bus.subscribe("a", lambda m: None)
        bus.publish("a", {})
        bus.publish("b", {})
        assert len(bus.published_messages()) == 2
        assert len(bus.published_messages("a")) == 1
        assert bus.topics() == ["a"]

    def test_empty_topic_rejected(self):
        bus = MessageBus()
        with pytest.raises(PipelineError):
            bus.publish("", {})
        with pytest.raises(PipelineError):
            bus.subscribe("", lambda m: None)


class TestServerIngestion:
    def test_speech_clip_classified_on_ingest(self):
        corpus = SyntheticNewsCorpus(seed=21)
        train, _ = corpus.train_test_split(documents_per_category=6)
        server = PphcrServer()
        server.train_classifier([d.text for d in train], [d.category for d in train])
        speech_text = corpus.generate_document("economics", word_count=150).text
        clip = AudioClip(
            clip_id="speech-1",
            title="Market news",
            kind=ContentKind.NEWS,
            duration_s=240.0,
        )
        stored = server.ingest_clip(clip, speech_text=speech_text)
        assert stored.transcript is not None
        assert stored.category_scores
        assert stored.primary_category == "economics"
        classified_messages = server.bus.published_messages("clip.classified")
        assert len(classified_messages) == 1
        assert classified_messages[0].body["predicted"] == "economics"

    def test_clip_without_speech_keeps_editorial_scores(self):
        server = PphcrServer()
        clip = AudioClip(
            clip_id="tagged-1",
            title="Tagged",
            kind=ContentKind.PODCAST,
            duration_s=120.0,
            category_scores={"comedy": 1.0},
        )
        stored = server.ingest_clip(clip)
        assert stored.category_scores == {"comedy": 1.0}
        assert server.content.clip_count() == 1

    def test_speech_ignored_without_classifier(self):
        server = PphcrServer()
        clip = AudioClip(clip_id="c", title="c", kind=ContentKind.NEWS, duration_s=60.0)
        stored = server.ingest_clip(clip, speech_text="qualche testo parlato qui")
        assert stored.category_scores == {}

    def test_register_user_and_bus_events(self):
        server = PphcrServer()
        server.register_user(UserProfile(user_id="u1", display_name="User"))
        assert server.users.user_count() == 1
        assert server.bus.published_messages("user.registered")


class TestServerMobilityAndRecommendation:
    def test_rebuild_mobility_model(self, small_world):
        server = small_world.server
        user_id = small_world.commuters[0].user_id
        model = server.rebuild_mobility_model(user_id)
        assert model.trip_count >= 2
        assert model.stay_points
        assert server.bus.published_messages("tracking.model_rebuilt")

    def test_rebuild_requires_tracking_data(self):
        server = PphcrServer()
        server.register_user(UserProfile(user_id="u1", display_name="User"))
        with pytest.raises(PipelineError):
            server.rebuild_mobility_model("u1")

    def test_build_context_stationary_without_recent_fixes(self, small_world):
        server = small_world.server
        user_id = small_world.commuters[0].user_id
        # Long after the last historical fix: the trailing window is empty.
        context = server.build_context(user_id, now_s=small_world.today_start_s + 3 * 86400.0)
        assert not context.is_driving

    def test_build_context_during_live_drive(self, small_world):
        server = small_world.server
        commuter = small_world.commuters[1]
        drive = small_world.commuter_generator.live_drive(commuter, day=small_world.today)
        observe = drive.departure_s + 240.0
        server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
        context = server.build_context(commuter.user_id, now_s=observe)
        assert context.is_driving
        assert context.speed_mps > 2.0
        assert context.position is not None
        # Destination prediction and ΔT should usually be available mid-commute.
        assert context.destination is not None
        assert context.available_time_s is not None

    def test_recommend_produces_plan_mid_commute(self, small_world):
        server = small_world.server
        commuter = small_world.commuters[2]
        drive = small_world.commuter_generator.live_drive(commuter, day=small_world.today)
        observe = drive.departure_s + 240.0
        server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
        decision = server.recommend(commuter.user_id, now_s=observe, drive_elapsed_s=240.0)
        assert server.bus.published_messages("recommendation.decision")
        if decision.should_recommend:
            plan = decision.plan
            assert plan.total_scheduled_s <= plan.available_s + 1e-6
            assert all(item.scored.clip.duration_s <= plan.available_s for item in plan.items)

    def test_recommend_for_parked_user_refuses(self, small_world):
        server = small_world.server
        user_id = small_world.commuters[3].user_id
        decision = server.recommend(user_id, now_s=small_world.today_start_s + 5 * 86400.0)
        assert not decision.should_recommend

    def test_editorial_injection_reaches_plan(self, small_world):
        server = small_world.server
        commuter = small_world.commuters[4]
        drive = small_world.commuter_generator.live_drive(commuter, day=small_world.today)
        observe = drive.departure_s + 240.0
        server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
        # Inject a clip the user would normally not get (disliked category).
        disliked = commuter.disliked_categories[0]
        candidates = server.content.clips_by_category(disliked)
        short_enough = [c for c in candidates if c.duration_s <= 240.0]
        if not short_enough:
            pytest.skip("no short clip available in the disliked category")
        target = short_enough[0]
        server.editorial.inject(
            target.clip_id, target_user_ids=[commuter.user_id], boost=1.0, created_s=observe - 10.0
        )
        decision = server.recommend(commuter.user_id, now_s=observe, drive_elapsed_s=240.0)
        if decision.should_recommend:
            assert target.clip_id in decision.recommended_clip_ids


class TestPublicApi:
    def test_register_and_get_profile(self):
        api = PublicApi(PphcrServer())
        response = api.register_user("u1", "Greg", age=40)
        assert response.status == 201
        duplicate = api.register_user("u1", "Greg")
        assert duplicate.status == 400
        profile = api.get_profile("u1")
        assert profile.ok
        assert profile.body["display_name"] == "Greg"
        assert api.get_profile("ghost").status == 404

    def test_feedback_endpoint(self, small_world):
        api = PublicApi(small_world.server)
        user_id = small_world.commuters[0].user_id
        clip_id = small_world.server.content.clips()[0].clip_id
        ok = api.post_feedback(user_id, clip_id, "like", timestamp_s=1000.0)
        assert ok.status == 201
        bad_kind = api.post_feedback(user_id, clip_id, "loved-it", timestamp_s=1000.0)
        assert bad_kind.status == 400
        unknown_user = api.post_feedback("ghost", clip_id, "like", timestamp_s=1000.0)
        assert unknown_user.status == 404

    def test_location_endpoint(self, small_world):
        api = PublicApi(small_world.server)
        user_id = small_world.commuters[0].user_id
        latest = small_world.server.users.tracking.latest_fix(user_id).timestamp_s
        ok = api.post_location(user_id, lat=45.07, lon=7.68, timestamp_s=latest + 10.0)
        assert ok.status == 202
        bad = api.post_location(user_id, lat=123.0, lon=7.68, timestamp_s=latest + 20.0)
        assert bad.status == 400

    def test_services_and_clip_endpoints(self, small_world):
        api = PublicApi(small_world.server)
        services = api.list_services()
        assert services.ok
        assert len(services.body["services"]) == 10
        clip_id = small_world.server.content.clips()[0].clip_id
        clip = api.get_clip(clip_id)
        assert clip.ok and clip.body["clip_id"] == clip_id
        assert api.get_clip("ghost").status == 404

    def test_recommendations_endpoint(self, small_world):
        api = PublicApi(small_world.server)
        commuter = small_world.commuters[5]
        drive = small_world.commuter_generator.live_drive(commuter, day=small_world.today)
        observe = drive.departure_s + 240.0
        small_world.server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
        response = api.get_recommendations(commuter.user_id, now_s=observe)
        assert response.ok
        assert "proactive" in response.body
        if response.body["proactive"]:
            assert response.body["items"]
            first = response.body["items"][0]
            assert {"clip_id", "title", "duration_s", "score"} <= set(first)
        missing = api.get_recommendations("ghost", now_s=observe)
        assert missing.status == 404

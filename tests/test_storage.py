"""Tests for the in-memory relational storage substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateError, NotFoundError, QueryError, SchemaError
from repro.storage import Column, Database, Query, Schema, Table


def make_schema(name="people"):
    return Schema(
        name=name,
        primary_key="person_id",
        columns=[
            Column("person_id", str),
            Column("age", int),
            Column("city", str, nullable=True),
            Column("score", float, has_default=True, default=0.0),
        ],
    )


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema(name="x", primary_key="a", columns=[Column("a"), Column("a")])

    def test_missing_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema(name="x", primary_key="missing", columns=[Column("a")])

    def test_validate_row_applies_defaults(self):
        schema = make_schema()
        row = schema.validate_row({"person_id": "p1", "age": 30})
        assert row["score"] == 0.0
        assert row["city"] is None

    def test_validate_row_unknown_column(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row({"person_id": "p1", "age": 3, "oops": 1})

    def test_validate_row_missing_required(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row({"person_id": "p1"})

    def test_type_checking(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row({"person_id": "p1", "age": "thirty"})

    def test_int_widened_to_float(self):
        row = make_schema().validate_row({"person_id": "p1", "age": 30, "score": 5})
        assert row["score"] == 5.0
        assert isinstance(row["score"], float)

    def test_non_nullable_rejects_none(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row({"person_id": None, "age": 3})


class TestTable:
    def test_insert_and_get(self):
        table = Table(make_schema())
        key = table.insert({"person_id": "p1", "age": 30})
        assert key == "p1"
        assert table.get("p1")["age"] == 30

    def test_duplicate_insert_rejected(self):
        table = Table(make_schema())
        table.insert({"person_id": "p1", "age": 30})
        with pytest.raises(DuplicateError):
            table.insert({"person_id": "p1", "age": 31})

    def test_get_returns_copy(self):
        table = Table(make_schema())
        table.insert({"person_id": "p1", "age": 30})
        row = table.get("p1")
        row["age"] = 99
        assert table.get("p1")["age"] == 30

    def test_get_missing(self):
        with pytest.raises(NotFoundError):
            Table(make_schema()).get("missing")

    def test_get_or_none(self):
        assert Table(make_schema()).get_or_none("missing") is None

    def test_upsert_replaces(self):
        table = Table(make_schema())
        table.insert({"person_id": "p1", "age": 30})
        table.upsert({"person_id": "p1", "age": 41})
        assert table.get("p1")["age"] == 41
        assert len(table) == 1

    def test_update_partial(self):
        table = Table(make_schema())
        table.insert({"person_id": "p1", "age": 30, "city": "torino"})
        updated = table.update("p1", {"age": 31})
        assert updated["age"] == 31
        assert updated["city"] == "torino"

    def test_update_missing(self):
        with pytest.raises(NotFoundError):
            Table(make_schema()).update("nope", {"age": 1})

    def test_update_key_collision(self):
        table = Table(make_schema())
        table.insert({"person_id": "p1", "age": 30})
        table.insert({"person_id": "p2", "age": 31})
        with pytest.raises(DuplicateError):
            table.update("p1", {"person_id": "p2"})

    def test_delete(self):
        table = Table(make_schema())
        table.insert({"person_id": "p1", "age": 30})
        table.delete("p1")
        assert len(table) == 0
        with pytest.raises(NotFoundError):
            table.delete("p1")

    def test_secondary_index_lookup(self):
        table = Table(make_schema())
        table.create_index("city")
        table.insert({"person_id": "p1", "age": 30, "city": "torino"})
        table.insert({"person_id": "p2", "age": 40, "city": "milano"})
        table.insert({"person_id": "p3", "age": 50, "city": "torino"})
        rows = table.find_by_index("city", "torino")
        assert {row["person_id"] for row in rows} == {"p1", "p3"}

    def test_index_maintained_on_update_and_delete(self):
        table = Table(make_schema())
        table.create_index("city")
        table.insert({"person_id": "p1", "age": 30, "city": "torino"})
        table.update("p1", {"city": "milano"})
        assert table.find_by_index("city", "torino") == []
        assert len(table.find_by_index("city", "milano")) == 1
        table.delete("p1")
        assert table.find_by_index("city", "milano") == []

    def test_index_on_existing_rows(self):
        table = Table(make_schema())
        table.insert({"person_id": "p1", "age": 30, "city": "torino"})
        table.create_index("city")
        assert len(table.find_by_index("city", "torino")) == 1

    def test_duplicate_index_rejected(self):
        table = Table(make_schema())
        table.create_index("city")
        with pytest.raises(DuplicateError):
            table.create_index("city")

    def test_unknown_index_lookup(self):
        with pytest.raises(NotFoundError):
            Table(make_schema()).find_by_index("city", "x")

    def test_computed_index(self):
        table = Table(make_schema())
        table.create_index("age_bucket", key_func=lambda row: row["age"] // 10)
        table.insert({"person_id": "p1", "age": 34})
        table.insert({"person_id": "p2", "age": 37})
        assert len(table.find_by_index("age_bucket", 3)) == 2

    def test_scan_and_count(self):
        table = Table(make_schema())
        for i in range(5):
            table.insert({"person_id": f"p{i}", "age": 20 + i})
        assert table.count() == 5
        assert table.count(lambda row: row["age"] >= 23) == 2
        assert len(table.scan(lambda row: row["age"] < 22)) == 2

    def test_clear(self):
        table = Table(make_schema())
        table.create_index("city")
        table.insert({"person_id": "p1", "age": 30, "city": "torino"})
        table.clear()
        assert len(table) == 0
        assert table.find_by_index("city", "torino") == []


class TestQuery:
    def build_table(self):
        table = Table(make_schema())
        rows = [
            ("p1", 25, "torino", 0.5),
            ("p2", 35, "milano", 0.9),
            ("p3", 45, "torino", 0.1),
            ("p4", 55, "roma", 0.7),
        ]
        for person_id, age, city, score in rows:
            table.insert({"person_id": person_id, "age": age, "city": city, "score": score})
        return table

    def test_where_eq(self):
        rows = Query(self.build_table()).where_eq("city", "torino").all()
        assert {row["person_id"] for row in rows} == {"p1", "p3"}

    def test_where_predicate_and_order(self):
        rows = (
            Query(self.build_table())
            .where(lambda row: row["age"] > 30)
            .order_by("age", descending=True)
            .all()
        )
        assert [row["person_id"] for row in rows] == ["p4", "p3", "p2"]

    def test_where_in(self):
        rows = Query(self.build_table()).where_in("city", ["roma", "milano"]).all()
        assert {row["person_id"] for row in rows} == {"p2", "p4"}

    def test_limit_and_select(self):
        rows = Query(self.build_table()).order_by("age").limit(2).select("person_id").all()
        assert rows == [{"person_id": "p1"}, {"person_id": "p2"}]

    def test_limit_negative(self):
        with pytest.raises(QueryError):
            Query(self.build_table()).limit(-1)

    def test_first_and_exists(self):
        query = Query(self.build_table()).where_eq("city", "roma")
        assert query.exists()
        assert query.first()["person_id"] == "p4"
        assert Query(self.build_table()).where_eq("city", "napoli").first() is None

    def test_count_sum_avg(self):
        table = self.build_table()
        assert Query(table).count() == 4
        assert Query(table).sum("age") == 160
        assert Query(table).where_eq("city", "torino").avg("age") == 35.0
        assert Query(table).where_eq("city", "napoli").avg("age") is None

    def test_group_by(self):
        groups = Query(self.build_table()).group_by("city")
        assert set(groups) == {"torino", "milano", "roma"}
        assert len(groups["torino"]) == 2

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            Query(self.build_table()).where_eq("nope", 1)


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database("test")
        db.create_table(make_schema())
        assert "people" in db
        assert db.table("people").name == "people"

    def test_duplicate_table(self):
        db = Database("test")
        db.create_table(make_schema())
        with pytest.raises(DuplicateError):
            db.create_table(make_schema())

    def test_missing_table(self):
        with pytest.raises(NotFoundError):
            Database("test").table("ghost")

    def test_drop_table(self):
        db = Database("test")
        db.create_table(make_schema())
        db.drop_table("people")
        assert "people" not in db
        with pytest.raises(NotFoundError):
            db.drop_table("people")

    def test_query_and_total_rows(self):
        db = Database("test")
        db.create_table(make_schema())
        db.table("people").insert({"person_id": "p1", "age": 20})
        assert db.total_rows() == 1
        assert db.query("people").count() == 1
        assert db.table_names() == ["people"]


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.text(min_size=1, max_size=6), st.integers(min_value=0, max_value=99)),
            min_size=1,
            max_size=30,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_insert_then_get_roundtrip(self, rows):
        table = Table(make_schema())
        for person_id, age in rows:
            table.insert({"person_id": person_id, "age": age})
        assert len(table) == len(rows)
        for person_id, age in rows:
            assert table.get(person_id)["age"] == age

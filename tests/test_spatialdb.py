"""Tests for the tracking store and spatial query engine."""

import pytest

from repro.errors import NotFoundError, ValidationError
from repro.geo import BoundingBox, GeoPoint
from repro.geo.geodesy import destination_point
from repro.spatialdb import GpsFix, SpatialQueryEngine, TrackingStore

ORIGIN = GeoPoint(45.07, 7.68)


def make_drive_fixes(user_id: str, *, start_s: float = 0.0, count: int = 20, speed_mps: float = 10.0):
    """Fixes along a straight east-heading drive at constant speed."""
    fixes = []
    for i in range(count):
        position = destination_point(ORIGIN, 90.0, i * speed_mps * 10.0)
        fixes.append(GpsFix(user_id, start_s + i * 10.0, position, speed_mps=speed_mps))
    return fixes


class TestGpsFix:
    def test_negative_speed_rejected(self):
        with pytest.raises(ValidationError):
            GpsFix("u", 0.0, ORIGIN, speed_mps=-1.0)

    def test_zero_accuracy_rejected(self):
        with pytest.raises(ValidationError):
            GpsFix("u", 0.0, ORIGIN, accuracy_m=0.0)

    def test_empty_user_rejected(self):
        with pytest.raises(ValidationError):
            GpsFix("", 0.0, ORIGIN)


class TestTrackingStore:
    def test_add_and_count(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=5))
        assert store.fix_count("u1") == 5
        assert store.fix_count() == 5
        assert store.user_ids() == ["u1"]

    def test_out_of_order_rejected(self):
        store = TrackingStore()
        store.add_fix(GpsFix("u1", 100.0, ORIGIN))
        with pytest.raises(ValidationError):
            store.add_fix(GpsFix("u1", 50.0, ORIGIN))

    def test_equal_timestamp_allowed(self):
        store = TrackingStore()
        store.add_fix(GpsFix("u1", 100.0, ORIGIN))
        store.add_fix(GpsFix("u1", 100.0, ORIGIN))
        assert store.fix_count("u1") == 2

    def test_fixes_for_time_range(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=10))
        subset = store.fixes_for("u1", start_s=30.0, end_s=60.0)
        assert [fix.timestamp_s for fix in subset] == [30.0, 40.0, 50.0]

    def test_fixes_for_unknown_user(self):
        with pytest.raises(NotFoundError):
            TrackingStore().fixes_for("ghost")

    def test_latest_fix_and_position(self):
        store = TrackingStore()
        fixes = make_drive_fixes("u1", count=3)
        store.add_fixes(fixes)
        assert store.latest_fix("u1").timestamp_s == fixes[-1].timestamp_s
        assert store.latest_position("u1") == fixes[-1].position

    def test_users_within_uses_latest_position(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("driver", count=30))  # ends ~2.9 km east
        store.add_fix(GpsFix("parked", 0.0, ORIGIN))
        assert store.users_within(ORIGIN, 500.0) == ["parked"]
        far_point = destination_point(ORIGIN, 90.0, 2900.0)
        assert "driver" in store.users_within(far_point, 500.0)

    def test_users_in_bbox(self):
        store = TrackingStore()
        store.add_fix(GpsFix("u1", 0.0, ORIGIN))
        box = BoundingBox.around(ORIGIN, 1000.0)
        assert store.users_in_bbox(box) == ["u1"]

    def test_prune_before(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=10))
        removed = store.prune_before("u1", cutoff_s=50.0)
        assert removed == 5
        assert store.fix_count("u1") == 5

    def test_prune_keeps_latest_when_all_old(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=5))
        store.prune_before("u1", cutoff_s=1e9)
        assert store.fix_count("u1") == 1

    def test_clear_user(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=3))
        store.clear_user("u1")
        assert store.user_ids() == []
        with pytest.raises(NotFoundError):
            store.clear_user("u1")


class TestSpatialQueryEngine:
    def test_distance_travelled(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=11, speed_mps=10.0))
        engine = SpatialQueryEngine(store)
        # 10 segments of ~100 m each
        assert engine.distance_travelled_m("u1") == pytest.approx(1000.0, rel=0.02)

    def test_movement_summary_moving(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=11, speed_mps=10.0))
        summary = SpatialQueryEngine(store).movement_summary("u1")
        assert summary.is_moving
        assert summary.fix_count == 11
        assert summary.mean_speed_mps == pytest.approx(10.0, rel=0.05)
        assert summary.bounding_box is not None

    def test_movement_summary_window(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=20, speed_mps=10.0))
        summary = SpatialQueryEngine(store).movement_summary("u1", window_s=50.0)
        assert summary.fix_count == 6

    def test_movement_summary_stationary(self):
        store = TrackingStore()
        for i in range(5):
            store.add_fix(GpsFix("u1", i * 10.0, ORIGIN))
        summary = SpatialQueryEngine(store).movement_summary("u1")
        assert not summary.is_moving

    def test_displacement_vs_distance(self):
        store = TrackingStore()
        # Out and back: distance is large, displacement is ~0.
        out = make_drive_fixes("u1", count=10, speed_mps=10.0)
        store.add_fixes(out)
        back = []
        for i, fix in enumerate(reversed(out)):
            back.append(GpsFix("u1", 100.0 + i * 10.0, fix.position, speed_mps=10.0))
        store.add_fixes(back)
        engine = SpatialQueryEngine(store)
        assert engine.displacement_m("u1", window_s=1e6) < 50.0
        assert engine.distance_travelled_m("u1") > 1500.0

    def test_current_speed(self):
        store = TrackingStore()
        store.add_fixes(make_drive_fixes("u1", count=10, speed_mps=12.0))
        engine = SpatialQueryEngine(store)
        assert engine.current_speed_mps("u1") == pytest.approx(12.0, rel=0.1)

    def test_current_speed_single_fix(self):
        store = TrackingStore()
        store.add_fix(GpsFix("u1", 0.0, ORIGIN, speed_mps=7.0))
        assert SpatialQueryEngine(store).current_speed_mps("u1") == 7.0

    def test_listeners_near(self):
        store = TrackingStore()
        store.add_fix(GpsFix("u1", 0.0, ORIGIN))
        store.add_fix(GpsFix("u2", 0.0, destination_point(ORIGIN, 0.0, 10000.0)))
        assert SpatialQueryEngine(store).listeners_near(ORIGIN, 1000.0) == ["u1"]

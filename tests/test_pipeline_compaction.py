"""Tests for the periodic tracking-data compaction job of the server."""

import pytest

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.errors import PipelineError
from repro.pipeline import PphcrServer
from repro.roadnet import CityGeneratorConfig
from repro.users import UserProfile


@pytest.fixture(scope="module")
def compaction_world():
    """A private world because compaction prunes tracking data."""
    return build_world(
        WorldConfig(
            seed=808,
            city=CityGeneratorConfig(grid_rows=8, grid_cols=8, poi_count=8, seed=4),
            broadcaster=BroadcasterConfig(seed=5, clips_per_day=40),
            commuters=CommuterConfig(seed=6, commuters=4, history_days=6),
            classifier_documents_per_category=4,
            feedback_events_per_user=10,
        )
    )


class TestTrackingCompaction:
    def test_compaction_prunes_old_fixes_and_keeps_models(self, compaction_world):
        server = compaction_world.server
        before = server.users.tracking.fix_count()
        # Keep only the last two days of raw data: everything older goes away.
        removed = server.compact_tracking_data(keep_window_s=2 * 86400.0)
        after = server.users.tracking.fix_count()
        assert sum(removed.values()) > 0
        assert after == before - sum(removed.values())
        # The compact mobility models survive and remain usable.
        for commuter in compaction_world.commuters:
            model = server.mobility_model(commuter.user_id)
            assert model.stay_points
        assert server.bus.published_messages("tracking.compacted")

    def test_compaction_with_generous_window_removes_nothing(self, compaction_world):
        server = compaction_world.server
        removed = server.compact_tracking_data(keep_window_s=365 * 86400.0)
        assert sum(removed.values()) == 0

    def test_compaction_validates_window(self, compaction_world):
        with pytest.raises(PipelineError):
            compaction_world.server.compact_tracking_data(keep_window_s=0.0)

    def test_compaction_skips_users_without_enough_data(self):
        server = PphcrServer()
        server.register_user(UserProfile(user_id="solo", display_name="Solo"))
        # No tracking data at all: the job completes and reports nothing removed.
        removed = server.compact_tracking_data()
        assert removed == {}

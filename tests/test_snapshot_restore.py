"""Snapshot → restore round trips: stores, streaming engine, whole server.

The restart-persistence contract: a warmed server snapshots to one
JSON-serializable payload, a freshly constructed server (same config)
restores it, and from then on the two are indistinguishable — identical
recommendations mid-commute, identical streaming mobility models, and
identical *future* behaviour as more fixes stream in.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.errors import PipelineError, ValidationError
from repro.geo import GeoPoint
from repro.pipeline.server import PphcrServer
from repro.roadnet import CityGeneratorConfig
from repro.spatialdb import GpsFix, TrackingStore
from repro.storage import DurabilityConfig
from repro.streaming.engine import StreamingMobilityEngine
from repro.users.profile import UserPreferenceProfile


@pytest.fixture(scope="module")
def warmed_world():
    """A compact world with history, feedback and live streaming state."""
    return build_world(
        WorldConfig(
            seed=2024,
            city=CityGeneratorConfig(
                grid_rows=8, grid_cols=8, block_size_m=600.0, poi_count=12, seed=5
            ),
            broadcaster=BroadcasterConfig(seed=6, clips_per_day=50),
            commuters=CommuterConfig(seed=7, commuters=6, history_days=6),
            classifier_documents_per_category=6,
            feedback_events_per_user=16,
        )
    )


def restored_copy(world):
    """A fresh server (same config) loaded from the world's snapshot."""
    payload = json.loads(json.dumps(world.server.snapshot()))
    fresh = PphcrServer(city=world.city, config=world.server.config)
    fresh.restore_snapshot(payload)
    return fresh


def model_fingerprint(engine: StreamingMobilityEngine, user_id: str):
    snapshot = engine.model_snapshot(user_id, include_open_tail=True)
    if snapshot is None:
        return None
    return {
        "trips": snapshot.trip_count,
        "epoch": snapshot.epoch,
        "dirty": snapshot.dirty_trips,
        "stay_points": [
            (sp.stay_point_id, sp.center.lat, sp.center.lon, sp.support, sp.total_dwell_s)
            for sp in snapshot.stay_points
        ],
        "clusters": [
            (
                cluster.cluster_id,
                cluster.origin_stay_point,
                cluster.destination_stay_point,
                len(cluster.trips),
                cluster.geometric_coherence(),
            )
            for cluster in snapshot.clusters
        ],
    }


class TestServerRoundTrip:
    def test_payload_is_json_serializable(self, warmed_world):
        json.dumps(warmed_world.server.snapshot())

    def test_identical_recommendations_mid_commute(self, warmed_world):
        world = warmed_world
        fresh = restored_copy(world)
        commuter = world.commuters[0]
        drive = world.commuter_generator.live_drive(commuter, day=world.today)
        observe_until = drive.departure_s + 300.0
        fixes = drive.fixes(until_s=observe_until)
        for server in (world.server, fresh):
            server.users.ingest_fixes(list(fixes), skip_stale=True)
        decisions = [
            server.recommend(commuter.user_id, now_s=observe_until, drive_elapsed_s=300.0)
            for server in (world.server, fresh)
        ]
        original, restored = decisions
        assert original.should_recommend == restored.should_recommend
        assert original.reason == restored.reason
        assert original.recommended_clip_ids == restored.recommended_clip_ids
        if original.plan is not None:
            assert restored.plan is not None
            assert [item.start_s for item in original.plan.items] == [
                item.start_s for item in restored.plan.items
            ]

    def test_streaming_models_identical(self, warmed_world):
        world = warmed_world
        fresh = restored_copy(world)
        compared = 0
        for commuter in world.commuters:
            original = model_fingerprint(world.server.streaming, commuter.user_id)
            restored = model_fingerprint(fresh.streaming, commuter.user_id)
            assert original == restored
            compared += original is not None
        assert compared > 0  # the world must actually have live models

    def test_future_ingest_evolves_identically(self, warmed_world):
        world = warmed_world
        fresh = restored_copy(world)
        commuter = world.commuters[1]
        drive = world.commuter_generator.live_drive(commuter, day=world.today)
        fixes = list(drive.fixes())
        emitted_a = world.server.streaming.observe_fixes(list(fixes))
        emitted_b = fresh.streaming.observe_fixes(list(fixes))
        assert [trip.points for trip in emitted_a] == [trip.points for trip in emitted_b]
        assert model_fingerprint(world.server.streaming, commuter.user_id) == model_fingerprint(
            fresh.streaming, commuter.user_id
        )

    def test_user_state_round_trips(self, warmed_world):
        world = warmed_world
        fresh = restored_copy(world)
        users = world.server.users
        for user_id in users.user_ids():
            assert fresh.users.profile(user_id) == users.profile(user_id)
            assert (
                fresh.users.preference_profile(user_id).as_vector()
                == users.preference_profile(user_id).as_vector()
            )
            assert [event.event_id for event in fresh.users.feedback.events_for_user(user_id)] == [
                event.event_id for event in users.feedback.events_for_user(user_id)
            ]
        assert fresh.content.clip_count() == world.server.content.clip_count()
        assert [c.clip_id for c in fresh.content.clips_newest_first()] == [
            c.clip_id for c in world.server.content.clips_newest_first()
        ]

    def test_tracking_counters_survive(self, warmed_world):
        world = warmed_world
        fresh = restored_copy(world)
        tracking = world.server.users.tracking
        for user_id in tracking.user_ids():
            assert fresh.users.tracking.fixes_added(user_id) == tracking.fixes_added(user_id)
            assert fresh.users.tracking.fix_count(user_id) == tracking.fix_count(user_id)

    def test_bad_payload_rejected(self, warmed_world):
        fresh = PphcrServer(config=warmed_world.server.config)
        with pytest.raises(PipelineError):
            fresh.restore_snapshot({"version": 99})

    def test_crash_mid_drive_restore_and_tail_replay_matches_uninterrupted(
        self, warmed_world
    ):
        """Kill the server mid-drive, restore the last snapshot, re-ingest
        the tail — the survivor must equal an uninterrupted run.

        The recovery story the snapshots exist for: a commuter is driving,
        the server dies partway through the drive, a fresh process restores
        the last durable snapshot, and the device re-uploads everything
        after the snapshot point (its upload buffer).  Recommendations,
        streaming models and tracking counters must be indistinguishable
        from a server that never crashed.
        """
        world = warmed_world
        # Two fresh servers off the same snapshot: the module-scoped world
        # stays unmutated for the other tests.
        reference = restored_copy(world)
        crashed = restored_copy(world)
        commuter = world.commuters[2]
        drive = world.commuter_generator.live_drive(commuter, day=world.today)
        fixes = list(drive.fixes())
        assert len(fixes) >= 10
        snapshot_point = int(len(fixes) * 0.4)  # last durable snapshot
        crash_point = int(len(fixes) * 0.6)  # the server dies here

        # The uninterrupted run sees the whole drive.
        reference.users.ingest_fixes(list(fixes), skip_stale=True)

        # The doomed server ingests up to the crash, having snapshotted at
        # the snapshot point on its way.
        crashed.users.ingest_fixes(list(fixes[:snapshot_point]), skip_stale=True)
        durable = json.loads(json.dumps(crashed.snapshot()))
        crashed.users.ingest_fixes(
            list(fixes[snapshot_point:crash_point]), skip_stale=True
        )
        del crashed  # the crash: everything after the snapshot is gone

        survivor = PphcrServer(city=world.city, config=world.server.config)
        survivor.restore_snapshot(durable)
        # The device re-uploads its buffer: everything after the snapshot.
        survivor.users.ingest_fixes(list(fixes[snapshot_point:]), skip_stale=True)

        user_id = commuter.user_id
        now_s = fixes[-1].timestamp_s
        ref_decision = survivor_decision = None
        for server in (reference, survivor):
            decision = server.recommend(user_id, now_s=now_s, drive_elapsed_s=600.0)
            if ref_decision is None:
                ref_decision = decision
            else:
                survivor_decision = decision
        assert survivor_decision.should_recommend == ref_decision.should_recommend
        assert survivor_decision.reason == ref_decision.reason
        assert (
            survivor_decision.recommended_clip_ids == ref_decision.recommended_clip_ids
        )
        assert model_fingerprint(survivor.streaming, user_id) == model_fingerprint(
            reference.streaming, user_id
        )
        assert survivor.model_freshness(user_id) == reference.model_freshness(user_id)
        assert survivor.users.tracking.fix_count(user_id) == reference.users.tracking.fix_count(
            user_id
        )
        assert [f.timestamp_s for f in survivor.users.tracking.fixes_for(user_id)] == [
            f.timestamp_s for f in reference.users.tracking.fixes_for(user_id)
        ]

    def test_crash_mid_drive_wal_tail_replay_needs_no_client_reupload(
        self, warmed_world, tmp_path
    ):
        """With the WAL on, recovery is snapshot + log tail: the window
        between the last snapshot and the crash comes back from the log,
        so the device only re-uploads what it sent *after* the crash.

        Same crash story as the test above, stronger contract: no client
        re-ingest of the logged window, yet the survivor still equals an
        uninterrupted twin — recommendations, streaming models, model
        freshness and future ingest included.
        """
        world = warmed_world
        durable_config = replace(
            world.server.config,
            durability=DurabilityConfig(enabled=True, directory=str(tmp_path / "wal")),
        )
        reference = restored_copy(world)
        doomed = PphcrServer(city=world.city, config=durable_config)
        doomed.restore_snapshot(json.loads(json.dumps(world.server.snapshot())))
        commuter = world.commuters[3]
        drive = world.commuter_generator.live_drive(commuter, day=world.today)
        fixes = list(drive.fixes())
        assert len(fixes) >= 10
        snapshot_point = int(len(fixes) * 0.4)  # last durable snapshot
        crash_point = int(len(fixes) * 0.6)  # the server dies here

        # The uninterrupted run sees the whole drive.
        reference.users.ingest_fixes(list(fixes), skip_stale=True)

        # The doomed server snapshots mid-drive, keeps ingesting (every
        # accepted fix lands in the WAL), then dies.
        doomed.users.ingest_fixes(list(fixes[:snapshot_point]), skip_stale=True)
        durable = json.loads(json.dumps(doomed.snapshot()))
        assert "wal_lsn" in durable
        doomed.users.ingest_fixes(
            list(fixes[snapshot_point:crash_point]), skip_stale=True
        )
        del doomed  # the crash: in-memory state gone, the log survives

        survivor = PphcrServer(city=world.city, config=durable_config)
        survivor.restore_snapshot(durable, replay_log=True)
        # The logged window is already back — NO re-upload of
        # fixes[snapshot_point:crash_point].  The device only resends
        # what it produced after the crash.
        assert survivor.users.tracking.fix_count(commuter.user_id) == (
            world.server.users.tracking.fix_count(commuter.user_id) + crash_point
        )
        survivor.users.ingest_fixes(list(fixes[crash_point:]), skip_stale=True)

        user_id = commuter.user_id
        now_s = fixes[-1].timestamp_s
        ref_decision = reference.recommend(user_id, now_s=now_s, drive_elapsed_s=600.0)
        survivor_decision = survivor.recommend(
            user_id, now_s=now_s, drive_elapsed_s=600.0
        )
        assert survivor_decision.should_recommend == ref_decision.should_recommend
        assert survivor_decision.reason == ref_decision.reason
        assert (
            survivor_decision.recommended_clip_ids == ref_decision.recommended_clip_ids
        )
        assert model_fingerprint(survivor.streaming, user_id) == model_fingerprint(
            reference.streaming, user_id
        )
        assert survivor.model_freshness(user_id) == reference.model_freshness(user_id)
        assert survivor.users.tracking.fix_count(user_id) == reference.users.tracking.fix_count(
            user_id
        )
        assert [f.timestamp_s for f in survivor.users.tracking.fixes_for(user_id)] == [
            f.timestamp_s for f in reference.users.tracking.fixes_for(user_id)
        ]


class TestStoreRoundTrips:
    def test_tracking_store_round_trip(self):
        store = TrackingStore()
        for i in range(30):
            store.add_fix(
                GpsFix("u1", float(i * 10), GeoPoint(45.0 + i * 1e-3, 7.6), speed_mps=5.0)
            )
        store.prune_before("u1", 100.0)
        payload = json.loads(json.dumps(store.snapshot()))

        restored = TrackingStore()
        restored.restore(payload)
        assert restored.fixes_added("u1") == 30
        assert restored.fix_count("u1") == store.fix_count("u1")
        assert [f.timestamp_s for f in restored.fixes_for("u1")] == [
            f.timestamp_s for f in store.fixes_for("u1")
        ]
        assert restored.users_within(GeoPoint(45.029, 7.6), 500.0) == ["u1"]
        # History cursors keep working across the restore.
        page = restored.fixes_page("u1", limit=5)
        assert [f.timestamp_s for f in page.items] == [100.0, 110.0, 120.0, 130.0, 140.0]
        assert page.next_token is not None

    def test_preference_profile_payload_is_exact(self):
        profile = UserPreferenceProfile("u1")
        profile.update({"art": 0.7, "culture": 0.3}, positive=True)
        profile.update({"music-jazz": 1.0}, positive=False)
        clone = UserPreferenceProfile.from_payload(
            json.loads(json.dumps(profile.to_payload()))
        )
        assert clone.as_vector() == profile.as_vector()
        assert clone.observation_count == profile.observation_count
        assert clone.affinity({"art": 1.0}) == profile.affinity({"art": 1.0})
        # And it keeps learning identically.
        profile.update({"art": 1.0}, positive=True)
        clone.update({"art": 1.0}, positive=True)
        assert clone.as_vector() == profile.as_vector()

    def test_store_payloads_reject_bad_versions(self):
        store = TrackingStore()
        with pytest.raises(ValidationError):
            store.restore({"version": 7})

    def test_content_restore_keeps_geo_grid_identity(self, warmed_world):
        """The context scorer captures the grid object at server
        construction; a restore must refill it in place, never swap it."""
        server = warmed_world.server
        grid = server.content.geo_index
        tagged = len(grid)
        server.restore_snapshot(json.loads(json.dumps(server.snapshot())))
        assert server.content.geo_index is grid
        assert len(grid) == tagged

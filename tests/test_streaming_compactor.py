"""Sharded/budgeted compaction: dirty-skip, shards, budgets, server wiring."""

import pytest

from repro.errors import PipelineError
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.pipeline import PphcrServer
from repro.spatialdb import GpsFix, TrackingStore
from repro.streaming import CompactionConfig, ShardedCompactor
from repro.users import UserProfile


def drive_fixes(user_id, start_s, *, origin=None, points=12, step_s=20.0):
    origin = origin or GeoPoint(45.0, 7.6)
    fixes = []
    position = origin
    for index in range(points):
        fixes.append(GpsFix(user_id, start_s + index * step_s, position, speed_mps=12.0))
        position = destination_point(position, 90.0, 250.0)
    return fixes


def make_store(user_ids, *, days=3):
    store = TrackingStore()
    for user_id in user_ids:
        for day in range(days):
            store.add_fixes(drive_fixes(user_id, day * 86400.0))
    return store


class TestShardedCompactor:
    def test_first_pass_visits_everyone_second_pass_skips_clean(self):
        store = make_store(["u1", "u2", "u3"])
        refreshed = []
        compactor = ShardedCompactor(
            store, lambda user_id: refreshed.append(user_id) or True,
            config=CompactionConfig(shards=1),
        )
        first = compactor.run_pass(keep_window_s=86400.0)
        assert first.visited_users == ["u1", "u2", "u3"]
        assert first.unchanged_users == 0
        assert first.fixes_removed > 0
        assert refreshed == ["u1", "u2", "u3"]

        second = compactor.run_pass(keep_window_s=86400.0)
        assert second.visited_users == []
        assert second.unchanged_users == 3
        assert second.removed == {}
        assert refreshed == ["u1", "u2", "u3"]  # no re-mining of clean users

    def test_new_fixes_re_dirty_only_that_user(self):
        store = make_store(["u1", "u2"])
        compactor = ShardedCompactor(store, lambda user_id: True, config=CompactionConfig(shards=1))
        compactor.run_pass(keep_window_s=86400.0)
        store.add_fixes(drive_fixes("u2", 10 * 86400.0))
        assert compactor.dirty_users() == ["u2"]
        report = compactor.run_pass(keep_window_s=86400.0)
        assert report.visited_users == ["u2"]
        assert report.unchanged_users == 1

    def test_shards_partition_the_population(self):
        users = [f"user-{index:03d}" for index in range(20)]
        store = make_store(users, days=1)
        compactor = ShardedCompactor(store, lambda user_id: True, config=CompactionConfig(shards=4))
        by_shard = [compactor.dirty_users(shard=shard) for shard in range(4)]
        flattened = [user for shard_users in by_shard for user in shard_users]
        assert sorted(flattened) == users  # disjoint cover
        # Visiting shard by shard compacts everyone exactly once.
        visited = []
        for shard in range(4):
            visited.extend(compactor.run_pass(keep_window_s=86400.0, shard=shard).visited_users)
        assert sorted(visited) == users
        assert compactor.dirty_users() == []

    def test_shard_assignment_is_stable(self):
        store = make_store(["alpha"])
        a = ShardedCompactor(store, lambda u: True, config=CompactionConfig(shards=8))
        b = ShardedCompactor(store, lambda u: True, config=CompactionConfig(shards=8))
        assert a.shard_of("alpha") == b.shard_of("alpha")

    def test_budget_defers_overflow_to_next_pass(self):
        users = [f"user-{index}" for index in range(5)]
        store = make_store(users, days=1)
        compactor = ShardedCompactor(store, lambda user_id: True, config=CompactionConfig(shards=1))
        first = compactor.run_pass(keep_window_s=86400.0, budget=2)
        assert len(first.visited_users) == 2
        assert first.deferred_users == 3
        second = compactor.run_pass(keep_window_s=86400.0, budget=2)
        assert len(second.visited_users) == 2
        assert second.deferred_users == 1
        third = compactor.run_pass(keep_window_s=86400.0)
        assert len(third.visited_users) == 1
        assert third.deferred_users == 0

    def test_refresh_failure_counts_as_skipped_and_spares_fixes(self):
        store = make_store(["u1"])
        compactor = ShardedCompactor(store, lambda user_id: False, config=CompactionConfig(shards=1))
        report = compactor.run_pass(keep_window_s=1.0)
        assert report.skipped_users == 1
        assert report.removed == {}
        # The user is considered visited: no re-visit until new data arrives.
        assert compactor.run_pass(keep_window_s=1.0).unchanged_users == 1

    def test_tightened_window_still_prunes_clean_users(self):
        store = make_store(["u1"], days=10)
        compactor = ShardedCompactor(store, lambda user_id: True, config=CompactionConfig(shards=1))
        first = compactor.run_pass(keep_window_s=14 * 86400.0)
        assert first.fixes_removed == 0
        # No new fixes, but the retention window shrank: data must still go.
        second = compactor.run_pass(keep_window_s=86400.0)
        assert second.unchanged_users == 1
        assert second.fixes_removed > 0
        latest = store.latest_fix("u1").timestamp_s
        assert store.earliest_fix("u1").timestamp_s >= latest - 86400.0

    def test_default_window_comes_from_config(self):
        store = make_store(["u1"], days=10)
        compactor = ShardedCompactor(
            store, lambda user_id: True,
            config=CompactionConfig(shards=1, keep_window_s=86400.0),
        )
        report = compactor.run_pass()  # no explicit window
        assert report.fixes_removed > 0
        latest = store.latest_fix("u1").timestamp_s
        assert store.earliest_fix("u1").timestamp_s >= latest - 86400.0

    def test_validation(self):
        store = make_store(["u1"])
        compactor = ShardedCompactor(store, lambda user_id: True, config=CompactionConfig(shards=2))
        with pytest.raises(PipelineError):
            compactor.run_pass(keep_window_s=0.0)
        with pytest.raises(PipelineError):
            compactor.run_pass(shard=2)
        with pytest.raises(PipelineError):
            compactor.run_pass(budget=0)
        with pytest.raises(PipelineError):
            CompactionConfig(shards=0)


class TestServerCompactionWiring:
    def _server_with_users(self, count=3):
        server = PphcrServer()
        for index in range(count):
            user_id = f"commuter-{index}"
            server.register_user(UserProfile(user_id=user_id, display_name=user_id))
            for day in range(4):
                server.users.ingest_fixes(
                    drive_fixes(user_id, day * 86400.0, points=14)
                )
        return server

    def test_unchanged_users_reported_on_bus(self):
        server = self._server_with_users()
        server.compact_tracking_data(keep_window_s=2 * 86400.0)
        first = server.bus.published_messages("tracking.compacted")[-1].body
        assert first["users"] == 3
        assert first["unchanged_users"] == 0
        # Nothing new arrived: the next pass skips everyone.
        server.compact_tracking_data(keep_window_s=2 * 86400.0)
        second = server.bus.published_messages("tracking.compacted")[-1].body
        assert second["users"] == 0
        assert second["unchanged_users"] == 3
        assert second["fixes_removed"] == 0

    def test_compaction_refreshes_models_from_the_stream(self):
        server = self._server_with_users(count=2)
        removed = server.compact_tracking_data(keep_window_s=86400.0)
        assert sum(removed.values()) > 0
        for index in range(2):
            model = server.mobility_model(f"commuter-{index}")
            assert model.stay_points
        rebuilt = server.bus.published_messages("tracking.model_rebuilt")
        assert rebuilt and all(m.body.get("source") == "streaming" for m in rebuilt)

    def test_sharded_passes_cover_all_users(self):
        server = self._server_with_users(count=4)
        shards = server.config.compaction.shards
        visited = {}
        for shard in range(shards):
            visited.update(server.compact_tracking_data(keep_window_s=86400.0, shard=shard))
        assert sorted(visited) == [f"commuter-{index}" for index in range(4)]

"""Tests for candidate filtering, content/context/compound scoring and baselines."""

import pytest

from repro.content import AudioClip, ContentKind, ContentRepository
from repro.errors import ValidationError
from repro.geo import GeoPoint, Polyline
from repro.geo.geodesy import destination_point
from repro.recommender import (
    CandidateFilter,
    CompoundScorer,
    ContentBasedScorer,
    ContentOnlyRecommender,
    ContextScorer,
    DrivingCondition,
    ListenerContext,
    PopularityRecommender,
    RandomRecommender,
)
from repro.recommender.content_based import CandidateFilterConfig
from repro.recommender.context import stationary_context
from repro.recommender.evaluation import (
    category_diversity,
    compare_rankings,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    ranking_relevance,
    recall_at_k,
)
from repro.trajectory.prediction import DestinationPrediction
from repro.trajectory.travel_time import TravelTimeEstimate
from repro.users import FeedbackKind, UserManager, UserProfile

TORINO = GeoPoint(45.0703, 7.6869)
NOW = 10 * 3600.0  # 10:00, morning


def make_clip(clip_id, category, *, duration=300.0, kind=ContentKind.PODCAST, published=NOW - 3600.0, geo=None):
    return AudioClip(
        clip_id=clip_id,
        title=clip_id,
        kind=kind,
        duration_s=duration,
        category_scores={category: 1.0},
        published_s=published,
        geo_location=geo,
        geo_radius_m=1500.0 if geo else None,
    )


@pytest.fixture()
def stack():
    """A content repository + user manager with one opinionated listener."""
    content = ContentRepository()
    clips = [
        make_clip("econ-1", "economics"),
        make_clip("econ-2", "economics"),
        make_clip("tech-1", "technology"),
        make_clip("comedy-1", "comedy"),
        make_clip("food-1", "food-and-wine"),
        make_clip("music-1", "music-pop", kind=ContentKind.MUSIC),
        make_clip("stale-1", "economics", published=NOW - 30 * 86400.0),
        make_clip("long-1", "economics", duration=5000.0),
        make_clip("local-1", "news-local", geo=destination_point(TORINO, 90.0, 3000.0), kind=ContentKind.NEWS),
    ]
    content.add_clips(clips)
    users = UserManager(content=content)
    users.register(UserProfile(user_id="u1", display_name="Greg"))
    users.preference_profile("u1").seeded(["economics", "technology"], ["comedy"])
    return content, users


class TestCandidateFilter:
    def test_excludes_heard_and_stale_and_too_long(self, stack):
        content, users = stack
        users.record_feedback("u1", "econ-1", FeedbackKind.COMPLETED, timestamp_s=NOW - 100.0)
        filtered = CandidateFilter(content, users).candidates("u1", now_s=NOW)
        ids = {clip.clip_id for clip in filtered}
        assert "econ-1" not in ids        # already heard
        assert "stale-1" not in ids       # too old
        assert "long-1" not in ids        # exceeds max duration
        assert "comedy-1" not in ids      # disliked category
        assert "econ-2" in ids and "tech-1" in ids

    def test_config_toggles(self, stack):
        content, users = stack
        users.record_feedback("u1", "econ-1", FeedbackKind.COMPLETED, timestamp_s=NOW - 100.0)
        config = CandidateFilterConfig(
            exclude_heard=False,
            exclude_disliked_categories=False,
            max_age_s=None,
            max_duration_s=10000.0,
        )
        filtered = CandidateFilter(content, users, config).candidates("u1", now_s=NOW)
        ids = {clip.clip_id for clip in filtered}
        assert {"econ-1", "stale-1", "long-1", "comedy-1"} <= ids

    def test_max_candidates_prefers_fresh(self, stack):
        content, users = stack
        config = CandidateFilterConfig(max_candidates=2, max_age_s=None, exclude_disliked_categories=False)
        filtered = CandidateFilter(content, users, config).candidates("u1", now_s=NOW)
        assert len(filtered) == 2
        assert all(clip.published_s >= NOW - 7 * 86400.0 for clip in filtered)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            CandidateFilterConfig(max_candidates=0)
        with pytest.raises(ValidationError):
            CandidateFilterConfig(min_duration_s=100.0, max_duration_s=50.0)


class TestContentBasedScorer:
    def test_preferred_category_scores_higher(self, stack):
        content, users = stack
        scorer = ContentBasedScorer(content, users)
        econ = scorer.score("u1", content.clip("econ-2"), now_s=NOW)
        comedy = scorer.score("u1", content.clip("comedy-1"), now_s=NOW)
        neutral = scorer.score("u1", content.clip("food-1"), now_s=NOW)
        assert econ > neutral > comedy

    def test_scores_in_unit_interval(self, stack):
        content, users = stack
        scorer = ContentBasedScorer(content, users)
        for clip in content.clips():
            assert 0.0 <= scorer.score("u1", clip, now_s=NOW) <= 1.0

    def test_recency_prefers_fresh_clip(self, stack):
        content, users = stack
        scorer = ContentBasedScorer(content, users, recency_halflife_s=3600.0)
        fresh = scorer.score("u1", content.clip("econ-2"), now_s=NOW)
        stale = scorer.score("u1", content.clip("stale-1"), now_s=NOW)
        assert fresh > stale

    def test_text_similarity_boosts_similar_transcripts(self):
        content = ContentRepository()
        liked = AudioClip(
            clip_id="liked",
            title="liked",
            kind=ContentKind.PODCAST,
            duration_s=300.0,
            category_scores={"economics": 1.0},
            transcript="mercati banca inflazione tassi economia",
            published_s=NOW - 1000.0,
        )
        similar = AudioClip(
            clip_id="similar",
            title="similar",
            kind=ContentKind.PODCAST,
            duration_s=300.0,
            category_scores={"food-and-wine": 1.0},
            transcript="banca mercati tassi finanza inflazione",
            published_s=NOW - 1000.0,
        )
        different = AudioClip(
            clip_id="different",
            title="different",
            kind=ContentKind.PODCAST,
            duration_s=300.0,
            category_scores={"food-and-wine": 1.0},
            transcript="ricetta vino chef cucina piatto",
            published_s=NOW - 1000.0,
        )
        content.add_clips([liked, similar, different])
        users = UserManager(content=content)
        users.register(UserProfile(user_id="u1", display_name="x"))
        users.record_feedback("u1", "liked", FeedbackKind.LIKE, timestamp_s=NOW - 500.0)
        scorer = ContentBasedScorer(content, users)
        scorer.fit_text_model()
        assert scorer.score("u1", similar, now_s=NOW) > scorer.score("u1", different, now_s=NOW)

    def test_weight_validation(self, stack):
        content, users = stack
        with pytest.raises(ValidationError):
            ContentBasedScorer(content, users, profile_weight=0.0, similarity_weight=0.0, recency_weight=0.0)


def driving_context(*, route=None, available=600.0, speed=12.0, complexity=0.2, destination=None):
    travel = TravelTimeEstimate(available, available, available * 1.1, None, available, 0.0)
    return ListenerContext(
        user_id="u1",
        now_s=NOW,
        position=TORINO,
        speed_mps=speed,
        is_driving=True,
        route=route,
        destination=destination,
        travel_time=travel,
        route_complexity=complexity,
    )


class TestListenerContext:
    def test_time_of_day(self):
        assert stationary_context("u1", NOW).time_of_day == "morning"

    def test_driving_condition_levels(self):
        assert stationary_context("u1", NOW).driving_condition == DrivingCondition.PARKED
        assert driving_context(speed=8.0, complexity=0.1).driving_condition == DrivingCondition.LIGHT
        assert driving_context(speed=20.0, complexity=0.2).driving_condition == DrivingCondition.MODERATE
        assert driving_context(speed=30.0, complexity=0.8).driving_condition == DrivingCondition.DEMANDING

    def test_validation(self):
        with pytest.raises(ValidationError):
            ListenerContext(user_id="u", now_s=0.0, speed_mps=-1.0)
        with pytest.raises(ValidationError):
            ListenerContext(user_id="u", now_s=0.0, route_complexity=2.0)

    def test_available_time_and_confidence(self):
        context = driving_context(available=300.0)
        assert context.available_time_s == 300.0
        assert context.destination_confidence == 0.0
        prediction = DestinationPrediction(0, TORINO, 0.8, 1000.0, 5)
        with_destination = driving_context(destination=prediction)
        assert with_destination.destination_confidence == 0.8


class TestContextScorer:
    def test_geo_relevant_clip_scores_higher_on_route(self, stack):
        content, _users = stack
        scorer = ContextScorer()
        route = Polyline([TORINO, destination_point(TORINO, 90.0, 6000.0)])
        context = driving_context(route=route)
        local = scorer.score(content.clip("local-1"), context)
        national = scorer.score(content.clip("econ-2"), context)
        assert local > national

    def test_duration_fit_penalizes_overlong_clip(self, stack):
        content, _users = stack
        scorer = ContextScorer()
        context = driving_context(available=200.0)
        short_clip = content.clip("econ-2")      # 300 s > 200 s available
        assert scorer.duration_fit_score(short_clip, context) < 0.5
        roomy = driving_context(available=900.0)
        assert scorer.duration_fit_score(short_clip, roomy) == 1.0

    def test_duration_fit_neutral_without_estimate(self, stack):
        content, _users = stack
        scorer = ContextScorer()
        assert scorer.duration_fit_score(content.clip("econ-2"), stationary_context("u1", NOW)) == 0.5

    def test_news_boosted_in_the_morning(self, stack):
        content, _users = stack
        scorer = ContextScorer()
        morning = driving_context()
        evening_context = ListenerContext(
            user_id="u1", now_s=20 * 3600.0, position=TORINO, is_driving=True,
            travel_time=morning.travel_time,
        )
        news = content.clip("local-1")
        assert scorer.time_of_day_score(news, morning) > scorer.time_of_day_score(news, evening_context)

    def test_demanding_driving_prefers_music(self, stack):
        content, _users = stack
        scorer = ContextScorer()
        demanding = driving_context(speed=30.0, complexity=0.9)
        music = content.clip("music-1")
        podcast = content.clip("econ-2")
        assert scorer.driving_fit_score(music, demanding) > scorer.driving_fit_score(podcast, demanding)

    def test_scores_bounded(self, stack):
        content, _users = stack
        scorer = ContextScorer()
        context = driving_context(route=Polyline([TORINO, destination_point(TORINO, 90.0, 6000.0)]))
        for clip in content.clips():
            assert 0.0 <= scorer.score(clip, context) <= 1.0


class TestCompoundScorer:
    def test_weight_validation(self, stack):
        content, users = stack
        scorer = ContentBasedScorer(content, users)
        with pytest.raises(ValidationError):
            CompoundScorer(scorer, context_weight=1.5)

    def test_zero_weight_equals_content_score(self, stack):
        content, users = stack
        content_scorer = ContentBasedScorer(content, users)
        compound = CompoundScorer(content_scorer, context_weight=0.0)
        context = driving_context()
        scored = compound.score(content.clip("econ-2"), context)
        assert scored.compound_score == pytest.approx(scored.content_score)

    def test_full_weight_equals_context_score(self, stack):
        content, users = stack
        content_scorer = ContentBasedScorer(content, users)
        compound = CompoundScorer(content_scorer, context_weight=1.0)
        context = driving_context()
        scored = compound.score(content.clip("econ-2"), context)
        assert scored.compound_score == pytest.approx(scored.context_score)

    def test_editorial_boost_applied_and_clamped(self, stack):
        content, users = stack
        compound = CompoundScorer(ContentBasedScorer(content, users))
        context = driving_context()
        boosted = compound.score(content.clip("food-1"), context, editorial_boosts={"food-1": 0.9})
        assert boosted.editorial_boost == 0.9
        assert boosted.final_score <= 1.0
        assert boosted.final_score > boosted.compound_score

    def test_rank_orders_and_limits(self, stack):
        content, users = stack
        compound = CompoundScorer(ContentBasedScorer(content, users))
        context = driving_context()
        ranked = compound.rank(content.clips(), context, top_k=3)
        assert len(ranked) == 3
        scores = [item.final_score for item in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_with_context_weight_copy(self, stack):
        content, users = stack
        compound = CompoundScorer(ContentBasedScorer(content, users), context_weight=0.4)
        changed = compound.with_context_weight(0.9)
        assert changed.context_weight == 0.9
        assert compound.context_weight == 0.4

    def test_relevance_density(self, stack):
        content, users = stack
        compound = CompoundScorer(ContentBasedScorer(content, users))
        context = driving_context()
        scored = compound.score(content.clip("econ-2"), context)
        assert scored.relevance_density == pytest.approx(scored.final_score / (300.0 / 60.0))


class TestBaselines:
    def test_random_is_deterministic_per_seed(self, stack):
        content, _users = stack
        context = stationary_context("u1", NOW)
        a = RandomRecommender(seed=3).rank(content.clips(), context)
        b = RandomRecommender(seed=3).rank(content.clips(), context)
        assert [x.clip_id for x in a] == [x.clip_id for x in b]

    def test_popularity_ranks_liked_content_first(self, stack):
        content, users = stack
        for _ in range(3):
            users.feedback.record("other", "food-1", FeedbackKind.LIKE, timestamp_s=NOW)
        ranking = PopularityRecommender(content, users).rank(content.clips(), stationary_context("u1", NOW))
        assert ranking[0].clip_id == "food-1"

    def test_content_only_ignores_context(self, stack):
        content, users = stack
        recommender = ContentOnlyRecommender(ContentBasedScorer(content, users))
        route = Polyline([TORINO, destination_point(TORINO, 90.0, 6000.0)])
        with_route = recommender.rank(content.clips(), driving_context(route=route))
        without_route = recommender.rank(content.clips(), stationary_context("u1", NOW))
        assert [x.clip_id for x in with_route] == [x.clip_id for x in without_route]

    def test_top_k_respected(self, stack):
        content, users = stack
        ranking = ContentOnlyRecommender(ContentBasedScorer(content, users)).rank(
            content.clips(), stationary_context("u1", NOW), top_k=2
        )
        assert len(ranking) == 2


class TestEvaluationMetrics:
    def test_precision_recall(self):
        ranked = ["a", "b", "c", "d"]
        relevant = {"a", "c", "x"}
        assert precision_at_k(ranked, relevant, 2) == 0.5
        assert recall_at_k(ranked, relevant, 4) == pytest.approx(2 / 3)
        with pytest.raises(ValidationError):
            precision_at_k(ranked, relevant, 0)

    def test_mrr(self):
        assert mean_reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert mean_reciprocal_rank(["x", "y"], {"a"}) == 0.0

    def test_ndcg(self):
        relevance = {"a": 3.0, "b": 1.0}
        assert ndcg_at_k(["a", "b"], relevance, 2) == pytest.approx(1.0)
        assert ndcg_at_k(["b", "a"], relevance, 2) < 1.0
        assert ndcg_at_k(["z"], {}, 3) == 0.0

    def test_ranking_relevance_and_diversity(self, stack):
        content, users = stack
        compound = CompoundScorer(ContentBasedScorer(content, users))
        ranked = compound.rank(content.clips(), stationary_context("u1", NOW))
        assert 0.0 <= ranking_relevance(ranked, 5) <= 1.0
        assert 0.0 < category_diversity(ranked, 5) <= 1.0
        assert ranking_relevance([], 5) == 0.0

    def test_compare_rankings(self, stack):
        content, users = stack
        context = stationary_context("u1", NOW)
        rankings = {
            "content": ContentOnlyRecommender(ContentBasedScorer(content, users)).rank(content.clips(), context),
            "random": RandomRecommender(seed=1).rank(content.clips(), context),
        }
        relevant = {"econ-1", "econ-2", "tech-1"}
        table = compare_rankings(rankings, relevant, k=3)
        assert set(table) == {"content", "random"}
        assert table["content"]["precision_at_k"] >= table["random"]["precision_at_k"]

"""Tests for repro.util.validation."""

import pytest

from repro.errors import ValidationError
from repro.util.validation import (
    require,
    require_finite,
    require_in_range,
    require_non_empty,
    require_positive,
    require_type,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")


class TestRequireType:
    def test_accepts_matching_type(self):
        assert require_type("x", str, "value") == "x"

    def test_accepts_tuple_of_types(self):
        assert require_type(3, (int, float), "value") == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="value"):
            require_type("x", int, "value")


class TestRequireFinite:
    def test_returns_float(self):
        assert require_finite(3, "x") == 3.0
        assert isinstance(require_finite(3, "x"), float)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValidationError):
            require_finite(bad, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            require_finite("abc", "x")


class TestRequirePositive:
    def test_strict_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_positive(0, "x")

    def test_non_strict_accepts_zero(self):
        assert require_positive(0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            require_positive(-1, "x", strict=False)


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert require_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(ValidationError):
            require_in_range(0.0, 0.0, 1.0, "x", inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            require_in_range(2.0, 0.0, 1.0, "x")


class TestRequireNonEmpty:
    def test_accepts_non_empty(self):
        assert require_non_empty([1], "x") == [1]
        assert require_non_empty("a", "x") == "a"

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            require_non_empty([], "x")

    def test_rejects_unsized(self):
        with pytest.raises(ValidationError):
            require_non_empty(5, "x")

"""Tests for geographic points and geodesy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import GeoPoint, destination_point, haversine_m, initial_bearing_deg, midpoint
from repro.geo.geodesy import centroid, path_length_m

TORINO = GeoPoint(45.0703, 7.6869)
MILANO = GeoPoint(45.4642, 9.1900)

# Latitude range restricted away from the poles where bearings degenerate.
lat_strategy = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
lon_strategy = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)
points = st.builds(GeoPoint, lat_strategy, lon_strategy)


class TestGeoPoint:
    def test_valid_construction(self):
        point = GeoPoint(45.0, 7.0)
        assert point.as_tuple() == (45.0, 7.0)

    @pytest.mark.parametrize("lat, lon", [(91, 0), (-91, 0), (0, 181), (0, -181)])
    def test_out_of_range(self, lat, lon):
        with pytest.raises(GeometryError):
            GeoPoint(lat, lon)

    def test_nan_rejected(self):
        with pytest.raises(GeometryError):
            GeoPoint(float("nan"), 0.0)

    def test_offset_wraps_longitude(self):
        point = GeoPoint(0.0, 179.5)
        moved = point.offset(0.0, 1.0)
        assert -180.0 <= moved.lon <= 180.0

    def test_hashable(self):
        assert len({GeoPoint(1, 1), GeoPoint(1, 1), GeoPoint(2, 2)}) == 2


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(TORINO, TORINO) == 0.0

    def test_torino_milano_roughly_126km(self):
        distance = haversine_m(TORINO, MILANO)
        assert 120_000 < distance < 135_000

    def test_symmetry(self):
        assert haversine_m(TORINO, MILANO) == pytest.approx(haversine_m(MILANO, TORINO))

    @given(points, points)
    @settings(max_examples=60, deadline=None)
    def test_non_negative_and_symmetric(self, a, b):
        d_ab = haversine_m(a, b)
        d_ba = haversine_m(b, a)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(d_ba, rel=1e-9, abs=1e-6)

    @given(points, points, points)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_m(a, c) <= haversine_m(a, b) + haversine_m(b, c) + 1e-6


class TestDestinationAndBearing:
    def test_destination_roundtrip_distance(self):
        target = destination_point(TORINO, 45.0, 5000.0)
        assert haversine_m(TORINO, target) == pytest.approx(5000.0, rel=1e-3)

    def test_destination_zero_distance(self):
        target = destination_point(TORINO, 123.0, 0.0)
        assert haversine_m(TORINO, target) < 1e-6

    def test_destination_negative_distance_raises(self):
        with pytest.raises(GeometryError):
            destination_point(TORINO, 0.0, -1.0)

    def test_bearing_north(self):
        north = destination_point(TORINO, 0.0, 1000.0)
        assert initial_bearing_deg(TORINO, north) == pytest.approx(0.0, abs=1.0)

    def test_bearing_east(self):
        east = destination_point(TORINO, 90.0, 1000.0)
        assert initial_bearing_deg(TORINO, east) == pytest.approx(90.0, abs=1.0)

    @given(points, st.floats(min_value=0, max_value=359.9), st.floats(min_value=10, max_value=50000))
    @settings(max_examples=60, deadline=None)
    def test_destination_distance_consistency(self, origin, bearing, distance):
        target = destination_point(origin, bearing, distance)
        assert haversine_m(origin, target) == pytest.approx(distance, rel=1e-2)


class TestMidpointCentroidPath:
    def test_midpoint_between(self):
        mid = midpoint(TORINO, MILANO)
        d1 = haversine_m(TORINO, mid)
        d2 = haversine_m(mid, MILANO)
        assert d1 == pytest.approx(d2, rel=1e-3)

    def test_centroid_of_single_point(self):
        assert centroid([TORINO]) == TORINO

    def test_centroid_requires_points(self):
        with pytest.raises(GeometryError):
            centroid([])

    def test_path_length_sums_segments(self):
        a = TORINO
        b = destination_point(a, 90.0, 1000.0)
        c = destination_point(b, 90.0, 1000.0)
        assert path_length_m([a, b, c]) == pytest.approx(2000.0, rel=1e-3)

    def test_path_length_single_point(self):
        assert path_length_m([TORINO]) == 0.0

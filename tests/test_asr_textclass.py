"""Tests for the simulated ASR, synthetic corpus and text classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import SimulatedTranscriber, SyntheticNewsCorpus, word_error_rate
from repro.errors import ClassificationError, NotFoundError, ValidationError
from repro.textclass import (
    NaiveBayesClassifier,
    TfIdfVectorizer,
    Tokenizer,
    Vocabulary,
    evaluate_classifier,
)
from repro.textclass.tfidf import cosine_similarity


class TestWordErrorRate:
    def test_identical_is_zero(self):
        assert word_error_rate("la rai trasmette radio", "la rai trasmette radio") == 0.0

    def test_single_substitution(self):
        assert word_error_rate("a b c d", "a x c d") == pytest.approx(0.25)

    def test_deletion_and_insertion(self):
        assert word_error_rate("a b c d", "a b c") == pytest.approx(0.25)
        assert word_error_rate("a b c d", "a b x c d") == pytest.approx(0.25)

    def test_empty_reference_rejected(self):
        with pytest.raises(ValidationError):
            word_error_rate("", "x")

    def test_totally_wrong(self):
        assert word_error_rate("a b", "x y") == 1.0


class TestSimulatedTranscriber:
    def test_zero_wer_is_identity(self):
        transcriber = SimulatedTranscriber(target_wer=0.0)
        result = transcriber.transcribe("uno due tre quattro cinque")
        assert result.text == result.reference
        assert result.error_count == 0
        assert result.confidence == 1.0

    def test_errors_injected_at_positive_wer(self):
        transcriber = SimulatedTranscriber(target_wer=0.3, seed=3)
        reference = " ".join(["parola"] * 200)
        result = transcriber.transcribe(reference, clip_id="c1")
        assert result.error_count > 0
        assert 0.0 <= result.confidence < 1.0

    def test_measured_wer_tracks_target(self):
        transcriber = SimulatedTranscriber(target_wer=0.25, seed=5)
        reference = " ".join(f"parola{i % 37}" for i in range(400))
        result = transcriber.transcribe(reference, clip_id="c2")
        measured = word_error_rate(reference, result.text)
        assert 0.1 < measured < 0.45

    def test_deterministic_per_clip_id(self):
        transcriber_a = SimulatedTranscriber(target_wer=0.2, seed=7)
        transcriber_b = SimulatedTranscriber(target_wer=0.2, seed=7)
        text = " ".join(["alfa beta gamma delta"] * 10)
        assert transcriber_a.transcribe(text, clip_id="x").text == transcriber_b.transcribe(text, clip_id="x").text

    def test_never_empty_output(self):
        transcriber = SimulatedTranscriber(target_wer=0.9, seed=11)
        result = transcriber.transcribe("solo", clip_id="tiny")
        assert result.text.strip()

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            SimulatedTranscriber(target_wer=1.0)
        with pytest.raises(ValidationError):
            SimulatedTranscriber().transcribe("")


class TestSyntheticCorpus:
    def test_thirty_categories(self):
        corpus = SyntheticNewsCorpus(seed=1)
        assert len(corpus.categories()) == 30

    def test_documents_have_requested_length(self):
        corpus = SyntheticNewsCorpus(seed=1)
        document = corpus.generate_document("economics", word_count=50)
        assert document.word_count == 50
        assert len(document.text.split()) == 50
        assert document.category == "economics"

    def test_unknown_category_rejected(self):
        with pytest.raises(ValidationError):
            SyntheticNewsCorpus(seed=1).generate_document("astrology")

    def test_dataset_balanced(self):
        corpus = SyntheticNewsCorpus(seed=2)
        dataset = corpus.generate_dataset(documents_per_category=3, word_count=40)
        assert len(dataset) == 90
        categories = {doc.category for doc in dataset}
        assert len(categories) == 30

    def test_train_test_split_disjoint_sizes(self):
        corpus = SyntheticNewsCorpus(seed=3)
        train, test = corpus.train_test_split(documents_per_category=8, test_fraction=0.25)
        assert len(test) == 30 * 2
        assert len(train) == 30 * 6

    def test_topic_words_distinct_across_categories(self):
        corpus = SyntheticNewsCorpus(seed=4)
        economics = set(corpus.model("economics").topic_words)
        art = set(corpus.model("art").topic_words)
        assert not economics & art

    def test_vocabulary_size_reasonable(self):
        corpus = SyntheticNewsCorpus(seed=5, topic_words_per_category=20)
        assert corpus.vocabulary_size() >= 30 * 20


class TestTokenizer:
    def test_lowercase_and_punctuation(self):
        tokens = Tokenizer(stopwords=[]).tokenize("Ciao, Mondo! 123 ok?")
        assert tokens == ["ciao", "mondo", "ok"]

    def test_stopwords_removed(self):
        tokens = Tokenizer().tokenize("il gatto di casa")
        assert "il" not in tokens and "di" not in tokens
        assert "gatto" in tokens

    def test_min_length(self):
        tokens = Tokenizer(stopwords=[], min_token_length=4).tokenize("a bb ccc dddd")
        assert tokens == ["dddd"]

    def test_none_rejected(self):
        with pytest.raises(ValidationError):
            Tokenizer().tokenize(None)  # type: ignore[arg-type]


class TestVocabulary:
    def test_build_and_lookup(self):
        vocabulary = Vocabulary.build([["a", "b", "a"], ["b", "c"]])
        assert len(vocabulary) == 3
        assert "a" in vocabulary
        assert vocabulary.count_of("a") == 2
        assert vocabulary.token_at(vocabulary.index_of("b")) == "b"

    def test_min_count_prunes(self):
        vocabulary = Vocabulary.build([["a", "a", "b"]], min_count=2)
        assert "a" in vocabulary and "b" not in vocabulary

    def test_max_size_keeps_most_frequent(self):
        vocabulary = Vocabulary.build([["a"] * 5 + ["b"] * 3 + ["c"]], max_size=2)
        assert set(vocabulary.tokens()) == {"a", "b"}

    def test_encode(self):
        vocabulary = Vocabulary.build([["a", "b"]])
        assert len(vocabulary.encode(["a", "zzz", "b"])) == 2
        with pytest.raises(NotFoundError):
            vocabulary.encode(["zzz"], skip_unknown=False)

    def test_unknown_lookups(self):
        vocabulary = Vocabulary.build([["a"]])
        with pytest.raises(NotFoundError):
            vocabulary.index_of("zzz")
        with pytest.raises(NotFoundError):
            vocabulary.token_at(99)


class TestNaiveBayes:
    def small_training_set(self):
        texts = [
            "borsa mercati economia inflazione banca",
            "economia banca tassi mercati finanza",
            "partita goal calcio campionato squadra",
            "calcio squadra allenatore goal torneo",
            "ricetta cucina vino piatto chef",
            "vino chef cucina degustazione piatto",
        ]
        labels = ["economics", "economics", "sport-football", "sport-football", "food-and-wine", "food-and-wine"]
        return texts, labels

    def test_untrained_raises(self):
        with pytest.raises(ClassificationError):
            NaiveBayesClassifier().predict("qualcosa")

    def test_fit_validation(self):
        with pytest.raises(ClassificationError):
            NaiveBayesClassifier().fit(["a"], ["x", "y"])
        with pytest.raises(ClassificationError):
            NaiveBayesClassifier().fit([], [])
        with pytest.raises(ClassificationError):
            NaiveBayesClassifier(alpha=0.0)

    def test_classifies_matching_vocabulary(self):
        texts, labels = self.small_training_set()
        classifier = NaiveBayesClassifier(tokenizer=Tokenizer(stopwords=[])).fit(texts, labels)
        assert classifier.predict("inflazione banca mercati") == "economics"
        assert classifier.predict("goal squadra calcio") == "sport-football"
        assert classifier.predict("chef piatto vino") == "food-and-wine"

    def test_predict_proba_normalized(self):
        texts, labels = self.small_training_set()
        classifier = NaiveBayesClassifier(tokenizer=Tokenizer(stopwords=[])).fit(texts, labels)
        probabilities = classifier.predict_proba("banca mercati")
        assert sum(probabilities.values()) == pytest.approx(1.0)
        assert max(probabilities, key=probabilities.get) == "economics"

    def test_top_k(self):
        texts, labels = self.small_training_set()
        classifier = NaiveBayesClassifier(tokenizer=Tokenizer(stopwords=[])).fit(texts, labels)
        top2 = classifier.top_k("banca mercati goal", k=2)
        assert len(top2) == 2
        assert top2[0][1] >= top2[1][1]
        with pytest.raises(ClassificationError):
            classifier.top_k("x", k=0)

    def test_informative_tokens(self):
        texts, labels = self.small_training_set()
        classifier = NaiveBayesClassifier(tokenizer=Tokenizer(stopwords=[])).fit(texts, labels)
        assert "calcio" in classifier.informative_tokens("sport-football", top=5)
        with pytest.raises(ClassificationError):
            classifier.informative_tokens("astrology")

    def test_high_accuracy_on_synthetic_corpus(self):
        corpus = SyntheticNewsCorpus(seed=9)
        train, test = corpus.train_test_split(documents_per_category=6, word_count=80)
        classifier = NaiveBayesClassifier().fit([d.text for d in train], [d.category for d in train])
        report = evaluate_classifier(classifier, [d.text for d in test], [d.category for d in test])
        assert report.accuracy > 0.9
        assert report.macro_f1 > 0.9
        assert report.total == len(test)

    def test_accuracy_degrades_gracefully_with_wer(self):
        corpus = SyntheticNewsCorpus(seed=10)
        train, test = corpus.train_test_split(documents_per_category=6, word_count=80)
        classifier = NaiveBayesClassifier().fit([d.text for d in train], [d.category for d in train])
        clean = evaluate_classifier(classifier, [d.text for d in test], [d.category for d in test])
        noisy_transcriber = SimulatedTranscriber(target_wer=0.6, seed=13)
        noisy_texts = [noisy_transcriber.transcribe(d.text, clip_id=str(i)).text for i, d in enumerate(test)]
        noisy = evaluate_classifier(classifier, noisy_texts, [d.category for d in test])
        assert noisy.accuracy <= clean.accuracy
        assert noisy.accuracy > 0.3  # still far better than the 1/30 chance level


class TestEvaluation:
    def test_validation(self):
        classifier = NaiveBayesClassifier().fit(["a b", "c d"], ["x", "y"])
        with pytest.raises(ClassificationError):
            evaluate_classifier(classifier, ["a"], ["x", "y"])
        with pytest.raises(ClassificationError):
            evaluate_classifier(classifier, [], [])

    def test_perfect_and_confused(self):
        classifier = NaiveBayesClassifier(tokenizer=Tokenizer(stopwords=[])).fit(
            ["alfa beta", "gamma delta"], ["one", "two"]
        )
        report = evaluate_classifier(classifier, ["alfa beta", "gamma delta"], ["one", "two"])
        assert report.accuracy == 1.0
        assert report.per_class["one"].f1 == 1.0
        assert report.most_confused_pairs() == []


class TestTfIdf:
    def test_requires_fit(self):
        with pytest.raises(ClassificationError):
            TfIdfVectorizer().transform("ciao")
        with pytest.raises(ClassificationError):
            TfIdfVectorizer().fit([])

    def test_vectors_are_normalized(self):
        vectorizer = TfIdfVectorizer(tokenizer=Tokenizer(stopwords=[]))
        vectors = vectorizer.fit_transform(["alfa beta gamma", "beta gamma delta", "alfa delta"])
        for vector in vectors:
            norm = sum(value * value for value in vector.values()) ** 0.5
            assert norm == pytest.approx(1.0)

    def test_similarity_ordering(self):
        vectorizer = TfIdfVectorizer(tokenizer=Tokenizer(stopwords=[]))
        vectorizer.fit(["borsa economia banca", "calcio goal squadra", "cucina vino chef"])
        economics = vectorizer.transform("economia banca tassi")
        football = vectorizer.transform("goal squadra partita")
        economics2 = vectorizer.transform("borsa banca economia")
        assert cosine_similarity(economics, economics2) > cosine_similarity(economics, football)

    def test_empty_vectors_similarity_zero(self):
        assert cosine_similarity({}, {0: 1.0}) == 0.0

    def test_unknown_words_give_empty_vector(self):
        vectorizer = TfIdfVectorizer(tokenizer=Tokenizer(stopwords=[]))
        vectorizer.fit(["alfa beta"])
        assert vectorizer.transform("zzz qqq") == {}

    @given(st.text(alphabet="abcdef ", min_size=0, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_transform_never_crashes(self, text):
        vectorizer = TfIdfVectorizer(tokenizer=Tokenizer(stopwords=[]))
        vectorizer.fit(["abc def fed cab", "fed abc"])
        vector = vectorizer.transform(text)
        assert all(value >= 0 for value in vector.values())


class _CountingTokenizer(Tokenizer):
    """Tokenizer that counts how often a document is actually tokenized."""

    def __init__(self):
        super().__init__(stopwords=[])
        self.calls = 0

    def tokenize(self, text):
        self.calls += 1
        return super().tokenize(text)


class TestTfIdfMemoization:
    def test_repeated_transforms_tokenize_once(self):
        tokenizer = _CountingTokenizer()
        vectorizer = TfIdfVectorizer(tokenizer=tokenizer)
        vectorizer.fit(["borsa economia banca", "calcio goal squadra"])
        tokenizer.calls = 0
        first = vectorizer.transform("borsa banca banca")
        repeats = vectorizer.transform_many(["borsa banca banca"] * 50)
        assert tokenizer.calls == 1
        assert all(vector == first for vector in repeats)
        info = vectorizer.cache_info()
        assert info["hits"] == 50
        assert info["misses"] == 1

    def test_refit_invalidates_cached_vectors(self):
        vectorizer = TfIdfVectorizer(tokenizer=Tokenizer(stopwords=[]))
        vectorizer.fit(["borsa economia banca", "calcio goal squadra"])
        before = vectorizer.transform("borsa banca")
        # A refit over a different corpus shifts the IDF weights: the cached
        # vector must not be served back.
        vectorizer.fit(["borsa calcio", "banca borsa calcio", "tennis vela"])
        after = vectorizer.transform("borsa banca")
        assert before != after
        assert vectorizer.cache_info()["hits"] == 0

    def test_mutating_a_result_does_not_poison_the_cache(self):
        vectorizer = TfIdfVectorizer(tokenizer=Tokenizer(stopwords=[]))
        vectorizer.fit(["borsa economia banca"])
        vector = vectorizer.transform("borsa banca")
        vector[0] = 999.0
        assert vectorizer.transform("borsa banca") != vector

    def test_cache_capacity_is_bounded(self):
        vectorizer = TfIdfVectorizer(tokenizer=Tokenizer(stopwords=[]), cache_size=3)
        vectorizer.fit(["alfa beta gamma delta epsilon zeta"])
        for word in ["alfa", "beta", "gamma", "delta", "epsilon"]:
            vectorizer.transform(word)
        assert vectorizer.cache_info()["size"] == 3

    def test_cache_can_be_disabled(self):
        tokenizer = _CountingTokenizer()
        vectorizer = TfIdfVectorizer(tokenizer=tokenizer, cache_size=0)
        vectorizer.fit(["alfa beta"])
        tokenizer.calls = 0
        vectorizer.transform("alfa")
        vectorizer.transform("alfa")
        assert tokenizer.calls == 2

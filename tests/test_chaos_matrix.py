"""The chaos scenario matrix: every scenario × every fault, on purpose.

For each traffic scenario (rush hour, flash crowd, broadcast→unicast
handover) a reference replay runs with no faults and its end state is
fingerprinted.  Then each fault family — kill+restore from snapshot,
shard drop/move, worker pool task failure, bus dead-letter — is injected
mid-replay into a twin world, and the survivor's state must be
indistinguishable from the reference: same recommendations, same model
freshness, same tracking counters, same merged user directory, sane ops
metrics.

Excluded from tier-1 via ``pytest.ini`` (``addopts = -m "not chaos"``);
CI runs it as its own job with ``pytest -m chaos``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.loadgen import (
    SCENARIO_NAMES,
    ChaosController,
    WorldReplay,
    build_scenario,
    check_invariants,
    state_fingerprint,
)
from repro.pipeline import Gateway
from repro.pipeline.server import PphcrServer, ServerConfig
from repro.roadnet import CityGeneratorConfig
from repro.storage import DurabilityConfig, ShardingConfig
from repro.storage.sharding import shard_of
from repro.util.ids import reset_ids

pytestmark = pytest.mark.chaos

SCRIPT_SEED = 99
FAULTS = (
    "kill_restore",
    "shard_move",
    "worker_fault",
    "bus_dead_letter",
    "torn_log",
    "replica_failover",
)
#: Faults that need a WAL under the server (the twin world gets a
#: durability-enabled config; the reference stays durability-off — the WAL
#: observes writes, it never changes them, so fingerprints are unaffected).
DURABLE_FAULTS = frozenset({"torn_log", "replica_failover"})
DEAD_LETTER_TOPIC = "recommendation.decision"


def chaos_world(durability: DurabilityConfig = None):
    """Twin-buildable sharded world (ids reset so builds are identical)."""
    reset_ids()
    server = ServerConfig(sharding=ShardingConfig(shards=4, parallel=True))
    if durability is not None:
        server = replace(server, durability=durability)
    return build_world(
        WorldConfig(
            seed=4242,
            city=CityGeneratorConfig(
                grid_rows=8, grid_cols=8, block_size_m=600.0, poi_count=16, seed=3
            ),
            broadcaster=BroadcasterConfig(seed=5, clips_per_day=40),
            commuters=CommuterConfig(seed=11, commuters=6, history_days=4),
            server=server,
            classifier_documents_per_category=4,
            feedback_events_per_user=10,
        )
    )


@pytest.fixture(scope="module")
def references():
    """Per-scenario uninjected reference runs: the ground truth state."""
    refs = {}
    for name in SCENARIO_NAMES:
        world = chaos_world()
        script = build_scenario(name, world, seed=SCRIPT_SEED)
        report = WorldReplay(Gateway(world.server)).run(script)
        assert all(status < 400 for status in report.status_counts), (
            f"reference run for {name} must be fault-free: {report.status_counts}"
        )
        user_ids = [commuter.user_id for commuter in world.commuters]
        probe_t = max(event.t_s for event in script)
        refs[name] = {
            "script_fingerprint": script.fingerprint(),
            "responses_digest": report.responses_digest(),
            "fingerprint": state_fingerprint(
                world.server, user_ids=user_ids, now_s=probe_t
            ),
            "user_ids": user_ids,
            "probe_t": probe_t,
        }
    return refs


def schedule_fault(fault, chaos, world, script):
    """Arm one fault family at the scenario's standard injection points."""
    n = len(script)
    snapshot_at, strike_at = n // 3, (2 * n) // 3
    if fault == "kill_restore":
        chaos.schedule_kill_restore(snapshot_at=snapshot_at, kill_at=strike_at)
    elif fault == "shard_move":
        # Pick the shard owning a commuter with guaranteed traffic so the
        # lost window is non-empty and the recovery path actually runs.
        shards = world.server.config.sharding.shards
        shard = shard_of(world.commuters[0].user_id, shards)
        chaos.schedule_shard_move(
            shard=shard, snapshot_at=snapshot_at, restore_at=strike_at
        )
    elif fault == "worker_fault":
        # Arm right before a pooled write so the fault demonstrably fires.
        arm_at = next(
            index
            for index, event in enumerate(script)
            if index >= n // 2 and event.path == "/v1/tracking/batch"
        )
        chaos.schedule_worker_fault(arm_at=arm_at)
    elif fault == "bus_dead_letter":
        chaos.schedule_bus_dead_letter(topic=DEAD_LETTER_TOPIC, arm_at=snapshot_at)
    elif fault == "torn_log":
        chaos.schedule_torn_log(
            snapshot_at=snapshot_at,
            tear_at=(snapshot_at + strike_at) // 2,
            kill_at=strike_at,
        )
    elif fault == "replica_failover":
        replica_config = replace(
            world.server.config, durability=DurabilityConfig()
        )
        chaos.schedule_replica_failover(
            promote_at=strike_at,
            build_server=lambda: PphcrServer(city=world.city, config=replica_config),
        )
    else:  # pragma: no cover - parametrization guards this
        raise AssertionError(f"unknown fault {fault}")


@pytest.mark.parametrize("fault", FAULTS)
@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
def test_scenario_survives_fault(references, scenario, fault, tmp_path):
    ref = references[scenario]
    durability = (
        DurabilityConfig(enabled=True, directory=str(tmp_path / "wal"))
        if fault in DURABLE_FAULTS
        else None
    )
    world = chaos_world(durability)
    script = build_scenario(scenario, world, seed=SCRIPT_SEED)
    # The twin world records byte-identical traffic before any fault lands.
    assert script.fingerprint() == ref["script_fingerprint"]

    gateway = Gateway(world.server)
    chaos = ChaosController(
        world.server,
        gateway,
        rebuild=lambda: PphcrServer(city=world.city, config=world.server.config),
    )
    schedule_fault(fault, chaos, world, script)
    WorldReplay(gateway, chaos=chaos).run(script)

    fired = [entry for entry in chaos.log if entry["fault"] == fault]
    assert fired, f"scheduled {fault} never fired in {scenario} (log: {chaos.log})"

    if fault == "kill_restore":
        assert fired[0]["replayed"] == fired[0]["lost_events"]
    elif fault == "shard_move":
        assert fired[0]["lost_events"] > 0, "shard move must lose live writes"
    elif fault == "worker_fault":
        assert fired[0]["failed_status"] == 500
        assert fired[0]["retry_status"] < 400
        assert fired[0]["shards"], "the fault hook must have hit real shards"
    elif fault == "bus_dead_letter":
        records = chaos.server.bus.dead_letter_records(DEAD_LETTER_TOPIC)
        assert any(record.reason == "handler_error" for record in records)
    elif fault == "torn_log":
        entry = fired[0]
        # The crash's half-written frame was salvaged, not fatal …
        assert entry["salvaged"], "the torn tail must have been detected"
        assert all(r["bytes_dropped"] > 0 for r in entry["salvaged"])
        # … the logged window was recovered from the WAL, not from clients …
        assert entry["wal_frames_replayed"] > 0
        # … and only the post-tear window was re-dispatched.
        assert entry["replayed"] == entry["lost_events"]
    elif fault == "replica_failover":
        entry = fired[0]
        assert entry["lag"] == 0, "promotion requires a fully caught-up replica"
        assert entry["applied"] > 0, "the replica must have applied shipped frames"
        assert entry["etag_probes"] > 0, "the cutover must have compared reads"
        assert entry["etag_matches"] == entry["etag_probes"]

    violations = check_invariants(
        chaos.server,
        ref["fingerprint"],
        user_ids=ref["user_ids"],
        now_s=ref["probe_t"],
    )
    assert violations == [], "\n".join(violations)


@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
def test_uninjected_twin_matches_reference_digest(references, scenario):
    """Control arm: without chaos, a twin replay is byte-identical."""
    ref = references[scenario]
    world = chaos_world()
    script = build_scenario(scenario, world, seed=SCRIPT_SEED)
    report = WorldReplay(Gateway(world.server)).run(script)
    assert report.responses_digest() == ref["responses_digest"]
    assert check_invariants(
        world.server,
        ref["fingerprint"],
        user_ids=ref["user_ids"],
        now_s=ref["probe_t"],
    ) == []

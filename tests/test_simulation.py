"""Tests for the listener behaviour model, metrics and the strategy runner."""

import pytest

from repro.content import AudioClip, ContentKind
from repro.errors import ValidationError
from repro.simulation import (
    ListenerBehavior,
    PersonalizationStrategy,
    SimulationRunner,
    StrategyComparison,
    summarize_sessions,
)
from repro.simulation.listener import ListeningOutcome
from repro.simulation.metrics import SessionMetrics, session_metrics_from_outcomes
from repro.users import UserPreferenceProfile
from repro.util.rng import DeterministicRng


def make_clip(clip_id, category, duration=300.0):
    return AudioClip(
        clip_id=clip_id,
        title=clip_id,
        kind=ContentKind.PODCAST,
        duration_s=duration,
        category_scores={category: 1.0},
    )


class TestListenerBehavior:
    def opinionated_profile(self):
        profile = UserPreferenceProfile("u1")
        for _ in range(6):
            profile.update({"economics": 1.0}, positive=True)
            profile.update({"comedy": 1.0}, positive=False)
        return profile

    def test_enjoyment_reflects_preferences(self):
        behavior = ListenerBehavior(seed=1)
        profile = self.opinionated_profile()
        liked = behavior.enjoyment(profile, {"economics": 1.0})
        disliked = behavior.enjoyment(profile, {"comedy": 1.0})
        assert liked > disliked
        assert 0.0 <= disliked <= liked <= 1.0

    def test_context_bonus_increases_enjoyment(self):
        behavior = ListenerBehavior(seed=1)
        profile = self.opinionated_profile()
        base = behavior.enjoyment(profile, {"economics": 1.0})
        boosted = behavior.enjoyment(profile, {"economics": 1.0}, context_bonus=0.8)
        assert boosted >= base

    def test_skip_probability_monotone_decreasing(self):
        behavior = ListenerBehavior(seed=1)
        probabilities = [behavior.skip_probability(e / 10.0) for e in range(11)]
        assert all(later <= earlier + 1e-9 for earlier, later in zip(probabilities, probabilities[1:]))
        assert probabilities[0] > probabilities[-1]

    def test_skip_probability_bounds(self):
        behavior = ListenerBehavior(seed=1)
        with pytest.raises(ValidationError):
            behavior.skip_probability(1.5)

    def test_listen_outcomes_reproducible(self):
        profile = self.opinionated_profile()
        clip = make_clip("c1", "economics")
        a = ListenerBehavior(seed=5).listen_to_clip(profile, clip, rng=DeterministicRng(3))
        b = ListenerBehavior(seed=5).listen_to_clip(profile, clip, rng=DeterministicRng(3))
        assert a == b

    def test_preferred_content_rarely_skipped(self):
        behavior = ListenerBehavior(seed=7)
        profile = self.opinionated_profile()
        liked_clip = make_clip("liked", "economics")
        disliked_clip = make_clip("disliked", "comedy")
        rng = DeterministicRng(11)
        liked_skips = sum(
            1
            for i in range(200)
            if behavior.listen_to_clip(profile, liked_clip, rng=rng.fork("l", i)).skipped
        )
        disliked_skips = sum(
            1
            for i in range(200)
            if not behavior.listen_to_clip(profile, disliked_clip, rng=rng.fork("d", i)).completed
        )
        assert liked_skips < disliked_skips

    def test_channel_change_only_for_live(self):
        behavior = ListenerBehavior(seed=9, channel_change_share=1.0)
        profile = self.opinionated_profile()
        disliked_clip = make_clip("disliked", "comedy")
        rng = DeterministicRng(13)
        outcomes_live = [
            behavior.listen_to_clip(profile, disliked_clip, is_live_programme=True, rng=rng.fork("a", i))
            for i in range(100)
        ]
        outcomes_clip = [
            behavior.listen_to_clip(profile, disliked_clip, is_live_programme=False, rng=rng.fork("b", i))
            for i in range(100)
        ]
        assert any(outcome.channel_changed for outcome in outcomes_live)
        assert not any(outcome.channel_changed for outcome in outcomes_clip)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            ListenerBehavior(skip_steepness=0.0)
        with pytest.raises(ValidationError):
            ListenerBehavior(base_skip_probability=1.5)


class TestMetrics:
    def outcomes(self):
        return [
            ListeningOutcome("a", 0.9, False, 300.0, 300.0),
            ListeningOutcome("b", 0.4, True, 60.0, 300.0),
            ListeningOutcome("c", 0.2, False, 30.0, 300.0, channel_changed=True),
        ]

    def test_session_metrics(self):
        metrics = session_metrics_from_outcomes("u1", "pphcr", self.outcomes())
        assert metrics.items_played == 3
        assert metrics.skips == 1
        assert metrics.channel_changes == 1
        assert metrics.skip_rate == pytest.approx(2 / 3)
        assert metrics.completion_rate == pytest.approx(1 / 3)
        assert 0.0 < metrics.listened_share < 1.0

    def test_empty_session(self):
        metrics = session_metrics_from_outcomes("u1", "linear", [])
        assert metrics.items_played == 0
        assert metrics.skip_rate == 0.0
        assert metrics.listened_share == 0.0

    def test_comparison_table(self):
        comparison = StrategyComparison()
        comparison.add(session_metrics_from_outcomes("u1", "pphcr", self.outcomes()))
        comparison.add(session_metrics_from_outcomes("u2", "pphcr", self.outcomes()))
        comparison.add(session_metrics_from_outcomes("u1", "linear_only", self.outcomes()))
        table = comparison.as_table()
        assert {row["strategy"] for row in table} == {"pphcr", "linear_only"}
        pphcr_row = [row for row in table if row["strategy"] == "pphcr"][0]
        assert pphcr_row["sessions"] == 2.0
        with pytest.raises(ValidationError):
            comparison.mean_skip_rate("unknown")

    def test_summarize_sessions(self):
        sessions = [
            SessionMetrics("u1", "a", 2, 1, 0, 100.0, 200.0, 0.5),
            SessionMetrics("u2", "b", 2, 0, 0, 200.0, 200.0, 0.9),
        ]
        comparison = summarize_sessions(sessions)
        assert comparison.strategies() == ["a", "b"]
        assert comparison.mean_skip_rate("a") == 0.5
        assert comparison.mean_enjoyment("b") == 0.9


class TestSimulationRunner:
    def test_single_session_produces_metrics(self, small_world):
        runner = SimulationRunner(small_world)
        commuter = small_world.commuters[0]
        drive = small_world.commuter_generator.live_drive(commuter, day=small_world.today)
        metrics = runner.run_session(commuter, drive, PersonalizationStrategy.CONTENT_ONLY)
        assert metrics.strategy == "content_only"
        assert metrics.items_played >= 1
        assert 0.0 <= metrics.skip_rate <= 1.0

    def test_linear_only_plays_schedule(self, small_world):
        runner = SimulationRunner(small_world)
        commuter = small_world.commuters[1]
        drive = small_world.commuter_generator.live_drive(commuter, day=small_world.today)
        metrics = runner.run_session(commuter, drive, PersonalizationStrategy.LINEAR_ONLY)
        assert metrics.items_played >= 1

    def test_compare_strategies_covers_all(self, small_world):
        runner = SimulationRunner(small_world, seed=3)
        strategies = [
            PersonalizationStrategy.LINEAR_ONLY,
            PersonalizationStrategy.RANDOM,
            PersonalizationStrategy.CONTENT_ONLY,
            PersonalizationStrategy.PPHCR,
        ]
        comparison = runner.compare_strategies(strategies, max_users=4)
        assert set(comparison.strategies()) == {s.value for s in strategies}
        for strategy in strategies:
            assert len(comparison.sessions[strategy.value]) == 4

    def test_requires_at_least_one_strategy(self, small_world):
        with pytest.raises(ValidationError):
            SimulationRunner(small_world).compare_strategies([])

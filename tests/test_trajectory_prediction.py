"""Tests for route clustering, destination prediction and travel-time (ΔT)."""

import pytest

from repro.datasets import CommuterConfig, CommuterGenerator
from repro.errors import PredictionError
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.roadnet import RoutePlanner
from repro.trajectory import (
    DestinationPredictor,
    Trajectory,
    TrajectoryPoint,
    TravelTimePredictor,
    cluster_trips,
    split_into_trips,
)
from repro.trajectory.clustering import find_cluster
from repro.trajectory.staypoints import stay_points_from_trips
from repro.trajectory.travel_time import TravelTimeEstimate

HOME = GeoPoint(45.05, 7.65)
WORK = GeoPoint(45.09, 7.70)


def commute_trip(user_id, start_s, origin, destination, *, points=40, jitter_bearing=0.0):
    """A synthetic direct drive between two anchors."""
    samples = []
    total = origin.distance_m(destination)
    from repro.geo.geodesy import initial_bearing_deg

    bearing = initial_bearing_deg(origin, destination) + jitter_bearing
    speed = total / ((points - 1) * 10.0)
    for i in range(points):
        position = destination_point(origin, bearing, min(total, i * speed * 10.0))
        samples.append(TrajectoryPoint(start_s + i * 10.0, position, speed))
    return Trajectory(user_id, samples)


@pytest.fixture()
def commute_history():
    """Five morning home→work trips and five evening work→home trips."""
    trips = []
    for day in range(5):
        base = day * 86400.0
        trips.append(commute_trip("u1", base + 7.5 * 3600.0, HOME, WORK))
        trips.append(commute_trip("u1", base + 18.0 * 3600.0, WORK, HOME))
    stay_points = stay_points_from_trips(trips, eps_m=300.0, min_samples=2)
    clusters = cluster_trips(trips, stay_points)
    return trips, stay_points, clusters


class TestClustering:
    def test_two_recurring_routes_found(self, commute_history):
        _trips, stay_points, clusters = commute_history
        assert len(stay_points) == 2
        assert len(clusters) == 2
        assert all(cluster.support == 5 for cluster in clusters)

    def test_cluster_statistics(self, commute_history):
        _trips, _sps, clusters = commute_history
        cluster = clusters[0]
        assert cluster.median_duration_s > 0
        assert cluster.median_length_m > 0
        assert cluster.duration_stddev_s >= 0
        assert cluster.geometric_coherence() > 0.8
        assert cluster.representative in cluster.trips

    def test_typical_departure_time(self, commute_history):
        _trips, stay_points, clusters = commute_history
        morning = [c for c in clusters if c.time_of_day_histogram.get("morning", 0) > 0][0]
        assert morning.typical_departure_s == pytest.approx(7.5 * 3600.0, abs=600.0)

    def test_find_cluster(self, commute_history):
        _trips, _sps, clusters = commute_history
        cluster = clusters[0]
        found = find_cluster(clusters, cluster.origin_stay_point, cluster.destination_stay_point)
        assert found is cluster
        assert find_cluster(clusters, 98, 99) is None

    def test_same_endpoint_trips_ignored(self):
        loop = commute_trip("u1", 0.0, HOME, destination_point(HOME, 10.0, 50.0), points=10)
        stay_points = stay_points_from_trips([loop] * 3, eps_m=300.0, min_samples=2)
        clusters = cluster_trips([loop] * 3, stay_points)
        assert clusters == []


class TestDestinationPrediction:
    def test_morning_partial_drive_predicts_work(self, commute_history):
        _trips, stay_points, clusters = commute_history
        predictor = DestinationPredictor(stay_points, clusters)
        partial = commute_trip("u1", 10 * 86400.0 + 7.6 * 3600.0, HOME, WORK, points=12)
        prediction = predictor.most_likely(partial)
        assert prediction.center.distance_m(WORK) < 500.0
        assert prediction.probability > 0.5

    def test_evening_partial_drive_predicts_home(self, commute_history):
        _trips, stay_points, clusters = commute_history
        predictor = DestinationPredictor(stay_points, clusters)
        partial = commute_trip("u1", 10 * 86400.0 + 18.1 * 3600.0, WORK, HOME, points=12)
        prediction = predictor.most_likely(partial)
        assert prediction.center.distance_m(HOME) < 500.0

    def test_probabilities_normalized(self, commute_history):
        _trips, stay_points, clusters = commute_history
        predictor = DestinationPredictor(stay_points, clusters)
        partial = commute_trip("u1", 10 * 86400.0 + 7.6 * 3600.0, HOME, WORK, points=12)
        predictions = predictor.predict(partial)
        assert sum(p.probability for p in predictions) == pytest.approx(1.0, abs=1e-6)
        assert predictions == sorted(predictions, key=lambda p: p.probability, reverse=True)

    def test_requires_stay_points(self):
        with pytest.raises(PredictionError):
            DestinationPredictor([], [])

    def test_requires_two_partial_points(self, commute_history):
        _trips, stay_points, clusters = commute_history
        predictor = DestinationPredictor(stay_points, clusters)
        with pytest.raises(PredictionError):
            predictor.predict(Trajectory("u1", [TrajectoryPoint(0.0, HOME)]))

    def test_fallback_without_matching_cluster(self, commute_history):
        """A drive starting away from known stay points still gets a prediction."""
        _trips, stay_points, clusters = commute_history
        predictor = DestinationPredictor(stay_points, clusters)
        elsewhere = destination_point(HOME, 200.0, 5000.0)
        partial = commute_trip("u1", 7.6 * 3600.0, elsewhere, WORK, points=10)
        predictions = predictor.predict(partial)
        assert predictions
        assert sum(p.probability for p in predictions) == pytest.approx(1.0, abs=1e-6)


class TestTravelTime:
    def test_history_only_estimate(self, commute_history):
        _trips, _sps, clusters = commute_history
        predictor = TravelTimePredictor(None)
        cluster = clusters[0]
        estimate = predictor.estimate(
            HOME, WORK, now_s=7.6 * 3600.0, cluster=cluster, fraction_completed=0.25
        )
        assert estimate.history_component_s is not None
        assert estimate.network_component_s is None
        assert estimate.expected_s == pytest.approx(cluster.median_duration_s * 0.75, rel=1e-6)
        assert estimate.low_s <= estimate.expected_s <= estimate.high_s
        assert estimate.usable_s == estimate.low_s

    def test_network_only_estimate(self, small_city):
        planner = RoutePlanner(small_city.network)
        predictor = TravelTimePredictor(planner)
        nodes = small_city.network.node_ids()
        origin = small_city.network.node(nodes[0]).position
        destination = small_city.network.node(nodes[-1]).position
        estimate = predictor.estimate(origin, destination, now_s=8 * 3600.0)
        assert estimate.history_component_s is None
        assert estimate.network_component_s is not None
        assert estimate.history_weight == 0.0
        # Morning congestion factor applied (>= free-flow time).
        free_flow = planner.travel_time_s(origin, destination)
        assert estimate.network_component_s >= free_flow

    def test_blended_estimate_weights_history_with_support(self, commute_history, small_city):
        _trips, _sps, clusters = commute_history
        planner = RoutePlanner(small_city.network)
        predictor = TravelTimePredictor(planner)
        estimate = predictor.estimate(
            HOME, WORK, now_s=8 * 3600.0, cluster=clusters[0], fraction_completed=0.0
        )
        assert 0.0 < estimate.history_weight <= 0.85
        assert estimate.history_component_s is not None

    def test_no_evidence_raises(self):
        predictor = TravelTimePredictor(None)
        with pytest.raises(PredictionError):
            predictor.estimate(HOME, WORK, now_s=0.0)

    def test_relative_error(self):
        predictor = TravelTimePredictor(None)
        estimate = TravelTimeEstimate(100.0, 90.0, 110.0, 100.0, None, 1.0)
        assert predictor.relative_error(estimate, 80.0) == pytest.approx(0.25)
        with pytest.raises(PredictionError):
            predictor.relative_error(estimate, 0.0)


class TestEndToEndMobilityPipeline:
    def test_commuter_history_learns_routes(self, small_city):
        """The full chain: synthetic commuter -> trips -> stay points -> prediction."""
        generator = CommuterGenerator(
            small_city, CommuterConfig(seed=11, commuters=2, history_days=6)
        )
        commuter = generator.generate_commuters()[0]
        fixes = generator.historical_fixes(commuter)
        trajectory = Trajectory.from_fixes(commuter.user_id, fixes)
        trips = split_into_trips(trajectory)
        assert len(trips) >= 6
        stay_points = stay_points_from_trips(trips, eps_m=300.0)
        assert len(stay_points) >= 2
        clusters = cluster_trips(trips, stay_points)
        assert clusters
        predictor = DestinationPredictor(stay_points, clusters)
        live = generator.live_drive(commuter, day=generator._config.history_days)  # noqa: SLF001
        partial_fixes = live.fixes(until_s=live.departure_s + 180.0)
        partial = Trajectory.from_fixes(commuter.user_id, partial_fixes)
        prediction = predictor.most_likely(partial)
        assert prediction.probability > 0.3

"""Tests for bounding boxes and the local projection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import BoundingBox, GeoPoint
from repro.geo.geodesy import destination_point, haversine_m
from repro.geo.projection import LocalProjection, point_segment_distance_m

CENTER = GeoPoint(45.07, 7.68)


class TestBoundingBox:
    def test_invalid_corners(self):
        with pytest.raises(GeometryError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_from_points(self):
        box = BoundingBox.from_points([GeoPoint(1, 1), GeoPoint(2, 3), GeoPoint(0, 2)])
        assert (box.min_lat, box.min_lon, box.max_lat, box.max_lon) == (0, 1, 2, 3)

    def test_from_points_empty(self):
        with pytest.raises(GeometryError):
            BoundingBox.from_points([])

    def test_contains_border(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains(GeoPoint(0, 0))
        assert box.contains(GeoPoint(1, 1))
        assert not box.contains(GeoPoint(1.01, 0.5))

    def test_around_contains_center_and_has_expected_size(self):
        box = BoundingBox.around(CENTER, 1000.0)
        assert box.contains(CENTER)
        north = destination_point(CENTER, 0.0, 999.0)
        assert box.contains(north)
        far = destination_point(CENTER, 0.0, 2500.0)
        assert not box.contains(far)

    def test_around_negative_raises(self):
        with pytest.raises(GeometryError):
            BoundingBox.around(CENTER, -1.0)

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 1, 3, 3)
        c = BoundingBox(5, 5, 6, 6)
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)

    def test_union(self):
        union = BoundingBox(0, 0, 1, 1).union(BoundingBox(2, 2, 3, 3))
        assert union.contains(GeoPoint(1.5, 1.5))

    def test_expanded(self):
        grown = BoundingBox(0, 0, 1, 1).expanded(0.5)
        assert grown.contains(GeoPoint(-0.4, -0.4))
        with pytest.raises(GeometryError):
            BoundingBox(0, 0, 1, 1).expanded(-0.1)

    def test_center(self):
        assert BoundingBox(0, 0, 2, 4).center == GeoPoint(1, 2)


class TestLocalProjection:
    def test_reference_maps_to_origin(self):
        projection = LocalProjection(CENTER)
        assert projection.to_xy(CENTER) == (0.0, 0.0)

    def test_roundtrip(self):
        projection = LocalProjection(CENTER)
        point = destination_point(CENTER, 37.0, 4321.0)
        x, y = projection.to_xy(point)
        back = projection.to_point(x, y)
        assert haversine_m(point, back) < 1.0

    def test_distance_preserved_locally(self):
        projection = LocalProjection(CENTER)
        point = destination_point(CENTER, 90.0, 2000.0)
        x, y = projection.to_xy(point)
        assert (x**2 + y**2) ** 0.5 == pytest.approx(2000.0, rel=0.01)

    def test_pole_reference_rejected(self):
        with pytest.raises(GeometryError):
            LocalProjection(GeoPoint(90.0, 0.0))

    @given(
        st.floats(min_value=0, max_value=359.9),
        st.floats(min_value=1.0, max_value=20000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, bearing, distance):
        projection = LocalProjection(CENTER)
        point = destination_point(CENTER, bearing, distance)
        back = projection.to_point(*projection.to_xy(point))
        assert haversine_m(point, back) < max(1.0, distance * 0.001)


class TestPointSegmentDistance:
    def test_point_on_segment(self):
        assert point_segment_distance_m((5, 0), (0, 0), (10, 0)) == 0.0

    def test_perpendicular_distance(self):
        assert point_segment_distance_m((5, 3), (0, 0), (10, 0)) == pytest.approx(3.0)

    def test_beyond_endpoint_uses_endpoint(self):
        assert point_segment_distance_m((15, 0), (0, 0), (10, 0)) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        assert point_segment_distance_m((3, 4), (0, 0), (0, 0)) == pytest.approx(5.0)

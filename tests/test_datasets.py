"""Tests for the synthetic broadcaster, mobility generator and assembled world."""

import pytest

from repro.content import ContentKind, category_names
from repro.datasets import (
    BroadcasterConfig,
    CommuterConfig,
    CommuterGenerator,
    SyntheticBroadcaster,
    WorldConfig,
    build_world,
)
from repro.errors import ValidationError
from repro.roadnet import CityGeneratorConfig, generate_city
from repro.util.timeutils import SECONDS_PER_DAY


class TestBroadcaster:
    @pytest.fixture(scope="class")
    def catalogue(self):
        return SyntheticBroadcaster(BroadcasterConfig(seed=31, clips_per_day=60)).generate()

    def test_ten_services(self, catalogue):
        assert len(catalogue.services) == 10
        assert len({service.service_id for service in catalogue.services}) == 10
        assert all(service.bitrate_kbps == 96 for service in catalogue.services)

    def test_schedules_cover_the_day_without_overlap(self, catalogue):
        for service in catalogue.services:
            windows = [
                catalogue.schedule_windows[p.programme_id]
                for p in catalogue.programmes
                if p.service_id == service.service_id
            ]
            assert windows
            windows.sort(key=lambda w: w.start_s)
            for earlier, later in zip(windows, windows[1:]):
                assert later.start_s >= earlier.end_s

    def test_clip_volume_and_durations(self, catalogue):
        config = BroadcasterConfig()
        assert len(catalogue.clips) == 60
        for clip in catalogue.clips:
            assert config.clip_min_duration_s <= clip.duration_s <= config.clip_max_duration_s

    def test_speech_clips_have_texts_and_true_categories(self, catalogue):
        speech_ids = set(catalogue.speech_texts)
        assert speech_ids
        assert speech_ids <= {clip.clip_id for clip in catalogue.clips}
        assert set(catalogue.true_categories) == {clip.clip_id for clip in catalogue.clips}
        assert set(catalogue.true_categories.values()) <= set(category_names())

    def test_some_clips_geo_tagged(self):
        city = generate_city(CityGeneratorConfig(grid_rows=6, grid_cols=6, poi_count=8, seed=2))
        catalogue = SyntheticBroadcaster(
            BroadcasterConfig(seed=32, clips_per_day=80, geo_tagged_fraction=0.4), city=city
        ).generate()
        geo_tagged = [clip for clip in catalogue.clips if clip.is_geo_tagged]
        assert 0.15 * len(catalogue.clips) < len(geo_tagged) < 0.7 * len(catalogue.clips)

    def test_music_clips_marked_as_music(self, catalogue):
        music = [clip for clip in catalogue.clips if catalogue.true_categories[clip.clip_id].startswith("music")]
        assert music
        assert all(clip.kind == ContentKind.MUSIC for clip in music)

    def test_service_information_has_broadcast_and_ip_bearers(self, catalogue):
        for info in catalogue.service_information:
            kinds = {bearer.kind for bearer in info.bearers}
            assert "dab" in kinds and "ip" in kinds
            assert info.preferred_bearer().is_broadcast

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            BroadcasterConfig(clips_per_day=0)
        with pytest.raises(ValidationError):
            BroadcasterConfig(geo_tagged_fraction=1.5)
        with pytest.raises(ValidationError):
            BroadcasterConfig(clip_min_duration_s=500.0, clip_max_duration_s=100.0)

    def test_determinism(self):
        a = SyntheticBroadcaster(BroadcasterConfig(seed=33, clips_per_day=20)).generate()
        b = SyntheticBroadcaster(BroadcasterConfig(seed=33, clips_per_day=20)).generate()
        assert [c.title for c in a.clips] == [c.title for c in b.clips]
        assert [c.duration_s for c in a.clips] == [c.duration_s for c in b.clips]


class TestMobility:
    @pytest.fixture(scope="class")
    def generator(self, small_city):
        return CommuterGenerator(small_city, CommuterConfig(seed=41, commuters=5, history_days=4))

    def test_commuters_have_separated_anchors(self, generator):
        commuters = generator.generate_commuters()
        assert len(commuters) == 5
        for commuter in commuters:
            assert commuter.home.distance_m(commuter.work) > 1000.0
            assert len(commuter.preferred_categories) == 4
            assert len(commuter.disliked_categories) == 2
            assert not set(commuter.preferred_categories) & set(commuter.disliked_categories)

    def test_commute_route_connects_anchors(self, generator):
        commuter = generator.generate_commuters()[0]
        route = generator.commute_route(commuter)
        assert route.geometry.start.distance_m(commuter.home) < 600.0
        assert route.geometry.end.distance_m(commuter.work) < 600.0
        reverse = generator.commute_route(commuter, reverse=True)
        assert reverse.geometry.start.distance_m(commuter.work) < 600.0

    def test_historical_fixes_time_ordered_and_daily(self, generator):
        commuter = generator.generate_commuters()[0]
        fixes = generator.historical_fixes(commuter)
        assert len(fixes) > 50
        timestamps = [fix.timestamp_s for fix in fixes]
        assert timestamps == sorted(timestamps)
        days = {int(t // SECONDS_PER_DAY) for t in timestamps}
        assert len(days) >= 3

    def test_live_drive_fixes_follow_route(self, generator):
        commuter = generator.generate_commuters()[1]
        drive = generator.live_drive(commuter, day=10)
        fixes = drive.fixes()
        assert fixes[0].timestamp_s == pytest.approx(drive.departure_s)
        assert fixes[-1].timestamp_s <= drive.arrival_s
        # All fixes lie near the planned route geometry.
        for fix in fixes[:: max(1, len(fixes) // 10)]:
            assert drive.route.geometry.distance_to_point_m(fix.position) < 400.0

    def test_live_drive_partial_observation(self, generator):
        commuter = generator.generate_commuters()[2]
        drive = generator.live_drive(commuter, day=10)
        partial = drive.fixes(until_s=drive.departure_s + 120.0)
        assert partial
        assert all(fix.timestamp_s <= drive.departure_s + 120.0 for fix in partial)
        assert len(partial) < len(drive.fixes())

    def test_drive_duration_consistent_with_speed(self, generator):
        commuter = generator.generate_commuters()[3]
        drive = generator.live_drive(commuter, day=10)
        assert drive.expected_duration_s == pytest.approx(
            drive.route.length_m / drive.mean_speed_mps
        )
        assert drive.position_at(drive.arrival_s + 100.0) == drive.route.geometry.end

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            CommuterConfig(commuters=0)
        with pytest.raises(ValidationError):
            CommuterConfig(fix_interval_s=0.0)
        with pytest.raises(ValidationError):
            CommuterConfig(skip_day_probability=1.0)
        with pytest.raises(ValidationError):
            CommuterConfig(min_home_work_distance_m=-5.0)


class TestWorld:
    def test_world_is_fully_wired(self, small_world):
        server = small_world.server
        assert server.content.clip_count() == small_world.config.broadcaster.clips_per_day
        assert len(server.content.services()) == 10
        assert server.users.user_count() == len(small_world.commuters)
        # Feedback history and tracking data were loaded.
        assert len(server.users.feedback) > 0
        assert len(server.users.tracking.user_ids()) == len(small_world.commuters)
        # Speech clips got classifier-derived categories and transcripts.
        speech_clips = [clip for clip in server.content.clips() if clip.transcript]
        assert speech_clips
        assert all(clip.category_scores for clip in speech_clips)

    def test_classifier_reasonably_accurate_on_catalogue(self, small_world):
        """Classified speech clips should usually match their generating category."""
        catalogue = small_world.catalogue
        server = small_world.server
        speech_ids = list(catalogue.speech_texts)
        correct = sum(
            1
            for clip_id in speech_ids
            if server.content.clip(clip_id).primary_category == catalogue.true_categories[clip_id]
        )
        assert correct / len(speech_ids) > 0.7

    def test_commuter_lookup(self, small_world):
        commuter = small_world.commuters[0]
        assert small_world.commuter(commuter.user_id) is commuter
        with pytest.raises(ValidationError):
            small_world.commuter("ghost")

    def test_today_is_after_history(self, small_world):
        last_fix = max(
            small_world.server.users.tracking.latest_fix(c.user_id).timestamp_s
            for c in small_world.commuters
        )
        assert small_world.today_start_s >= last_fix - SECONDS_PER_DAY

    def test_seeded_preferences_reflect_tastes(self, small_world):
        commuter = small_world.commuters[0]
        profile = small_world.server.users.preference_profile(commuter.user_id)
        preferred_scores = [profile.score(c) for c in commuter.preferred_categories]
        disliked_scores = [profile.score(c) for c in commuter.disliked_categories]
        assert max(preferred_scores) > 0.0
        assert min(disliked_scores) < 0.0

    def test_world_config_validation(self):
        with pytest.raises(ValidationError):
            WorldConfig(classifier_documents_per_category=0)
        with pytest.raises(ValidationError):
            WorldConfig(feedback_events_per_user=-1)

    def test_minimal_world_without_history(self):
        config = WorldConfig(
            seed=77,
            city=CityGeneratorConfig(grid_rows=5, grid_cols=5, poi_count=4, seed=8),
            broadcaster=BroadcasterConfig(seed=9, clips_per_day=20),
            commuters=CommuterConfig(seed=10, commuters=2, history_days=2),
            classifier_documents_per_category=4,
            feedback_events_per_user=5,
            load_gps_history=False,
        )
        world = build_world(config)
        assert world.server.users.tracking.user_ids() == []
        assert world.server.content.clip_count() == 20

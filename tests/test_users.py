"""Tests for user profiles, preference learning, feedback and the manager."""

import pytest

from repro.content import AudioClip, ContentKind, ContentRepository
from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.geo import GeoPoint
from repro.spatialdb import GpsFix
from repro.users import (
    FeedbackEvent,
    FeedbackKind,
    FeedbackStore,
    UserManager,
    UserPreferenceProfile,
    UserProfile,
)


class TestUserProfile:
    def test_valid(self):
        profile = UserProfile(user_id="u1", display_name="Lilly", age=29)
        assert profile.language == "it"

    def test_validation(self):
        with pytest.raises(ValidationError):
            UserProfile(user_id="", display_name="x")
        with pytest.raises(ValidationError):
            UserProfile(user_id="u", display_name="x", age=150)


class TestPreferenceProfile:
    def test_starts_neutral(self):
        profile = UserPreferenceProfile("u1")
        assert profile.score("economics") == 0.0
        assert profile.affinity({"economics": 1.0}) == 0.5
        assert profile.observation_count == 0

    def test_positive_feedback_increases_score(self):
        profile = UserPreferenceProfile("u1")
        profile.update({"economics": 1.0}, positive=True)
        assert profile.score("economics") > 0.0
        assert profile.affinity({"economics": 1.0}) > 0.5

    def test_negative_feedback_decreases_score(self):
        profile = UserPreferenceProfile("u1")
        profile.update({"comedy": 1.0}, positive=False)
        assert profile.score("comedy") < 0.0
        assert profile.affinity({"comedy": 1.0}) < 0.5

    def test_scores_bounded(self):
        profile = UserPreferenceProfile("u1")
        for _ in range(100):
            profile.update({"economics": 1.0}, positive=True)
            profile.update({"comedy": 1.0}, positive=False)
        assert -1.0 <= profile.score("comedy") <= 1.0
        assert -1.0 <= profile.score("economics") <= 1.0

    def test_unknown_category_rejected(self):
        with pytest.raises(NotFoundError):
            UserPreferenceProfile("u1").score("astrology")
        with pytest.raises(NotFoundError):
            UserPreferenceProfile("u1").update({"astrology": 1.0}, positive=True)

    def test_empty_scores_ignored(self):
        profile = UserPreferenceProfile("u1")
        profile.update({}, positive=True)
        assert profile.observation_count == 0

    def test_top_and_disliked(self):
        profile = UserPreferenceProfile("u1")
        profile.seeded(["economics", "technology"], ["comedy"])
        top = [name for name, _score in profile.top_categories(2)]
        assert set(top) <= {"economics", "technology"}
        assert "comedy" in profile.disliked_categories(threshold=-0.1)

    def test_affinity_mixes_categories(self):
        profile = UserPreferenceProfile("u1")
        profile.seeded(["economics"], ["comedy"])
        mixed = profile.affinity({"economics": 0.5, "comedy": 0.5})
        pure_good = profile.affinity({"economics": 1.0})
        pure_bad = profile.affinity({"comedy": 1.0})
        assert pure_bad < mixed < pure_good

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            UserPreferenceProfile("u1", learning_rate=1.5)
        with pytest.raises(ValidationError):
            UserPreferenceProfile("u1", negative_penalty=-1.0)
        with pytest.raises(ValidationError):
            UserPreferenceProfile("u1", decay=2.0)


class TestFeedbackStore:
    def test_record_and_query(self):
        store = FeedbackStore()
        store.record("u1", "c1", FeedbackKind.LIKE, timestamp_s=10.0)
        store.record("u1", "c2", FeedbackKind.SKIP, timestamp_s=20.0)
        store.record("u2", "c1", FeedbackKind.COMPLETED, timestamp_s=30.0)
        assert len(store) == 3
        assert [event.content_id for event in store.events_for_user("u1")] == ["c1", "c2"]
        assert len(store.events_for_content("c1")) == 2

    def test_events_sorted_by_time(self):
        store = FeedbackStore()
        store.record("u1", "c2", FeedbackKind.SKIP, timestamp_s=20.0)
        store.record("u1", "c1", FeedbackKind.LIKE, timestamp_s=10.0)
        events = store.events_for_user("u1")
        assert [event.timestamp_s for event in events] == [10.0, 20.0]

    def test_weights_and_polarity(self):
        assert FeedbackKind.LIKE.value == "like"
        positive = FeedbackEvent("e", "u", "c", FeedbackKind.COMPLETED, 0.0)
        negative = FeedbackEvent("e2", "u", "c", FeedbackKind.CHANNEL_CHANGE, 0.0)
        assert positive.is_positive and positive.weight > 0
        assert not negative.is_positive and negative.weight < 0

    def test_negative_listened_rejected(self):
        with pytest.raises(ValidationError):
            FeedbackEvent("e", "u", "c", FeedbackKind.SKIP, 0.0, listened_s=-1.0)

    def test_skip_rate(self):
        store = FeedbackStore()
        store.record("u1", "c1", FeedbackKind.COMPLETED, timestamp_s=1.0)
        store.record("u1", "c2", FeedbackKind.SKIP, timestamp_s=2.0)
        store.record("u1", "c3", FeedbackKind.SKIP, timestamp_s=3.0)
        store.record("u1", "c4", FeedbackKind.LISTEN_PING, timestamp_s=4.0)  # not terminal
        assert store.skip_rate("u1") == pytest.approx(2 / 3)
        assert store.skip_rate() == pytest.approx(2 / 3)

    def test_skip_rate_empty(self):
        assert FeedbackStore().skip_rate() == 0.0

    def test_positive_negative_content_ids(self):
        store = FeedbackStore()
        store.record("u1", "good", FeedbackKind.LIKE, timestamp_s=1.0)
        store.record("u1", "bad", FeedbackKind.DISLIKE, timestamp_s=2.0)
        assert store.positive_content_ids("u1") == ["good"]
        assert store.negative_content_ids("u1") == ["bad"]


class TestUserManager:
    def make_manager(self):
        content = ContentRepository()
        content.add_clip(
            AudioClip(
                clip_id="clip-econ",
                title="Markets",
                kind=ContentKind.PODCAST,
                duration_s=300.0,
                category_scores={"economics": 1.0},
            )
        )
        manager = UserManager(content=content)
        manager.register(UserProfile(user_id="u1", display_name="Greg"))
        return manager

    def test_register_and_lookup(self):
        manager = self.make_manager()
        assert manager.profile("u1").display_name == "Greg"
        assert manager.user_count() == 1
        assert manager.user_ids() == ["u1"]
        with pytest.raises(DuplicateError):
            manager.register(UserProfile(user_id="u1", display_name="Again"))
        with pytest.raises(NotFoundError):
            manager.profile("ghost")
        with pytest.raises(NotFoundError):
            manager.preference_profile("ghost")

    def test_feedback_updates_preferences(self):
        manager = self.make_manager()
        before = manager.preference_profile("u1").score("economics")
        manager.record_feedback("u1", "clip-econ", FeedbackKind.LIKE, timestamp_s=5.0)
        after = manager.preference_profile("u1").score("economics")
        assert after > before

    def test_negative_feedback_lowers_preferences(self):
        manager = self.make_manager()
        manager.record_feedback("u1", "clip-econ", FeedbackKind.DISLIKE, timestamp_s=5.0)
        assert manager.preference_profile("u1").score("economics") < 0.0

    def test_feedback_for_unknown_clip_still_recorded(self):
        manager = self.make_manager()
        event = manager.record_feedback("u1", "live-prog", FeedbackKind.SKIP, timestamp_s=5.0, is_clip=False)
        assert event.content_id == "live-prog"
        assert len(manager.feedback) == 1
        # Profile untouched because the programme has no clip category scores.
        assert manager.preference_profile("u1").observation_count == 0

    def test_feedback_unknown_user_rejected(self):
        manager = self.make_manager()
        with pytest.raises(NotFoundError):
            manager.record_feedback("ghost", "clip-econ", FeedbackKind.LIKE, timestamp_s=1.0)

    def test_tracking_ingest(self):
        manager = self.make_manager()
        manager.ingest_fix(GpsFix("u1", 0.0, GeoPoint(45.0, 7.6)))
        assert manager.tracking.fix_count("u1") == 1
        with pytest.raises(NotFoundError):
            manager.ingest_fix(GpsFix("ghost", 0.0, GeoPoint(45.0, 7.6)))

    def test_ingest_fixes_skip_stale(self):
        manager = self.make_manager()
        manager.ingest_fix(GpsFix("u1", 100.0, GeoPoint(45.0, 7.6)))
        added = manager.ingest_fixes(
            [GpsFix("u1", 50.0, GeoPoint(45.0, 7.6)), GpsFix("u1", 150.0, GeoPoint(45.0, 7.61))],
            skip_stale=True,
        )
        assert added == 1
        assert manager.tracking.fix_count("u1") == 2

"""Tier-1 coverage for the world-replay load generator.

The fast half of the harness's contract (the chaos matrix itself runs
under ``-m chaos``):

* scenario scripts are **byte-deterministic** — same world seed + script
  seed → identical jsonl, different seeds → different traffic;
* scripts round-trip through their jsonl serialization exactly;
* replaying a script against twin worlds produces byte-identical
  ``(status, body)`` response sequences;
* the replay report's percentiles are exact nearest-rank statistics.
"""

from __future__ import annotations

import pytest

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.datasets.mobility import SimulatedDrive
from repro.errors import ValidationError
from repro.loadgen import (
    SCENARIO_NAMES,
    ScenarioScript,
    WireEvent,
    WorldReplay,
    build_scenario,
)
from repro.loadgen.replay import percentile
from repro.pipeline import Gateway
from repro.pipeline.server import ServerConfig
from repro.roadnet import CityGeneratorConfig
from repro.storage import ShardingConfig
from repro.util.ids import reset_ids

SCRIPT_SEED = 99


def replay_world():
    """A compact sharded world; ids reset so twin builds are identical."""
    reset_ids()
    return build_world(
        WorldConfig(
            seed=4242,
            city=CityGeneratorConfig(
                grid_rows=8, grid_cols=8, block_size_m=600.0, poi_count=16, seed=3
            ),
            broadcaster=BroadcasterConfig(seed=5, clips_per_day=40),
            commuters=CommuterConfig(seed=11, commuters=6, history_days=4),
            server=ServerConfig(sharding=ShardingConfig(shards=4, parallel=True)),
            classifier_documents_per_category=4,
            feedback_events_per_user=10,
        )
    )


@pytest.fixture(scope="module")
def world():
    return replay_world()


class TestScriptDeterminism:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_same_seed_is_byte_identical(self, world, name):
        first = build_scenario(name, world, seed=SCRIPT_SEED)
        second = build_scenario(name, world, seed=SCRIPT_SEED)
        assert first.to_jsonl() == second.to_jsonl()
        assert first.fingerprint() == second.fingerprint()

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_different_seeds_diverge(self, world, name):
        # The driving backbone is world-determined; the seeded beats
        # (feedback picks, burst times, coverage gaps) must move.
        a = build_scenario(name, world, seed=1)
        b = build_scenario(name, world, seed=2)
        assert a.fingerprint() != b.fingerprint()

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_jsonl_round_trip_exact(self, world, name):
        script = build_scenario(name, world, seed=SCRIPT_SEED)
        clone = ScenarioScript.from_jsonl(script.to_jsonl())
        assert clone == script
        assert clone.fingerprint() == script.fingerprint()

    def test_scripts_are_time_ordered_and_tagged(self, world):
        for name in SCENARIO_NAMES:
            script = build_scenario(name, world, seed=SCRIPT_SEED)
            assert len(script) > 0
            times = [event.t_s for event in script]
            assert times == sorted(times)
            # Every scenario carries batch ingest plus read traffic.
            methods = {event.method for event in script}
            assert "POST" in methods and "GET" in methods

    def test_handover_script_marks_unicast_fetches(self, world):
        script = build_scenario("handover", world, seed=SCRIPT_SEED)
        handovers = [e for e in script if e.tag("handover") == "broadcast->unicast"]
        assert len(handovers) == script.metadata["handovers"] > 0
        assert all(e.tag("mode") == "unicast" for e in handovers)
        assert script.metadata["cost_model"]["hybrid_unicast_bytes"] > 0

    def test_unknown_scenario_rejected(self, world):
        with pytest.raises(ValidationError):
            build_scenario("earthquake", world, seed=1)

    def test_script_rejects_out_of_order_events(self):
        with pytest.raises(ValidationError):
            ScenarioScript(
                name="x",
                seed=1,
                events=(
                    WireEvent(t_s=5.0, method="GET", path="/v1/clips"),
                    WireEvent(t_s=1.0, method="GET", path="/v1/clips"),
                ),
            )

    def test_from_jsonl_rejects_wrong_format_and_count(self, world):
        script = build_scenario("rush_hour", world, seed=SCRIPT_SEED)
        text = script.to_jsonl()
        with pytest.raises(ValidationError):
            ScenarioScript.from_jsonl(text.replace('"format":1', '"format":9', 1))
        truncated = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(ValidationError):
            ScenarioScript.from_jsonl(truncated)


class TestReplay:
    def test_twin_world_replays_are_byte_identical(self, world):
        script = build_scenario("rush_hour", world, seed=SCRIPT_SEED)
        twin = replay_world()
        twin_script = build_scenario("rush_hour", twin, seed=SCRIPT_SEED)
        # The script itself is identical across twin worlds...
        assert twin_script.fingerprint() == script.fingerprint()
        # ...and so is every (status, body) the wire returns.
        report = WorldReplay(Gateway(twin.server)).run(twin_script)
        second_twin = replay_world()
        second_report = WorldReplay(Gateway(second_twin.server)).run(
            build_scenario("rush_hour", second_twin, seed=SCRIPT_SEED)
        )
        assert report.responses_digest() == second_report.responses_digest()
        assert report.status_counts == second_report.status_counts
        assert all(status < 400 for status in report.status_counts)

    def test_report_percentiles_are_nearest_rank(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([3.0, 1.0, 2.0], 1.0) == 3.0
        assert percentile([7.0], 0.99) == 7.0
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.95) == 95.0
        assert percentile(samples, 0.99) == 99.0
        with pytest.raises(ValidationError):
            percentile([], 0.5)
        with pytest.raises(ValidationError):
            percentile([1.0], 1.5)

    def test_report_summary_shape(self, world):
        script = build_scenario("flash_crowd", world, seed=SCRIPT_SEED)
        twin = replay_world()
        report = WorldReplay(Gateway(twin.server)).run(
            build_scenario("flash_crowd", twin, seed=SCRIPT_SEED)
        )
        summary = report.summary()
        assert summary["scenario"] == "flash_crowd"
        assert summary["requests"] == len(script)
        assert 0.0 <= summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        assert summary["responses_digest"] == report.responses_digest()


class TestWireEvent:
    def test_user_ids_covers_envelope_and_batch_items(self):
        event = WireEvent(
            t_s=0.0,
            method="POST",
            path="/v1/tracking/batch",
            body={
                "fixes": [
                    {"user_id": "u-a", "lat": 1.0, "lon": 1.0, "timestamp_s": 0.0},
                    {"user_id": "u-b", "lat": 1.0, "lon": 1.0, "timestamp_s": 0.0},
                    {"user_id": "u-a", "lat": 1.0, "lon": 1.0, "timestamp_s": 1.0},
                ]
            },
        )
        assert event.user_ids() == ["u-a", "u-b"]
        feedback = WireEvent(
            t_s=0.0,
            method="POST",
            path="/v1/feedback",
            body={"user_id": "u-c", "content_id": "clip-1", "kind": "like", "timestamp_s": 1.0},
        )
        assert feedback.user_ids() == ["u-c"]

    def test_event_validates_method_and_path(self):
        with pytest.raises(ValidationError):
            WireEvent(t_s=0.0, method="", path="/v1/clips")
        with pytest.raises(ValidationError):
            WireEvent(t_s=0.0, method="GET", path="")

    def test_drive_rng_is_consumed_once(self, world):
        """Document the one-shot sampling contract scenario builders obey."""
        commuter = world.commuters[0]
        drive = world.commuter_generator.live_drive(commuter, day=world.today)
        first = drive.fixes()
        second = drive.fixes()
        # Same drive object re-sampled gives different noise: this is WHY
        # builders embed the sampled fixes in the recorded script.
        assert [f.position for f in first] != [f.position for f in second]
        assert isinstance(drive, SimulatedDrive)

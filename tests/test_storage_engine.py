"""Tests for the storage engine: declarative indexes, planner, cursors.

The load-bearing properties:

* **planner/scan parity** — on randomized workloads, every query served
  through an index returns exactly what its ``scan_only()`` twin returns
  (same rows, same order);
* **cursor stability** — keyset pages never duplicate or skip rows while
  rows are inserted between pages;
* **unit of work** — change listeners see per-write batches normally and
  one coalesced batch per table inside ``Database.batch()``;
* **snapshot/restore** — a database round-trips through its versioned
  JSON payload with indexes rebuilt and queries intact.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    DuplicateError,
    NotFoundError,
    QueryError,
    SchemaError,
    ValidationError,
)
from repro.geo import BoundingBox, GeoPoint
from repro.storage import Column, Database, IndexSpec, Page, Schema, Table


def events_schema(indexes=None):
    return Schema(
        name="events",
        primary_key="event_id",
        columns=[
            Column("event_id", str),
            Column("user_id", str),
            Column("kind", str),
            Column("timestamp_s", float),
            Column("value", float, has_default=True, default=0.0),
            Column("lat", float, nullable=True),
            Column("lon", float, nullable=True),
        ],
        indexes=list(indexes) if indexes is not None else [],
    )


INDEXED = [
    IndexSpec("kind"),
    IndexSpec("user_id"),
    IndexSpec("timestamp_s", kind="sorted", columns=("timestamp_s",)),
    IndexSpec("user_time", kind="sorted", columns=("user_id", "timestamp_s")),
    IndexSpec("geo", kind="spatial", columns=("lat", "lon"), cell_size_m=500.0),
]


def fill(table, rng, n=400):
    """Populate a table from a seeded_rng (or a labeled fork of it)."""
    for i in range(n):
        table.insert(
            {
                "event_id": f"e{i:04d}",
                "user_id": f"u{rng.randint(0, 11):02d}",
                "kind": rng.choice(["ping", "skip", "like"]),
                "timestamp_s": float(rng.randint(0, 49)),
                "value": rng.random(),
                "lat": None if rng.random() < 0.4 else 45.0 + rng.random() * 0.05,
                "lon": 7.6 + rng.random() * 0.05,
            }
        )
    return table


class TestIndexSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            IndexSpec("x", kind="btree")

    def test_spatial_needs_two_columns(self):
        with pytest.raises(SchemaError):
            IndexSpec("geo", kind="spatial", columns=("lat",))

    def test_schema_validates_index_columns(self):
        with pytest.raises(SchemaError):
            events_schema([IndexSpec("missing_column")])
            Table(events_schema([IndexSpec("missing_column")]))

    def test_duplicate_index_names_rejected(self):
        with pytest.raises(SchemaError):
            Table(events_schema([IndexSpec("kind"), IndexSpec("kind")]))

    def test_dynamic_create_index_all_kinds(self, seeded_rng):
        table = fill(Table(events_schema()), seeded_rng.fork("fill"), 60)
        table.create_index("kind")
        table.create_index("by_time", kind="sorted", columns=("timestamp_s",))
        table.create_index("geo", kind="spatial", columns=("lat", "lon"))
        assert table.find_by_index("kind", "ping")
        assert len(list(table.rows_in_index_order("by_time"))) == 60
        with pytest.raises(DuplicateError):
            table.create_index("kind")


class TestPlannerScanParity:
    """Every indexed strategy must match the predicate-only scan exactly."""

    @pytest.fixture
    def table(self, seeded_rng):
        return fill(Table(events_schema(INDEXED)), seeded_rng.fork("fill"), 500)

    def pair(self, table):
        db = Database("d")
        db._tables["events"] = table  # reuse the filled table in both paths
        return db.query("events"), db.query("events").scan_only()

    def test_eq_uses_index_and_matches(self, table):
        fast, slow = self.pair(table)
        fast, slow = fast.where_eq("kind", "skip"), slow.where_eq("kind", "skip")
        assert fast.explain()["strategy"] == "index_eq"
        assert slow.explain()["strategy"] == "scan"
        assert fast.all() == slow.all()

    def test_in_uses_index_and_matches(self, table):
        fast, slow = self.pair(table)
        fast = fast.where_in("user_id", ["u01", "u05", "u09"])
        slow = slow.where_in("user_id", ["u01", "u05", "u09"])
        assert fast.explain()["strategy"] == "index_in"
        assert fast.all() == slow.all()

    def test_range_uses_index_and_matches(self, table):
        fast, slow = self.pair(table)
        fast = fast.where_range("timestamp_s", 10.0, 30.0).order_by("timestamp_s")
        slow = slow.where_range("timestamp_s", 10.0, 30.0).order_by("timestamp_s")
        assert fast.explain()["strategy"] == "index_range"
        assert fast.all() == slow.all()

    def test_order_by_walks_index_with_early_limit(self, table):
        fast, slow = self.pair(table)
        fast = fast.order_by("timestamp_s").limit(17)
        slow = slow.order_by("timestamp_s").limit(17)
        assert fast.explain()["strategy"] == "index_order"
        assert fast.all() == slow.all()

    def test_descending_order_falls_back_to_scan_strategy(self, table):
        fast, _ = self.pair(table)
        fast = fast.order_by("timestamp_s", descending=True)
        assert fast.explain()["strategy"] == "scan"

    def test_randomized_workload_parity(self, table, seeded_rng):
        rng = seeded_rng.fork("workload")
        kinds = ["ping", "skip", "like"]
        for _ in range(120):
            db = Database("d")
            db._tables["events"] = table
            fast, slow = db.query("events"), db.query("events").scan_only()
            if rng.random() < 0.5:
                kind = rng.choice(kinds)
                fast, slow = fast.where_eq("kind", kind), slow.where_eq("kind", kind)
            if rng.random() < 0.5:
                lo = float(rng.randint(0, 39))
                hi = lo + rng.randint(1, 14)
                fast = fast.where_range("timestamp_s", lo, hi)
                slow = slow.where_range("timestamp_s", lo, hi)
            if rng.random() < 0.4:
                user = f"u{rng.randint(0, 11):02d}"
                fast, slow = fast.where_eq("user_id", user), slow.where_eq("user_id", user)
            if rng.random() < 0.5:
                fast = fast.order_by("timestamp_s")
                slow = slow.order_by("timestamp_s")
                if rng.random() < 0.5:
                    n = rng.randint(1, 29)
                    fast, slow = fast.limit(n), slow.limit(n)
            assert fast.all() == slow.all()

    def test_residual_predicates_applied_on_index_path(self, table):
        db = Database("d")
        db._tables["events"] = table
        fast = db.query("events").where_eq("kind", "like").where(lambda r: r["value"] > 0.5)
        slow = (
            db.query("events").scan_only().where_eq("kind", "like").where(lambda r: r["value"] > 0.5)
        )
        plan = fast.explain()
        assert plan["strategy"] == "index_eq" and plan["post_filters"] == 1
        assert fast.all() == slow.all()

    def test_stats_record_hits_and_scans(self, seeded_rng):
        table = fill(Table(events_schema(INDEXED)), seeded_rng.fork("fill"), 50)
        db = Database("d")
        db._tables["events"] = table
        before = table.stats()
        db.query("events").where_eq("kind", "ping").all()
        db.query("events").scan_only().where_eq("kind", "ping").all()
        after = table.stats()
        assert after["index_hits"] == before["index_hits"] + 1
        assert after["scans"] == before["scans"] + 1

    def test_where_range_requires_a_bound(self, table):
        db = Database("d")
        db._tables["events"] = table
        with pytest.raises(QueryError):
            db.query("events").where_range("timestamp_s")

    def test_aggregates_ignore_limit_on_both_paths(self, table):
        db = Database("d")
        db._tables["events"] = table
        fast = db.query("events").order_by("timestamp_s").limit(3).sum("value")
        slow = db.query("events").scan_only().order_by("timestamp_s").limit(3).sum("value")
        full = db.query("events").scan_only().sum("value")
        assert fast == slow == full

    def test_index_order_refused_when_nulls_leave_index_partial(self):
        schema = events_schema(
            [IndexSpec("maybe", kind="sorted", columns=("lat",))]  # lat is nullable
        )
        table = Table(schema)
        table.insert({"event_id": "a", "user_id": "u", "kind": "p", "timestamp_s": 1.0, "lat": 45.0, "lon": 7.0})
        table.insert({"event_id": "b", "user_id": "u", "kind": "p", "timestamp_s": 2.0})
        db = Database("d")
        db._tables["events"] = table
        query = db.query("events").order_by("lat")
        # A partial index must never serve an ordered walk — the null row
        # would silently vanish from the results.
        assert query.explain()["strategy"] == "scan"

    def test_range_predicates_exclude_nulls_on_both_paths(self):
        table = Table(events_schema(INDEXED))
        table.insert({"event_id": "a", "user_id": "u", "kind": "p", "timestamp_s": 5.0, "lat": 1.0, "lon": 1.0})
        table.insert({"event_id": "b", "user_id": "u", "kind": "p", "timestamp_s": 6.0})
        db = Database("d")
        db._tables["events"] = table
        fast = db.query("events").where_range("lat", 0.0, 10.0).all()
        slow = db.query("events").scan_only().where_range("lat", 0.0, 10.0).all()
        assert fast == slow
        assert [row["event_id"] for row in fast] == ["a"]


class TestSortedIndexMaintenance:
    def test_update_moves_row_in_index(self, seeded_rng):
        table = fill(Table(events_schema(INDEXED)), seeded_rng.fork("fill"), 30)
        table.update("e0000", {"timestamp_s": 999.0})
        ordered = list(table.rows_in_index_order("timestamp_s"))
        assert ordered[-1]["event_id"] == "e0000"

    def test_delete_removes_from_index(self, seeded_rng):
        table = fill(Table(events_schema(INDEXED)), seeded_rng.fork("fill"), 30)
        table.delete("e0001")
        assert all(row["event_id"] != "e0001" for row in table.rows_in_index_order("timestamp_s"))

    def test_null_keys_not_indexed_but_scannable(self):
        table = Table(events_schema(INDEXED))
        table.insert(
            {"event_id": "a", "user_id": "u", "kind": "ping", "timestamp_s": 1.0, "lat": None, "lon": None}
        )
        assert table.find_within("geo", GeoPoint(45.0, 7.6), 1e6) == []
        assert len(table.scan(lambda row: row["lat"] is None)) == 1

    def test_spatial_index_tracks_moves(self):
        table = Table(events_schema(INDEXED))
        table.insert(
            {"event_id": "a", "user_id": "u", "kind": "ping", "timestamp_s": 1.0, "lat": 45.0, "lon": 7.6}
        )
        table.update("a", {"lat": 46.0})
        hits = table.find_within("geo", GeoPoint(46.0, 7.6), 1000.0)
        assert [row["event_id"] for row, _d in hits] == ["a"]
        assert table.find_within("geo", GeoPoint(45.0, 7.6), 1000.0) == []
        box = BoundingBox(min_lat=45.9, min_lon=7.0, max_lat=46.1, max_lon=8.0)
        assert [row["event_id"] for row in table.find_in_bbox("geo", box)] == ["a"]


class TestKeysetCursors:
    def make_table(self, n=40):
        table = Table(events_schema(INDEXED))
        for i in range(n):
            table.insert(
                {
                    "event_id": f"e{i:04d}",
                    "user_id": "u",
                    "kind": "ping",
                    "timestamp_s": float(i // 3),  # ties exercise the seq tiebreak
                }
            )
        return table

    def walk(self, table, *, limit, descending=False):
        seen, token = [], None
        while True:
            page = table.page_by_index(
                "timestamp_s", limit=limit, after_token=token, descending=descending
            )
            seen.extend(row["event_id"] for row in page.items)
            token = page.next_token
            if token is None:
                return seen

    def test_full_walk_matches_index_order(self):
        table = self.make_table()
        assert self.walk(table, limit=7) == [
            row["event_id"] for row in table.rows_in_index_order("timestamp_s")
        ]

    def test_descending_walk(self):
        table = self.make_table()
        assert self.walk(table, limit=7, descending=True) == [
            row["event_id"] for row in table.rows_in_index_order("timestamp_s", descending=True)
        ]

    def test_stable_under_interleaved_inserts(self):
        table = self.make_table(30)
        first = table.page_by_index("timestamp_s", limit=10)
        served = [row["event_id"] for row in first.items]
        last_served_time = table.get(served[-1])["timestamp_s"]
        # Insert rows both before and after the cursor position mid-walk.
        table.insert({"event_id": "early", "user_id": "u", "kind": "ping", "timestamp_s": -1.0})
        table.insert({"event_id": "late", "user_id": "u", "kind": "ping", "timestamp_s": 999.0})
        token = first.next_token
        rest = []
        while token is not None:
            page = table.page_by_index("timestamp_s", limit=10, after_token=token)
            rest.extend(row["event_id"] for row in page.items)
            token = page.next_token
        # No duplicates, nothing skipped, and the late insert appears.
        assert not (set(served) & set(rest))
        assert "late" in rest and "early" not in rest
        assert all(table.get(eid)["timestamp_s"] >= last_served_time for eid in rest)

    def test_prefix_bounded_pages(self):
        table = Table(events_schema(INDEXED))
        for i in range(12):
            table.insert(
                {
                    "event_id": f"e{i}",
                    "user_id": "alice" if i % 2 else "bob",
                    "kind": "ping",
                    "timestamp_s": float(i),
                }
            )
        page = table.page_by_index(
            "user_time", limit=3, low=("alice",), high=("alice",), high_inclusive=True
        )
        users = {row["user_id"] for row in page.items}
        assert users == {"alice"} and page.next_token is not None
        page2 = table.page_by_index(
            "user_time",
            limit=10,
            after_token=page.next_token,
            low=("alice",),
            high=("alice",),
            high_inclusive=True,
        )
        assert {row["user_id"] for row in page2.items} == {"alice"}
        assert page2.next_token is None
        assert len(page.items) + len(page2.items) == 6

    def test_malformed_tokens_rejected(self):
        table = self.make_table(5)
        for bogus in ("bogus", "[]", '["x"]', '[1,2,"x"]', '{"a":1}'):
            with pytest.raises(ValidationError):
                table.page_by_index("timestamp_s", limit=2, after_token=bogus)

    def test_mistyped_token_key_rejected(self):
        table = self.make_table(5)
        with pytest.raises(ValidationError):
            table.page_by_index("timestamp_s", limit=2, after_token='["zz", 3]')

    def test_limit_validation(self):
        table = self.make_table(5)
        with pytest.raises(ValidationError):
            table.page_by_index("timestamp_s", limit=0)


class TestChangeListenersAndBatch:
    def test_single_writes_deliver_single_changes(self):
        db = Database("d")
        table = db.create_table(events_schema())
        batches = []
        table.add_listener(batches.append)
        table.insert({"event_id": "a", "user_id": "u", "kind": "ping", "timestamp_s": 1.0})
        table.update("a", {"timestamp_s": 2.0})
        table.delete("a")
        assert [[change.op for change in batch] for batch in batches] == [
            ["insert"],
            ["update"],
            ["delete"],
        ]

    def test_batch_coalesces_per_table(self):
        db = Database("d")
        table = db.create_table(events_schema())
        other = db.create_table(
            Schema(name="other", primary_key="k", columns=[Column("k", str)])
        )
        batches, other_batches = [], []
        table.add_listener(batches.append)
        other.add_listener(other_batches.append)
        with db.batch():
            table.insert({"event_id": "a", "user_id": "u", "kind": "ping", "timestamp_s": 1.0})
            table.insert({"event_id": "b", "user_id": "u", "kind": "ping", "timestamp_s": 2.0})
            other.insert({"k": "x"})
            assert batches == []  # nothing delivered mid-batch
        assert [len(batch) for batch in batches] == [2]
        assert [change.key for change in batches[0]] == ["a", "b"]
        assert [len(batch) for batch in other_batches] == [1]

    def test_batch_delivers_accepted_changes_on_error(self):
        db = Database("d")
        table = db.create_table(events_schema())
        batches = []
        table.add_listener(batches.append)
        with pytest.raises(DuplicateError):
            with db.batch():
                table.insert({"event_id": "a", "user_id": "u", "kind": "p", "timestamp_s": 1.0})
                table.insert({"event_id": "a", "user_id": "u", "kind": "p", "timestamp_s": 2.0})
        assert [len(batch) for batch in batches] == [1]

    def test_nested_batches_deliver_once(self):
        db = Database("d")
        table = db.create_table(events_schema())
        batches = []
        table.add_listener(batches.append)
        with db.batch():
            table.insert({"event_id": "a", "user_id": "u", "kind": "p", "timestamp_s": 1.0})
            with db.batch():
                table.insert({"event_id": "b", "user_id": "u", "kind": "p", "timestamp_s": 2.0})
        assert [len(batch) for batch in batches] == [2]

    def test_version_bumps_on_every_mutation(self):
        table = Table(events_schema())
        v0 = table.version
        table.insert({"event_id": "a", "user_id": "u", "kind": "p", "timestamp_s": 1.0})
        table.update("a", {"timestamp_s": 2.0})
        table.delete("a")
        assert table.version == v0 + 3


class TestSnapshotRestore:
    def test_database_round_trip_preserves_queries(self, seeded_rng):
        db = Database("d")
        table = db.create_table(events_schema(INDEXED))
        fill(table, seeded_rng.fork("fill"), 120)
        reference_eq = db.query("events").where_eq("kind", "like").all()
        reference_order = list(table.rows_in_index_order("timestamp_s"))
        payload = json.loads(json.dumps(db.snapshot()))

        db2 = Database("d")
        table2 = db2.create_table(events_schema(INDEXED))
        db2.restore(payload)
        assert db2.query("events").where_eq("kind", "like").all() == reference_eq
        assert list(table2.rows_in_index_order("timestamp_s")) == reference_order
        assert len(table2) == 120

    def test_restore_validates_payload(self):
        db = Database("d")
        db.create_table(events_schema())
        with pytest.raises(ValidationError):
            db.restore({"version": 99, "tables": {}})
        with pytest.raises(ValidationError):
            db.restore({"version": 1, "tables": {"ghost": []}})

    def test_restore_does_not_notify_listeners(self):
        db = Database("d")
        table = db.create_table(events_schema())
        table.insert({"event_id": "a", "user_id": "u", "kind": "p", "timestamp_s": 1.0})
        payload = db.snapshot()
        batches = []
        table.add_listener(batches.append)
        db.restore(payload)
        assert batches == []

    def test_page_cursor_round_trips_json(self):
        page = Page(items=[1, 2, 3], next_token='["x",3]')
        assert list(page) == [1, 2, 3] and len(page) == 3

    def test_restore_preserves_version_counter(self):
        """Replaying N rows must not rewind the change counter: ETags
        minted before the snapshot would collide and serve stale 304s."""
        db = Database("d")
        table = db.create_table(events_schema())
        for i in range(5):
            table.insert({"event_id": f"e{i}", "user_id": "u", "kind": "p", "timestamp_s": 1.0})
        table.update("e3", {"timestamp_s": 2.0})  # version ahead of row count
        version = table.version
        payload = json.loads(json.dumps(db.snapshot()))
        db2 = Database("d")
        table2 = db2.create_table(events_schema())
        db2.restore(payload)
        assert table2.version >= version

    def test_clear_notifies_listeners(self):
        db = Database("d")
        table = db.create_table(events_schema())
        table.insert({"event_id": "a", "user_id": "u", "kind": "p", "timestamp_s": 1.0})
        batches = []
        table.add_listener(batches.append)
        table.clear()
        assert [[change.op for change in batch] for batch in batches] == [["clear"]]

"""Tests for polylines and RDP simplification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geo import GeoPoint, Polyline, rdp_indices, rdp_simplify
from repro.geo.geodesy import destination_point, haversine_m
from repro.geo.rdp import compression_ratio

START = GeoPoint(45.07, 7.68)


def straight_line(points: int, spacing_m: float = 100.0):
    """Points along a straight east-heading line."""
    return [destination_point(START, 90.0, i * spacing_m) for i in range(points)]


def zigzag(points: int, spacing_m: float = 100.0, amplitude_m: float = 60.0):
    """A line with alternating lateral offsets (never simplifies to 2 points)."""
    result = []
    for i in range(points):
        base = destination_point(START, 90.0, i * spacing_m)
        offset = amplitude_m if i % 2 else -amplitude_m
        result.append(destination_point(base, 0.0, abs(offset)) if offset > 0 else destination_point(base, 180.0, abs(offset)))
    return result


class TestPolyline:
    def test_requires_points(self):
        with pytest.raises(GeometryError):
            Polyline([])

    def test_single_point_length_zero(self):
        line = Polyline([START])
        assert line.length_m == 0.0
        assert line.point_at_distance(100.0) == START

    def test_length_of_straight_line(self):
        line = Polyline(straight_line(11, 100.0))
        assert line.length_m == pytest.approx(1000.0, rel=1e-3)

    def test_point_at_distance_interpolates(self):
        line = Polyline(straight_line(11, 100.0))
        mid = line.point_at_distance(500.0)
        assert haversine_m(START, mid) == pytest.approx(500.0, rel=1e-2)

    def test_point_at_distance_clamped(self):
        line = Polyline(straight_line(3, 100.0))
        assert line.point_at_distance(-50.0) == line.start
        assert haversine_m(line.point_at_distance(1e9), line.end) < 1e-6

    def test_resample_spacing(self):
        line = Polyline(straight_line(11, 100.0))
        resampled = line.resample(250.0)
        assert resampled.length_m == pytest.approx(line.length_m, rel=1e-3)
        # Samples at 0, 250, 500, 750 plus the end point (and possibly one
        # extra sample when the geodesic length slightly exceeds 1000 m).
        assert len(resampled) in (5, 6)

    def test_resample_invalid_spacing(self):
        with pytest.raises(GeometryError):
            Polyline(straight_line(3)).resample(0.0)

    def test_nearest_point_index(self):
        line = Polyline(straight_line(11, 100.0))
        target = destination_point(START, 90.0, 420.0)
        assert line.nearest_point_index(target) == 4

    def test_heading_along_east_line(self):
        line = Polyline(straight_line(5, 100.0))
        assert line.heading_at_distance(200.0) == pytest.approx(90.0, abs=2.0)

    def test_heading_single_point_none(self):
        assert Polyline([START]).heading_at_distance(0.0) is None

    def test_reversed(self):
        line = Polyline(straight_line(4, 100.0))
        assert line.reversed().start == line.end

    def test_concat_drops_duplicate_join(self):
        a = Polyline(straight_line(3, 100.0))
        b = Polyline(straight_line(5, 100.0)[2:])
        joined = a.concat(b)
        assert len(joined) == len(a) + len(b) - 1

    def test_distance_along_monotone(self):
        line = Polyline(straight_line(6, 100.0))
        distances = [line.distance_along(i) for i in range(len(line))]
        assert distances == sorted(distances)


class TestRdp:
    def test_straight_line_collapses_to_endpoints(self):
        simplified = rdp_simplify(straight_line(50, 50.0), tolerance_m=10.0)
        assert len(simplified) == 2

    def test_zigzag_preserved_with_small_tolerance(self):
        points = zigzag(20)
        simplified = rdp_simplify(points, tolerance_m=5.0)
        assert len(simplified) > 10

    def test_zigzag_collapses_with_large_tolerance(self):
        points = zigzag(20, amplitude_m=30.0)
        simplified = rdp_simplify(points, tolerance_m=500.0)
        assert len(simplified) == 2

    def test_endpoints_always_kept(self):
        points = zigzag(15)
        simplified = rdp_simplify(points, tolerance_m=50.0)
        assert simplified[0] == points[0]
        assert simplified[-1] == points[-1]

    def test_indices_sorted_subset(self):
        points = zigzag(25)
        indices = rdp_indices(points, tolerance_m=20.0)
        assert indices == sorted(indices)
        assert all(0 <= i < len(points) for i in indices)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(GeometryError):
            rdp_simplify(straight_line(5), tolerance_m=-1.0)

    def test_short_inputs_unchanged(self):
        assert rdp_simplify([], 10.0) == []
        assert len(rdp_simplify(straight_line(2), 10.0)) == 2

    @given(st.integers(min_value=3, max_value=40), st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=30, deadline=None)
    def test_simplified_never_longer_than_original(self, n, tolerance):
        points = zigzag(n)
        simplified = rdp_simplify(points, tolerance_m=tolerance)
        assert 2 <= len(simplified) <= len(points)

    def test_monotone_in_tolerance(self):
        points = zigzag(30)
        small = len(rdp_simplify(points, tolerance_m=5.0))
        large = len(rdp_simplify(points, tolerance_m=200.0))
        assert large <= small


class TestCompressionRatio:
    def test_basic(self):
        assert compression_ratio(10, 2) == pytest.approx(0.8)

    def test_invalid_inputs(self):
        with pytest.raises(GeometryError):
            compression_ratio(0, 0)
        with pytest.raises(GeometryError):
            compression_ratio(5, 6)

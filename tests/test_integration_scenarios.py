"""Integration tests: the paper's demonstration scenarios end to end.

These exercise the whole stack the way the EDBT demo would: a populated
world, the live drive, the proactive pipeline, the client playback and the
dashboard, asserting the qualitative outcomes the paper describes.
"""

import pytest

from repro.client import ControlDashboard
from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.delivery import SegmentSource
from repro.roadnet import CityGeneratorConfig
from repro.simulation import (
    PersonalizationStrategy,
    SimulationRunner,
    run_manual_skip_scenario,
    run_proactive_commute_scenario,
)


@pytest.fixture(scope="module")
def demo_world():
    """A dedicated world for scenario tests (mutated by the scenarios)."""
    return build_world(
        WorldConfig(
            seed=2027,
            city=CityGeneratorConfig(grid_rows=10, grid_cols=10, block_size_m=650.0, poi_count=16, seed=12),
            broadcaster=BroadcasterConfig(seed=13, clips_per_day=110),
            commuters=CommuterConfig(seed=14, commuters=10, history_days=7),
            classifier_documents_per_category=8,
            feedback_events_per_user=28,
        )
    )


class TestManualSkipScenario:
    """Paper §2.1.1 — Greg skips the football talk and reaches his favourites."""

    def test_greg_reaches_preferred_content_without_zapping(self, demo_world):
        result = run_manual_skip_scenario(demo_world, user_id=demo_world.commuters[1].user_id)
        assert len(result.skipped_programme_ids) == 2
        assert result.final_clip is not None
        assert result.final_clip_matches_taste
        assert not result.channel_changed
        assert result.timeline  # the playback timeline exists

    def test_skips_recorded_as_feedback(self, demo_world):
        user_id = demo_world.commuters[2].user_id
        before = len(demo_world.server.users.feedback.events_for_user(user_id))
        run_manual_skip_scenario(demo_world, user_id=user_id)
        after = len(demo_world.server.users.feedback.events_for_user(user_id))
        assert after > before


class TestProactiveCommuteScenario:
    """Paper §2.1.2 / Figure 4 — Lilly's proactive personalized commute."""

    def test_proactive_plan_produced_and_played(self, demo_world):
        for candidate in demo_world.commuters[:6]:
            result = run_proactive_commute_scenario(demo_world, user_id=candidate.user_id)
            if result.decision.should_recommend:
                break
        else:
            pytest.fail("proactive recommendation never triggered for any commuter")

        assert result.plan is not None
        assert result.played_clip_ids
        # The plan respects the predicted available time.
        assert result.plan.total_scheduled_s <= result.plan.available_s + 1e-6
        # ΔT prediction is in the right ballpark of the true remaining time.
        assert result.delta_t_predicted_s > 60.0
        assert result.delta_t_predicted_s < 3.0 * max(result.delta_t_actual_s, 60.0)

    def test_timeline_contains_live_clip_and_timeshift(self, demo_world):
        found_full_timeline = False
        for candidate in demo_world.commuters[:8]:
            result = run_proactive_commute_scenario(demo_world, user_id=candidate.user_id)
            if not result.decision.should_recommend:
                continue
            sources = [line.split("  ")[1].split()[0] for line in result.timeline]
            if "LIVE" in sources and "CLIP" in sources:
                found_full_timeline = True
                # After playing clips the listener is behind live (time-shift offset).
                assert result.time_shift_offset_s > 0.0
                break
        assert found_full_timeline

    def test_recommendations_without_explicit_action(self, demo_world):
        """Proactivity: content is chosen with no skip/like from the user today."""
        commuter = demo_world.commuters[5]
        user_id = commuter.user_id
        feedback_before = len(demo_world.server.users.feedback.events_for_user(user_id))
        result = run_proactive_commute_scenario(demo_world, user_id=user_id)
        if result.decision.should_recommend:
            assert result.played_clip_ids
        # The decision itself never required explicit feedback during the drive
        # (only playback-completion events may have been added afterwards).
        decision_events = demo_world.server.bus.published_messages("recommendation.decision")
        assert decision_events


class TestStrategyComparisonShape:
    """The paper's headline claim: personalization reduces skips and zapping."""

    def test_pphcr_beats_linear_on_skip_rate(self, demo_world):
        runner = SimulationRunner(demo_world, seed=17)
        comparison = runner.compare_strategies(
            [
                PersonalizationStrategy.LINEAR_ONLY,
                PersonalizationStrategy.CONTENT_ONLY,
                PersonalizationStrategy.PPHCR,
            ],
            max_users=10,
        )
        linear_skip = comparison.mean_skip_rate("linear_only")
        pphcr_skip = comparison.mean_skip_rate("pphcr")
        assert pphcr_skip <= linear_skip + 0.05
        # Enjoyment moves the other way.
        assert comparison.mean_enjoyment("pphcr") >= comparison.mean_enjoyment("linear_only") - 0.05

    def test_channel_changes_only_happen_on_linear(self, demo_world):
        runner = SimulationRunner(demo_world, seed=19)
        comparison = runner.compare_strategies(
            [PersonalizationStrategy.LINEAR_ONLY, PersonalizationStrategy.CONTENT_ONLY],
            max_users=8,
        )
        assert comparison.mean_channel_change_rate("content_only") == 0.0


class TestDashboardIntegration:
    def test_dashboard_reflects_scenario_activity(self, demo_world):
        server = demo_world.server
        dashboard = ControlDashboard(server.users, server.content, editorial=server.editorial)
        user_id = demo_world.commuters[0].user_id
        report = dashboard.trajectory_report(user_id)
        assert report.trip_count >= 4
        assert report.recurring_routes >= 1
        overview = dashboard.overview()
        assert overview["feedback_events"] > 0
        assert overview["plans"] == 0  # plans are recorded explicitly by callers

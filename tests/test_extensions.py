"""Tests for the future-work extensions: geo-relevance estimation, rich context,
ensemble diversification."""

import pytest

from repro.content import AudioClip, ContentKind
from repro.content.geo_estimator import (
    Gazetteer,
    GazetteerEntry,
    GeoRelevanceEstimator,
)
from repro.errors import ValidationError
from repro.geo import GeoPoint
from repro.recommender.compound import ScoredClip
from repro.recommender.context import ListenerContext
from repro.recommender.extensions import (
    RichContextScorer,
    diversify,
    list_diversity,
    plan_diversity,
)
from repro.recommender.scheduling import RecommendationPlan, ScheduledClip
from repro.util.timeutils import TimeWindow

PIAZZA = GeoPoint(45.0703, 7.6869)
STADIUM = GeoPoint(45.0420, 7.6500)
NOW = 9 * 3600.0


def make_clip(clip_id, category="news-local", *, transcript=None, kind=ContentKind.NEWS, duration=180.0):
    return AudioClip(
        clip_id=clip_id,
        title=clip_id,
        kind=kind,
        duration_s=duration,
        category_scores={category: 1.0},
        transcript=transcript,
    )


def make_gazetteer():
    return Gazetteer(
        [
            GazetteerEntry("piazza-castello", PIAZZA, radius_m=1500.0, aliases=("castello",)),
            GazetteerEntry("stadio-grande", STADIUM, radius_m=2000.0),
        ]
    )


class TestGazetteer:
    def test_entries_and_lookup(self):
        gazetteer = make_gazetteer()
        assert len(gazetteer) == 2
        assert "piazza-castello" in gazetteer
        assert gazetteer.entry("stadio-grande").radius_m == 2000.0
        with pytest.raises(ValidationError):
            gazetteer.entry("nowhere")

    def test_match_aliases_case_insensitive(self):
        gazetteer = make_gazetteer()
        assert gazetteer.match("Castello").name == "piazza-castello"
        assert gazetteer.match("stadio-grande").name == "stadio-grande"
        assert gazetteer.match("altrove") is None

    def test_entry_validation(self):
        with pytest.raises(ValidationError):
            GazetteerEntry("", PIAZZA)
        with pytest.raises(ValidationError):
            GazetteerEntry("x", PIAZZA, radius_m=0.0)

    def test_from_city(self, small_city):
        gazetteer = Gazetteer.from_city(small_city)
        assert len(gazetteer) == len(small_city.pois)
        name = small_city.poi_names()[0]
        assert gazetteer.entry(name).location == small_city.poi(name)


class TestGeoRelevanceEstimator:
    def test_local_clip_gets_footprint(self):
        estimator = GeoRelevanceEstimator(make_gazetteer())
        clip = make_clip(
            "local",
            transcript="lavori in corso vicino a piazza-castello oggi piazza-castello chiusa",
        )
        estimate = estimator.estimate(clip)
        assert estimate.is_geo_relevant
        assert estimate.mentioned_places == {"piazza-castello": 2}
        assert estimate.location.distance_m(PIAZZA) < 100.0
        assert estimate.confidence == 1.0

    def test_national_clip_gets_no_footprint(self):
        estimator = GeoRelevanceEstimator(make_gazetteer())
        clip = make_clip("national", transcript="notizie dal mondo economia e politica estera")
        estimate = estimator.estimate(clip)
        assert not estimate.is_geo_relevant
        assert estimate.mentioned_places == {}
        assert estimate.confidence == 0.0

    def test_ambiguous_mentions_respect_confidence_threshold(self):
        estimator = GeoRelevanceEstimator(make_gazetteer(), min_confidence=0.8)
        clip = make_clip(
            "mixed", transcript="evento a piazza-castello e poi concerto allo stadio-grande"
        )
        estimate = estimator.estimate(clip)
        # Two different places mentioned once each: confidence 0.5 < 0.8.
        assert not estimate.is_geo_relevant
        assert estimate.confidence == pytest.approx(0.5)

    def test_title_only_mention(self):
        estimator = GeoRelevanceEstimator(make_gazetteer())
        clip = AudioClip(
            clip_id="title-only",
            title="Cronaca da stadio-grande",
            kind=ContentKind.NEWS,
            duration_s=120.0,
        )
        assert estimator.estimate(clip).is_geo_relevant

    def test_annotate_preserves_existing_tags(self):
        estimator = GeoRelevanceEstimator(make_gazetteer())
        already = AudioClip(
            clip_id="tagged",
            title="x",
            kind=ContentKind.NEWS,
            duration_s=60.0,
            geo_location=STADIUM,
            geo_radius_m=500.0,
        )
        untagged_local = make_clip("local", transcript="incidente a piazza-castello stamattina")
        untagged_national = make_clip("nat", transcript="borse europee in rialzo")
        annotated, tagged = estimator.annotate_archive([already, untagged_local, untagged_national])
        assert tagged == 1
        by_id = {clip.clip_id: clip for clip in annotated}
        assert by_id["tagged"].geo_radius_m == 500.0  # untouched
        assert by_id["local"].is_geo_tagged
        assert not by_id["nat"].is_geo_tagged

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            GeoRelevanceEstimator(make_gazetteer(), min_mentions=0)
        with pytest.raises(ValidationError):
            GeoRelevanceEstimator(make_gazetteer(), min_confidence=2.0)


class TestRichContextScorer:
    def context(self, *, weather=None, activity=None):
        return ListenerContext(
            user_id="u1", now_s=NOW, is_driving=False, weather=weather, activity=activity
        )

    def test_matches_base_scorer_without_extra_context(self):
        clip = make_clip("c", kind=ContentKind.PODCAST)
        base = RichContextScorer()
        plain_context = self.context()
        from repro.recommender.context_relevance import ContextScorer

        assert base.score(clip, plain_context) == pytest.approx(
            ContextScorer().score(clip, plain_context)
        )

    def test_storm_boosts_traffic_and_weather(self):
        scorer = RichContextScorer()
        traffic = make_clip("traffic", category="traffic-and-weather")
        comedy = make_clip("comedy", category="comedy", kind=ContentKind.PODCAST)
        storm = self.context(weather="storm")
        clear = self.context(weather="clear")
        assert scorer.score(traffic, storm) > scorer.score(traffic, clear)
        assert scorer.weather_score(traffic, "storm") > scorer.weather_score(comedy, "storm")

    def test_running_activity_prefers_music(self):
        scorer = RichContextScorer()
        music = make_clip("music", category="music-pop", kind=ContentKind.MUSIC)
        podcast = make_clip("talk", category="talk-show", kind=ContentKind.PODCAST)
        assert scorer.activity_score(music, "running") > scorer.activity_score(podcast, "running")
        # A relaxed listener tolerates either.
        assert scorer.activity_score(podcast, "relaxing") >= 0.9

    def test_scores_stay_bounded(self):
        scorer = RichContextScorer()
        clip = make_clip("c", category="traffic-and-weather")
        context = self.context(weather="snow", activity="driving")
        assert 0.0 <= scorer.score(clip, context) <= 1.0

    def test_weight_validation(self):
        with pytest.raises(ValidationError):
            RichContextScorer(weather_weight=-0.1)


def scored(clip, score):
    return ScoredClip(clip=clip, content_score=score, context_score=score, compound_score=score)


class TestDiversification:
    def candidate_pool(self):
        return [
            scored(make_clip("econ-1", "economics", kind=ContentKind.PODCAST), 0.9),
            scored(make_clip("econ-2", "economics", kind=ContentKind.PODCAST), 0.88),
            scored(make_clip("econ-3", "economics", kind=ContentKind.PODCAST), 0.86),
            scored(make_clip("tech-1", "technology", kind=ContentKind.PODCAST), 0.8),
            scored(make_clip("food-1", "food-and-wine", kind=ContentKind.PODCAST), 0.75),
            scored(make_clip("jazz-1", "music-jazz", kind=ContentKind.MUSIC), 0.7),
        ]

    def test_diversified_list_covers_more_categories(self):
        pool = self.candidate_pool()
        plain_top3 = pool[:3]
        diversified = diversify(pool, diversity_weight=0.5, top_k=3)
        diversified_scored = [item.scored for item in diversified]
        assert list_diversity(diversified_scored) > list_diversity(plain_top3)
        # The most relevant item is still first.
        assert diversified[0].scored.clip_id == "econ-1"

    def test_zero_diversity_weight_preserves_relevance_order(self):
        pool = self.candidate_pool()
        reranked = diversify(pool, diversity_weight=0.0, top_k=4)
        assert [item.scored.clip_id for item in reranked] == [s.clip_id for s in pool[:4]]

    def test_top_k_and_ranks(self):
        reranked = diversify(self.candidate_pool(), top_k=2)
        assert len(reranked) == 2
        assert [item.rank for item in reranked] == [0, 1]

    def test_weight_validation(self):
        with pytest.raises(ValidationError):
            diversify(self.candidate_pool(), diversity_weight=1.5)

    def test_list_diversity_bounds(self):
        pool = self.candidate_pool()
        assert list_diversity(pool[:1]) == 0.0
        same = [pool[0], pool[1]]
        mixed = [pool[0], pool[5]]
        assert list_diversity(mixed) > list_diversity(same)

    def test_plan_diversity(self):
        pool = self.candidate_pool()
        items = [
            ScheduledClip(scored=pool[0], window=TimeWindow(0.0, 100.0)),
            ScheduledClip(scored=pool[5], window=TimeWindow(110.0, 200.0)),
        ]
        plan = RecommendationPlan(user_id="u1", created_s=0.0, available_s=300.0, items=items)
        assert plan_diversity(plan) == pytest.approx(1.0)

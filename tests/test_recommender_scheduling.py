"""Tests for the distraction model, the ΔT scheduler and the proactive engine."""

import pytest

from repro.content import AudioClip, ContentKind, ContentRepository
from repro.errors import SchedulingError, ValidationError
from repro.geo import GeoPoint, Polyline
from repro.geo.geodesy import destination_point
from repro.recommender import (
    CandidateFilter,
    CompoundScorer,
    ContentBasedScorer,
    DistractionModel,
    ListenerContext,
    ProactiveEngine,
    Scheduler,
    SchedulerPolicy,
)
from repro.recommender.compound import ScoredClip
from repro.recommender.context import DrivingCondition
from repro.recommender.proactive import ProactiveConfig
from repro.roadnet.intersections import DistractionZone, IntersectionKind
from repro.trajectory.prediction import DestinationPrediction
from repro.trajectory.travel_time import TravelTimeEstimate
from repro.users import UserManager, UserProfile
from repro.util.timeutils import TimeWindow

TORINO = GeoPoint(45.0703, 7.6869)
NOW = 8 * 3600.0


def make_clip(clip_id, *, duration=300.0, category="economics", geo=None, kind=ContentKind.PODCAST):
    return AudioClip(
        clip_id=clip_id,
        title=clip_id,
        kind=kind,
        duration_s=duration,
        category_scores={category: 1.0},
        published_s=NOW - 3600.0,
        geo_location=geo,
        geo_radius_m=1500.0 if geo else None,
    )


def scored(clip, score):
    return ScoredClip(clip=clip, content_score=score, context_score=score, compound_score=score)


def zone(start, end, weight=0.9, kind=IntersectionKind.ROUNDABOUT):
    return DistractionZone(node_id="n", kind=kind, window=TimeWindow(start, end), weight=weight)


def driving_context(*, available=900.0, route=None, destination=None):
    travel = TravelTimeEstimate(available, available, available * 1.15, None, available, 0.0)
    return ListenerContext(
        user_id="u1",
        now_s=NOW,
        position=TORINO,
        speed_mps=12.0,
        is_driving=True,
        route=route,
        destination=destination,
        travel_time=travel,
    )


class TestDistractionModel:
    def test_blocked_windows_merge_and_pad(self):
        model = DistractionModel([zone(100, 110), zone(112, 120)], boundary_padding_s=3.0)
        assert len(model.blocked_windows) == 1
        assert model.is_blocked(97.5)
        assert model.is_blocked(115.0)
        assert not model.is_blocked(150.0)

    def test_low_weight_zones_not_blocking(self):
        model = DistractionModel([zone(100, 110, weight=0.3, kind=IntersectionKind.MINOR_JUNCTION)])
        assert not model.is_blocked(105.0)
        assert model.distraction_at(105.0) == pytest.approx(0.3)

    def test_next_clear_instant(self):
        model = DistractionModel([zone(100, 110)], boundary_padding_s=0.0)
        assert model.next_clear_instant(105.0) == pytest.approx(110.0)
        assert model.next_clear_instant(95.0) == 95.0

    def test_assess_boundary_suggests_shift(self):
        model = DistractionModel([zone(100, 110)], boundary_padding_s=0.0)
        assessment = model.assess_boundary(105.0)
        assert assessment.blocked
        assert assessment.suggested_shift_s == pytest.approx(5.0)
        clear = model.assess_boundary(200.0)
        assert not clear.blocked and clear.suggested_shift_s == 0.0

    def test_boundaries_in_blocked_counts(self):
        model = DistractionModel([zone(100, 110)])
        assert model.boundaries_in_blocked([105.0, 300.0, 108.0]) == 2

    def test_total_blocked(self):
        model = DistractionModel([zone(100, 110)], boundary_padding_s=0.0)
        assert model.total_blocked_s() == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            DistractionModel([], block_threshold=2.0)
        with pytest.raises(ValidationError):
            DistractionModel([], boundary_padding_s=-1.0)


class TestSchedulerSelection:
    def test_greedy_fills_budget_without_overflow(self):
        clips = [scored(make_clip(f"c{i}", duration=200.0 + 50.0 * i), 0.9 - 0.1 * i) for i in range(6)]
        plan = Scheduler().build_plan(clips, driving_context(available=700.0))
        assert plan.total_scheduled_s <= 700.0
        assert plan.items
        assert plan.fill_ratio <= 1.0

    def test_knapsack_at_least_as_good_as_greedy(self):
        clips = [
            scored(make_clip("big", duration=550.0), 0.85),
            scored(make_clip("mid-a", duration=300.0), 0.6),
            scored(make_clip("mid-b", duration=290.0), 0.6),
            scored(make_clip("small", duration=100.0), 0.2),
        ]
        context = driving_context(available=600.0)
        greedy = Scheduler(policy=SchedulerPolicy.GREEDY).build_plan(clips, context)
        knapsack = Scheduler(policy=SchedulerPolicy.KNAPSACK).build_plan(clips, context)
        assert knapsack.objective_value >= greedy.objective_value - 1e-9

    def test_clips_longer_than_budget_excluded(self):
        clips = [scored(make_clip("too-long", duration=1200.0), 0.99)]
        plan = Scheduler().build_plan(clips, driving_context(available=600.0))
        assert plan.items == []

    def test_max_items_respected(self):
        clips = [scored(make_clip(f"c{i}", duration=30.1), 0.9) for i in range(30)]
        plan = Scheduler(max_items=4).build_plan(clips, driving_context(available=3000.0))
        assert len(plan.items) <= 4

    def test_requires_positive_budget(self):
        with pytest.raises(SchedulingError):
            Scheduler().build_plan([], ListenerContext(user_id="u1", now_s=NOW, is_driving=True))

    def test_explicit_budget_overrides_context(self):
        clips = [scored(make_clip("c", duration=200.0), 0.8)]
        plan = Scheduler().build_plan(clips, ListenerContext(user_id="u1", now_s=NOW), available_s=500.0)
        assert plan.available_s == 500.0
        assert plan.items

    def test_parameter_validation(self):
        with pytest.raises(SchedulingError):
            Scheduler(min_gap_s=-1.0)
        with pytest.raises(SchedulingError):
            Scheduler(knapsack_resolution_s=0.0)
        with pytest.raises(SchedulingError):
            Scheduler(max_items=0)


class TestSchedulerPlacement:
    def test_items_sequential_and_non_overlapping(self):
        clips = [scored(make_clip(f"c{i}", duration=150.0), 0.8 - 0.05 * i) for i in range(5)]
        plan = Scheduler().build_plan(clips, driving_context(available=900.0))
        items = plan.items
        assert len(items) >= 3
        for earlier, later in zip(items, items[1:]):
            assert later.start_s >= earlier.end_s

    def test_boundaries_shifted_out_of_distraction_zones(self):
        clips = [scored(make_clip(f"c{i}", duration=120.0), 0.8) for i in range(4)]
        # A high-distraction window right at the start of the drive.
        model = DistractionModel([zone(NOW - 2.0, NOW + 30.0)])
        plan = Scheduler().build_plan(clips, driving_context(available=900.0), distraction=model)
        assert plan.items
        assert model.boundaries_in_blocked(plan.boundaries()) == 0

    def test_geo_anchored_item_placed_near_anchor(self):
        route = Polyline([TORINO, destination_point(TORINO, 90.0, 9000.0)])
        target = destination_point(TORINO, 90.0, 6000.0)  # two thirds along the route
        geo_clip = make_clip("local", duration=180.0, category="news-local", geo=target)
        clips = [scored(geo_clip, 0.7)] + [
            scored(make_clip(f"c{i}", duration=180.0), 0.75) for i in range(3)
        ]
        context = driving_context(available=900.0, route=route)
        plan = Scheduler().build_plan(clips, context)
        local_items = [item for item in plan.items if item.clip_id == "local"]
        assert local_items
        item = local_items[0]
        assert item.reason == "geo-anchored"
        ideal = NOW + (6000.0 / 9000.0) * 900.0
        midpoint = (item.start_s + item.end_s) / 2.0
        assert abs(midpoint - ideal) < 200.0

    def test_plan_reporting_helpers(self):
        clips = [scored(make_clip("c0", duration=200.0), 0.8), scored(make_clip("c1", duration=200.0), 0.6)]
        plan = Scheduler().build_plan(clips, driving_context(available=600.0))
        assert plan.clip_ids()
        assert len(plan.boundaries()) == 2 * len(plan.items)
        assert plan.objective_value == pytest.approx(sum(i.scored.final_score for i in plan.items))
        assert 0.0 < plan.mean_relevance <= 1.0
        assert all(isinstance(line, str) for line in plan.timeline())


class ProactiveHarness:
    """Small helper wiring content + users + engine for proactive tests."""

    def __init__(self, *, clips=None, config=None):
        self.content = ContentRepository()
        default_clips = [make_clip(f"c{i}", duration=180.0 + 20 * i) for i in range(8)]
        for clip in default_clips if clips is None else clips:
            self.content.add_clip(clip)
        self.users = UserManager(content=self.content)
        self.users.register(UserProfile(user_id="u1", display_name="Lilly"))
        self.users.preference_profile("u1").seeded(["economics"], ["comedy"])
        scorer = ContentBasedScorer(self.content, self.users)
        self.engine = ProactiveEngine(
            CandidateFilter(self.content, self.users),
            CompoundScorer(scorer),
            Scheduler(),
            config or ProactiveConfig(),
        )


class TestProactiveEngine:
    def confident_context(self, *, available=600.0):
        prediction = DestinationPrediction(1, destination_point(TORINO, 90.0, 5000.0), 0.8, 4000.0, 6)
        return driving_context(available=available, destination=prediction)

    def test_triggers_with_confident_context(self):
        harness = ProactiveHarness()
        decision = harness.engine.evaluate(self.confident_context(), drive_elapsed_s=300.0)
        assert decision.should_recommend
        assert decision.plan is not None and decision.plan.items
        assert decision.recommended_clip_ids

    def test_refuses_when_not_driving(self):
        harness = ProactiveHarness()
        context = ListenerContext(user_id="u1", now_s=NOW, is_driving=False)
        decision = harness.engine.evaluate(context, drive_elapsed_s=300.0)
        assert not decision.should_recommend
        assert "not driving" in decision.reason

    def test_refuses_early_in_drive(self):
        harness = ProactiveHarness()
        decision = harness.engine.evaluate(self.confident_context(), drive_elapsed_s=10.0)
        assert not decision.should_recommend

    def test_refuses_low_confidence(self):
        harness = ProactiveHarness()
        prediction = DestinationPrediction(1, TORINO, 0.1, 4000.0, 1)
        context = driving_context(available=600.0, destination=prediction)
        decision = harness.engine.evaluate(context, drive_elapsed_s=300.0)
        assert not decision.should_recommend
        assert "confidence" in decision.reason

    def test_refuses_short_available_time(self):
        harness = ProactiveHarness()
        decision = harness.engine.evaluate(self.confident_context(available=30.0), drive_elapsed_s=300.0)
        assert not decision.should_recommend

    def test_refuses_demanding_driving(self):
        harness = ProactiveHarness()
        prediction = DestinationPrediction(1, TORINO, 0.9, 4000.0, 6)
        travel = TravelTimeEstimate(600.0, 600.0, 700.0, None, 600.0, 0.0)
        context = ListenerContext(
            user_id="u1",
            now_s=NOW,
            position=TORINO,
            speed_mps=33.0,
            is_driving=True,
            destination=prediction,
            travel_time=travel,
            route_complexity=0.9,
        )
        assert context.driving_condition == DrivingCondition.DEMANDING
        decision = harness.engine.evaluate(context, drive_elapsed_s=300.0)
        assert not decision.should_recommend
        assert "demanding" in decision.reason

    def test_refuses_without_candidates(self):
        harness = ProactiveHarness(clips=[])
        decision = harness.engine.evaluate(self.confident_context(), drive_elapsed_s=300.0)
        assert not decision.should_recommend
        assert "no candidate" in decision.reason

    def test_no_fitting_clip(self):
        harness = ProactiveHarness(clips=[make_clip("huge", duration=3000.0)])
        config = ProactiveConfig(min_available_s=100.0)
        harness2 = ProactiveHarness(clips=[make_clip("huge", duration=3000.0)], config=config)
        decision = harness2.engine.evaluate(self.confident_context(available=150.0), drive_elapsed_s=300.0)
        assert not decision.should_recommend

    def test_editorial_boost_promotes_clip(self):
        clips = [make_clip(f"c{i}", duration=180.0, category="economics") for i in range(5)]
        clips.append(make_clip("boosted", duration=180.0, category="comedy"))
        harness = ProactiveHarness(clips=clips)
        without = harness.engine.evaluate(self.confident_context(), drive_elapsed_s=300.0)
        assert "boosted" not in without.recommended_clip_ids
        with_boost = harness.engine.evaluate(
            self.confident_context(), drive_elapsed_s=300.0, editorial_boosts={"boosted": 1.0}
        )
        assert "boosted" in with_boost.recommended_clip_ids

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            ProactiveConfig(min_destination_confidence=1.5)
        with pytest.raises(ValidationError):
            ProactiveConfig(min_available_s=0.0)

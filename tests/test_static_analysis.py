"""Tests for :mod:`repro.analysis` — the architectural-invariant linter.

Every rule gets a firing *and* a non-firing fixture tree, suppressions
and the baseline are exercised through the engine and the CLI, and a
self-check asserts the real ``src/repro`` tree is clean modulo the
checked-in baseline — the same gate CI runs.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, Baseline, run_analysis, tooling_summary
from repro.analysis.baseline import DEFAULT_BASELINE_NAME
from repro.analysis.cli import main
from repro.analysis.engine import SUPPRESSION_RULE
from repro.analysis.facts import extract_module
from repro.analysis.report import render
from repro.errors import ValidationError

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"

#: A wal.py declaring one logged and one suppressed topic — fixture trees
#: for the channel audit build on this.
WAL_FIXTURE = """
    WAL_LOGGED_TOPICS = frozenset({"clip.ingested"})
    WAL_SUPPRESSED_TOPICS = frozenset({"api.request"})
    """


def write_tree(tmp_path: Path, files) -> Path:
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def analyze(tmp_path: Path, files, *, baseline=None):
    write_tree(tmp_path, files)
    return run_analysis(
        [tmp_path], root=tmp_path, rules=ALL_RULES, baseline=baseline
    )


def keys(result, rule: str):
    """Stable keys of the *new* findings one rule produced."""
    return sorted(f.key for f in result.new if f.rule == rule)


# ---------------------------------------------------------------------------
# Fact extraction
# ---------------------------------------------------------------------------


class TestFactExtraction:
    def test_classes_attrs_calls_and_consts(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "mod.py": """
                import time
                from collections import OrderedDict

                TOPICS = frozenset({"a.b", "c.d"})
                LIMIT = 5

                class Store:
                    def __init__(self):
                        self._rows = {}
                        self._order = OrderedDict()
                        self._name = "store"

                    def tick(self):
                        return time.time()
                """,
            },
        )
        module = extract_module(root / "mod.py", root)
        assert module.parse_error is None
        assert module.consts["TOPICS"] == ("a.b", "c.d")
        assert module.consts["LIMIT"] == 5
        store = module.classes["Store"]
        assert store.init_attrs["_rows"].mutable
        assert store.init_attrs["_order"].mutable
        assert not store.init_attrs["_name"].mutable
        tick_calls = [c for c in module.calls if c.scope == "Store.tick"]
        assert tick_calls[0].qualified == "time.time"

    def test_from_import_is_qualified(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "mod.py": """
                from time import time

                def now():
                    return time()
                """,
            },
        )
        module = extract_module(root / "mod.py", root)
        assert [c.qualified for c in module.calls] == ["time.time"]

    def test_syntax_error_is_captured_not_raised(self, tmp_path):
        root = write_tree(tmp_path, {"bad.py": "def broken(:\n"})
        module = extract_module(root / "bad.py", root)
        assert module.parse_error is not None

    def test_docstring_mentioning_marker_is_not_a_suppression(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "mod.py": '''
                """Docs describing the '# repro: allow[some-rule] why' syntax."""
                VALUE = 1
                ''',
            },
        )
        module = extract_module(root / "mod.py", root)
        assert module.suppressions == []
        assert module.malformed_suppressions == []


# ---------------------------------------------------------------------------
# snapshot-completeness
# ---------------------------------------------------------------------------


class TestSnapshotCompleteness:
    def test_uncovered_mutable_attr_fires(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "store.py": """
                class Store:
                    def __init__(self):
                        self._rows = {}
                        self._cache = {}

                    def snapshot(self):
                        return {"rows": dict(self._rows)}

                    def restore(self, payload):
                        self._rows = dict(payload["rows"])
                """,
            },
        )
        assert keys(result, "snapshot-completeness") == ["Store._cache"]

    def test_coverage_through_helper_closure(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "store.py": """
                class Store:
                    def __init__(self):
                        self._rows = {}
                        self._cache = {}

                    def snapshot(self):
                        return {"rows": dict(self._rows)}

                    def restore(self, payload):
                        self._rows = dict(payload["rows"])
                        self._reset()

                    def _reset(self):
                        self._cache = {}
                """,
            },
        )
        assert keys(result, "snapshot-completeness") == []

    def test_exemption_silences_and_stale_exemption_fires(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "store.py": """
                class Store:
                    SNAPSHOT_EXEMPT = ("_cache", "_ghost")

                    def __init__(self):
                        self._rows = {}
                        self._cache = {}

                    def snapshot(self):
                        return {"rows": dict(self._rows)}

                    def restore(self, payload):
                        self._rows = dict(payload["rows"])
                """,
            },
        )
        assert keys(result, "snapshot-completeness") == ["Store.stale._ghost"]

    def test_non_store_and_immutable_attrs_are_ignored(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "other.py": """
                class Snapshotter:
                    def __init__(self):
                        self._pending = []

                    def snapshot(self):
                        return list(self._pending)

                class Plain:
                    def __init__(self):
                        self._count = 0
                """,
            },
        )
        assert keys(result, "snapshot-completeness") == []


# ---------------------------------------------------------------------------
# wal-channel-audit
# ---------------------------------------------------------------------------


class TestWalChannelAudit:
    def test_declared_and_published_is_clean(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "storage/wal.py": WAL_FIXTURE,
                "pipeline/feed.py": """
                def announce(bus, clip_id):
                    bus.publish("clip.ingested", {"clip_id": clip_id})
                    bus.publish("api.request", {"route": "r"})
                """,
            },
        )
        assert keys(result, "wal-channel-audit") == []

    def test_undeclared_topic_fires(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "storage/wal.py": WAL_FIXTURE,
                "pipeline/feed.py": """
                def announce(bus):
                    bus.publish("clip.ingested", {})
                    bus.publish("api.request", {})
                    bus.publish("mystery.event", {})
                """,
            },
        )
        assert keys(result, "wal-channel-audit") == ["undeclared:mystery.event"]

    def test_missing_declarations_fire(self, tmp_path):
        result = analyze(
            tmp_path,
            {"storage/wal.py": "GLOBAL_LOG = 'global'\n"},
        )
        assert keys(result, "wal-channel-audit") == [
            "missing:WAL_LOGGED_TOPICS",
            "missing:WAL_SUPPRESSED_TOPICS",
        ]

    def test_topic_in_both_sets_fires(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "storage/wal.py": """
                WAL_LOGGED_TOPICS = frozenset({"x.y"})
                WAL_SUPPRESSED_TOPICS = frozenset({"x.y"})
                """,
                "pipeline/feed.py": """
                def announce(bus):
                    bus.publish("x.y", {})
                """,
            },
        )
        assert keys(result, "wal-channel-audit") == ["both:x.y"]

    def test_stale_declaration_fires_unless_referenced(self, tmp_path):
        files = {
            "storage/wal.py": WAL_FIXTURE,
            "pipeline/feed.py": """
            def announce(bus):
                bus.publish("clip.ingested", {})
            """,
        }
        stale = analyze(tmp_path / "stale", files)
        assert keys(stale, "wal-channel-audit") == ["stale:api.request"]
        # A string reference elsewhere (a constructor default, a subscribe
        # site) keeps the declaration alive — the real gateway's injected
        # topic relies on this.
        files["pipeline/middleware.py"] = 'DEFAULT_TOPIC = "api.request"\n'
        referenced = analyze(tmp_path / "referenced", files)
        assert keys(referenced, "wal-channel-audit") == []

    def test_dynamic_topic_fires_and_suppression_clears_it(self, tmp_path):
        files = {
            "storage/wal.py": WAL_FIXTURE,
            "pipeline/feed.py": """
            def announce(bus):
                bus.publish("clip.ingested", {})

            class Api:
                def __init__(self, bus, topic="api.request"):
                    self._bus = bus
                    self._topic = topic

                def emit(self):
                    self._bus.publish(self._topic, {"n": 1})
            """,
        }
        fired = analyze(tmp_path / "fired", files)
        assert keys(fired, "wal-channel-audit") == ["dynamic:Api.emit"]
        files["pipeline/feed.py"] = """
            def announce(bus):
                bus.publish("clip.ingested", {})

            class Api:
                def __init__(self, bus, topic="api.request"):
                    self._bus = bus
                    self._topic = topic

                def emit(self):
                    # repro: allow[wal-channel-audit] default "api.request" is declared
                    self._bus.publish(self._topic, {"n": 1})
            """
        silenced = analyze(tmp_path / "silenced", files)
        assert keys(silenced, "wal-channel-audit") == []
        assert [f.key for f in silenced.suppressed] == ["dynamic:Api.emit"]

    def test_tree_without_wal_module_is_ignored(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "feed.py": """
                def announce(bus):
                    bus.publish("anything.goes", {})
                """,
            },
        )
        assert keys(result, "wal-channel-audit") == []


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_and_ambient_randomness_fire_in_scope(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "loadgen/script.py": """
                import random
                import time

                def jitter():
                    return random.random() + time.time()

                def unseeded():
                    return random.Random()
                """,
            },
        )
        assert keys(result, "determinism") == [
            "random.Random@unseeded",
            "random.random@jitter",
            "time.time@jitter",
        ]

    def test_seeded_rng_and_perf_counter_are_allowed(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "loadgen/script.py": """
                import random
                import time

                def generator(seed):
                    return random.Random(seed)

                def measure():
                    return time.perf_counter()
                """,
            },
        )
        assert keys(result, "determinism") == []

    def test_out_of_scope_and_exempt_paths_are_ignored(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "recommender/scoring.py": """
                import time

                def now():
                    return time.time()
                """,
                "util/rng.py": """
                import random

                def make():
                    return random.Random()
                """,
            },
        )
        assert keys(result, "determinism") == []


# ---------------------------------------------------------------------------
# shard-safety
# ---------------------------------------------------------------------------


class TestShardSafety:
    def test_unrouted_access_fires(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "users/store.py": """
                class Store:
                    def __init__(self, dbs):
                        self._dbs = dbs

                    def peek(self, i):
                        return self._dbs[i]

                    def grab(self, db, i):
                        return db.shard(i)
                """,
            },
        )
        assert keys(result, "shard-safety") == [
            "raw-dbs:Store.peek",
            "shard-call:Store.grab",
        ]

    def test_routed_and_layout_scopes_are_allowed(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "users/store.py": """
                from repro.storage.sharding import shard_of

                class Store:
                    def __init__(self, dbs):
                        self._dbs = dbs
                        self._caches = [dict() for _ in dbs]

                    def table_for(self, user_id):
                        return self._dbs[shard_of(user_id, len(self._dbs))]

                    def cache_for(self, shard):
                        return self._caches[shard]

                    def restore_shard(self, i, payload):
                        self._dbs[i].load(payload)

                    def snapshot(self):
                        return [db.dump() for db in self._dbs]

                    def restore(self, payload):
                        for db, item in zip(self._dbs, payload):
                            db.load(item)
                """,
            },
        )
        assert keys(result, "shard-safety") == []

    def test_outside_per_user_packages_is_ignored(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "client/tools.py": """
                def peek(dbs, i):
                    return dbs.databases[i]
                """,
            },
        )
        assert keys(result, "shard-safety") == []


# ---------------------------------------------------------------------------
# error-mapping-coverage
# ---------------------------------------------------------------------------

ERRORS_FIXTURE = """
    class ReproError(Exception):
        pass

    class AlphaError(ReproError):
        pass

    class BetaError(AlphaError):
        pass

    class GammaError(ReproError):
        pass
    """


class TestErrorMappingCoverage:
    def test_unmapped_subclass_fires_transitively(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "errors.py": ERRORS_FIXTURE,
                "pipeline/gateway/middleware.py": """
                def map_error(exc):
                    if isinstance(exc, AlphaError):
                        return 400
                    if isinstance(exc, GammaError):
                        return 422
                    return 500
                """,
            },
        )
        # BetaError is a subclass *of a subclass* and still must be named.
        assert keys(result, "error-mapping-coverage") == ["BetaError"]

    def test_fully_mapped_taxonomy_is_clean(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "errors.py": ERRORS_FIXTURE,
                "pipeline/gateway/middleware.py": """
                def map_error(exc):
                    for error_type, status in (
                        (AlphaError, 400),
                        (BetaError, 422),
                        (GammaError, 409),
                    ):
                        if isinstance(exc, error_type):
                            return status
                    return 500
                """,
            },
        )
        assert keys(result, "error-mapping-coverage") == []

    def test_missing_mapper_function_fires(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "errors.py": ERRORS_FIXTURE,
                "pipeline/gateway/middleware.py": "CHAIN = ('auth',)\n",
            },
        )
        assert keys(result, "error-mapping-coverage") == ["missing:map_error"]

    def test_tree_without_gateway_is_ignored(self, tmp_path):
        result = analyze(tmp_path, {"errors.py": ERRORS_FIXTURE})
        assert keys(result, "error-mapping-coverage") == []


# ---------------------------------------------------------------------------
# metric-naming
# ---------------------------------------------------------------------------


class TestMetricNaming:
    def test_bad_names_fire(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "obs/wiring.py": """
                def wire(registry):
                    registry.counter("walBytes", "bad case")
                    registry.counter("wal_appends", "missing _total")
                    registry.histogram("append_latency", "missing unit")
                    registry.latency_histogram("request_time_ms", "wrong unit")
                """,
            },
        )
        assert keys(result, "metric-naming") == [
            "case:walBytes",
            "suffix:append_latency",
            "suffix:request_time_ms",
            "suffix:wal_appends",
        ]

    def test_conforming_names_and_passthroughs_are_clean(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "obs/wiring.py": """
                def wire(registry, name):
                    registry.counter("wal_appends_total", "good")
                    registry.histogram("append_seconds", "good")
                    registry.histogram("frame_bytes", "good")
                    registry.gauge("queue_depth", "gauges take any suffix")
                    registry.counter(name, "non-literal is out of scope")
                """,
            },
        )
        assert keys(result, "metric-naming") == []


# ---------------------------------------------------------------------------
# Suppressions and hygiene
# ---------------------------------------------------------------------------

STORE_WITH_GAP = """
    class Store:
        def __init__(self):
            self._rows = {{}}
            self._cache = {{}}{marker}

        def snapshot(self):
            return {{"rows": dict(self._rows)}}

        def restore(self, payload):
            self._rows = dict(payload["rows"])
    """


class TestSuppressions:
    def test_same_line_allow_silences(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "store.py": STORE_WITH_GAP.format(
                    marker="  # repro: allow[snapshot-completeness] rebuilt lazily"
                ),
            },
        )
        assert result.new == []
        assert [f.key for f in result.suppressed] == ["Store._cache"]

    def test_line_above_and_wildcard_allow_silence(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "store.py": """
                class Store:
                    def __init__(self):
                        self._rows = {}
                        # repro: allow[*] demo wildcard
                        self._cache = {}

                    def snapshot(self):
                        return {"rows": dict(self._rows)}

                    def restore(self, payload):
                        self._rows = dict(payload["rows"])
                """,
            },
        )
        assert result.new == []
        assert [f.key for f in result.suppressed] == ["Store._cache"]

    def test_reasonless_allow_is_flagged(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "store.py": STORE_WITH_GAP.format(
                    marker="  # repro: allow[snapshot-completeness]"
                ),
            },
        )
        assert keys(result, SUPPRESSION_RULE) == [
            "no-reason:snapshot-completeness"
        ]

    def test_unused_allow_is_flagged(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "mod.py": """
                # repro: allow[determinism] nothing here needs this
                VALUE = 1
                """,
            },
        )
        assert keys(result, SUPPRESSION_RULE) == ["unused:determinism"]

    def test_malformed_marker_is_flagged(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "mod.py": """
                VALUE = 1  # repro: allowed[snapshot-completeness] typo
                """,
            },
        )
        assert keys(result, SUPPRESSION_RULE) == ["malformed:2"]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_baseline_matches_on_key_across_line_moves(self, tmp_path):
        files = {"store.py": STORE_WITH_GAP.format(marker="")}
        first = analyze(tmp_path / "v1", files)
        assert not first.ok
        baseline = Baseline.from_findings(first.new, reason="grandfathered")
        # Unrelated edits shift every line; the entry still matches.
        files["store.py"] = "# a new leading comment\n" + textwrap.dedent(
            files["store.py"]
        )
        second = analyze(tmp_path / "v2", files, baseline=baseline)
        assert second.ok
        assert [f.key for f in second.baselined] == ["Store._cache"]

    def test_save_load_round_trip(self, tmp_path):
        files = {"store.py": STORE_WITH_GAP.format(marker="")}
        result = analyze(tmp_path / "tree", files)
        baseline = Baseline.from_findings(result.new, reason="historical")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == len(baseline) == 1
        assert loaded.entries()[0]["reason"] == "historical"

    def test_missing_file_is_empty_and_garbage_raises(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("[]", encoding="utf-8")
        with pytest.raises(ValidationError):
            Baseline.load(bad)


# ---------------------------------------------------------------------------
# Reports and CLI
# ---------------------------------------------------------------------------


class TestReportsAndCli:
    def _dirty_tree(self, tmp_path):
        return write_tree(
            tmp_path, {"store.py": STORE_WITH_GAP.format(marker="")}
        )

    def test_text_github_and_json_formats(self, tmp_path):
        root = self._dirty_tree(tmp_path)
        result = run_analysis([root], root=root, rules=ALL_RULES)
        text = render(result, "text")
        assert "store.py:5" in text and "FAIL" in text
        github = render(result, "github")
        assert "::error file=store.py,line=5" in github
        payload = json.loads(render(result, "json"))
        assert payload["ok"] is False
        assert payload["new"][0]["key"] == "Store._cache"
        with pytest.raises(ValueError):
            render(result, "yaml")

    def test_cli_exit_codes_and_report_artifact(self, tmp_path):
        root = self._dirty_tree(tmp_path)
        out = io.StringIO()
        report = tmp_path / "report.json"
        code = main(
            [str(root), "--root", str(root), "--report", str(report)],
            stdout=out,
        )
        assert code == 1
        assert json.loads(report.read_text())["ok"] is False
        clean = write_tree(
            tmp_path / "clean", {"ok.py": "VALUE = 1\n"}
        )
        assert main([str(clean), "--root", str(clean)], stdout=io.StringIO()) == 0

    def test_cli_write_baseline_then_green(self, tmp_path):
        root = self._dirty_tree(tmp_path)
        assert main([str(root), "--root", str(root)], stdout=io.StringIO()) == 1
        assert (
            main(
                [str(root), "--root", str(root), "--write-baseline"],
                stdout=io.StringIO(),
            )
            == 0
        )
        assert (root / DEFAULT_BASELINE_NAME).exists()
        assert main([str(root), "--root", str(root)], stdout=io.StringIO()) == 0
        # --no-baseline reveals the grandfathered finding again.
        assert (
            main(
                [str(root), "--root", str(root), "--no-baseline"],
                stdout=io.StringIO(),
            )
            == 1
        )

    def test_cli_list_rules(self):
        out = io.StringIO()
        assert main(["--list-rules"], stdout=out) == 0
        listing = out.getvalue()
        for rule in ALL_RULES:
            assert rule.name in listing


# ---------------------------------------------------------------------------
# The real tree
# ---------------------------------------------------------------------------


class TestRealTree:
    def test_rule_catalogue_is_complete_and_unique(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(names) == len(set(names))
        assert set(names) >= {
            "snapshot-completeness",
            "wal-channel-audit",
            "determinism",
            "shard-safety",
            "error-mapping-coverage",
            "metric-naming",
        }

    def test_src_repro_is_clean_modulo_baseline(self):
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
        result = run_analysis(
            [SRC_REPRO], root=REPO_ROOT, rules=ALL_RULES, baseline=baseline
        )
        assert result.ok, "\n".join(
            f"{f.path}:{f.line} [{f.rule}] {f.message}" for f in result.new
        )

    def test_tooling_summary_reports_the_catalogue(self):
        summary = tooling_summary()
        assert summary["rules"] == len(ALL_RULES)
        assert summary["baseline"] is not None

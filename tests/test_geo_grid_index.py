"""Tests for the uniform grid spatial index."""

import pytest

from repro.errors import GeometryError, NotFoundError
from repro.geo import BoundingBox, GeoPoint, GridIndex
from repro.geo.geodesy import destination_point

CENTER = GeoPoint(45.07, 7.68)


def ring(count: int, radius_m: float):
    """Points evenly spread on a circle around the centre."""
    return [destination_point(CENTER, i * (360.0 / count), radius_m) for i in range(count)]


class TestGridIndexBasics:
    def test_invalid_cell_size(self):
        with pytest.raises(GeometryError):
            GridIndex(cell_size_m=0)

    def test_insert_and_len(self):
        index = GridIndex()
        index.insert("a", CENTER)
        assert len(index) == 1
        assert "a" in index

    def test_insert_moves_existing(self):
        index = GridIndex()
        index.insert("a", CENTER)
        new_position = destination_point(CENTER, 0.0, 5000.0)
        index.insert("a", new_position)
        assert len(index) == 1
        assert index.position_of("a") == new_position

    def test_remove(self):
        index = GridIndex()
        index.insert("a", CENTER)
        index.remove("a")
        assert len(index) == 0
        with pytest.raises(NotFoundError):
            index.remove("a")

    def test_position_of_missing(self):
        with pytest.raises(NotFoundError):
            GridIndex().position_of("ghost")


class TestGridIndexQueries:
    def test_query_radius_finds_all_within(self):
        index = GridIndex(cell_size_m=500.0)
        for i, point in enumerate(ring(12, 800.0)):
            index.insert(f"near-{i}", point)
        for i, point in enumerate(ring(6, 5000.0)):
            index.insert(f"far-{i}", point)
        hits = index.query_radius(CENTER, 1000.0)
        names = {name for name, _d in hits}
        assert names == {f"near-{i}" for i in range(12)}

    def test_query_radius_sorted_by_distance(self):
        index = GridIndex()
        index.insert("close", destination_point(CENTER, 0.0, 100.0))
        index.insert("far", destination_point(CENTER, 0.0, 900.0))
        hits = index.query_radius(CENTER, 2000.0)
        assert [name for name, _d in hits] == ["close", "far"]

    def test_query_radius_negative_raises(self):
        with pytest.raises(GeometryError):
            GridIndex().query_radius(CENTER, -5.0)

    def test_query_bbox(self):
        index = GridIndex()
        inside = destination_point(CENTER, 45.0, 500.0)
        outside = destination_point(CENTER, 45.0, 50000.0)
        index.insert("inside", inside)
        index.insert("outside", outside)
        box = BoundingBox.around(CENTER, 1000.0)
        assert index.query_bbox(box) == ["inside"]

    def test_nearest(self):
        index = GridIndex()
        index.insert("a", destination_point(CENTER, 10.0, 300.0))
        index.insert("b", destination_point(CENTER, 10.0, 3000.0))
        nearest = index.nearest(CENTER)
        assert nearest is not None
        assert nearest[0] == "a"

    def test_nearest_empty(self):
        assert GridIndex().nearest(CENTER) is None

    def test_nearest_respects_max_radius(self):
        index = GridIndex()
        index.insert("far", destination_point(CENTER, 0.0, 40000.0))
        assert index.nearest(CENTER, max_radius_m=10000.0) is None

    def test_items_round_trip(self):
        index = GridIndex()
        index.insert("a", CENTER)
        items = dict(index.items())
        assert items == {"a": CENTER}


HIGH_LAT_CENTER = GeoPoint(68.4, 17.4)  # Narvik: lon degrees are ~2.7x shorter


class TestGridIndexHighLatitude:
    """Longitude cells shrink by cos(lat); queries must widen the lon scan."""

    def test_query_radius_finds_east_west_matches(self):
        index = GridIndex(cell_size_m=500.0)
        east = destination_point(HIGH_LAT_CENTER, 90.0, 3000.0)
        west = destination_point(HIGH_LAT_CENTER, 270.0, 3000.0)
        index.insert("east", east)
        index.insert("west", west)
        hits = index.query_radius(HIGH_LAT_CENTER, 3500.0)
        assert {name for name, _d in hits} == {"east", "west"}

    def test_query_radius_full_ring(self):
        index = GridIndex(cell_size_m=500.0)
        for i, point in enumerate(
            destination_point(HIGH_LAT_CENTER, bearing, 4000.0)
            for bearing in range(0, 360, 15)
        ):
            index.insert(f"ring-{i}", point)
        hits = index.query_radius(HIGH_LAT_CENTER, 4500.0)
        assert len(hits) == 24

    def test_query_bbox_east_west(self):
        index = GridIndex(cell_size_m=500.0)
        inside = destination_point(HIGH_LAT_CENTER, 90.0, 900.0)
        outside = destination_point(HIGH_LAT_CENTER, 90.0, 30000.0)
        index.insert("inside", inside)
        index.insert("outside", outside)
        box = BoundingBox.around(HIGH_LAT_CENTER, 1000.0)
        assert index.query_bbox(box) == ["inside"]

    def test_nearest_east_match(self):
        index = GridIndex(cell_size_m=500.0)
        index.insert("due-east", destination_point(HIGH_LAT_CENTER, 90.0, 9000.0))
        nearest = index.nearest(HIGH_LAT_CENTER)
        assert nearest is not None
        assert nearest[0] == "due-east"
        assert nearest[1] == pytest.approx(9000.0, rel=1e-3)


class TestGridIndexNearestExpansion:
    """The radius-doubling search scans each cell ring only once."""

    def test_nearest_picks_global_minimum_across_rings(self):
        index = GridIndex(cell_size_m=250.0)
        # One item just outside the first search radius, one much farther:
        # the second ring scan must keep the closer of the two.
        index.insert("near", destination_point(CENTER, 45.0, 1400.0))
        index.insert("far", destination_point(CENTER, 225.0, 1900.0))
        nearest = index.nearest(CENTER)
        assert nearest is not None
        assert nearest[0] == "near"

    def test_nearest_beyond_several_doublings(self):
        index = GridIndex(cell_size_m=1000.0)
        index.insert("lonely", destination_point(CENTER, 10.0, 30000.0))
        nearest = index.nearest(CENTER, max_radius_m=50000.0)
        assert nearest is not None
        assert nearest[0] == "lonely"
        assert nearest[1] == pytest.approx(30000.0, rel=1e-3)

    def test_nearest_exactly_at_max_radius_boundary(self):
        index = GridIndex(cell_size_m=1000.0)
        index.insert("edge", destination_point(CENTER, 0.0, 9900.0))
        nearest = index.nearest(CENTER, max_radius_m=10000.0)
        assert nearest is not None
        assert nearest[0] == "edge"

    def test_nearest_visits_each_cell_once(self, monkeypatch):
        import repro.geo.grid_index as grid_module

        index = GridIndex(cell_size_m=1000.0)
        index.insert("target", destination_point(CENTER, 0.0, 14500.0))

        calls = {"count": 0}
        real_haversine = grid_module.haversine_m

        def counting_haversine(a, b):
            calls["count"] += 1
            return real_haversine(a, b)

        monkeypatch.setattr(grid_module, "haversine_m", counting_haversine)
        nearest = index.nearest(CENTER, max_radius_m=50000.0)
        assert nearest is not None and nearest[0] == "target"
        # The single stored item sits in a single cell: visiting every ring
        # exactly once means exactly one distance evaluation.
        assert calls["count"] == 1

"""Tests for the client app, editorial desk and control dashboard."""

import pytest

from repro.client import ClientApp, ClientEventKind, ControlDashboard, EditorialDesk
from repro.content import AudioClip, ContentKind, ContentRepository, LiveProgramme, RadioService
from repro.delivery import SegmentSource
from repro.errors import DeliveryError, NotFoundError, ValidationError
from repro.geo import GeoPoint
from repro.users import FeedbackKind, UserManager, UserProfile
from repro.util.timeutils import TimeWindow, parse_clock

TORINO = GeoPoint(45.0703, 7.6869)


def build_stack():
    """Content repository with one service/schedule + one registered user."""
    content = ContentRepository()
    content.add_service(RadioService(service_id="radio-uno", name="Radio Uno"))
    content.add_service(RadioService(service_id="radio-due", name="Radio Due"))
    for index, (start, end) in enumerate([("07:00", "08:00"), ("08:00", "09:00")]):
        programme = LiveProgramme(
            programme_id=f"uno-prog-{index}",
            service_id="radio-uno",
            title=f"Uno {index}",
            categories=["news-national"],
        )
        content.add_programme(programme)
        content.schedule_programme(programme.programme_id, TimeWindow(parse_clock(start), parse_clock(end)))
    due_prog = LiveProgramme(
        programme_id="due-prog-0", service_id="radio-due", title="Due 0", categories=["comedy"]
    )
    content.add_programme(due_prog)
    content.schedule_programme("due-prog-0", TimeWindow(parse_clock("07:00"), parse_clock("09:00")))
    clip = AudioClip(
        clip_id="clip-food",
        title="Decanter special",
        kind=ContentKind.PODCAST,
        duration_s=420.0,
        category_scores={"food-and-wine": 1.0},
    )
    content.add_clip(clip)
    users = UserManager(content=content)
    users.register(UserProfile(user_id="lilly", display_name="Lilly"))
    return content, users, clip


class TestClientApp:
    def test_tune_and_listen_generates_pings(self):
        content, users, _clip = build_stack()
        app = ClientApp("lilly", users, ping_interval_s=60.0)
        app.tune("radio-uno", content.schedule("radio-uno"), at_s=parse_clock("07:10"))
        app.listen_live(300.0)
        ping_events = [e for e in app.events() if e.kind == ClientEventKind.LISTEN_PING]
        assert len(ping_events) == 5
        assert len(users.feedback) == 5  # pings recorded as implicit positive feedback

    def test_play_clip_records_completion_feedback(self):
        content, users, clip = build_stack()
        app = ClientApp("lilly", users)
        app.tune("radio-uno", content.schedule("radio-uno"), at_s=parse_clock("07:10"))
        segment = app.play_recommended_clip(clip)
        assert segment.source == SegmentSource.CLIP
        kinds = {event.kind for event in app.events()}
        assert ClientEventKind.CLIP_STARTED in kinds
        assert ClientEventKind.CLIP_COMPLETED in kinds
        completed = [e for e in users.feedback.events_for_user("lilly") if e.kind == FeedbackKind.COMPLETED]
        assert [e.content_id for e in completed] == ["clip-food"]

    def test_skip_live_programme(self):
        content, users, _clip = build_stack()
        app = ClientApp("lilly", users)
        app.tune("radio-uno", content.schedule("radio-uno"), at_s=parse_clock("07:10"))
        app.listen_live(120.0)
        app.skip()
        skips = [e for e in users.feedback.events_for_user("lilly") if e.kind == FeedbackKind.SKIP]
        assert len(skips) == 1
        assert not skips[0].is_clip

    def test_like_and_dislike(self):
        content, users, clip = build_stack()
        app = ClientApp("lilly", users)
        app.tune("radio-uno", content.schedule("radio-uno"), at_s=parse_clock("07:10"))
        app.like(clip.clip_id)
        app.dislike("uno-prog-0")
        kinds = [e.kind for e in users.feedback.events_for_user("lilly")]
        assert FeedbackKind.LIKE in kinds and FeedbackKind.DISLIKE in kinds

    def test_channel_change_records_negative_feedback(self):
        content, users, _clip = build_stack()
        app = ClientApp("lilly", users)
        app.tune("radio-uno", content.schedule("radio-uno"), at_s=parse_clock("07:10"))
        app.listen_live(60.0)
        app.change_channel("radio-due", content.schedule("radio-due"))
        assert app.player.current_service_id == "radio-due"
        changes = [
            e for e in users.feedback.events_for_user("lilly") if e.kind == FeedbackKind.CHANNEL_CHANGE
        ]
        assert [e.content_id for e in changes] == ["uno-prog-0"]

    def test_report_position_feeds_tracking(self):
        content, users, _clip = build_stack()
        app = ClientApp("lilly", users)
        app.report_position(TORINO, timestamp_s=100.0, speed_mps=10.0)
        assert users.tracking.fix_count("lilly") == 1

    def test_actions_before_tuning_rejected(self):
        _content, users, clip = build_stack()
        app = ClientApp("lilly", users)
        with pytest.raises(DeliveryError):
            app.skip()
        with pytest.raises(DeliveryError):
            app.like(clip.clip_id)

    def test_invalid_ping_interval(self):
        _content, users, _clip = build_stack()
        with pytest.raises(DeliveryError):
            ClientApp("lilly", users, ping_interval_s=0.0)


class TestEditorialDesk:
    def test_inject_and_boosts(self):
        desk = EditorialDesk()
        desk.inject("clip-1", target_user_ids=["lilly"], boost=0.6, created_s=100.0)
        desk.inject("clip-2", boost=0.3, created_s=100.0)  # everyone
        boosts = desk.boosts_for("lilly", now_s=200.0)
        assert boosts == {"clip-1": 0.6, "clip-2": 0.3}
        assert desk.boosts_for("greg", now_s=200.0) == {"clip-2": 0.3}

    def test_expiry(self):
        desk = EditorialDesk()
        desk.inject("clip-1", boost=0.5, created_s=100.0, validity_s=50.0)
        assert desk.boosts_for("anyone", now_s=120.0) == {"clip-1": 0.5}
        assert desk.boosts_for("anyone", now_s=200.0) == {}

    def test_max_boost_wins_on_duplicates(self):
        desk = EditorialDesk()
        desk.inject("clip-1", boost=0.3, created_s=0.0)
        desk.inject("clip-1", boost=0.8, created_s=0.0)
        assert desk.boosts_for("u", now_s=1.0) == {"clip-1": 0.8}

    def test_withdraw(self):
        desk = EditorialDesk()
        injection = desk.inject("clip-1", boost=0.5, created_s=0.0)
        assert desk.withdraw(injection.injection_id)
        assert not desk.withdraw(injection.injection_id)
        assert desk.boosts_for("u", now_s=1.0) == {}

    def test_validation(self):
        desk = EditorialDesk()
        with pytest.raises(ValidationError):
            desk.inject("clip-1", boost=0.0, created_s=0.0)
        with pytest.raises(ValidationError):
            desk.inject("clip-1", boost=0.5, created_s=10.0, validity_s=0.0)


class TestControlDashboard:
    def test_overview_counts(self, small_world):
        server = small_world.server
        dashboard = ControlDashboard(server.users, server.content, editorial=server.editorial)
        overview = dashboard.overview()
        assert overview["users"] == len(small_world.commuters)
        assert overview["clips"] == server.content.clip_count()
        assert overview["services"] == 10
        assert overview["feedback_events"] > 0
        assert overview["tracked_users"] > 0

    def test_trajectory_report(self, small_world):
        server = small_world.server
        dashboard = ControlDashboard(server.users, server.content)
        user_id = small_world.commuters[0].user_id
        report = dashboard.trajectory_report(user_id)
        assert report.fix_count > 0
        assert report.trip_count >= 2
        assert report.stay_points
        assert report.total_distance_km > 1.0
        assert any(user_id in line for line in report.summary_lines())

    def test_trajectory_report_unknown_user(self, small_world):
        server = small_world.server
        dashboard = ControlDashboard(server.users, server.content)
        with pytest.raises(NotFoundError):
            dashboard.trajectory_report("ghost")

    def test_recommendation_report_requires_plan(self, small_world):
        server = small_world.server
        dashboard = ControlDashboard(server.users, server.content)
        with pytest.raises(NotFoundError):
            dashboard.recommendation_report(small_world.commuters[0].user_id)

    def test_recommendation_and_preference_reports(self, small_world):
        server = small_world.server
        dashboard = ControlDashboard(server.users, server.content)
        commuter = small_world.commuters[0]
        drive = small_world.commuter_generator.live_drive(commuter, day=small_world.today)
        observe = drive.departure_s + 240.0
        server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
        decision = server.recommend(commuter.user_id, now_s=observe, drive_elapsed_s=240.0)
        if decision.plan is not None:
            dashboard.record_plan(decision.plan)
            report = dashboard.recommendation_report(commuter.user_id)
            assert report.rows
            assert report.rows[0]["rank"] == 1
            assert any("recommendations" in line for line in report.summary_lines())
            assert dashboard.plans_for(commuter.user_id)
        preferences = dashboard.preference_report(commuter.user_id)
        assert any("content preferences" in line for line in preferences)

"""Online sessionizer vs. batch ``split_into_trips``: exact equivalence."""

import random

import pytest

from repro.errors import TrajectoryError
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.spatialdb import GpsFix
from repro.streaming import SessionizerConfig, TripSessionizer
from repro.trajectory.model import Trajectory, split_into_trips


def trip_key(trip):
    """Value identity of a trajectory: (t, lat, lon, speed) per point."""
    return [(p.timestamp_s, p.position.lat, p.position.lon, p.speed_mps) for p in trip.points]


def batch_trips(fixes, config):
    if len(fixes) < 1:
        return []
    return split_into_trips(
        Trajectory.from_fixes("u", fixes),
        stop_duration_s=config.stop_duration_s,
        stop_radius_m=config.stop_radius_m,
        max_gap_s=config.max_gap_s,
        min_trip_points=config.min_trip_points,
        min_trip_length_m=config.min_trip_length_m,
    )


def random_stream(rng, count, *, user_id="u"):
    """A stream mixing drives, dwells and reporting gaps."""
    fixes = []
    timestamp = 0.0
    position = GeoPoint(45.0, 7.6)
    for _ in range(count):
        action = rng.random()
        if action < 0.08:
            timestamp += rng.uniform(250.0, 900.0)  # straddles the gap rule
        elif action < 0.30:
            timestamp += rng.uniform(10.0, 40.0)  # dwell: barely moves
            position = destination_point(position, rng.uniform(0, 360), rng.uniform(0.0, 60.0))
        else:
            timestamp += rng.uniform(5.0, 30.0)  # drive
            position = destination_point(position, rng.uniform(0, 360), rng.uniform(80.0, 400.0))
        fixes.append(GpsFix(user_id, timestamp, position, speed_mps=rng.uniform(0.0, 30.0)))
    return fixes


class TestSessionizerEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_fix_by_fix_replay_matches_batch(self, seed):
        rng = random.Random(seed)
        fixes = random_stream(rng, rng.randint(2, 350))
        config = SessionizerConfig(
            stop_duration_s=rng.choice([120.0, 300.0]),
            stop_radius_m=rng.choice([75.0, 150.0]),
            max_gap_s=rng.choice([300.0, 600.0]),
            min_trip_points=rng.choice([2, 5]),
            min_trip_length_m=rng.choice([0.0, 400.0]),
        )
        sessionizer = TripSessionizer(config)
        emitted = []
        for fix in fixes:
            emitted.extend(sessionizer.add_fix(fix))
        emitted.extend(sessionizer.close_user("u"))
        assert [trip_key(t) for t in emitted] == [trip_key(t) for t in batch_trips(fixes, config)]

    @pytest.mark.parametrize("seed", range(12, 20))
    def test_prefix_peek_matches_batch_at_every_chunk(self, seed):
        """Mid-stream, emitted + peeked tail == batch over the prefix."""
        rng = random.Random(seed)
        fixes = random_stream(rng, rng.randint(10, 250))
        config = SessionizerConfig(stop_duration_s=180.0, min_trip_points=3, min_trip_length_m=200.0)
        sessionizer = TripSessionizer(config)
        emitted = []
        consumed = 0
        while consumed < len(fixes):
            chunk = rng.randint(1, 9)
            emitted.extend(sessionizer.add_fixes(fixes[consumed : consumed + chunk]))
            consumed += chunk
            online = [trip_key(t) for t in emitted] + [
                trip_key(t) for t in sessionizer.peek_tail_trips("u")
            ]
            reference = [trip_key(t) for t in batch_trips(fixes[:consumed], config)]
            assert online == reference

    def test_peek_is_non_destructive(self):
        rng = random.Random(99)
        fixes = random_stream(rng, 120)
        config = SessionizerConfig()
        sessionizer = TripSessionizer(config)
        emitted = []
        for fix in fixes:
            emitted.extend(sessionizer.add_fix(fix))
            sessionizer.peek_tail_trips("u")
            sessionizer.peek_tail_trips("u")  # twice: still must not disturb state
        emitted.extend(sessionizer.close_user("u"))
        assert [trip_key(t) for t in emitted] == [trip_key(t) for t in batch_trips(fixes, config)]


class TestSessionizerBehaviour:
    def _drive(self, start_s, origin, *, bearing=90.0, points=12, step_s=20.0, step_m=250.0):
        fixes = []
        position = origin
        for index in range(points):
            fixes.append(GpsFix("u", start_s + index * step_s, position, speed_mps=12.0))
            position = destination_point(position, bearing, step_m)
        return fixes

    def test_gap_closes_trip_immediately(self):
        sessionizer = TripSessionizer()
        origin = GeoPoint(45.0, 7.6)
        emitted = sessionizer.add_fixes(self._drive(0.0, origin))
        assert emitted == []  # the drive is still open
        # One fix after a long silence closes the previous trip.
        far = destination_point(origin, 90.0, 10000.0)
        emitted = sessionizer.add_fix(GpsFix("u", 5000.0, far))
        assert len(emitted) == 1
        assert emitted[0].user_id == "u"
        assert len(emitted[0]) == 12
        assert sessionizer.emitted_trip_count("u") == 1

    def test_single_point_history_yields_no_trips(self):
        sessionizer = TripSessionizer(SessionizerConfig(min_trip_points=1, min_trip_length_m=0.0))
        sessionizer.add_fix(GpsFix("u", 0.0, GeoPoint(45.0, 7.6)))
        assert sessionizer.close_user("u") == []

    def test_out_of_order_fix_rejected(self):
        sessionizer = TripSessionizer()
        sessionizer.add_fix(GpsFix("u", 100.0, GeoPoint(45.0, 7.6)))
        with pytest.raises(TrajectoryError):
            sessionizer.add_fix(GpsFix("u", 50.0, GeoPoint(45.0, 7.6)))

    def test_streams_are_per_user(self):
        sessionizer = TripSessionizer()
        a = GeoPoint(45.0, 7.6)
        b = GeoPoint(45.2, 7.8)
        sessionizer.add_fixes(self._drive(0.0, a))
        for fix in self._drive(0.0, b):
            sessionizer.add_fix(GpsFix("other", fix.timestamp_s, fix.position, fix.speed_mps))
        assert sessionizer.user_ids() == ["other", "u"]
        assert sessionizer.open_point_count("u") == 12
        assert len(sessionizer.close_user("u")) == 1
        assert sessionizer.open_point_count("u") == 0
        # The other user's stream is untouched.
        assert sessionizer.open_point_count("other") == 12

    def test_close_unknown_user_is_noop(self):
        assert TripSessionizer().close_user("ghost") == []

    def test_open_state_stays_bounded_during_long_dwell(self):
        """A parked car reporting for hours must not grow the buffers."""
        sessionizer = TripSessionizer()
        origin = GeoPoint(45.0, 7.6)
        sessionizer.add_fixes(self._drive(0.0, origin, points=20))
        parked = destination_point(origin, 90.0, 20 * 250.0)
        for index in range(500):
            sessionizer.add_fix(GpsFix("u", 400.0 + index * 30.0, parked, speed_mps=0.0))
        # The open trip was closed as soon as the dwell duration was proven;
        # the rest of the parked period collapses to the moving resume point.
        assert sessionizer.emitted_trip_count("u") == 1
        assert sessionizer.open_point_count("u") <= 2

    def test_config_validation(self):
        with pytest.raises(TrajectoryError):
            SessionizerConfig(stop_duration_s=0.0)
        with pytest.raises(TrajectoryError):
            SessionizerConfig(max_gap_s=-1.0)
        with pytest.raises(TrajectoryError):
            SessionizerConfig(min_trip_points=0)

"""Shard-partitioned storage: routing, merged cursors, parity, rebalancing.

The sharding contract, end to end:

* stable crc32 user→shard routing shared by every per-user store;
* the shard router's merged keyset pagination returns exactly the rows a
  single unsharded walk returns, whatever the shard count;
* a sharded deployment is *observably identical* to a single-database one
  for the same request sequence (stores, wire responses, models);
* per-shard single-writer parallelism (worker pool, parallel compaction,
  multi-user batch ingest) changes wall-clock, never results;
* snapshots are the migration primitive: whole-server payloads restore
  into any shard layout, per-shard payloads move one shard.
"""

from __future__ import annotations

import gzip
import json
import threading
import zlib

import pytest

from repro.errors import PipelineError, ValidationError
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.pipeline import Gateway
from repro.pipeline.server import PphcrServer, ServerConfig
from repro.spatialdb import GpsFix, TrackingStore
from repro.storage import (
    Column,
    IndexSpec,
    Schema,
    ShardedDatabase,
    ShardingConfig,
    ShardWorkerPool,
    payload_from_bytes,
    payload_to_bytes,
    shard_of,
)
from repro.users.feedback import FeedbackKind, FeedbackStore
from repro.users.profile import UserProfile
from repro.util.ids import reset_ids
from repro.util.rng import DeterministicRng


# Routing ------------------------------------------------------------------


def test_shard_of_is_stable_crc32():
    assert shard_of("user-007", 4) == zlib.crc32(b"user-007") % 4
    assert shard_of("user-007", 1) == 0
    # Every user id maps into range and the assignment is deterministic.
    for index in range(50):
        user_id = f"user-{index:03d}"
        assert 0 <= shard_of(user_id, 4) < 4
        assert shard_of(user_id, 4) == shard_of(user_id, 4)


def test_sharding_config_validates():
    assert ShardingConfig().shards == 4
    with pytest.raises(PipelineError):
        ShardingConfig(shards=0)


# Worker pool --------------------------------------------------------------


def test_worker_pool_runs_each_shard_on_its_own_worker():
    pool = ShardWorkerPool(3)
    try:
        results = pool.map_shards(
            {shard: (lambda shard=shard: (shard, threading.current_thread().name))
             for shard in range(3)}
        )
        assert sorted(results) == [0, 1, 2]
        names = {shard: name for shard, (value, name) in results.items()}
        assert len(set(names.values())) == 3
        for shard, name in names.items():
            assert name.startswith(f"shard-{shard}")
        # The same shard always lands on the same (single) worker thread.
        again = pool.map_shards({1: lambda: threading.current_thread().name})
        assert again[1] == names[1]
    finally:
        pool.shutdown()


def test_worker_pool_reraises_lowest_shard_error_first():
    pool = ShardWorkerPool(4)
    try:
        def boom(message):
            raise ValueError(message)

        with pytest.raises(ValueError, match="shard-1 failed"):
            pool.map_shards(
                {
                    3: lambda: boom("shard-3 failed"),
                    1: lambda: boom("shard-1 failed"),
                    2: lambda: "fine",
                }
            )
    finally:
        pool.shutdown()


# Merged keyset pagination -------------------------------------------------


def _events_db(shards: int) -> ShardedDatabase:
    def create_tables(db):
        db.create_table(
            Schema(
                name="events",
                primary_key="event_id",
                columns=[
                    Column("event_id", str),
                    Column("user_id", str),
                    Column("timestamp_s", float),
                ],
                indexes=[IndexSpec("time", kind="sorted", columns=("timestamp_s",))],
            )
        )

    return ShardedDatabase(
        "events", shards=shards, shard_key="user_id", create_tables=create_tables
    )


def _fill_events(db: ShardedDatabase, rng: DeterministicRng, count: int = 120) -> None:
    for index in range(count):
        user_id = f"user-{rng.randint(0, 17):03d}"
        db.table_for(user_id, "events").insert(
            {
                "event_id": f"ev-{index:04d}",
                "user_id": user_id,
                # Unique per row: among equal keys the merged walk breaks
                # ties by shard, a single table by insertion order.
                "timestamp_s": float((index * 37) % 251),
            }
        )


@pytest.mark.parametrize("descending", [False, True])
def test_merged_page_walk_matches_single_shard_walk(descending, seeded_rng):
    single, sharded = _events_db(1), _events_db(4)
    # Identically-labeled forks give both layouts the exact same rows.
    _fill_events(single, seeded_rng.fork("events"))
    _fill_events(sharded, seeded_rng.fork("events"))

    def walk(db, limit):
        rows, token = [], None
        while True:
            page = db.page_by_index(
                "events", "time", limit=limit, after_token=token, descending=descending
            )
            rows.extend(row["event_id"] for row in page.items)
            token = page.next_token
            if token is None:
                return rows

    for limit in (1, 3, 7, 50):
        assert walk(sharded, limit) == walk(single, limit)


def test_merged_page_walk_is_stable_under_inserts(seeded_rng):
    db = _events_db(4)
    _fill_events(db, seeded_rng.fork("events"), count=60)
    first = db.page_by_index("events", "time", limit=10)
    # New rows land behind the cursor position on every shard.
    for index in range(20):
        user_id = f"late-{index:02d}"
        db.table_for(user_id, "events").insert(
            {"event_id": f"late-{index:02d}", "user_id": user_id, "timestamp_s": 1000.0}
        )
    rest, token = [], first.next_token
    while token is not None:
        page = db.page_by_index("events", "time", limit=10, after_token=token)
        rest.extend(row["event_id"] for row in page.items)
        token = page.next_token
    seen = [row["event_id"] for row in first.items] + rest
    assert len(seen) == len(set(seen)) == 80


def test_merged_cursor_rejects_foreign_and_malformed_tokens(seeded_rng):
    sharded = _events_db(4)
    single = _events_db(1)
    _fill_events(sharded, seeded_rng.fork("events"))
    _fill_events(single, seeded_rng.fork("events"))
    single_token = single.page_by_index("events", "time", limit=5).next_token
    with pytest.raises(ValidationError):
        # A 1-shard token has the wrong arity for a 4-shard router.
        sharded.page_by_index("events", "time", limit=5, after_token=single_token)
    with pytest.raises(ValidationError):
        sharded.page_by_index("events", "time", limit=5, after_token="not-a-token")


# Compressed snapshots -----------------------------------------------------


def test_gzip_snapshot_bytes_round_trip(seeded_rng):
    db = _events_db(4)
    _fill_events(db, seeded_rng.fork("events"))
    raw = db.snapshot_bytes()
    packed = db.snapshot_bytes(compress=True)
    assert packed[:2] == b"\x1f\x8b"
    assert len(packed) < len(raw)
    # Byte-equal after decompression, and both forms restore identically.
    assert gzip.decompress(packed) == raw
    assert payload_from_bytes(packed) == payload_from_bytes(raw) == db.snapshot()
    restored = _events_db(4)
    restored.restore_bytes(packed)
    assert restored.snapshot() == db.snapshot()
    with pytest.raises(ValidationError):
        payload_from_bytes(b"\x1f\x8b corrupted gzip stream")
    with pytest.raises(ValidationError):
        payload_to_bytes(["not", "a", "dict"])  # type: ignore[arg-type]


# Store parity -------------------------------------------------------------


def _fixes_for(user_id: str, base_rng: DeterministicRng, *, t0: float = 0.0, count: int = 8):
    # Fork by user id: every call with the same base rng and user draws the
    # same drive geometry, so twin servers ingest byte-identical data and
    # repeated rounds re-walk the same route at later timestamps.
    rng = base_rng.fork("fixes", user_id)
    base = GeoPoint(45.07 + rng.uniform(-0.02, 0.02), 7.68 + rng.uniform(-0.02, 0.02))
    bearing = rng.uniform(0.0, 360.0)
    return [
        GpsFix(
            user_id,
            t0 + 30.0 * index,
            destination_point(base, bearing, 250.0 * index),
            speed_mps=10.0,
        )
        for index in range(count)
    ]


def test_tracking_store_sharded_matches_single(seeded_rng):
    single, sharded = TrackingStore(), TrackingStore(shards=4)
    users = [f"user-{index:03d}" for index in range(12)]
    for store in (single, sharded):
        for user_id in users:
            for fix in _fixes_for(user_id, seeded_rng):
                store.add_fix(fix)
    assert sharded.shard_count == 4
    for user_id in users:
        assert sharded.shard_of(user_id) == shard_of(user_id, 4)
        assert sharded.fixes_for(user_id) == single.fixes_for(user_id)
        assert sharded.latest_fix(user_id) == single.latest_fix(user_id)
    assert sharded.user_ids() == single.user_ids()
    assert sharded.fix_count() == single.fix_count()
    center = single.latest_fix(users[0]).position
    assert sharded.users_within(center, 5000.0) == single.users_within(center, 5000.0)
    # The flat snapshot format is shard-layout independent: both layouts
    # produce the same payload and each restores the other's.
    assert sharded.snapshot() == single.snapshot()
    reloaded = TrackingStore(shards=3)
    reloaded.restore(single.snapshot())
    assert reloaded.snapshot() == single.snapshot()


def test_feedback_store_sharded_matches_single(seeded_rng):
    reset_ids()
    single = FeedbackStore()
    reset_ids()
    sharded = FeedbackStore(shards=4)
    rng = seeded_rng.fork("events")
    events = [
        (f"user-{rng.randint(0, 7):03d}", f"clip-{rng.randint(0, 4):03d}", float(index))
        for index in range(40)
    ]
    for store in (single, sharded):
        reset_ids()
        for user_id, content_id, timestamp_s in events:
            store.record(user_id, content_id, FeedbackKind.LIKE, timestamp_s=timestamp_s)
    assert len(sharded) == len(single) == 40
    assert sharded.version == single.version
    for user_id in {user_id for user_id, _content, _ts in events}:
        assert sharded.events_for_user(user_id) == single.events_for_user(user_id)
    assert sharded.events_for_content("clip-001") == single.events_for_content("clip-001")

    def walk(store):
        items, cursor = [], None
        while True:
            page = store.events_page(cursor=cursor, limit=7)
            items.extend(page.items)
            cursor = page.next_token
            if cursor is None:
                return items

    # The merged global listing yields the same events in the same order.
    assert walk(sharded) == walk(single)
    # Snapshots are portable across layouts: a single-store payload restores
    # into any shard count with identical observable state.
    reloaded = FeedbackStore(shards=2)
    reloaded.restore(single.snapshot())
    assert len(reloaded) == len(single)
    assert reloaded.version == single.version
    assert walk(reloaded) == walk(single)
    for user_id in {user_id for user_id, _content, _ts in events}:
        assert reloaded.events_for_user(user_id) == single.events_for_user(user_id)


# Server-level parity ------------------------------------------------------


def _server(shards: int, *, parallel: bool = False):
    reset_ids()
    server = PphcrServer(
        config=ServerConfig(sharding=ShardingConfig(shards=shards, parallel=parallel))
    )
    gateway = Gateway(server)
    for index in range(8):
        server.register_user(
            UserProfile(user_id=f"user-{index:03d}", display_name=f"User {index}")
        )
    return server, gateway


def _ingest_rounds(server, rng, *, rounds: int = 2, via=None):
    for round_index in range(rounds):
        for index in range(8):
            user_id = f"user-{index:03d}"
            fixes = _fixes_for(user_id, rng, t0=round_index * 86400.0, count=10)
            if via is None:
                server.users.ingest_fixes(fixes, skip_stale=True)
            else:
                via(user_id, fixes)


def test_sharded_server_serves_identical_wire_responses(seeded_rng):
    server_single, gateway_single = _server(1)
    server_sharded, gateway_sharded = _server(4)
    for server, gateway in ((server_single, gateway_single), (server_sharded, gateway_sharded)):
        reset_ids()
        _ingest_rounds(server, seeded_rng)
        for index in range(8):
            response = gateway.request(
                "POST",
                "/v1/feedback",
                body={
                    "user_id": f"user-{index:03d}",
                    "content_id": f"clip-{index:03d}",
                    "kind": "like",
                    "timestamp_s": 100.0 * index,
                },
            )
            assert response.status == 201

    now_s = 86400.0 + 30.0 * 9
    for index in range(8):
        user_id = f"user-{index:03d}"
        for method, path, query in (
            ("GET", f"/v1/users/{user_id}", None),
            ("GET", f"/v1/recommendations/{user_id}", {"now_s": repr(now_s)}),
        ):
            status_a, body_a, headers_a = gateway_single.handle_wire(
                method, path, query=query
            )
            status_b, body_b, headers_b = gateway_sharded.handle_wire(
                method, path, query=query
            )
            assert (status_a, body_a) == (status_b, body_b), path
            # ETags (profile versions, model freshness) match too.
            assert headers_a.get("etag") == headers_b.get("etag"), path
    assert server_single.users.profiles_version == server_sharded.users.profiles_version


def test_users_listing_merges_across_shards():
    _server_single, gateway_single = _server(1)
    _server_sharded, gateway_sharded = _server(4)

    def walk(gateway):
        users, cursor = [], None
        while True:
            query = {"limit": "3"}
            if cursor is not None:
                query["cursor"] = cursor
            status, body, _headers = gateway.handle_wire("GET", "/v1/users", query=query)
            assert status == 200
            data = json.loads(body)
            users.extend(user["user_id"] for user in data["users"])
            cursor = data["next_cursor"]
            if cursor is None:
                return users

    expected = [f"user-{index:03d}" for index in range(8)]
    assert walk(gateway_sharded) == walk(gateway_single) == expected


# Multi-user wire batches --------------------------------------------------


def test_tracking_batch_accepts_multi_user_payloads(seeded_rng):
    server_grouped, gateway_grouped = _server(4, parallel=True)
    server_single_user, gateway_single_user = _server(4, parallel=True)

    all_fixes = []
    for index in range(8):
        user_id = f"user-{index:03d}"
        fixes = _fixes_for(user_id, seeded_rng, count=6)
        all_fixes.append((user_id, fixes))
    # Interleave users in one envelope-less request.
    mixed = [
        {
            "user_id": user_id,
            "lat": fix.position.lat,
            "lon": fix.position.lon,
            "timestamp_s": fix.timestamp_s,
            "speed_mps": fix.speed_mps,
        }
        for position in range(6)
        for user_id, fixes in all_fixes
        for fix in [fixes[position]]
    ]
    response = gateway_grouped.request("POST", "/v1/tracking/batch", body={"fixes": mixed})
    assert response.status == 202
    assert response.body == {
        "submitted": 48,
        "accepted": 48,
        "skipped_stale": 0,
        "users": 8,
    }
    # Equivalent to one legacy single-user batch per user.
    for user_id, fixes in all_fixes:
        response = gateway_single_user.request(
            "POST",
            "/v1/tracking/batch",
            body={
                "user_id": user_id,
                "fixes": [
                    {
                        "lat": fix.position.lat,
                        "lon": fix.position.lon,
                        "timestamp_s": fix.timestamp_s,
                        "speed_mps": fix.speed_mps,
                    }
                    for fix in fixes
                ],
            },
        )
        assert response.status == 202
        assert "users" not in response.body  # legacy response shape unchanged
    for user_id, _fixes in all_fixes:
        assert server_grouped.users.tracking.fixes_for(
            user_id
        ) == server_single_user.users.tracking.fixes_for(user_id)


def test_tracking_batch_atomic_when_worker_faults_mid_group(seeded_rng):
    """A pooled worker raising mid-batch must leave zero fixes ingested.

    The pooled ingest path validates every shard group before any shard
    writes, so an injected worker fault surfaces as a 500 with no partial
    multi-user ingest observable anywhere — plus a ``tracking.batch_failed``
    dead-letter record and a request trace tagged with the 500.
    """
    server, gateway = _server(4, parallel=True)
    twin, twin_gateway = _server(4, parallel=True)
    users = [f"user-{index:03d}" for index in range(8)]
    mixed = [
        {
            "user_id": user_id,
            "lat": fix.position.lat,
            "lon": fix.position.lon,
            "timestamp_s": fix.timestamp_s,
            "speed_mps": fix.speed_mps,
        }
        for position in range(6)
        for user_id in users
        for fix in [_fixes_for(user_id, seeded_rng, count=6)[position]]
    ]

    fired = []

    def fault(shard):
        fired.append(shard)
        raise PipelineError(f"injected worker fault on shard {shard}")

    server.workers.set_fault_hook(fault)
    response = gateway.request("POST", "/v1/tracking/batch", body={"fixes": mixed})
    assert response.status == 500
    assert fired  # the fault actually ran on a worker thread

    # No partial ingest is observable for any user on any shard.
    for user_id in users:
        assert server.users.tracking.fix_count(user_id) == 0
        assert server.users.tracking.fixes_added(user_id) == 0
        assert server.streaming.model_freshness(user_id) == (0, 0)

    # The aborted batch is dead-lettered (no subscriber on the failure
    # topic) with the owning users recorded.
    records = server.bus.dead_letter_records("tracking.batch_failed")
    assert len(records) == 1
    assert records[0].reason == "no_subscriber"
    assert records[0].message.body["users"] == users
    assert records[0].message.body["submitted"] == len(mixed)

    # The request trace carries the 500.
    recent = server.telemetry.traces_snapshot()["recent"]
    batch_traces = [
        trace for trace in recent if trace["tags"].get("path") == "/v1/tracking/batch"
    ]
    assert batch_traces and batch_traces[-1]["tags"]["status"] == 500

    # Disarm and retry: the identical request now matches a clean twin.
    server.workers.set_fault_hook(None)
    retry = gateway.request("POST", "/v1/tracking/batch", body={"fixes": mixed})
    clean = twin_gateway.request("POST", "/v1/tracking/batch", body={"fixes": mixed})
    assert retry.status == clean.status == 202
    assert retry.body == clean.body
    for user_id in users:
        assert server.users.tracking.fixes_for(user_id) == twin.users.tracking.fixes_for(
            user_id
        )


def test_tracking_batch_multi_user_resolves_all_owners_before_ingest():
    server, gateway = _server(4, parallel=True)
    fixes = [
        {"user_id": "user-000", "lat": 45.0, "lon": 7.6, "timestamp_s": 10.0},
        {"user_id": "ghost", "lat": 45.0, "lon": 7.6, "timestamp_s": 11.0},
    ]
    response = gateway.request("POST", "/v1/tracking/batch", body={"fixes": fixes})
    assert response.status == 404
    # The known user's fix was NOT half-ingested.
    assert server.users.tracking.fix_count("user-000") == 0
    # And a fix missing its owner is a 400 naming the item.
    response = gateway.request(
        "POST",
        "/v1/tracking/batch",
        body={"fixes": [{"lat": 45.0, "lon": 7.6, "timestamp_s": 10.0}]},
    )
    assert response.status == 400
    assert "fixes[0]" in response.body["error"]


def test_parallel_ingest_pool_matches_serial_outcome(seeded_rng):
    server_serial, _gateway = _server(4, parallel=False)
    server_parallel, _gateway = _server(4, parallel=True)
    fixes = [
        fix
        for index in range(8)
        for fix in _fixes_for(f"user-{index:03d}", seeded_rng, count=12)
    ]
    server_serial.users.ingest_fixes(fixes, skip_stale=True)
    assert server_parallel.workers is not None
    accepted = server_parallel.users.ingest_fixes(
        fixes, skip_stale=True, pool=server_parallel.workers
    )
    assert accepted == len(fixes)
    for index in range(8):
        user_id = f"user-{index:03d}"
        assert server_parallel.users.tracking.fixes_for(
            user_id
        ) == server_serial.users.tracking.fixes_for(user_id)
        assert server_parallel.streaming.model_freshness(
            user_id
        ) == server_serial.streaming.model_freshness(user_id)


# Parallel compaction ------------------------------------------------------


def test_parallel_compaction_matches_serial_full_pass(seeded_rng):
    server_serial, _gateway = _server(4)
    server_parallel, _gateway = _server(4, parallel=True)
    for server in (server_serial, server_parallel):
        reset_ids()
        _ingest_rounds(server, seeded_rng, rounds=3)
    keep = 86400.0  # tighten the window so pruning happens
    report_serial = server_serial.compactor.run_pass(keep_window_s=keep)
    report_parallel = server_parallel.compactor.run_pass(
        keep_window_s=keep, parallel=True, pool=server_parallel.workers
    )
    assert report_parallel.removed == report_serial.removed
    assert sorted(report_parallel.visited_users) == sorted(report_serial.visited_users)
    assert report_parallel.unchanged_users == report_serial.unchanged_users
    assert report_parallel.deferred_users == report_serial.deferred_users
    assert report_parallel.skipped_users == report_serial.skipped_users
    assert report_parallel.shard is None
    # Both compactors leave identical stores behind.
    for index in range(8):
        user_id = f"user-{index:03d}"
        assert server_parallel.users.tracking.fixes_for(
            user_id
        ) == server_serial.users.tracking.fixes_for(user_id)
    # A parallel maintenance tick covers all shards without advancing the
    # round-robin cursor.
    cursor_before = server_parallel.maintenance_shard
    summary = server_parallel.maintenance_tick(parallel=True)
    assert summary["shard"] == -1
    assert server_parallel.maintenance_shard == cursor_before


# Rebalancing --------------------------------------------------------------


def _warmed_server(shards: int, rng: DeterministicRng):
    server, gateway = _server(shards)
    _ingest_rounds(server, rng, rounds=2)
    for index in range(8):
        server.users.record_feedback(
            f"user-{index:03d}",
            f"clip-{index:03d}",
            FeedbackKind.LIKE,
            timestamp_s=50.0 * index,
            is_clip=False,
        )
    return server, gateway


def test_whole_server_snapshot_restores_into_other_shard_layout(seeded_rng):
    server_two, _gateway_two = _warmed_server(2, seeded_rng)
    # Restore into a *fresh* 4-shard server: versions are preserved exactly
    # on a cold target (on a warm one they only stay monotonically above).
    server_four = PphcrServer(
        config=ServerConfig(sharding=ShardingConfig(shards=4, parallel=False))
    )
    server_four.restore_snapshot(server_two.snapshot())
    now_s = 86400.0 + 30.0 * 9
    for index in range(8):
        user_id = f"user-{index:03d}"
        assert server_four.users.tracking.fixes_for(
            user_id
        ) == server_two.users.tracking.fixes_for(user_id)
        assert server_four.model_freshness(user_id) == server_two.model_freshness(user_id)
        assert (
            server_four.recommend(user_id, now_s=now_s).recommended_clip_ids
            == server_two.recommend(user_id, now_s=now_s).recommended_clip_ids
        )
    # Version sums survive the re-route, so ETag validators keep matching.
    assert server_four.users.profiles_version == server_two.users.profiles_version
    assert server_four.users.feedback.version == server_two.users.feedback.version


def test_shard_snapshot_moves_one_shard_between_servers(seeded_rng):
    source, _gateway = _warmed_server(4, seeded_rng)
    target, _gateway = _server(4)
    moved_shard = source.users.shard_of("user-000")
    target.restore_shard(moved_shard, source.snapshot_shard(moved_shard))
    moved = [
        f"user-{index:03d}"
        for index in range(8)
        if source.users.shard_of(f"user-{index:03d}") == moved_shard
    ]
    assert moved  # the layout places at least user-000 here
    for user_id in moved:
        assert target.users.tracking.fixes_for(user_id) == source.users.tracking.fixes_for(
            user_id
        )
        assert target.streaming.model_freshness(user_id) == source.streaming.model_freshness(
            user_id
        )
        assert target.users.feedback.events_for_user(
            user_id
        ) == source.users.feedback.events_for_user(user_id)
    # Users of other shards were not touched by the move.
    for index in range(8):
        user_id = f"user-{index:03d}"
        if user_id not in moved:
            assert target.users.tracking.fix_count(user_id) == 0


def test_restore_shard_rejects_foreign_users(seeded_rng):
    source, _gateway = _warmed_server(4, seeded_rng)
    target, _gateway = _server(4)
    shard = source.users.shard_of("user-000")
    wrong_shard = (shard + 1) % 4
    with pytest.raises((ValidationError, PipelineError)):
        target.restore_shard(wrong_shard, source.snapshot_shard(shard))

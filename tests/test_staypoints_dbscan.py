"""Grid-accelerated DBSCAN must label exactly like the O(n²) reference."""

import random

import pytest

from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point, haversine_m
from repro.trajectory.staypoints import NOISE, dbscan, detect_stay_points


def reference_dbscan(points, *, eps_m, min_samples):
    """Textbook DBSCAN with a brute-force O(n²) region query."""
    n = len(points)
    labels = [None] * n

    def region_query(i):
        return [
            j for j in range(n) if haversine_m(points[i], points[j]) <= eps_m
        ]

    cluster_id = 0
    for i in range(n):
        if labels[i] is not None:
            continue
        neighbours = region_query(i)
        if len(neighbours) < min_samples:
            labels[i] = NOISE
            continue
        labels[i] = cluster_id
        seeds = [j for j in neighbours if j != i]
        position = 0
        while position < len(seeds):
            j = seeds[position]
            position += 1
            if labels[j] == NOISE:
                labels[j] = cluster_id
            if labels[j] is not None:
                continue
            labels[j] = cluster_id
            j_neighbours = region_query(j)
            if len(j_neighbours) >= min_samples:
                known = set(seeds)
                for k in j_neighbours:
                    if k not in known:
                        seeds.append(k)
                        known.add(k)
        cluster_id += 1
    return [label if label is not None else NOISE for label in labels]


def clustered_points(rng, *, clusters=4, per_cluster=15, noise=10, spread_m=120.0):
    base = GeoPoint(45.0, 7.6)
    points = []
    for cluster in range(clusters):
        center = destination_point(base, rng.uniform(0, 360), rng.uniform(2000.0, 20000.0))
        for _ in range(per_cluster):
            points.append(
                destination_point(center, rng.uniform(0, 360), rng.uniform(0.0, spread_m))
            )
    for _ in range(noise):
        points.append(destination_point(base, rng.uniform(0, 360), rng.uniform(0.0, 40000.0)))
    return rng.sample(points, len(points))  # shuffle the insertion order


class TestDbscanGridEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_labels_match_brute_force(self, seed):
        rng = random.Random(seed)
        points = clustered_points(
            rng,
            clusters=rng.randint(2, 5),
            per_cluster=rng.randint(4, 20),
            noise=rng.randint(0, 15),
            spread_m=rng.choice([60.0, 120.0, 200.0]),
        )
        eps_m = rng.choice([100.0, 150.0, 300.0])
        min_samples = rng.choice([2, 3, 5])
        assert dbscan(points, eps_m=eps_m, min_samples=min_samples) == reference_dbscan(
            points, eps_m=eps_m, min_samples=min_samples
        )

    def test_dense_overlapping_blobs_match(self):
        # Blobs closer than eps merge through border chains — the trickiest
        # case for expansion bookkeeping.
        rng = random.Random(99)
        base = GeoPoint(45.0, 7.6)
        points = []
        for step in range(6):
            center = destination_point(base, 90.0, step * 130.0)
            for _ in range(12):
                points.append(
                    destination_point(center, rng.uniform(0, 360), rng.uniform(0.0, 80.0))
                )
        labels = dbscan(points, eps_m=150.0, min_samples=3)
        assert labels == reference_dbscan(points, eps_m=150.0, min_samples=3)
        assert max(labels) == 0  # the chain merges into a single cluster

    def test_empty_and_all_noise(self):
        assert dbscan([], eps_m=100.0) == []
        rng = random.Random(5)
        base = GeoPoint(45.0, 7.6)
        lonely = [destination_point(base, rng.uniform(0, 360), 5000.0 * (i + 1)) for i in range(6)]
        assert dbscan(lonely, eps_m=100.0, min_samples=2) == [NOISE] * 6

    def test_detect_stay_points_still_ranks_by_support(self):
        rng = random.Random(17)
        base = GeoPoint(45.0, 7.6)
        big = [destination_point(base, rng.uniform(0, 360), rng.uniform(0, 60.0)) for _ in range(9)]
        small_center = destination_point(base, 45.0, 9000.0)
        small = [
            destination_point(small_center, rng.uniform(0, 360), rng.uniform(0, 60.0))
            for _ in range(4)
        ]
        stay_points = detect_stay_points(big + small, eps_m=150.0, min_samples=3)
        assert [sp.stay_point_id for sp in stay_points] == [0, 1]
        assert stay_points[0].support == 9
        assert stay_points[1].support == 4

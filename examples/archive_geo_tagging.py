"""Estimating the geographic relevance of archive items (paper future work).

Builds a gazetteer from the synthetic city's points of interest, generates
archive clips whose transcripts mention those places, runs the geographic
relevance estimator over the archive and shows how the newly geo-tagged
items become route-relevant for a commuting listener.

Run with ``python examples/archive_geo_tagging.py``.
"""

from __future__ import annotations

from repro import WorldConfig, build_world
from repro.content import AudioClip, ContentKind, Gazetteer, GeoRelevanceEstimator
from repro.content.geo_relevance import geographic_relevance
from repro.datasets import CommuterConfig


def main() -> None:
    world = build_world(WorldConfig(seed=12, commuters=CommuterConfig(commuters=4, history_days=6)))
    city = world.city

    # 1. Build a gazetteer from the city's named points of interest.
    gazetteer = Gazetteer.from_city(city)
    print(f"gazetteer: {len(gazetteer)} places ({', '.join(gazetteer.names()[:6])}, ...)")

    # 2. A small archive of untagged items; some mention places, some do not.
    poi_names = city.poi_names()
    archive = [
        AudioClip(
            clip_id="arch-local-1",
            title="Street works report",
            kind=ContentKind.NEWS,
            duration_s=150.0,
            category_scores={"news-local": 1.0},
            transcript=f"lavori in corso vicino a {poi_names[0]} per tutta la settimana {poi_names[0]} resta chiusa",
        ),
        AudioClip(
            clip_id="arch-local-2",
            title=f"Weekend market at {poi_names[1]}",
            kind=ContentKind.PODCAST,
            duration_s=240.0,
            category_scores={"food-and-wine": 1.0},
            transcript=f"questo weekend il mercato di {poi_names[1]} ospita produttori locali",
        ),
        AudioClip(
            clip_id="arch-national",
            title="European markets roundup",
            kind=ContentKind.NEWS,
            duration_s=180.0,
            category_scores={"economics": 1.0},
            transcript="le borse europee chiudono in rialzo dopo i dati sull'inflazione",
        ),
    ]

    # 3. Run the estimator over the archive.
    estimator = GeoRelevanceEstimator(gazetteer)
    annotated, tagged = estimator.annotate_archive(archive)
    print(f"\narchive items geo-tagged by the estimator: {tagged}/{len(archive)}")
    for clip in annotated:
        estimate = estimator.estimate(clip)
        places = ", ".join(f"{name} x{count}" for name, count in estimate.mentioned_places.items()) or "-"
        footprint = f"{clip.geo_location}" if clip.is_geo_tagged else "none"
        print(f"  {clip.clip_id:16s} mentions: {places:40s} footprint: {footprint}")

    # 4. How relevant is each item to a commuter's route?
    commuter = world.commuters[0]
    route = world.commuter_generator.commute_route(commuter).geometry
    print(f"\nroute relevance for {commuter.user_id}'s commute:")
    for clip in annotated:
        relevance = geographic_relevance(clip, route=route)
        print(f"  {clip.clip_id:16s} geographic relevance along the route: {relevance:.2f}")


if __name__ == "__main__":
    main()

"""Quickstart: build a synthetic world and ask for proactive recommendations.

This is the smallest end-to-end use of the library:

1. build a synthetic world (city + broadcaster + commuters + history);
2. simulate the first minutes of a listener's morning commute;
3. run the proactive recommender and print the plan it produces.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import WorldConfig, build_world
from repro.datasets import BroadcasterConfig, CommuterConfig
from repro.roadnet import CityGeneratorConfig
from repro.util.timeutils import format_clock


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=7,
            city=CityGeneratorConfig(grid_rows=10, grid_cols=10, poi_count=16),
            broadcaster=BroadcasterConfig(clips_per_day=100),
            commuters=CommuterConfig(commuters=6, history_days=7),
        )
    )
    server = world.server
    print(f"world ready: {server.content.clip_count()} clips, "
          f"{server.users.user_count()} listeners, "
          f"{len(server.content.services())} live services")

    # Pick a commuter and observe the first few minutes of today's drive
    # (never more than a third of it, or nothing is left to personalize).
    commuter = world.commuters[0]
    drive = world.commuter_generator.live_drive(commuter, day=world.today)
    observe_s = max(90.0, min(240.0, 0.3 * drive.expected_duration_s))
    server.users.ingest_fixes(drive.fixes(until_s=drive.departure_s + observe_s), skip_stale=True)

    decision = server.recommend(
        commuter.user_id, now_s=drive.departure_s + observe_s, drive_elapsed_s=observe_s
    )
    print(f"\nproactive decision for {commuter.user_id}: "
          f"{'RECOMMEND' if decision.should_recommend else 'WAIT'} ({decision.reason})")

    if decision.plan is not None:
        plan = decision.plan
        print(f"available time: {plan.available_s / 60.0:.1f} min, "
              f"scheduled {plan.total_scheduled_s / 60.0:.1f} min "
              f"across {len(plan.items)} clips "
              f"(objective value {plan.objective_value:.2f})")
        for item in plan.items:
            print(f"  {format_clock(item.start_s)}  {item.scored.clip.title:40s} "
                  f"score={item.scored.final_score:.2f}  ({item.reason})")


if __name__ == "__main__":
    main()

"""Network resource optimization study (the hybrid-delivery claim).

Compares the unicast bytes a broadcaster must serve when every listener
streams over IP versus when hybrid content radio delivers the linear share
over the broadcast channel and only the personalized clips over IP, across
audience sizes and clip-replacement shares.

Run with ``python examples/network_optimization_study.py``.
"""

from __future__ import annotations

from repro.delivery import DeliveryCostModel


def gigabytes(value: int) -> float:
    return value / 1e9


def main() -> None:
    audiences = [1_000, 10_000, 100_000, 1_000_000]

    print("=== unicast traffic vs audience size (clip share 20%, coverage 85%) ===")
    model = DeliveryCostModel(clip_replacement_share=0.2, broadcast_coverage=0.85)
    print(f"{'listeners':>12s} {'streaming GB':>14s} {'hybrid GB':>12s} {'saved GB':>10s} {'saving':>8s}")
    for report in model.sweep(audiences):
        print(
            f"{report.listeners:>12,d} {gigabytes(report.pure_streaming_bytes):>14.1f} "
            f"{gigabytes(report.hybrid_unicast_bytes):>12.1f} "
            f"{gigabytes(report.savings_bytes):>10.1f} {report.savings_ratio:>7.0%}"
        )

    print("\n=== effect of the personalization (clip replacement) share, 100k listeners ===")
    print(f"{'clip share':>11s} {'hybrid GB':>12s} {'saving':>8s}")
    for share in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8):
        report = DeliveryCostModel(clip_replacement_share=share, broadcast_coverage=0.85).report(100_000)
        print(f"{share:>11.0%} {gigabytes(report.hybrid_unicast_bytes):>12.1f} {report.savings_ratio:>7.0%}")

    print("\n=== effect of broadcast coverage, 100k listeners, clip share 20% ===")
    print(f"{'coverage':>9s} {'hybrid GB':>12s} {'saving':>8s}")
    for coverage in (0.25, 0.5, 0.75, 0.9, 1.0):
        report = DeliveryCostModel(clip_replacement_share=0.2, broadcast_coverage=coverage).report(100_000)
        print(f"{coverage:>9.0%} {gigabytes(report.hybrid_unicast_bytes):>12.1f} {report.savings_ratio:>7.0%}")


if __name__ == "__main__":
    main()

"""Editorial injection and the control dashboard (paper Figures 5 and 6).

An editor uses the control dashboard to inspect a listener's movement
history and learned preferences, then injects a recommendation that will be
boosted in the listener's next proactive plan.

Run with ``python examples/editorial_dashboard.py``.
"""

from __future__ import annotations

from repro import WorldConfig, build_world
from repro.client import ControlDashboard
from repro.datasets import BroadcasterConfig, CommuterConfig


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=99,
            broadcaster=BroadcasterConfig(clips_per_day=120),
            commuters=CommuterConfig(commuters=8, history_days=7),
        )
    )
    server = world.server
    dashboard = ControlDashboard(server.users, server.content, editorial=server.editorial)
    commuter = world.commuters[0]

    print("=== dashboard overview ===")
    for key, value in dashboard.overview().items():
        print(f"  {key:22s} {value}")

    print("\n=== listener movements (Figure 5) ===")
    for line in dashboard.trajectory_report(commuter.user_id).summary_lines():
        print(f"  {line}")

    print("\n=== listener preferences ===")
    for line in dashboard.preference_report(commuter.user_id):
        print(f"  {line}")

    # The editor picks a clip and injects it for this listener.
    clip = next(c for c in server.content.clips() if c.duration_s <= 300.0)
    injection = server.editorial.inject(
        clip.clip_id,
        target_user_ids=[commuter.user_id],
        boost=0.9,
        created_s=world.today_start_s,
        note="editorial pick of the day",
    )
    print(f"\n=== editorial injection (Figure 6) ===")
    print(f"  injected {clip.title!r} for {commuter.user_id} "
          f"(boost {injection.boost}, valid until {injection.expires_s:.0f})")

    # Run the proactive pipeline during today's commute and show the plan.
    drive = world.commuter_generator.live_drive(commuter, day=world.today)
    observe = drive.departure_s + 240.0
    server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
    decision = server.recommend(commuter.user_id, now_s=observe, drive_elapsed_s=240.0)
    if decision.plan is not None:
        dashboard.record_plan(decision.plan)
        print("\n=== recommendations sent to the listener ===")
        for line in dashboard.recommendation_report(commuter.user_id).summary_lines():
            print(f"  {line}")
        injected = clip.clip_id in decision.recommended_clip_ids
        print(f"\n  editorial clip included in the plan: {injected}")
    else:
        print(f"\nproactive engine declined to recommend: {decision.reason}")


if __name__ == "__main__":
    main()

"""The paper's §2.1.1 scenario: Greg's manual program change.

Greg is listening to his favourite station but dislikes the current
programme.  Instead of zapping to another channel he skips the live
programme; the app replaces it with content-based recommendations and after
a couple of skips he lands on content matching his tastes.

Run with ``python examples/manual_skip_session.py``.
"""

from __future__ import annotations

from repro import WorldConfig, build_world, run_manual_skip_scenario
from repro.client import ControlDashboard
from repro.datasets import BroadcasterConfig, CommuterConfig


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=41,
            broadcaster=BroadcasterConfig(clips_per_day=120),
            commuters=CommuterConfig(commuters=6, history_days=6),
        )
    )
    commuter = world.commuters[0]
    print(f"listener: {commuter.user_id}")
    print(f"preferred categories: {', '.join(commuter.preferred_categories)}")
    print(f"disliked categories:  {', '.join(commuter.disliked_categories)}")

    result = run_manual_skip_scenario(world, user_id=commuter.user_id)

    print(f"\nskipped live programmes: {len(result.skipped_programme_ids)}")
    for programme_id in result.skipped_programme_ids:
        programme = world.server.content.programme(programme_id)
        print(f"  skipped: {programme.title} ({', '.join(programme.categories)})")

    print(f"\nsuggestions surfed: {len(result.played_clip_ids)}")
    if result.final_clip is not None:
        print(f"finally playing: {result.final_clip.title} "
              f"[{result.final_clip.primary_category}] "
              f"(matches taste: {result.final_clip_matches_taste})")
    print(f"changed channel: {result.channel_changed}")

    print("\nplayback timeline:")
    for line in result.timeline:
        print(f"  {line}")

    # What the control dashboard now knows about Greg's preferences.
    dashboard = ControlDashboard(world.server.users, world.server.content)
    print()
    for line in dashboard.preference_report(commuter.user_id):
        print(line)


if __name__ == "__main__":
    main()

"""The paper's Figure 4 / §2.1.2 scenario: Lilly's proactive commute.

Builds the synthetic world, runs the contextual proactive recommendation
scenario for one commuter and prints the resulting hybrid playback timeline:
live radio, the recommended clips that replace it, and the time-shifted
resumption of the live programme from the buffer.

Run with ``python examples/commuter_proactive_radio.py``.
"""

from __future__ import annotations

from repro import WorldConfig, build_world, run_proactive_commute_scenario
from repro.datasets import BroadcasterConfig, CommuterConfig
from repro.roadnet import CityGeneratorConfig


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=2027,
            city=CityGeneratorConfig(grid_rows=12, grid_cols=12, poi_count=20),
            broadcaster=BroadcasterConfig(clips_per_day=120),
            commuters=CommuterConfig(commuters=8, history_days=8),
        )
    )

    # Find a commuter for whom the proactive trigger fires this morning.
    for commuter in world.commuters:
        result = run_proactive_commute_scenario(world, user_id=commuter.user_id)
        if result.decision.should_recommend:
            break
    else:
        print("no commuter triggered a proactive recommendation today")
        return

    print(f"listener: {result.user_id}")
    print(f"decision: {result.decision.reason}")
    print(f"predicted remaining time (dT): {result.delta_t_predicted_s / 60.0:.1f} min "
          f"(actual {result.delta_t_actual_s / 60.0:.1f} min)")
    print(f"clips scheduled: {len(result.played_clip_ids)}")
    print(f"time-shift accumulated: {result.time_shift_offset_s / 60.0:.1f} min")
    print("\nplayback timeline (paper Figure 4):")
    for line in result.timeline:
        print(f"  {line}")

    if result.plan is not None:
        print("\nrecommendation details:")
        for item in result.plan.items:
            clip = item.scored.clip
            print(f"  {clip.title:45s} {clip.duration_s / 60.0:4.1f} min  "
                  f"content={item.scored.content_score:.2f} "
                  f"context={item.scored.context_score:.2f} "
                  f"compound={item.scored.compound_score:.2f} ({item.reason})")


if __name__ == "__main__":
    main()

"""Shared fixtures and result recording for the benchmark harness.

Every benchmark regenerates one of the paper's figures/scenarios or one of
its qualitative claims (see DESIGN.md, "Per-experiment index").  Besides the
pytest-benchmark timing, each bench writes the rows/series it regenerated to
``benchmarks/results/<experiment>.txt`` so the reproduced "table" can be
inspected after the run, and attaches the headline numbers to
``benchmark.extra_info``.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List

import pytest

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.roadnet import CityGeneratorConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(experiment: str, lines: Iterable[str]) -> str:
    """Write the regenerated rows of an experiment to its results file."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line.rstrip("\n") + "\n")
    return path


def format_table(rows: List[Dict[str, object]]) -> List[str]:
    """Render a list of row dictionaries as aligned text lines."""
    if not rows:
        return ["(no rows)"]
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), max(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row[column]).ljust(widths[column]) for column in columns))
    return lines


@pytest.fixture(scope="session")
def bench_world():
    """The default synthetic world shared by most benches."""
    return build_world(
        WorldConfig(
            seed=20170321,  # EDBT 2017 opening day
            city=CityGeneratorConfig(grid_rows=12, grid_cols=12, poi_count=20, seed=3),
            broadcaster=BroadcasterConfig(seed=5, clips_per_day=120),
            commuters=CommuterConfig(seed=7, commuters=12, history_days=7),
            classifier_documents_per_category=10,
            feedback_events_per_user=30,
        )
    )


@pytest.fixture(scope="session")
def population_world():
    """A larger listener population for the skip-rate comparison (Q-1, A-1)."""
    return build_world(
        WorldConfig(
            seed=424242,
            city=CityGeneratorConfig(grid_rows=12, grid_cols=12, poi_count=24, seed=11),
            broadcaster=BroadcasterConfig(seed=13, clips_per_day=150),
            commuters=CommuterConfig(seed=17, commuters=24, history_days=7),
            classifier_documents_per_category=8,
            feedback_events_per_user=30,
        )
    )

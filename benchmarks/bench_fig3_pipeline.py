"""FIG-3 — the server architecture / data flow (paper Figure 3).

Times the full server-side ingest path (ASR -> Bayesian classification ->
repository) and the recommendation path (context building -> compound
scoring -> scheduling), and regenerates the component/data-flow summary that
the architecture diagram describes.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.asr import SyntheticNewsCorpus
from repro.content.model import AudioClip, ContentKind
from repro.pipeline import PphcrServer
from repro.util.ids import new_id


def build_ingest_workload(documents=60):
    corpus = SyntheticNewsCorpus(seed=91)
    train, _ = corpus.train_test_split(documents_per_category=6)
    server = PphcrServer()
    server.train_classifier([d.text for d in train], [d.category for d in train])
    clips = []
    texts = {}
    for index in range(documents):
        category = corpus.categories()[index % 30]
        clip_id = new_id("bench-clip")
        clips.append(
            AudioClip(
                clip_id=clip_id,
                title=f"Ingest bench {index}",
                kind=ContentKind.NEWS,
                duration_s=180.0,
            )
        )
        texts[clip_id] = corpus.generate_document(category, word_count=120).text
    return server, clips, texts


def test_fig3_ingest_throughput(benchmark):
    def run_once():
        server, clips, texts = build_ingest_workload(documents=60)
        server.ingest_clips(clips, speech_texts=texts)
        return server

    server = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert server.content.clip_count() == 60
    classified = server.bus.published_messages("clip.classified")
    assert len(classified) == 60

    lines = [
        "FIG-3: server data flow (ingest side)",
        "",
        f"clips ingested: {server.content.clip_count()}",
        f"ASR+classification events: {len(classified)}",
        f"bus deliveries: {server.bus.delivery_count()}",
    ]
    write_result("fig3_pipeline_ingest", lines)
    benchmark.extra_info["clips_per_round"] = 60


def test_fig3_recommendation_path(benchmark, bench_world):
    """End-to-end recommendation latency for one listener mid-commute."""
    server = bench_world.server
    commuter = bench_world.commuters[1]
    drive = bench_world.commuter_generator.live_drive(commuter, day=bench_world.today)
    observe = drive.departure_s + max(90.0, 0.3 * drive.expected_duration_s)
    server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)

    def recommend_once():
        return server.recommend(commuter.user_id, now_s=observe, drive_elapsed_s=240.0)

    decision = benchmark(recommend_once)
    assert decision is not None

    component_rows = [
        {"component": "metadata / content repository", "rows": server.content.clip_count()},
        {"component": "profiles DB (users)", "rows": server.users.user_count()},
        {"component": "feedbacks DB (events)", "rows": len(server.users.feedback)},
        {"component": "tracking DB (GPS fixes)", "rows": server.users.tracking.fix_count()},
        {"component": "bus messages published", "rows": len(server.bus.published_messages())},
    ]
    lines = [
        "FIG-3: server data flow (recommendation side)",
        "",
        f"decision: {'recommend' if decision.should_recommend else 'wait'} ({decision.reason})",
        "",
    ] + format_table(component_rows)
    path = write_result("fig3_pipeline_recommendation", lines)
    benchmark.extra_info["results_file"] = path

"""World-replay latency bench: scenario scripts through the wire gateway.

Replays each recorded traffic scenario (rush hour, flash crowd,
broadcast→unicast handover) from the same seed against a freshly built
sharded world and reports exact nearest-rank per-request latency
percentiles plus the responses digest — so CI tracks both how fast the
wire path is and that the traffic stayed byte-deterministic.

Run:  PYTHONPATH=src python benchmarks/bench_world_replay.py
"""

from __future__ import annotations

import sys

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.loadgen import SCENARIO_NAMES, WorldReplay, build_scenario
from repro.pipeline import Gateway
from repro.pipeline.server import ServerConfig
from repro.roadnet import CityGeneratorConfig
from repro.storage import ShardingConfig
from repro.util.ids import reset_ids

SCRIPT_SEED = 99
SHARDS = 4
COMMUTERS = 6

#: CI gate: every scenario's p95 request latency must stay under this.
P95_CEILING_MS = 250.0


def build_replay_world():
    """The bench world — same twin-buildable config the chaos matrix uses."""
    reset_ids()
    return build_world(
        WorldConfig(
            seed=4242,
            city=CityGeneratorConfig(
                grid_rows=8, grid_cols=8, block_size_m=600.0, poi_count=16, seed=3
            ),
            broadcaster=BroadcasterConfig(seed=5, clips_per_day=40),
            commuters=CommuterConfig(seed=11, commuters=COMMUTERS, history_days=4),
            server=ServerConfig(sharding=ShardingConfig(shards=SHARDS, parallel=True)),
            classifier_documents_per_category=4,
            feedback_events_per_user=10,
        )
    )


def run_scenario_phase(name: str):
    """Build a fresh world, record the scenario and replay it; the report."""
    world = build_replay_world()
    script = build_scenario(name, world, seed=SCRIPT_SEED)
    report = WorldReplay(Gateway(world.server)).run(script)
    failed = {
        status: count for status, count in report.status_counts.items() if status >= 400
    }
    assert not failed, f"{name} replay returned error statuses: {failed}"
    return script, report


def run_all_scenarios():
    """Every scenario's (script, report), keyed by scenario name."""
    return {name: run_scenario_phase(name) for name in SCENARIO_NAMES}


def main() -> int:
    for name, (script, report) in run_all_scenarios().items():
        summary = report.summary()
        print(
            f"{name}: {summary['requests']} requests, "
            f"p50 {summary['p50_ms']:.2f} ms, p95 {summary['p95_ms']:.2f} ms, "
            f"p99 {summary['p99_ms']:.2f} ms "
            f"(script {script.fingerprint()[:12]}, "
            f"responses {summary['responses_digest'][:12]})"
        )
        if summary["p95_ms"] > P95_CEILING_MS:
            print(
                f"FAIL: {name} p95 {summary['p95_ms']:.2f} ms exceeds the "
                f"{P95_CEILING_MS:.0f} ms ceiling",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""FIG-4 — Lilly's personalization timeline (paper Figure 4).

Regenerates the timeline of the contextual proactive recommendation
scenario: live radio while driving, recommended clips seamlessly replacing
it, and the time-shifted continuation of the live programme from the buffer.
"""

from __future__ import annotations

from conftest import write_result

from repro.simulation import run_proactive_commute_scenario


def first_triggering_result(world):
    """Run the scenario for commuters until the proactive trigger fires."""
    for commuter in world.commuters:
        result = run_proactive_commute_scenario(world, user_id=commuter.user_id)
        if result.decision.should_recommend:
            return result
    raise AssertionError("proactive recommendation never triggered")


def test_fig4_personalization_timeline(benchmark, bench_world):
    result = benchmark.pedantic(first_triggering_result, args=(bench_world,), rounds=3, iterations=1)

    assert result.plan is not None
    assert result.played_clip_ids
    # The timeline has the three ingredients of Figure 4.
    joined = "\n".join(result.timeline)
    assert "LIVE" in joined
    assert "CLIP" in joined
    # After clips the listener lags behind live (the buffered programme can
    # be presented later, like "The rabbit's roar" in the paper).
    assert result.time_shift_offset_s > 0.0
    # The plan never outruns the predicted available time.
    assert result.plan.total_scheduled_s <= result.plan.available_s + 1e-6

    lines = [
        "FIG-4: personalization timeline for one morning commute",
        "",
        f"listener: {result.user_id}",
        f"predicted dT: {result.delta_t_predicted_s / 60.0:.1f} min, "
        f"actual remaining drive: {result.delta_t_actual_s / 60.0:.1f} min",
        f"clips played: {len(result.played_clip_ids)}",
        f"time-shift offset accumulated: {result.time_shift_offset_s / 60.0:.1f} min",
        "",
        "timeline:",
    ] + [f"  {line}" for line in result.timeline]
    path = write_result("fig4_timeline", lines)

    benchmark.extra_info["clips_played"] = len(result.played_clip_ids)
    benchmark.extra_info["time_shift_min"] = round(result.time_shift_offset_s / 60.0, 2)
    benchmark.extra_info["results_file"] = path

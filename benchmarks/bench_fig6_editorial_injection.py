"""FIG-6 — control dashboard: editorial recommendation injection (paper Figure 6).

The editor selects a clip and injects it for a specific listener; the next
proactive plan for that listener must include it (the injection bypasses the
candidate filter and boosts the compound score).  The bench times the
injection -> recommendation round trip and regenerates the recommendation
list the dashboard would display.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.client import ControlDashboard


def prepare_drive(world, commuter):
    server = world.server
    drive = world.commuter_generator.live_drive(commuter, day=world.today)
    observe = drive.departure_s + max(90.0, 0.3 * drive.expected_duration_s)
    server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
    return observe


def test_fig6_editorial_injection_round_trip(benchmark, bench_world):
    server = bench_world.server
    dashboard = ControlDashboard(server.users, server.content, editorial=server.editorial)

    # Find a commuter whose proactive trigger fires and a clip outside their taste.
    chosen = None
    for commuter in bench_world.commuters:
        observe = prepare_drive(bench_world, commuter)
        baseline = server.recommend(commuter.user_id, now_s=observe, drive_elapsed_s=240.0)
        if baseline.should_recommend:
            chosen = (commuter, observe, baseline)
            break
    assert chosen is not None, "no commuter triggered a proactive recommendation"
    commuter, observe, baseline = chosen

    disliked = commuter.disliked_categories[0]
    candidates = [
        clip
        for clip in server.content.clips_by_category(disliked)
        if clip.duration_s <= baseline.plan.available_s
    ]
    assert candidates, "no injectable clip available in the disliked category"
    target = candidates[0]
    assert target.clip_id not in baseline.recommended_clip_ids

    def inject_and_recommend():
        injection = server.editorial.inject(
            target.clip_id,
            target_user_ids=[commuter.user_id],
            boost=1.0,
            created_s=observe - 1.0,
            note="editorial pick",
        )
        decision = server.recommend(commuter.user_id, now_s=observe, drive_elapsed_s=240.0)
        server.editorial.withdraw(injection.injection_id)
        return decision

    decision = benchmark.pedantic(inject_and_recommend, rounds=3, iterations=1)

    assert decision.should_recommend
    assert target.clip_id in decision.recommended_clip_ids

    dashboard.record_plan(decision.plan)
    report = dashboard.recommendation_report(commuter.user_id)
    lines = [
        "FIG-6: editorial injection reaching a specific listener",
        "",
        f"editor injected: {target.title} ({target.primary_category}) for {commuter.user_id}",
        f"included in the next plan: {target.clip_id in decision.recommended_clip_ids}",
        "",
        "recommendation list shown on the dashboard:",
    ] + format_table(report.rows)
    path = write_result("fig6_editorial_injection", lines)

    benchmark.extra_info["injected_clip"] = target.clip_id
    benchmark.extra_info["results_file"] = path

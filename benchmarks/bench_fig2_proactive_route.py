"""FIG-2 — proactive recommendation on a predicted route (paper Figure 2).

When the listener's car starts moving the system predicts the destination
and the available time ΔT, then allocates the most relevant items for that
time; one of the items is relevant to a location the user will reach.  The
bench times the full context-building + scheduling pipeline and regenerates
the allocated item list (the paper's A, B, C, D with item B at L_B).
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.content.geo_relevance import geographic_relevance


def observe_and_recommend(world, commuter, observe_s=240.0):
    """Feed the first minutes of today's drive and run the recommender."""
    server = world.server
    drive = world.commuter_generator.live_drive(commuter, day=world.today)
    observe_s = min(observe_s, max(90.0, 0.35 * drive.expected_duration_s))
    now_s = drive.departure_s + observe_s
    server.users.ingest_fixes(drive.fixes(until_s=now_s), skip_stale=True)
    context = server.build_context(commuter.user_id, now_s=now_s)
    decision = server.recommend(
        commuter.user_id, now_s=now_s, drive_elapsed_s=observe_s, context=context
    )
    return drive, context, decision


def test_fig2_route_aware_allocation(benchmark, bench_world):
    # Pick the first commuter whose proactive trigger fires today.
    chosen = None
    for commuter in bench_world.commuters:
        _drive, context, decision = observe_and_recommend(bench_world, commuter)
        if decision.should_recommend:
            chosen = commuter
            break
    assert chosen is not None, "no commuter triggered a proactive recommendation"

    drive, context, decision = benchmark.pedantic(
        observe_and_recommend, args=(bench_world, chosen), rounds=3, iterations=1
    )

    assert decision.should_recommend
    plan = decision.plan
    # ΔT was predicted and respected by the allocation.
    assert context.available_time_s is not None
    assert plan.total_scheduled_s <= plan.available_s + 1e-6
    # The predicted destination is geographically close to the true one.
    destination_error_m = context.destination.center.distance_m(drive.route.geometry.end)
    assert destination_error_m < 2000.0
    # ΔT prediction is the right order of magnitude.
    actual_remaining = max(1.0, drive.arrival_s - plan.created_s)
    assert 0.3 < plan.available_s / actual_remaining < 3.0

    rows = []
    for label, item in zip("ABCDEFGH", plan.items):
        relevance = geographic_relevance(item.scored.clip, route=context.route)
        rows.append(
            {
                "item": label,
                "clip": item.scored.clip.title,
                "minutes": round(item.scored.clip.duration_s / 60.0, 1),
                "compound_score": round(item.scored.final_score, 3),
                "geo_relevance": round(relevance, 3),
                "placement": item.reason,
            }
        )
    lines = [
        "FIG-2: proactive allocation for the available time dT",
        "",
        f"predicted destination error: {destination_error_m:.0f} m",
        f"predicted dT: {plan.available_s / 60.0:.1f} min, actual remaining: {actual_remaining / 60.0:.1f} min",
        f"scheduled: {plan.total_scheduled_s / 60.0:.1f} min across {len(plan.items)} items",
        "",
    ] + format_table(rows)
    path = write_result("fig2_proactive_route", lines)

    benchmark.extra_info["delta_t_predicted_min"] = round(plan.available_s / 60.0, 2)
    benchmark.extra_info["items"] = len(plan.items)
    benchmark.extra_info["results_file"] = path

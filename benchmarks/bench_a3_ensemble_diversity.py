"""A-3 — extension ablation: the ensemble effect of the recommendations list.

The paper's future work plans to account for "the ensemble effect of the
recommendations list".  The bench sweeps the diversity weight of the
MMR-style re-ranker over realistic candidate rankings and measures the
trade-off between list relevance and category diversity.  Expected shape:
diversity rises monotonically with the weight while mean relevance falls
only slightly for moderate weights (a cheap ensemble improvement).
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.recommender.compound import CompoundScorer
from repro.recommender.content_based import ContentBasedScorer
from repro.recommender.extensions import diversify, list_diversity

DIVERSITY_WEIGHTS = (0.0, 0.2, 0.4, 0.6)
LIST_SIZE = 6


def prepare_ranking(world, commuter):
    server = world.server
    drive = world.commuter_generator.live_drive(commuter, day=world.today)
    observe = drive.departure_s + max(90.0, 0.3 * drive.expected_duration_s)
    server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
    context = server.build_context(commuter.user_id, now_s=observe)
    candidates = server.proactive_engine._filter.candidates(  # noqa: SLF001
        commuter.user_id, now_s=observe
    )
    compound = CompoundScorer(
        ContentBasedScorer(server.content, server.users),
        context_weight=server.config.context_weight,
    )
    return compound.rank(candidates, context)


def sweep_diversity(rankings):
    rows = []
    for weight in DIVERSITY_WEIGHTS:
        relevances = []
        diversities = []
        for ranking in rankings:
            reranked = diversify(ranking, diversity_weight=weight, top_k=LIST_SIZE)
            items = [item.scored for item in reranked]
            if not items:
                continue
            relevances.append(sum(item.final_score for item in items) / len(items))
            diversities.append(list_diversity(items))
        rows.append(
            {
                "diversity_weight": weight,
                "mean_list_relevance": round(sum(relevances) / max(1, len(relevances)), 4),
                "mean_list_diversity": round(sum(diversities) / max(1, len(diversities)), 4),
            }
        )
    return rows


def test_a3_ensemble_diversification(benchmark, bench_world):
    rankings = [
        prepare_ranking(bench_world, commuter) for commuter in bench_world.commuters[:6]
    ]
    rankings = [ranking for ranking in rankings if len(ranking) >= LIST_SIZE]
    assert rankings, "no commuter produced a large enough candidate ranking"

    rows = benchmark.pedantic(sweep_diversity, args=(rankings,), rounds=1, iterations=1)

    diversities = [row["mean_list_diversity"] for row in rows]
    relevances = [row["mean_list_relevance"] for row in rows]
    # Diversity never decreases as the weight grows; relevance never increases.
    assert all(later >= earlier - 1e-9 for earlier, later in zip(diversities, diversities[1:]))
    assert all(later <= earlier + 1e-9 for earlier, later in zip(relevances, relevances[1:]))
    # A moderate weight buys a real diversity gain at a small relevance cost.
    assert diversities[1] >= diversities[0]
    assert relevances[0] - relevances[1] < 0.15

    lines = ["A-3: ensemble diversification of the recommendation list", ""] + format_table(rows)
    path = write_result("a3_ensemble_diversity", lines)
    benchmark.extra_info["results_file"] = path

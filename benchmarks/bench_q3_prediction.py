"""Q-3 — destination and travel-time (ΔT) prediction quality.

The proactive behaviour hinges on predicting where the driver is going and
how long the remaining drive will take.  The bench measures top-1
destination accuracy and the ΔT relative error across the commuter
population as a function of how much of the drive has been observed, and as
a function of the amount of history available.  Expected shape: accuracy
rises and error falls with more observation and more history.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.datasets import CommuterConfig, CommuterGenerator
from repro.roadnet import CityGeneratorConfig, RoutePlanner, generate_city
from repro.trajectory import (
    DestinationPredictor,
    Trajectory,
    TravelTimePredictor,
    cluster_trips,
    split_into_trips,
)
from repro.trajectory.staypoints import nearest_stay_point, stay_points_from_trips
from repro.util.timeutils import SECONDS_PER_DAY


def evaluate_population(city, *, history_days, observe_fractions, commuters=10, seed=51):
    """Destination accuracy and ΔT error per observation fraction."""
    generator = CommuterGenerator(
        city, CommuterConfig(seed=seed, commuters=commuters, history_days=history_days)
    )
    planner = RoutePlanner(city.network)
    travel_time = TravelTimePredictor(planner)
    results = {fraction: {"correct": 0, "total": 0, "errors": []} for fraction in observe_fractions}

    for commuter in generator.generate_commuters():
        fixes = generator.historical_fixes(commuter)
        if len(fixes) < 10:
            continue
        trajectory = Trajectory.from_fixes(commuter.user_id, fixes)
        trips = split_into_trips(trajectory)
        if len(trips) < 2:
            continue
        stay_points = stay_points_from_trips(trips, eps_m=300.0)
        if len(stay_points) < 2:
            continue
        clusters = cluster_trips(trips, stay_points)
        if not clusters:
            continue
        predictor = DestinationPredictor(stay_points, clusters)
        drive = generator.live_drive(commuter, day=history_days)
        true_destination = drive.route.geometry.end
        true_arrival = drive.arrival_s

        for fraction in observe_fractions:
            observe_until = drive.departure_s + fraction * drive.expected_duration_s
            partial_fixes = drive.fixes(until_s=observe_until)
            if len(partial_fixes) < 2:
                continue
            partial = Trajectory.from_fixes(commuter.user_id, partial_fixes)
            try:
                prediction = predictor.most_likely(partial)
            except Exception:  # noqa: BLE001 - failed prediction counts as a miss
                results[fraction]["total"] += 1
                continue
            results[fraction]["total"] += 1
            if prediction.center.distance_m(true_destination) < 1000.0:
                results[fraction]["correct"] += 1
            origin_sp = nearest_stay_point(stay_points, partial.origin, max_distance_m=800.0)
            cluster = None
            if origin_sp is not None:
                from repro.trajectory.clustering import find_cluster

                cluster = find_cluster(clusters, origin_sp.stay_point_id, prediction.stay_point_id)
            completed = None
            if cluster is not None and cluster.median_length_m > 0:
                completed = min(1.0, partial.length_m / cluster.median_length_m)
            try:
                estimate = travel_time.estimate(
                    partial.destination,
                    prediction.center,
                    now_s=observe_until,
                    cluster=cluster,
                    fraction_completed=completed,
                )
            except Exception:  # noqa: BLE001
                continue
            actual_remaining = max(1.0, true_arrival - observe_until)
            results[fraction]["errors"].append(
                abs(estimate.expected_s - actual_remaining) / actual_remaining
            )
    return results


def summarize(results):
    rows = []
    for fraction, data in sorted(results.items()):
        total = max(1, data["total"])
        errors = data["errors"] or [1.0]
        rows.append(
            {
                "observed_fraction": fraction,
                "destination_top1_acc": round(data["correct"] / total, 3),
                "delta_t_median_rel_err": round(sorted(errors)[len(errors) // 2], 3),
                "drives": data["total"],
            }
        )
    return rows


def test_q3_prediction_quality(benchmark):
    city = generate_city(CityGeneratorConfig(grid_rows=12, grid_cols=12, poi_count=16, seed=61))

    results = benchmark.pedantic(
        evaluate_population,
        args=(city,),
        kwargs={"history_days": 8, "observe_fractions": (0.15, 0.3, 0.5)},
        rounds=1,
        iterations=1,
    )
    rows = summarize(results)

    # Shape: accuracy is already useful after a short observation and does
    # not degrade as more of the drive is seen; ΔT error stays bounded.
    accuracies = [row["destination_top1_acc"] for row in rows]
    assert accuracies[0] >= 0.5
    assert accuracies[-1] >= accuracies[0] - 0.1
    assert all(row["delta_t_median_rel_err"] < 0.8 for row in rows)

    # History ablation: more days of history should not hurt accuracy.
    short_history = summarize(
        evaluate_population(city, history_days=3, observe_fractions=(0.3,), seed=52)
    )
    long_history = summarize(
        evaluate_population(city, history_days=10, observe_fractions=(0.3,), seed=52)
    )
    history_rows = [
        {"history_days": 3, **{k: v for k, v in short_history[0].items() if k != "observed_fraction"}},
        {"history_days": 10, **{k: v for k, v in long_history[0].items() if k != "observed_fraction"}},
    ]
    assert long_history[0]["destination_top1_acc"] >= short_history[0]["destination_top1_acc"] - 0.15

    lines = (
        ["Q-3: destination and travel-time prediction quality", "", "by observed fraction of the drive:"]
        + format_table(rows)
        + ["", "by amount of history (30% of the drive observed):"]
        + format_table(history_rows)
    )
    path = write_result("q3_prediction", lines)
    benchmark.extra_info["top1_at_30pct"] = rows[1]["destination_top1_acc"]
    benchmark.extra_info["results_file"] = path

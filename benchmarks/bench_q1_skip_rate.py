"""Q-1 — the paper's headline claim: personalization reduces skips and zapping.

Simulates the same morning commute for a population of listeners under
linear-only radio, random / popularity / content-based recommendation and
the full PPHCR pipeline, and compares skip rates, channel-change rates and
listening satisfaction.  Expected shape: PPHCR <= content-based < linear-only
on skip propensity, and the reverse on enjoyment.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.simulation import PersonalizationStrategy, SimulationRunner

STRATEGIES = [
    PersonalizationStrategy.LINEAR_ONLY,
    PersonalizationStrategy.RANDOM,
    PersonalizationStrategy.POPULARITY,
    PersonalizationStrategy.CONTENT_ONLY,
    PersonalizationStrategy.PPHCR,
]


def test_q1_skip_rate_by_strategy(benchmark, population_world):
    runner = SimulationRunner(population_world, seed=29)

    comparison = benchmark.pedantic(
        runner.compare_strategies, args=(STRATEGIES,), kwargs={"max_users": 24}, rounds=1, iterations=1
    )

    table = comparison.as_table()
    by_strategy = {row["strategy"]: row for row in table}

    linear = by_strategy["linear_only"]
    content = by_strategy["content_only"]
    pphcr = by_strategy["pphcr"]
    random_row = by_strategy["random"]

    # Shape claims (tolerances allow for stochastic listener behaviour).
    # The paper's comparison point is plain linear radio — the listener's
    # default alternative; random and popularity are sanity baselines; the
    # content-only recommender is reported for context (it is competitive on
    # raw skip rate because the synthetic satisfaction model weights taste
    # heavily — see EXPERIMENTS.md).
    # 1. full PPHCR reduces skip propensity versus plain linear radio;
    assert pphcr["skip_rate"] <= linear["skip_rate"] + 0.02
    # 2. personalization beats random and popularity-only selection;
    assert pphcr["skip_rate"] <= random_row["skip_rate"] + 0.02
    assert pphcr["skip_rate"] <= by_strategy["popularity"]["skip_rate"] + 0.02
    # 3. context-free personalization also beats linear (both columns reproduce
    #    the qualitative ordering: personalized < linear);
    assert content["skip_rate"] <= linear["skip_rate"] + 0.02
    # 4. channel surfing only happens on linear radio (skips stay in-app);
    assert pphcr["channel_change_rate"] <= linear["channel_change_rate"] + 1e-9
    # 5. enjoyment moves in the opposite direction.
    assert pphcr["mean_enjoyment"] >= linear["mean_enjoyment"] - 0.02

    lines = [
        "Q-1: skip / channel-change propensity by personalization strategy",
        f"(one simulated morning commute per listener, {int(linear['sessions'])} listeners)",
        "",
    ] + format_table(table)
    path = write_result("q1_skip_rate", lines)

    benchmark.extra_info["pphcr_skip_rate"] = pphcr["skip_rate"]
    benchmark.extra_info["linear_skip_rate"] = linear["skip_rate"]
    benchmark.extra_info["results_file"] = path

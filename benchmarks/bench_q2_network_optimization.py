"""Q-2 — network resource optimization of hybrid delivery.

The paper claims hybrid content radio "supports network resource
optimization, allowing effective use of the broadcast channel and the
Internet".  The bench sweeps audience sizes and compares unicast bytes for
pure streaming versus hybrid delivery.  Expected shape: pure streaming grows
linearly with the audience while the hybrid unicast cost stays a small
fraction of it, with savings growing with broadcast coverage and shrinking
with the clip-replacement share.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.delivery import DeliveryCostModel

AUDIENCES = [100, 1_000, 10_000, 100_000, 1_000_000]


def test_q2_streaming_vs_hybrid(benchmark):
    model = DeliveryCostModel(clip_replacement_share=0.2, broadcast_coverage=0.85)

    reports = benchmark(lambda: model.sweep(AUDIENCES))

    rows = []
    for report in reports:
        rows.append(
            {
                "listeners": report.listeners,
                "streaming_GB": round(report.pure_streaming_bytes / 1e9, 2),
                "hybrid_GB": round(report.hybrid_unicast_bytes / 1e9, 2),
                "broadcast_equiv_GB": round(report.broadcast_equivalent_bytes / 1e9, 2),
                "saving": f"{report.savings_ratio:.0%}",
            }
        )

    # Shape: linear growth for streaming, constant (large) relative saving for hybrid.
    assert reports[-1].pure_streaming_bytes > 0
    for report in reports[1:]:
        assert report.savings_ratio > 0.5
    ratio_small = reports[1].pure_streaming_bytes / reports[1].listeners
    ratio_large = reports[-1].pure_streaming_bytes / reports[-1].listeners
    assert abs(ratio_small - ratio_large) / ratio_large < 1e-6  # per-listener streaming cost constant

    # Sensitivity series for coverage and clip share (the crossover behaviour).
    coverage_rows = []
    for coverage in (0.25, 0.5, 0.75, 0.9, 1.0):
        report = DeliveryCostModel(clip_replacement_share=0.2, broadcast_coverage=coverage).report(100_000)
        coverage_rows.append({"coverage": coverage, "saving": f"{report.savings_ratio:.0%}"})
    share_rows = []
    previous_saving = 1.0
    for share in (0.05, 0.2, 0.4, 0.6, 0.8, 1.0):
        report = DeliveryCostModel(clip_replacement_share=share, broadcast_coverage=1.0).report(100_000)
        assert report.savings_ratio <= previous_saving + 1e-9
        previous_saving = report.savings_ratio
        share_rows.append({"clip_share": share, "saving": f"{report.savings_ratio:.0%}"})

    lines = (
        ["Q-2: unicast traffic, pure streaming vs hybrid content radio", ""]
        + format_table(rows)
        + ["", "saving vs broadcast coverage (100k listeners):"]
        + format_table(coverage_rows)
        + ["", "saving vs clip-replacement share (full coverage):"]
        + format_table(share_rows)
    )
    path = write_result("q2_network_optimization", lines)

    benchmark.extra_info["saving_at_100k"] = rows[3]["saving"]
    benchmark.extra_info["results_file"] = path

"""PERF — batched geo-scoring fast path vs. the per-clip reference path.

The recommend tick scores every candidate clip's geographic relevance
against the listener's predicted route.  The reference path re-samples the
route and runs a full haversine per (clip, sample) pair; the fast path
materializes the sampled route once (:class:`RouteSamples`), keeps the
radian/cosine terms precomputed (:class:`RouteRelevanceScorer`), and prunes
far-away clips through the repository's grid index.

Workload (from the issue's acceptance criteria): 5 000 clips scored against
a 200-sample route.  The bench asserts a >= 5x throughput improvement and
that fast-path scores match the reference within 1e-9.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_perf_geo_scoring.py -q
"""

from __future__ import annotations

import time
from typing import List, Tuple

from conftest import format_table, write_result

from repro.content.geo_relevance import (
    RouteRelevanceScorer,
    geographic_relevance,
)
from repro.content.model import AudioClip, ContentKind
from repro.geo import GeoPoint, GridIndex, Polyline
from repro.geo.geodesy import destination_point
from repro.util.rng import DeterministicRng

CLIP_COUNT = 5000
ROUTE_SAMPLES = 200
GEO_TAGGED_SHARE = 0.6
BASE = GeoPoint(45.07, 7.68)


def build_workload(seed: int = 9) -> Tuple[Polyline, List[AudioClip], GridIndex]:
    """A commute-length route and a metropolitan clip archive around it."""
    rng = DeterministicRng(seed)
    vertices = [BASE]
    for _ in range(120):
        vertices.append(
            destination_point(vertices[-1], rng.uniform(30.0, 150.0), rng.uniform(100.0, 400.0))
        )
    route = Polyline(vertices)

    clips: List[AudioClip] = []
    index: GridIndex[str] = GridIndex(cell_size_m=2000.0)
    for i in range(CLIP_COUNT):
        crng = rng.fork("clip", i)
        clip_id = f"clip-{i}"
        if crng.uniform(0.0, 1.0) >= GEO_TAGGED_SHARE:
            clips.append(
                AudioClip(
                    clip_id=clip_id,
                    title=f"national item {i}",
                    kind=ContentKind.PODCAST,
                    duration_s=300.0,
                )
            )
            continue
        # Tag centres spread over a ~150 km metro region: only a sliver of
        # the archive is actually within reach of any given commute.
        location = destination_point(
            BASE, crng.uniform(0.0, 360.0), crng.uniform(0.0, 150000.0)
        )
        clip = AudioClip(
            clip_id=clip_id,
            title=f"local item {i}",
            kind=ContentKind.PODCAST,
            duration_s=300.0,
            geo_location=location,
            geo_radius_m=crng.uniform(500.0, 4000.0),
            geo_decay_m=crng.uniform(1000.0, 6000.0),
        )
        clips.append(clip)
        index.insert(clip_id, location)
    return route, clips, index


def reference_scores(route, clips, position, destination):
    """The seed implementation: one clip at a time, route re-sampled per clip."""
    return {
        clip.clip_id: geographic_relevance(
            clip,
            current_position=position,
            route=route,
            destination=destination,
            route_samples=ROUTE_SAMPLES,
        )
        for clip in clips
    }


def fast_scores(route, clips, index, position, destination):
    """The batched fast path with grid-index pruning."""
    scorer = RouteRelevanceScorer(
        current_position=position,
        route=route,
        destination=destination,
        route_samples=ROUTE_SAMPLES,
    )
    return scorer.score_many(clips, geo_index=index)


def test_perf_geo_scoring_fast_path(benchmark):
    route, clips, index = build_workload()
    position = route.start
    destination = route.end

    start = time.perf_counter()
    slow = reference_scores(route, clips, position, destination)
    slow_elapsed = time.perf_counter() - start

    fast = benchmark.pedantic(
        fast_scores,
        args=(route, clips, index, position, destination),
        rounds=3,
        iterations=1,
    )
    start = time.perf_counter()
    fast_scores(route, clips, index, position, destination)
    fast_elapsed = time.perf_counter() - start

    # Correctness first: the fast path reproduces the reference scores.
    max_diff = max(abs(fast[clip.clip_id] - slow[clip.clip_id]) for clip in clips)
    assert max_diff <= 1e-9, f"fast path diverged from reference by {max_diff}"

    speedup = slow_elapsed / max(fast_elapsed, 1e-9)
    assert speedup >= 5.0, (
        f"fast path only {speedup:.1f}x faster "
        f"({slow_elapsed * 1000:.0f}ms vs {fast_elapsed * 1000:.0f}ms)"
    )

    rows = [
        {
            "path": "reference (per-clip resample)",
            "clips": len(clips),
            "route_samples": ROUTE_SAMPLES,
            "elapsed_ms": f"{slow_elapsed * 1000:.1f}",
            "clips_per_s": f"{len(clips) / slow_elapsed:.0f}",
        },
        {
            "path": "fast (batched + grid pruning)",
            "clips": len(clips),
            "route_samples": ROUTE_SAMPLES,
            "elapsed_ms": f"{fast_elapsed * 1000:.1f}",
            "clips_per_s": f"{len(clips) / fast_elapsed:.0f}",
        },
    ]
    lines = format_table(rows)
    lines.append("")
    lines.append(f"speedup: {speedup:.1f}x   max |fast - reference| = {max_diff:.2e}")
    write_result("perf_geo_scoring", lines)

    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["max_score_diff"] = max_diff
    benchmark.extra_info["reference_clips_per_s"] = round(len(clips) / slow_elapsed)
    benchmark.extra_info["fast_clips_per_s"] = round(len(clips) / fast_elapsed)

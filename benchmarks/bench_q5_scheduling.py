"""Q-5 — the relevance objective of ΔT-bounded scheduling vs baselines.

Given the same candidate set and the same available time, compares the
relevance objective achieved by the paper's compound-score scheduling
(greedy-by-density and exact knapsack) against random and popularity-ordered
filling.  Expected shape: compound scheduling dominates the baselines on the
objective value and on relevance per scheduled minute at every ΔT.
"""

from __future__ import annotations

import pytest
from conftest import format_table, write_result

from repro.datasets import BroadcasterConfig, CommuterConfig, WorldConfig, build_world
from repro.recommender import Scheduler, SchedulerPolicy
from repro.roadnet import CityGeneratorConfig
from repro.recommender.baselines import PopularityRecommender, RandomRecommender
from repro.recommender.compound import CompoundScorer
from repro.recommender.content_based import ContentBasedScorer
from repro.recommender.evaluation import plan_relevance_per_minute

DELTA_T_BUDGETS = (300.0, 600.0, 1200.0, 2400.0)

#: Item-count cap high enough that the time budget is always the binding
#: constraint (the relevant regime for ΔT-bounded scheduling).
MAX_ITEMS = 50


@pytest.fixture(scope="module")
def scheduling_world():
    """A private world so earlier benches cannot perturb the candidate pool."""
    return build_world(
        WorldConfig(
            seed=5150,
            city=CityGeneratorConfig(grid_rows=12, grid_cols=12, poi_count=18, seed=23),
            broadcaster=BroadcasterConfig(seed=27, clips_per_day=120),
            commuters=CommuterConfig(seed=31, commuters=6, history_days=7),
            classifier_documents_per_category=8,
            feedback_events_per_user=24,
        )
    )


def prepare(world):
    server = world.server
    commuter = world.commuters[0]
    drive = world.commuter_generator.live_drive(commuter, day=world.today)
    observe = drive.departure_s + max(90.0, 0.3 * drive.expected_duration_s)
    server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
    context = server.build_context(commuter.user_id, now_s=observe)
    candidates = server.proactive_engine._filter.candidates(  # noqa: SLF001 - shared filter
        commuter.user_id, now_s=observe
    )
    content_scorer = ContentBasedScorer(server.content, server.users)
    compound = CompoundScorer(content_scorer, context_weight=server.config.context_weight)
    rankings = {
        "compound": compound.rank(candidates, context),
        "random": RandomRecommender(seed=5).rank(candidates, context),
        "popularity": PopularityRecommender(server.content, server.users).rank(candidates, context),
    }
    return context, rankings


def test_q5_scheduling_objective(benchmark, scheduling_world):
    context, rankings = prepare(scheduling_world)
    greedy = Scheduler(policy=SchedulerPolicy.GREEDY, max_items=MAX_ITEMS)
    knapsack = Scheduler(policy=SchedulerPolicy.KNAPSACK, max_items=MAX_ITEMS)
    # All plans are evaluated under the SAME relevance measure (the compound
    # score), no matter which ranking selected the items: a random baseline
    # assigning itself inflated scores must not look good for free.
    true_relevance = {item.clip_id: item.final_score for item in rankings["compound"]}

    def plan_true_objective(plan):
        return sum(true_relevance.get(item.clip_id, 0.0) for item in plan.items)

    def sweep():
        rows = []
        for budget in DELTA_T_BUDGETS:
            row = {"delta_t_min": round(budget / 60.0, 1)}
            for name, ranked in rankings.items():
                plan = greedy.build_plan(ranked, context, available_s=budget)
                row[f"{name}_objective"] = round(plan_true_objective(plan), 2)
                row[f"{name}_rel_per_min"] = round(plan_relevance_per_minute(plan), 3)
            knapsack_plan = knapsack.build_plan(rankings["compound"], context, available_s=budget)
            row["knapsack_objective"] = round(plan_true_objective(knapsack_plan), 2)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for row in rows:
        # Compound scheduling beats both baselines on the relevance objective.
        assert row["compound_objective"] >= row["random_objective"] - 1e-9
        assert row["compound_objective"] >= row["popularity_objective"] - 1e-9
        # The exact knapsack never does much worse than greedy on the same ranking.
        assert row["knapsack_objective"] >= row["compound_objective"] - 0.25
    # The objective grows with the available time.
    objectives = [row["compound_objective"] for row in rows]
    assert objectives == sorted(objectives)

    lines = ["Q-5: scheduling objective vs baselines per available time dT", ""] + format_table(rows)
    path = write_result("q5_scheduling", lines)
    benchmark.extra_info["results_file"] = path


def test_q5_scheduler_latency(benchmark, scheduling_world):
    """Scheduling latency for a realistic candidate set (greedy policy)."""
    context, rankings = prepare(scheduling_world)
    scheduler = Scheduler(policy=SchedulerPolicy.GREEDY)

    plan = benchmark(lambda: scheduler.build_plan(rankings["compound"], context, available_s=1200.0))
    assert plan.items

"""PERF — concurrent serving: sharded parallel workers vs. one serial database.

The shard router partitions every piece of per-user state (tracking
histories, profiles, feedback, streaming models) into crc32 shards, each
its own database with a single-writer worker thread.  This bench measures
what that buys a *serving* deployment: mixed ingest + read traffic at the
wire level (JSON in / JSON out via ``Gateway.handle_wire``), where every
request also pays a fixed client-link transfer cost (``WIRE_IO_S``,
modelled as a sleep — exactly the non-CPU wait an HTTP front end overlaps
per request; identical for both configurations).

Two configurations serve the *same* request stream:

* **single-serial** — one shard (the old single-``Database`` layout), one
  thread, every request handled in global order;
* **sharded-parallel** — ``SHARDS`` shards, requests routed to the owning
  shard's worker (``ShardWorkerPool``: one single-thread executor per
  shard, so each worker is the sole writer of its shard), per-user request
  order preserved.

Correctness gates the timing claim twice over:

* a **parity replay** first drives the identical request sequence through
  both shard layouts serially (ids reset, no sleeps) and asserts every
  response is byte-identical (pagination cursors are opaque shard-layout
  handles, so ``next_cursor`` is normalized to presence; the *items* of
  full listing walks are compared instead) and the final mobility models,
  merged listings and recommendations match exactly;
* after the timed runs, the two servers' end states are asserted
  identical again (per-user fixes, model fingerprints, recommendations).

Asserts aggregate throughput of sharded-parallel >= 2x single-serial, and
reports p50/p95/p99 request latency for both.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_concurrent_serving.py -q
"""

from __future__ import annotations

import json
import time
from concurrent.futures import wait
from typing import Any, Dict, List, Optional, Tuple

from conftest import format_table, write_result

from repro.content.model import AudioClip, ContentKind
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.pipeline import Gateway, PphcrServer
from repro.pipeline.server import ServerConfig
from repro.storage.sharding import ShardingConfig
from repro.users.profile import UserProfile
from repro.util.ids import reset_ids
from repro.util.rng import DeterministicRng

USERS = 24
ROUNDS = 3
FIXES_PER_ROUND = 30
FIX_INTERVAL_S = 20.0
REVALIDATIONS = 5
#: Page size for the merged listing reads (small enough to need cursors).
LIST_LIMIT = 10
SHARDS = 4
#: Per-request client-link transfer time: the wire wait an HTTP front end
#: pays per request (socket read/write), which releases the GIL and which
#: per-shard workers overlap.  Identical for both configurations.
WIRE_IO_S = 0.002
SPEEDUP_FLOOR = 2.0
CLIPS = 40

#: Op kinds: ("batch", user, round) / ("feedback", user, round)
#: ("rec", user, now_s) / ("reval", user, now_s)
#: ("users_list", None, None) / ("clips_list", None, None)
Op = Tuple[str, Optional[str], Any]


# Workload -----------------------------------------------------------------


def _drive(rng: DeterministicRng, *, t0: float) -> List[dict]:
    base = GeoPoint(45.07 + rng.uniform(-0.05, 0.05), 7.68 + rng.uniform(-0.05, 0.05))
    bearing = rng.uniform(0.0, 360.0)
    speed = rng.uniform(9.0, 14.0)
    fixes = []
    for index in range(FIXES_PER_ROUND):
        position = destination_point(base, bearing, speed * FIX_INTERVAL_S * index)
        position = destination_point(
            position, rng.uniform(0.0, 360.0), abs(rng.gauss(0.0, 6.0))
        )
        fixes.append(
            {
                "lat": position.lat,
                "lon": position.lon,
                "timestamp_s": t0 + FIX_INTERVAL_S * index,
                "speed_mps": speed,
            }
        )
    return fixes


def _round_t0(round_index: int) -> float:
    return round_index * 86400.0 + 7.5 * 3600.0


def user_ids() -> List[str]:
    return [f"user-{index:03d}" for index in range(USERS)]


def build_workload(seed: int = 17) -> Tuple[Dict[Tuple[str, int], str], List[Op]]:
    """Pre-encoded drive payloads plus the global request order.

    The op stream interleaves all users round by round — one buffered
    drive upload, one feedback post, one cold recommendation read and
    ``REVALIDATIONS`` conditional reads per user per round, with merged
    listing reads between rounds — the mixed ingest + read mix a serving
    node sees.
    """
    rng = DeterministicRng(seed)
    payloads: Dict[Tuple[str, int], str] = {}
    ops: List[Op] = []
    users = user_ids()
    for round_index in range(ROUNDS):
        t0 = _round_t0(round_index)
        now_s = t0 + FIX_INTERVAL_S * (FIXES_PER_ROUND - 1)
        for user_index, user_id in enumerate(users):
            drive = _drive(rng.fork("drive", user_id, round_index), t0=t0)
            payloads[(user_id, round_index)] = json.dumps(
                {"user_id": user_id, "fixes": drive}
            )
            ops.append(("batch", user_id, round_index))
            ops.append(("feedback", user_id, round_index))
            ops.append(("rec", user_id, now_s))
            for _ in range(REVALIDATIONS):
                ops.append(("reval", user_id, now_s))
        ops.append(("users_list", None, None))
        ops.append(("clips_list", None, None))
    return payloads, ops


def build_server(
    shards: int, *, parallel: bool, telemetry=None, durability=None
) -> Tuple[PphcrServer, Gateway]:
    """A warmed server/gateway pair with the requested shard layout.

    ``telemetry`` overrides the server's :class:`TelemetryConfig` (the
    overhead bench drives the same workload with it enabled and disabled);
    None keeps the default (enabled).  ``durability`` overrides the
    :class:`DurabilityConfig` (the WAL bench drives the same workload with
    the log on and off); None keeps the default (off).
    """
    reset_ids()
    kwargs = {"sharding": ShardingConfig(shards=shards, parallel=parallel)}
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    if durability is not None:
        kwargs["durability"] = durability
    server = PphcrServer(config=ServerConfig(**kwargs))
    categories = ["news-national", "economics", "culture", "cinema", "history"]
    for index in range(CLIPS):
        server.content.add_clip(
            AudioClip(
                clip_id=f"clip-{index:03d}",
                title=f"Clip {index}",
                kind=ContentKind.PODCAST,
                duration_s=90.0 + 10.0 * (index % 12),
                category_scores={categories[index % len(categories)]: 1.0},
                published_s=float(index),
            )
        )
    gateway = Gateway(server)
    for user_id in user_ids():
        server.register_user(UserProfile(user_id=user_id, display_name=user_id))
    return server, gateway


# Request execution --------------------------------------------------------


def execute_op(
    gateway: Gateway,
    payloads: Dict[Tuple[str, int], str],
    op: Op,
    etags: Dict[str, str],
    *,
    wire_io_s: float = 0.0,
) -> Tuple[int, str]:
    """Serve one op at the wire level; returns ``(status, body_json)``.

    ``etags`` accumulates the freshest recommendation validator per user
    (keys are per-user, so concurrent shard workers never share an entry).
    """
    kind, user_id, arg = op
    if wire_io_s > 0.0:
        time.sleep(wire_io_s)
    if kind == "batch":
        status, body, _headers = gateway.handle_wire(
            "POST", "/v1/tracking/batch", payloads[(user_id, arg)]
        )
        assert status == 202, body
    elif kind == "feedback":
        status, body, _headers = gateway.handle_wire(
            "POST",
            "/v1/feedback",
            json.dumps(
                {
                    "user_id": user_id,
                    "content_id": f"clip-{arg:03d}",
                    "kind": "like",
                    "timestamp_s": _round_t0(arg) + 600.0,
                }
            ),
        )
        assert status == 201, body
    elif kind == "rec":
        status, body, headers = gateway.handle_wire(
            "GET",
            f"/v1/recommendations/{user_id}",
            query={"now_s": repr(arg)},
        )
        assert status == 200, body
        etags[user_id] = headers["etag"]
    elif kind == "reval":
        status, body, _headers = gateway.handle_wire(
            "GET",
            f"/v1/recommendations/{user_id}",
            query={"now_s": repr(arg)},
            headers={"if-none-match": etags[user_id]},
        )
        assert status == 304, body
    elif kind == "users_list":
        status, body, _headers = gateway.handle_wire(
            "GET", "/v1/users", query={"limit": str(LIST_LIMIT)}
        )
        assert status == 200, body
    elif kind == "clips_list":
        status, body, _headers = gateway.handle_wire(
            "GET", "/v1/clips", query={"limit": str(LIST_LIMIT)}
        )
        assert status == 200, body
    else:  # pragma: no cover - workload construction error
        raise AssertionError(f"unknown op kind {kind!r}")
    return status, body


def run_serial(
    gateway: Gateway, payloads: Dict[Tuple[str, int], str], ops: List[Op]
) -> Tuple[float, List[float]]:
    """One thread serves every request in global order."""
    etags: Dict[str, str] = {}
    latencies: List[float] = []
    start = time.perf_counter()
    for op in ops:
        begin = time.perf_counter()
        execute_op(gateway, payloads, op, etags, wire_io_s=WIRE_IO_S)
        latencies.append(time.perf_counter() - begin)
    return time.perf_counter() - start, latencies


def run_sharded_parallel(
    server: PphcrServer,
    gateway: Gateway,
    payloads: Dict[Tuple[str, int], str],
    ops: List[Op],
) -> Tuple[float, List[float]]:
    """Per-shard workers drain per-shard queues of the same global order.

    Each op routes to the shard owning its user (user-less listing reads
    round-robin); within a queue the global order is preserved, so every
    user's requests execute in order on one worker — the single writer of
    that shard.
    """
    queues: List[List[Op]] = [[] for _ in range(server.shard_count)]
    round_robin = 0
    for op in ops:
        if op[1] is not None:
            queues[server.users.shard_of(op[1])].append(op)
        else:
            queues[round_robin % server.shard_count].append(op)
            round_robin += 1
    pool = server.workers
    assert pool is not None, "sharded server must run with parallel workers"
    etags: Dict[str, str] = {}

    def drain(queue: List[Op]) -> List[float]:
        latencies: List[float] = []
        for op in queue:
            begin = time.perf_counter()
            execute_op(gateway, payloads, op, etags, wire_io_s=WIRE_IO_S)
            latencies.append(time.perf_counter() - begin)
        return latencies

    start = time.perf_counter()
    futures = [
        pool.submit(shard, drain, queue)
        for shard, queue in enumerate(queues)
        if queue
    ]
    wait(futures)
    elapsed = time.perf_counter() - start
    latencies = []
    for future in futures:
        latencies.extend(future.result())  # re-raises worker errors
    return elapsed, latencies


# Parity -------------------------------------------------------------------


def _normalized(body: str) -> Any:
    """Response body with pagination cursors reduced to their presence.

    Cursor tokens encode per-shard resume positions, so their *strings*
    are shard-layout specific by design; whether a next page exists — and
    every other byte of the body — must match exactly.
    """
    data = json.loads(body)
    if isinstance(data, dict) and "next_cursor" in data:
        data = dict(data)
        data["next_cursor"] = data["next_cursor"] is not None
    return data


def replay_for_parity(
    shards: int, payloads: Dict[Tuple[str, int], str], ops: List[Op]
) -> Tuple[List[Tuple[int, Any]], PphcrServer, Gateway]:
    """Serve the op stream serially on a fresh server; collect responses."""
    server, gateway = build_server(shards, parallel=False)
    etags: Dict[str, str] = {}
    responses = []
    for op in ops:
        status, body = execute_op(gateway, payloads, op, etags)
        responses.append((status, _normalized(body)))
    return responses, server, gateway


def walk_listing(gateway: Gateway, path: str, items_key: str) -> List[Any]:
    """Every item of a paginated listing, following each config's cursors."""
    items: List[Any] = []
    cursor: Optional[str] = None
    while True:
        query = {"limit": str(LIST_LIMIT)}
        if cursor is not None:
            query["cursor"] = cursor
        status, body, _headers = gateway.handle_wire("GET", path, query=query)
        assert status == 200, body
        data = json.loads(body)
        items.extend(data[items_key])
        cursor = data["next_cursor"]
        if cursor is None:
            return items


def model_fingerprint(server: PphcrServer, user_id: str) -> Any:
    snapshot = server.streaming.model_snapshot(user_id, include_open_tail=True)
    if snapshot is None:
        return None
    return (
        snapshot.trip_count,
        [
            (sp.stay_point_id, sp.center, sp.support, sp.total_dwell_s)
            for sp in snapshot.stay_points
        ],
        [
            (c.cluster_id, c.origin_stay_point, c.destination_stay_point, c.support)
            for c in snapshot.clusters
        ],
    )


def assert_end_state_equal(
    server_a: PphcrServer,
    gateway_a: Gateway,
    server_b: PphcrServer,
    gateway_b: Gateway,
    *,
    ignore_event_ids: bool = False,
) -> None:
    """Both servers must hold identical per-user state and listings.

    ``ignore_event_ids`` drops feedback ``event_id`` values from the
    comparison: ids come from one process-global counter, so a concurrent
    run hands them out in a different *global* order than a serial one
    even though every user's event sequence is identical.  The serial
    parity replay compares them strictly.
    """
    now_s = _round_t0(ROUNDS)  # a fresh bucket: both sides re-evaluate
    for user_id in user_ids():
        assert server_a.users.tracking.fixes_for(user_id) == server_b.users.tracking.fixes_for(
            user_id
        ), user_id
        assert model_fingerprint(server_a, user_id) == model_fingerprint(
            server_b, user_id
        ), user_id
        response_a = gateway_a.request(
            "GET", f"/v1/recommendations/{user_id}", query={"now_s": repr(now_s)}
        )
        response_b = gateway_b.request(
            "GET", f"/v1/recommendations/{user_id}", query={"now_s": repr(now_s)}
        )
        assert response_a.status == response_b.status == 200
        assert response_a.body == response_b.body, user_id
    assert walk_listing(gateway_a, "/v1/users", "users") == walk_listing(
        gateway_b, "/v1/users", "users"
    )
    for user_id in user_ids():
        status_a, body_a, _h = gateway_a.handle_wire(
            "GET", f"/v1/users/{user_id}/feedback"
        )
        status_b, body_b, _h = gateway_b.handle_wire(
            "GET", f"/v1/users/{user_id}/feedback"
        )
        assert status_a == status_b == 200
        events_a, events_b = _normalized(body_a), _normalized(body_b)
        if ignore_event_ids:
            for event in events_a["events"] + events_b["events"]:
                event.pop("event_id")
        assert events_a == events_b, user_id


def percentile(latencies: List[float], fraction: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def latency_row(label: str, elapsed: float, latencies: List[float]) -> Dict[str, object]:
    return {
        "configuration": label,
        "requests": len(latencies),
        "elapsed_ms": f"{elapsed * 1000.0:.0f}",
        "throughput": f"{len(latencies) / elapsed:.0f} req/s",
        "p50_ms": f"{percentile(latencies, 0.50) * 1000.0:.2f}",
        "p95_ms": f"{percentile(latencies, 0.95) * 1000.0:.2f}",
        "p99_ms": f"{percentile(latencies, 0.99) * 1000.0:.2f}",
    }


# The benchmark ------------------------------------------------------------


def run_parity_phase(payloads, ops) -> None:
    """Identical responses from both shard layouts for the same stream."""
    responses_single, server_single, gateway_single = replay_for_parity(1, payloads, ops)
    responses_sharded, server_sharded, gateway_sharded = replay_for_parity(
        SHARDS, payloads, ops
    )
    assert responses_single == responses_sharded
    assert_end_state_equal(
        server_single, gateway_single, server_sharded, gateway_sharded
    )


def run_throughput_phase(payloads, ops):
    """Timed serial vs. sharded-parallel runs over the same stream.

    Returns the two ``(elapsed, latencies)`` pairs plus the parallel
    server, whose telemetry (``/v1/ops/metrics`` payload) the smoke runner
    snapshots as the ``BENCH_concurrent_serving_metrics.json`` artifact.
    """
    server_serial, gateway_serial = build_server(1, parallel=False)
    serial_elapsed, serial_latencies = run_serial(gateway_serial, payloads, ops)

    server_parallel, gateway_parallel = build_server(SHARDS, parallel=True)
    parallel_elapsed, parallel_latencies = run_sharded_parallel(
        server_parallel, gateway_parallel, payloads, ops
    )
    assert len(serial_latencies) == len(parallel_latencies) == len(ops)
    assert_end_state_equal(
        server_serial,
        gateway_serial,
        server_parallel,
        gateway_parallel,
        ignore_event_ids=True,
    )
    return (
        (serial_elapsed, serial_latencies),
        (parallel_elapsed, parallel_latencies),
        server_parallel,
    )


def test_perf_concurrent_serving(benchmark):
    payloads, ops = build_workload()
    run_parity_phase(payloads, ops)

    (serial_elapsed, serial_latencies), (
        parallel_elapsed,
        parallel_latencies,
    ), _server_parallel = benchmark.pedantic(
        run_throughput_phase, args=(payloads, ops), rounds=1, iterations=1
    )

    serial_throughput = len(ops) / serial_elapsed
    parallel_throughput = len(ops) / parallel_elapsed
    speedup = parallel_throughput / serial_throughput
    assert speedup >= SPEEDUP_FLOOR, (
        f"sharded-parallel serving only {speedup:.2f}x single-serial "
        f"({parallel_throughput:.0f} vs {serial_throughput:.0f} req/s "
        f"for {len(ops)} mixed requests, {SHARDS} shards)"
    )

    rows = [
        latency_row("single-database serial", serial_elapsed, serial_latencies),
        latency_row(
            f"sharded ({SHARDS} shards) parallel", parallel_elapsed, parallel_latencies
        ),
    ]
    lines = format_table(rows)
    lines.append("")
    lines.append(
        f"aggregate throughput speedup: {speedup:.2f}x "
        f"(wire transfer {WIRE_IO_S * 1000.0:.1f}ms/request, "
        f"{USERS} users x {ROUNDS} rounds, results bit-identical)"
    )
    write_result("concurrent_serving", lines)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["serial_req_per_s"] = round(serial_throughput, 1)
    benchmark.extra_info["parallel_req_per_s"] = round(parallel_throughput, 1)
    print("\n".join(lines))

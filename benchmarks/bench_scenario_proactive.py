"""SC-2 — demonstration scenario §2.1.2: contextual proactive recommendation.

Lilly's drive triggers a proactive recommendation with no explicit action on
her side; the content fits the predicted available time and she listens
without skipping.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.simulation import run_proactive_commute_scenario


def test_sc2_contextual_proactive_recommendation(benchmark, bench_world):
    def first_triggering():
        for commuter in bench_world.commuters:
            result = run_proactive_commute_scenario(bench_world, user_id=commuter.user_id)
            if result.decision.should_recommend:
                return result
        raise AssertionError("proactive recommendation never triggered")

    result = benchmark.pedantic(first_triggering, rounds=3, iterations=1)

    # Proactivity: a plan was produced from context alone.
    assert result.decision.should_recommend
    assert result.played_clip_ids
    assert result.listened_without_skips
    # The scheduled audio fits the predicted ΔT.
    assert result.plan.total_scheduled_s <= result.plan.available_s + 1e-6
    # ΔT prediction is within a factor ~2 of the realized remaining drive.
    ratio = result.delta_t_predicted_s / max(60.0, result.delta_t_actual_s)
    assert 0.3 < ratio < 3.0

    rows = [
        {
            "clip": item.scored.clip.title,
            "minutes": round(item.scored.clip.duration_s / 60.0, 1),
            "content": round(item.scored.content_score, 2),
            "context": round(item.scored.context_score, 2),
            "compound": round(item.scored.compound_score, 2),
            "reason": item.reason,
        }
        for item in result.plan.items
    ]
    lines = [
        "SC-2: contextual proactive recommendation",
        "",
        f"listener: {result.user_id}",
        f"trigger: {result.decision.reason}",
        f"predicted dT: {result.delta_t_predicted_s / 60.0:.1f} min "
        f"(actual {result.delta_t_actual_s / 60.0:.1f} min)",
        "",
    ] + format_table(rows) + ["", "timeline:"] + [f"  {line}" for line in result.timeline]
    path = write_result("sc2_proactive", lines)

    benchmark.extra_info["delta_t_ratio"] = round(ratio, 2)
    benchmark.extra_info["results_file"] = path

"""A-2 — ablation: trajectory compaction parameters (RDP tolerance, DBSCAN eps).

The compact route model depends on two parameters called out in the paper:
the Ramer-Douglas-Peucker simplification tolerance and the density-based
clustering radius used for stay points.  The bench sweeps both and measures
compression ratio, shape error, stay-point count and whether the two true
anchors (home, work) are recovered.  Expected shape: compression grows with
the tolerance while shape error stays small for moderate tolerances;
stay-point recall is robust over a wide band of eps and degrades only for
extreme values.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.datasets import CommuterConfig, CommuterGenerator
from repro.geo.geodesy import haversine_m
from repro.roadnet import CityGeneratorConfig, generate_city
from repro.trajectory import Trajectory, simplify_trajectory, split_into_trips
from repro.trajectory.staypoints import nearest_stay_point, stay_points_from_trips

RDP_TOLERANCES = (5.0, 25.0, 75.0, 200.0)
DBSCAN_EPS = (50.0, 150.0, 300.0, 800.0)


def build_population(seed=81, commuters=6, history_days=7):
    city = generate_city(CityGeneratorConfig(grid_rows=12, grid_cols=12, poi_count=16, seed=seed))
    generator = CommuterGenerator(city, CommuterConfig(seed=seed + 1, commuters=commuters, history_days=history_days))
    population = []
    for commuter in generator.generate_commuters():
        fixes = generator.historical_fixes(commuter)
        trajectory = Trajectory.from_fixes(commuter.user_id, fixes)
        trips = split_into_trips(trajectory)
        if trips:
            population.append((commuter, trips))
    return population


def shape_error_m(original, simplified, samples=30):
    """Mean distance between matched arc-length samples of the two geometries."""
    a = original.to_polyline()
    b = simplified.to_polyline()
    if a.length_m == 0 or b.length_m == 0:
        return 0.0
    total = 0.0
    for index in range(samples):
        fraction = index / (samples - 1)
        total += haversine_m(
            a.point_at_distance(fraction * a.length_m), b.point_at_distance(fraction * b.length_m)
        )
    return total / samples


def rdp_sweep(population):
    rows = []
    for tolerance in RDP_TOLERANCES:
        kept = 0
        total = 0
        errors = []
        for _commuter, trips in population:
            for trip in trips:
                simplified = simplify_trajectory(trip, tolerance_m=tolerance)
                kept += len(simplified)
                total += len(trip)
                errors.append(shape_error_m(trip, simplified))
        rows.append(
            {
                "rdp_tolerance_m": tolerance,
                "points_kept_ratio": round(kept / max(1, total), 3),
                "mean_shape_error_m": round(sum(errors) / max(1, len(errors)), 1),
            }
        )
    return rows


def eps_sweep(population):
    rows = []
    for eps in DBSCAN_EPS:
        recovered = 0
        total_anchors = 0
        stay_point_counts = []
        for commuter, trips in population:
            stay_points = stay_points_from_trips(trips, eps_m=eps, min_samples=2)
            stay_point_counts.append(len(stay_points))
            for anchor in (commuter.home, commuter.work):
                total_anchors += 1
                if nearest_stay_point(stay_points, anchor, max_distance_m=600.0) is not None:
                    recovered += 1
        rows.append(
            {
                "dbscan_eps_m": eps,
                "anchor_recall": round(recovered / max(1, total_anchors), 3),
                "mean_stay_points": round(sum(stay_point_counts) / max(1, len(stay_point_counts)), 2),
            }
        )
    return rows


def test_a2_rdp_tolerance_ablation(benchmark):
    population = build_population()
    rows = benchmark.pedantic(rdp_sweep, args=(population,), rounds=1, iterations=1)

    kept = [row["points_kept_ratio"] for row in rows]
    errors = [row["mean_shape_error_m"] for row in rows]
    # Compression increases (kept ratio decreases) monotonically with tolerance.
    assert kept == sorted(kept, reverse=True)
    # Shape error grows with tolerance but stays bounded at the default 25 m.
    assert errors[1] < 100.0
    assert errors[-1] >= errors[0]

    lines = ["A-2a: RDP tolerance vs compression and shape error", ""] + format_table(rows)
    write_result("a2_rdp_tolerance", lines)
    benchmark.extra_info["kept_ratio_at_25m"] = rows[1]["points_kept_ratio"]


def test_a2_dbscan_eps_ablation(benchmark):
    population = build_population(seed=83)
    rows = benchmark.pedantic(eps_sweep, args=(population,), rounds=1, iterations=1)

    by_eps = {row["dbscan_eps_m"]: row for row in rows}
    # The default working band (150-300 m) recovers essentially all anchors.
    assert by_eps[150.0]["anchor_recall"] >= 0.8
    assert by_eps[300.0]["anchor_recall"] >= 0.8
    # A huge eps merges everything into fewer clusters than the moderate setting.
    assert by_eps[800.0]["mean_stay_points"] <= by_eps[150.0]["mean_stay_points"] + 1e-9

    lines = ["A-2b: DBSCAN eps vs stay-point recall", ""] + format_table(rows)
    path = write_result("a2_dbscan_eps", lines)
    benchmark.extra_info["recall_at_150m"] = by_eps[150.0]["anchor_recall"]
    benchmark.extra_info["results_file"] = path

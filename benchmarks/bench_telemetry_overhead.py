"""PERF — telemetry overhead: instrumented vs. no-op gateway drive.

The unified telemetry subsystem (``repro.obs``) keeps every call site in
place when disabled — the null registry/tracer turn each observation into
one attribute lookup plus a no-op call.  The enabled path is the one that
must stay cheap: per request it records one route-latency histogram
sample, one status-class counter increment, one trace with its spans, and
one ``(plan, elapsed, rows)`` observation per table query — a few
microseconds total (hot call sites cache their resolved label series, the
trace object is its own context manager, a histogram record is one bisect
plus integer adds).

This bench drives the *identical* mixed wire workload (the concurrent-
serving op stream: buffered drive uploads, feedback posts, cold and
conditional recommendation reads, merged listing walks) through two
otherwise-identical servers, serially:

* **instrumented** — the default ``TelemetryConfig()`` (registry, tracer,
  slow-query log all live);
* **no-op** — ``TelemetryConfig(enabled=False)`` (null objects behind the
  same call sites).

The asserted comparison is at the wire level: each request pays the same
client-link transfer wait the concurrent-serving bench models
(``WIRE_IO_S``, identical for both configurations) — what a served
request actually costs, and what the <5 % budget in
``docs/ARCHITECTURE.md`` is stated against.  Rounds alternate between the
two configurations and each side keeps its best time, so machine noise
hits both equally.  A second, sleep-free drive pair measures the pure-CPU
overhead; it is *reported* (``cpu_overhead_pct``) but not asserted — the
per-request cost is single-digit microseconds, far below this harness's
scheduler noise floor.

Correctness gates ride along: the instrumented server must have recorded
exactly one latency sample per request, and the no-op server's metrics
snapshot must be empty.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py -q
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from conftest import format_table, write_result

from bench_concurrent_serving import (
    SHARDS,
    WIRE_IO_S,
    build_server,
    build_workload,
    execute_op,
)
from repro.obs import TelemetryConfig
from repro.pipeline import PphcrServer

#: Best-of rounds per configuration (alternated, so noise is shared).
ROUNDS = 3
#: The documented telemetry budget: instrumented <= no-op * (1 + 5%).
OVERHEAD_CEILING_PCT = 5.0

INSTRUMENTED = TelemetryConfig()
NOOP = TelemetryConfig(enabled=False)


def run_drive(
    telemetry: TelemetryConfig,
    payloads: Dict[Tuple[str, int], str],
    ops,
    *,
    wire_io_s: float,
) -> Tuple[float, PphcrServer]:
    """Serve the whole op stream serially on a fresh server; time it."""
    server, gateway = build_server(SHARDS, parallel=False, telemetry=telemetry)
    etags: Dict[str, str] = {}
    start = time.perf_counter()
    for op in ops:
        execute_op(gateway, payloads, op, etags, wire_io_s=wire_io_s)
    return time.perf_counter() - start, server


def _best_of_alternated(
    payloads, ops, *, wire_io_s: float, rounds: int = ROUNDS
) -> Tuple[float, float, PphcrServer, PphcrServer]:
    """Alternate instrumented / no-op drives; best time per side."""
    instrumented_best = noop_best = float("inf")
    instrumented_server = noop_server = None
    for _ in range(rounds):
        elapsed, server = run_drive(
            INSTRUMENTED, payloads, ops, wire_io_s=wire_io_s
        )
        if elapsed < instrumented_best:
            instrumented_best, instrumented_server = elapsed, server
        elapsed, server = run_drive(NOOP, payloads, ops, wire_io_s=wire_io_s)
        if elapsed < noop_best:
            noop_best, noop_server = elapsed, server
    return noop_best, instrumented_best, instrumented_server, noop_server


def run_overhead_phase(payloads, ops):
    """The timed comparison plus its correctness gates.

    Returns ``(noop_s, instrumented_s, overhead_pct, cpu_overhead_pct,
    instrumented_server)`` where the first three are wire-level (asserted)
    and ``cpu_overhead_pct`` comes from sleep-free drive pairs
    (informational — microseconds per request, below the noise floor of a
    shared CI machine, hence reported rather than asserted).
    """
    noop_best, instrumented_best, server, noop_server = _best_of_alternated(
        payloads, ops, wire_io_s=WIRE_IO_S
    )

    # Correctness gates: the instrumented server recorded every request,
    # the no-op server recorded nothing at all.
    recorded = _request_count(server)
    assert recorded == len(ops), f"instrumented run recorded {recorded}/{len(ops)}"
    noop_snapshot = noop_server.telemetry.metrics_snapshot()
    assert noop_snapshot == {"counters": {}, "gauges": {}, "histograms": {}}, (
        "no-op registry not empty"
    )

    cpu_noop, cpu_instrumented, _server, _noop = _best_of_alternated(
        payloads, ops, wire_io_s=0.0
    )
    cpu_overhead_pct = (cpu_instrumented / cpu_noop - 1.0) * 100.0

    overhead_pct = (instrumented_best / noop_best - 1.0) * 100.0
    return noop_best, instrumented_best, overhead_pct, cpu_overhead_pct, server


def _request_count(server: PphcrServer) -> int:
    """Total ``api_request_seconds`` samples across every route."""
    histograms = server.telemetry.metrics_snapshot().get("histograms", {})
    series = histograms.get("api_request_seconds", {}).get("series", [])
    return sum(entry["count"] for entry in series)


def test_perf_telemetry_overhead(benchmark):
    payloads, ops = build_workload()
    (
        noop_best,
        instrumented_best,
        overhead_pct,
        cpu_overhead_pct,
        _server,
    ) = benchmark.pedantic(
        run_overhead_phase, args=(payloads, ops), rounds=1, iterations=1
    )

    assert overhead_pct < OVERHEAD_CEILING_PCT, (
        f"telemetry overhead {overhead_pct:.2f}% over the no-op path "
        f"(instrumented {instrumented_best * 1000.0:.0f}ms vs "
        f"no-op {noop_best * 1000.0:.0f}ms for {len(ops)} requests)"
    )

    rows: List[Dict[str, object]] = [
        {
            "configuration": "no-op (enabled=False)",
            "requests": len(ops),
            "elapsed_ms": f"{noop_best * 1000.0:.0f}",
            "throughput": f"{len(ops) / noop_best:.0f} req/s",
        },
        {
            "configuration": "instrumented (default)",
            "requests": len(ops),
            "elapsed_ms": f"{instrumented_best * 1000.0:.0f}",
            "throughput": f"{len(ops) / instrumented_best:.0f} req/s",
        },
    ]
    lines = format_table(rows)
    lines.append("")
    lines.append(
        f"telemetry overhead: {overhead_pct:+.2f}% at the wire level "
        f"(budget < {OVERHEAD_CEILING_PCT:.0f}%, wire transfer "
        f"{WIRE_IO_S * 1000.0:.1f}ms/request, best of {ROUNDS} alternated rounds); "
        f"pure-CPU drive: {cpu_overhead_pct:+.2f}% (informational)"
    )
    write_result("telemetry_overhead", lines)
    benchmark.extra_info["overhead_pct"] = round(overhead_pct, 2)
    benchmark.extra_info["cpu_overhead_pct"] = round(cpu_overhead_pct, 2)
    benchmark.extra_info["instrumented_req_per_s"] = round(len(ops) / instrumented_best, 1)
    benchmark.extra_info["noop_req_per_s"] = round(len(ops) / noop_best, 1)
    print("\n".join(lines))

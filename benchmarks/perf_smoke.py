"""CI perf-smoke runner for the tracked hot paths.

Times each optimized hot path (with a reference-path sample for comparison)
and emits machine-readable ops/sec numbers to ``benchmarks/results/`` so
the performance trajectory is tracked from PR to PR:

* ``BENCH_geo_scoring.json`` — batched geographic-relevance scoring
  (PR 1's fast path vs. the per-clip reference path);
* ``BENCH_streaming_ingest.json`` — streaming mobility mining
  (sessionizer + incremental models vs. per-tick batch rebuilds);
* ``BENCH_route_clustering.json`` — signature-cached route-cluster
  coherence (PR 3's fast path vs. the pairwise-resampling reference);
* ``BENCH_api_gateway.json`` — gateway request throughput (PR 4's batch
  tracking ingest vs. per-call posts, ETag revalidation vs. cold
  recommendation reads);
* ``BENCH_storage_engine.json`` — index-aware query planning (PR 5's
  declarative indexes + planner vs. the full-scan reference path);
* ``BENCH_concurrent_serving.json`` — shard-partitioned concurrent
  serving (PR 6's per-shard parallel workers vs. a single serial
  database, mixed wire-level ingest + read traffic), plus
  ``BENCH_concurrent_serving_metrics.json`` — the parallel server's
  ``/v1/ops/metrics`` telemetry snapshot after the timed run (PR 7);
* ``BENCH_telemetry_overhead.json`` — unified telemetry cost (PR 7's
  instrumented gateway drive vs. the disabled no-op path over the same
  mixed wire workload, asserted under the 5% budget);
* ``BENCH_world_replay.json`` — wire-level scenario replays (PR 8's
  load generator: rush hour, flash crowd, broadcast→unicast handover)
  with per-scenario p50/p95/p99 request latency, script and response
  digests, asserted under the recorded p95 ceiling;
* ``BENCH_wal_durability.json`` — write-ahead-log cost (PR 9's durable
  serving drive vs. the identical no-WAL drive, asserted under the 10%
  budget) and recovery time (snapshot + WAL tail vs. full client
  re-ingest of the whole stream).

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # for the bench_* modules

from bench_concurrent_serving import (  # noqa: E402
    SHARDS as SERVING_SHARDS,
    SPEEDUP_FLOOR as SERVING_SPEEDUP_FLOOR,
    WIRE_IO_S,
    build_workload as build_serving_workload,
    run_parity_phase as run_serving_parity,
    run_throughput_phase as run_serving_throughput,
)
from bench_telemetry_overhead import (  # noqa: E402
    OVERHEAD_CEILING_PCT,
    ROUNDS as OVERHEAD_ROUNDS,
    run_overhead_phase,
)
from bench_api_gateway import (  # noqa: E402
    DRIVE_FIXES,
    REVALIDATION_ROUNDS,
    USERS as GATEWAY_USERS,
    assert_ingest_equivalent,
    build_ingest_workload,
    build_read_world,
    encode_payloads,
    run_batch_ingest,
    run_cold_reads,
    run_conditional_reads,
    run_single_fix_ingest,
)
from bench_perf_geo_scoring import (  # noqa: E402
    CLIP_COUNT,
    ROUTE_SAMPLES,
    build_workload,
    fast_scores,
    reference_scores,
)
from bench_perf_route_clustering import (  # noqa: E402
    REFERENCE_SUBSET as CLUSTERING_REFERENCE_SUBSET,
    TRIP_COUNT,
    build_history,
    cluster_trips,
    fast_run,
    reference_subset_run,
)
from bench_storage_engine import (  # noqa: E402
    QUERIES as STORAGE_QUERIES,
    ROWS as STORAGE_ROWS,
    SCAN_SUBSET as STORAGE_SCAN_SUBSET,
    assert_parity as assert_storage_parity,
    build_workload as build_storage_workload,
    run_workload as run_storage_workload,
)
from bench_wal_durability import (  # noqa: E402
    OVERHEAD_CEILING_PCT as WAL_OVERHEAD_CEILING_PCT,
    run_overhead_phase as run_wal_overhead,
    run_recovery_phase as run_wal_recovery,
)
from bench_world_replay import (  # noqa: E402
    COMMUTERS as REPLAY_COMMUTERS,
    P95_CEILING_MS,
    SCRIPT_SEED as REPLAY_SCRIPT_SEED,
    SHARDS as REPLAY_SHARDS,
    run_all_scenarios,
)
from bench_streaming_ingest import (  # noqa: E402
    BASELINE_SUBSET,
    DAYS,
    USERS,
    assert_stream_equivalent,
    build_fix_ticks,
    run_batch_replay,
    run_streaming_replay,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Reference path is ~an order of magnitude slower; time a subset and scale.
REFERENCE_SUBSET = 500
FAST_ROUNDS = 3


def _write(name: str, payload: dict) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def smoke_geo_scoring() -> str:
    route, clips, index = build_workload()
    position = route.start
    destination = route.end

    # Reference path over a subset (it is the slow side being replaced).
    subset = clips[:REFERENCE_SUBSET]
    start = time.perf_counter()
    reference_scores(route, subset, position, destination)
    reference_elapsed = time.perf_counter() - start
    reference_ops = len(subset) / reference_elapsed

    # Fast path over the full workload, best of a few rounds.
    best_elapsed = float("inf")
    for _ in range(FAST_ROUNDS):
        start = time.perf_counter()
        fast_scores(route, clips, index, position, destination)
        best_elapsed = min(best_elapsed, time.perf_counter() - start)
    fast_ops = len(clips) / best_elapsed

    payload = {
        "bench": "geo_scoring",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "clips": CLIP_COUNT,
            "route_samples": ROUTE_SAMPLES,
            "reference_subset": REFERENCE_SUBSET,
        },
        "results": {
            "reference_clips_per_s": round(reference_ops, 1),
            "fast_clips_per_s": round(fast_ops, 1),
            "speedup": round(fast_ops / reference_ops, 2),
            "fast_elapsed_ms": round(best_elapsed * 1000.0, 2),
        },
    }
    path = _write("BENCH_geo_scoring.json", payload)
    print(
        f"geo-scoring smoke: fast path {fast_ops:,.0f} clips/s "
        f"(reference {reference_ops:,.0f} clips/s, {fast_ops / reference_ops:.1f}x)"
    )
    return path


def smoke_streaming_ingest() -> str:
    ticks, histories = build_fix_ticks()
    total_fixes = sum(len(tick) for tick in ticks)
    subset_users = sorted(histories.keys())[:BASELINE_SUBSET]

    baseline_elapsed, _baseline_fixes = run_batch_replay(ticks, subset_users)
    baseline_total_elapsed = baseline_elapsed * (USERS / BASELINE_SUBSET)

    streaming_elapsed, _streamed, engine = run_streaming_replay(ticks)

    # Guard the equivalence claim in CI too (a handful of users is enough).
    sample = sorted(histories.keys())[:: max(1, USERS // 10)]
    assert_stream_equivalent(engine, histories, sample)

    streaming_ops = total_fixes / streaming_elapsed
    baseline_ops = total_fixes / baseline_total_elapsed
    payload = {
        "bench": "streaming_ingest",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "users": USERS,
            "days": DAYS,
            "fixes": total_fixes,
            "baseline_subset": BASELINE_SUBSET,
        },
        "results": {
            "baseline_fixes_per_s": round(baseline_ops, 1),
            "streaming_fixes_per_s": round(streaming_ops, 1),
            "speedup": round(streaming_ops / baseline_ops, 2),
            "streaming_elapsed_ms": round(streaming_elapsed * 1000.0, 2),
        },
    }
    path = _write("BENCH_streaming_ingest.json", payload)
    print(
        f"streaming-ingest smoke: {streaming_ops:,.0f} fixes/s to fresh models "
        f"(per-tick batch rebuild {baseline_ops:,.0f} fixes/s, "
        f"{streaming_ops / baseline_ops:.1f}x)"
    )
    return path


def smoke_route_clustering() -> str:
    trips, stay_points = build_history()

    # Reference path over a per-cluster pair subset (the slow side being
    # replaced), scaled to the full pair count.
    reference_clusters = cluster_trips(trips, stay_points)
    total_pairs = sum(
        len(c.trips) * (len(c.trips) - 1) // 2 for c in reference_clusters
    )
    start = time.perf_counter()
    reference_values, subset_pairs = reference_subset_run(
        reference_clusters, CLUSTERING_REFERENCE_SUBSET
    )
    reference_elapsed = time.perf_counter() - start
    reference_scaled = reference_elapsed * (total_pairs / subset_pairs)
    reference_ops = total_pairs / reference_scaled

    # Fast path: cluster the history and read every coherence.  The first
    # call pays the signature builds; later rounds measure warm reads.
    best_elapsed = float("inf")
    for _ in range(FAST_ROUNDS):
        start = time.perf_counter()
        clusters, _ = fast_run(trips, stay_points)
        best_elapsed = min(best_elapsed, time.perf_counter() - start)
    fast_ops = total_pairs / best_elapsed

    # Equivalence guard: the subset values the reference produced must match
    # the running-sum path on the same trips.
    from repro.trajectory.clustering import RouteCluster

    max_diff = 0.0
    for cluster in clusters:
        key = (cluster.origin_stay_point, cluster.destination_stay_point)
        subset_cluster = RouteCluster(
            cluster_id=cluster.cluster_id,
            origin_stay_point=key[0],
            destination_stay_point=key[1],
            trips=list(cluster.trips[:CLUSTERING_REFERENCE_SUBSET]),
        )
        max_diff = max(
            max_diff, abs(subset_cluster.geometric_coherence() - reference_values[key])
        )
    assert max_diff <= 1e-9, f"fast clustering diverged from reference by {max_diff}"

    payload = {
        "bench": "route_clustering",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "trips": TRIP_COUNT,
            "pairs": total_pairs,
            "reference_subset_per_cluster": CLUSTERING_REFERENCE_SUBSET,
        },
        "results": {
            "reference_pairs_per_s": round(reference_ops, 1),
            "fast_pairs_per_s": round(fast_ops, 1),
            "speedup": round(fast_ops / reference_ops, 2),
            "fast_elapsed_ms": round(best_elapsed * 1000.0, 2),
            "max_coherence_diff": max_diff,
        },
    }
    path = _write("BENCH_route_clustering.json", payload)
    print(
        f"route-clustering smoke: fast path {fast_ops:,.0f} pairs/s "
        f"(reference {reference_ops:,.0f} pairs/s, {fast_ops / reference_ops:.1f}x)"
    )
    return path


def smoke_api_gateway() -> str:
    drives = build_ingest_workload()
    single_payloads, batch_payloads = encode_payloads(drives)
    total_fixes = GATEWAY_USERS * DRIVE_FIXES

    single_elapsed, single_server = run_single_fix_ingest(drives, single_payloads)
    batch_elapsed = float("inf")
    batch_server = None
    for _ in range(FAST_ROUNDS):
        elapsed, server = run_batch_ingest(drives, batch_payloads)
        if elapsed < batch_elapsed:
            batch_elapsed, batch_server = elapsed, server
    assert_ingest_equivalent(single_server, batch_server, drives.keys())

    gateway, readers, now_s = build_read_world()
    cold_elapsed, etags = run_cold_reads(gateway, readers, now_s)
    conditional_elapsed = run_conditional_reads(
        gateway, readers, etags, now_s, REVALIDATION_ROUNDS
    )
    single_ops = total_fixes / single_elapsed
    batch_ops = total_fixes / batch_elapsed
    cold_ops = len(readers) / cold_elapsed
    cached_ops = len(readers) * REVALIDATION_ROUNDS / conditional_elapsed

    payload = {
        "bench": "api_gateway",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "users": GATEWAY_USERS,
            "fixes_per_drive": DRIVE_FIXES,
            "readers": len(readers),
            "revalidation_rounds": REVALIDATION_ROUNDS,
        },
        "results": {
            "single_fixes_per_s": round(single_ops, 1),
            "batch_fixes_per_s": round(batch_ops, 1),
            "ingest_speedup": round(batch_ops / single_ops, 2),
            "cold_reads_per_s": round(cold_ops, 1),
            "revalidated_reads_per_s": round(cached_ops, 1),
            "read_speedup": round(cached_ops / cold_ops, 2),
        },
    }
    path = _write("BENCH_api_gateway.json", payload)
    print(
        f"api-gateway smoke: batch ingest {batch_ops:,.0f} fixes/s "
        f"(per-call {single_ops:,.0f} fixes/s, {batch_ops / single_ops:.1f}x); "
        f"ETag revalidation {cached_ops:,.0f} reads/s "
        f"(cold {cold_ops:,.0f} reads/s, {cached_ops / cold_ops:.1f}x)"
    )
    return path


def smoke_storage_engine() -> str:
    db, queries = build_storage_workload()
    assert_storage_parity(db, queries[:20])

    scan_elapsed, _scan_results = run_storage_workload(
        db, queries[:STORAGE_SCAN_SUBSET], scan=True
    )
    scan_scaled = scan_elapsed * (STORAGE_QUERIES / STORAGE_SCAN_SUBSET)

    best_elapsed = float("inf")
    for _ in range(FAST_ROUNDS):
        elapsed, _results = run_storage_workload(db, queries, scan=False)
        best_elapsed = min(best_elapsed, elapsed)

    scan_ops = STORAGE_QUERIES / scan_scaled
    fast_ops = STORAGE_QUERIES / best_elapsed
    stats = db.table("clips").stats()
    payload = {
        "bench": "storage_engine",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "rows": STORAGE_ROWS,
            "queries": STORAGE_QUERIES,
            "scan_subset": STORAGE_SCAN_SUBSET,
        },
        "results": {
            "scan_queries_per_s": round(scan_ops, 1),
            "indexed_queries_per_s": round(fast_ops, 1),
            "speedup": round(fast_ops / scan_ops, 2),
            "indexed_elapsed_ms": round(best_elapsed * 1000.0, 2),
            "index_hits": stats["index_hits"],
        },
    }
    path = _write("BENCH_storage_engine.json", payload)
    print(
        f"storage-engine smoke: planner {fast_ops:,.0f} queries/s "
        f"(scan {scan_ops:,.0f} queries/s, {fast_ops / scan_ops:.1f}x)"
    )
    return path


def smoke_concurrent_serving() -> str:
    payloads, ops = build_serving_workload()
    # The parity replay is part of the claim: identical responses from both
    # shard layouts before any timing is believed.
    run_serving_parity(payloads, ops)
    (
        (serial_elapsed, serial_latencies),
        (parallel_elapsed, parallel_latencies),
        server_parallel,
    ) = run_serving_throughput(payloads, ops)
    serial_ops = len(serial_latencies) / serial_elapsed
    parallel_ops = len(parallel_latencies) / parallel_elapsed
    payload = {
        "bench": "concurrent_serving",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "requests": len(ops),
            "shards": SERVING_SHARDS,
            "wire_io_ms": round(WIRE_IO_S * 1000.0, 2),
        },
        "results": {
            "serial_requests_per_s": round(serial_ops, 1),
            "parallel_requests_per_s": round(parallel_ops, 1),
            "speedup": round(parallel_ops / serial_ops, 2),
            "speedup_floor": SERVING_SPEEDUP_FLOOR,
            "parallel_elapsed_ms": round(parallel_elapsed * 1000.0, 2),
        },
    }
    path = _write("BENCH_concurrent_serving.json", payload)
    # The parallel server's full ops-metrics payload (what GET
    # /v1/ops/metrics would serve after the run): per-route latency
    # percentiles, per-shard storage gauges, worker busy/imbalance stats.
    metrics_path = _write(
        "BENCH_concurrent_serving_metrics.json",
        {
            "bench": "concurrent_serving_metrics",
            "unix_time_s": round(time.time(), 3),
            "workload": {
                "requests": len(ops),
                "shards": SERVING_SHARDS,
            },
            "metrics": server_parallel.telemetry.metrics_snapshot(),
        },
    )
    print(
        f"concurrent-serving smoke: sharded-parallel {parallel_ops:,.0f} req/s "
        f"(single-serial {serial_ops:,.0f} req/s, {parallel_ops / serial_ops:.1f}x)"
    )
    print(f"wrote {metrics_path}")
    return path


def smoke_telemetry_overhead() -> str:
    payloads, ops = build_serving_workload()
    noop_best, instrumented_best, overhead_pct, cpu_overhead_pct, _server = (
        run_overhead_phase(payloads, ops)
    )
    assert overhead_pct < OVERHEAD_CEILING_PCT, (
        f"telemetry overhead {overhead_pct:.2f}% exceeds the "
        f"{OVERHEAD_CEILING_PCT:.0f}% budget"
    )
    instrumented_ops = len(ops) / instrumented_best
    noop_ops = len(ops) / noop_best
    payload = {
        "bench": "telemetry_overhead",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "requests": len(ops),
            "shards": SERVING_SHARDS,
            "rounds": OVERHEAD_ROUNDS,
            "wire_io_ms": round(WIRE_IO_S * 1000.0, 2),
        },
        "results": {
            "noop_requests_per_s": round(noop_ops, 1),
            "instrumented_requests_per_s": round(instrumented_ops, 1),
            "overhead_pct": round(overhead_pct, 2),
            "cpu_overhead_pct": round(cpu_overhead_pct, 2),
            "overhead_ceiling_pct": OVERHEAD_CEILING_PCT,
            "instrumented_elapsed_ms": round(instrumented_best * 1000.0, 2),
        },
    }
    path = _write("BENCH_telemetry_overhead.json", payload)
    print(
        f"telemetry-overhead smoke: instrumented {instrumented_ops:,.0f} req/s "
        f"(no-op {noop_ops:,.0f} req/s, {overhead_pct:+.2f}% "
        f"within the {OVERHEAD_CEILING_PCT:.0f}% budget)"
    )
    return path


def smoke_wal_durability() -> str:
    import pathlib
    import tempfile

    payloads, ops = build_serving_workload()
    with tempfile.TemporaryDirectory(prefix="pphcr-wal-") as scratch:
        wal_root = pathlib.Path(scratch)
        best_off, best_on, overhead_pct, server_on = run_wal_overhead(
            payloads, ops, wal_root
        )
        assert overhead_pct < WAL_OVERHEAD_CEILING_PCT, (
            f"WAL append overhead {overhead_pct:.2f}% exceeds the "
            f"{WAL_OVERHEAD_CEILING_PCT:.0f}% budget"
        )
        recovery = run_wal_recovery(payloads, ops, wal_root)
        wal_stats = server_on.durability.stats()
    frames = sum(log["frames"] for log in wal_stats["logs"].values())
    wal_bytes = sum(log["bytes"] for log in wal_stats["logs"].values())
    payload = {
        "bench": "wal_durability",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "requests": len(ops),
            "wire_io_ms": round(WIRE_IO_S * 1000.0, 2),
            "wal_frames": frames,
            "wal_bytes": wal_bytes,
        },
        "results": {
            "off_requests_per_s": round(len(ops) / best_off, 1),
            "on_requests_per_s": round(len(ops) / best_on, 1),
            "overhead_pct": round(overhead_pct, 2),
            "overhead_ceiling_pct": WAL_OVERHEAD_CEILING_PCT,
            "recovery_ms": round(recovery["recovery_elapsed_s"] * 1000.0, 2),
            "reingest_ms": round(recovery["reingest_elapsed_s"] * 1000.0, 2),
            "recovery_speedup": round(recovery["recovery_speedup"], 2),
            "tail_frames": recovery["tail_frames"],
        },
    }
    path = _write("BENCH_wal_durability.json", payload)
    print(
        f"wal-durability smoke: durable serving {len(ops) / best_on:,.0f} req/s "
        f"(no-WAL {len(ops) / best_off:,.0f} req/s, {overhead_pct:+.2f}% within "
        f"the {WAL_OVERHEAD_CEILING_PCT:.0f}% budget); snapshot+tail recovery "
        f"{payload['results']['recovery_ms']:.0f} ms vs re-ingest "
        f"{payload['results']['reingest_ms']:.0f} ms "
        f"({recovery['recovery_speedup']:.1f}x)"
    )
    return path


def smoke_world_replay() -> str:
    runs = run_all_scenarios()
    scenarios = {}
    for name, (script, report) in runs.items():
        summary = report.summary()
        summary["script_fingerprint"] = script.fingerprint()
        assert summary["p95_ms"] <= P95_CEILING_MS, (
            f"{name} replay p95 {summary['p95_ms']:.2f} ms exceeds the "
            f"{P95_CEILING_MS:.0f} ms ceiling"
        )
        scenarios[name] = summary
    payload = {
        "bench": "world_replay",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "seed": REPLAY_SCRIPT_SEED,
            "commuters": REPLAY_COMMUTERS,
            "shards": REPLAY_SHARDS,
            "requests": sum(s["requests"] for s in scenarios.values()),
        },
        "results": {
            "p95_ceiling_ms": P95_CEILING_MS,
            "scenarios": scenarios,
        },
    }
    path = _write("BENCH_world_replay.json", payload)
    worst = max(scenarios.values(), key=lambda s: s["p95_ms"])
    print(
        f"world-replay smoke: {len(scenarios)} scenarios, "
        f"{payload['workload']['requests']} requests, worst p95 "
        f"{worst['p95_ms']:.2f} ms ({worst['scenario']}) within the "
        f"{P95_CEILING_MS:.0f} ms ceiling"
    )
    return path


def main() -> int:
    for path in (
        smoke_geo_scoring(),
        smoke_streaming_ingest(),
        smoke_route_clustering(),
        smoke_api_gateway(),
        smoke_storage_engine(),
        smoke_concurrent_serving(),
        smoke_telemetry_overhead(),
        smoke_wal_durability(),
        smoke_world_replay(),
    ):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""CI perf-smoke runner for the geo-scoring hot path.

Times the batched geographic-relevance fast path (and a reference-path
sample for comparison) and emits machine-readable ops/sec numbers to
``benchmarks/results/BENCH_geo_scoring.json`` so the performance trajectory
of the scoring hot path is tracked from PR to PR.

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # for bench_perf_geo_scoring

from bench_perf_geo_scoring import (  # noqa: E402
    CLIP_COUNT,
    ROUTE_SAMPLES,
    build_workload,
    fast_scores,
    reference_scores,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
OUTPUT_PATH = os.path.join(RESULTS_DIR, "BENCH_geo_scoring.json")

#: Reference path is ~an order of magnitude slower; time a subset and scale.
REFERENCE_SUBSET = 500
FAST_ROUNDS = 3


def main() -> int:
    route, clips, index = build_workload()
    position = route.start
    destination = route.end

    # Reference path over a subset (it is the slow side being replaced).
    subset = clips[:REFERENCE_SUBSET]
    start = time.perf_counter()
    reference_scores(route, subset, position, destination)
    reference_elapsed = time.perf_counter() - start
    reference_ops = len(subset) / reference_elapsed

    # Fast path over the full workload, best of a few rounds.
    best_elapsed = float("inf")
    for _ in range(FAST_ROUNDS):
        start = time.perf_counter()
        fast_scores(route, clips, index, position, destination)
        best_elapsed = min(best_elapsed, time.perf_counter() - start)
    fast_ops = len(clips) / best_elapsed

    payload = {
        "bench": "geo_scoring",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "clips": CLIP_COUNT,
            "route_samples": ROUTE_SAMPLES,
            "reference_subset": REFERENCE_SUBSET,
        },
        "results": {
            "reference_clips_per_s": round(reference_ops, 1),
            "fast_clips_per_s": round(fast_ops, 1),
            "speedup": round(fast_ops / reference_ops, 2),
            "fast_elapsed_ms": round(best_elapsed * 1000.0, 2),
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(f"geo-scoring smoke: fast path {fast_ops:,.0f} clips/s "
          f"(reference {reference_ops:,.0f} clips/s, {fast_ops / reference_ops:.1f}x)")
    print(f"wrote {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

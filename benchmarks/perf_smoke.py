"""CI perf-smoke runner for the tracked hot paths.

Times each optimized hot path (with a reference-path sample for comparison)
and emits machine-readable ops/sec numbers to ``benchmarks/results/`` so
the performance trajectory is tracked from PR to PR:

* ``BENCH_geo_scoring.json`` — batched geographic-relevance scoring
  (PR 1's fast path vs. the per-clip reference path);
* ``BENCH_streaming_ingest.json`` — streaming mobility mining
  (sessionizer + incremental models vs. per-tick batch rebuilds).

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # for the bench_* modules

from bench_perf_geo_scoring import (  # noqa: E402
    CLIP_COUNT,
    ROUTE_SAMPLES,
    build_workload,
    fast_scores,
    reference_scores,
)
from bench_streaming_ingest import (  # noqa: E402
    BASELINE_SUBSET,
    DAYS,
    USERS,
    assert_stream_equivalent,
    build_fix_ticks,
    run_batch_replay,
    run_streaming_replay,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Reference path is ~an order of magnitude slower; time a subset and scale.
REFERENCE_SUBSET = 500
FAST_ROUNDS = 3


def _write(name: str, payload: dict) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def smoke_geo_scoring() -> str:
    route, clips, index = build_workload()
    position = route.start
    destination = route.end

    # Reference path over a subset (it is the slow side being replaced).
    subset = clips[:REFERENCE_SUBSET]
    start = time.perf_counter()
    reference_scores(route, subset, position, destination)
    reference_elapsed = time.perf_counter() - start
    reference_ops = len(subset) / reference_elapsed

    # Fast path over the full workload, best of a few rounds.
    best_elapsed = float("inf")
    for _ in range(FAST_ROUNDS):
        start = time.perf_counter()
        fast_scores(route, clips, index, position, destination)
        best_elapsed = min(best_elapsed, time.perf_counter() - start)
    fast_ops = len(clips) / best_elapsed

    payload = {
        "bench": "geo_scoring",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "clips": CLIP_COUNT,
            "route_samples": ROUTE_SAMPLES,
            "reference_subset": REFERENCE_SUBSET,
        },
        "results": {
            "reference_clips_per_s": round(reference_ops, 1),
            "fast_clips_per_s": round(fast_ops, 1),
            "speedup": round(fast_ops / reference_ops, 2),
            "fast_elapsed_ms": round(best_elapsed * 1000.0, 2),
        },
    }
    path = _write("BENCH_geo_scoring.json", payload)
    print(
        f"geo-scoring smoke: fast path {fast_ops:,.0f} clips/s "
        f"(reference {reference_ops:,.0f} clips/s, {fast_ops / reference_ops:.1f}x)"
    )
    return path


def smoke_streaming_ingest() -> str:
    ticks, histories = build_fix_ticks()
    total_fixes = sum(len(tick) for tick in ticks)
    subset_users = sorted(histories.keys())[:BASELINE_SUBSET]

    baseline_elapsed, _baseline_fixes = run_batch_replay(ticks, subset_users)
    baseline_total_elapsed = baseline_elapsed * (USERS / BASELINE_SUBSET)

    streaming_elapsed, _streamed, engine = run_streaming_replay(ticks)

    # Guard the equivalence claim in CI too (a handful of users is enough).
    sample = sorted(histories.keys())[:: max(1, USERS // 10)]
    assert_stream_equivalent(engine, histories, sample)

    streaming_ops = total_fixes / streaming_elapsed
    baseline_ops = total_fixes / baseline_total_elapsed
    payload = {
        "bench": "streaming_ingest",
        "unix_time_s": round(time.time(), 3),
        "workload": {
            "users": USERS,
            "days": DAYS,
            "fixes": total_fixes,
            "baseline_subset": BASELINE_SUBSET,
        },
        "results": {
            "baseline_fixes_per_s": round(baseline_ops, 1),
            "streaming_fixes_per_s": round(streaming_ops, 1),
            "speedup": round(streaming_ops / baseline_ops, 2),
            "streaming_elapsed_ms": round(streaming_elapsed * 1000.0, 2),
        },
    }
    path = _write("BENCH_streaming_ingest.json", payload)
    print(
        f"streaming-ingest smoke: {streaming_ops:,.0f} fixes/s to fresh models "
        f"(per-tick batch rebuild {baseline_ops:,.0f} fixes/s, "
        f"{streaming_ops / baseline_ops:.1f}x)"
    )
    return path


def main() -> int:
    for path in (smoke_geo_scoring(), smoke_streaming_ingest()):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""SC-1 — demonstration scenario §2.1.1: manual program change (Greg).

Greg skips the live programme he dislikes and surfs the suggestion list
until he reaches content matching his tastes, without changing channel.
"""

from __future__ import annotations

from conftest import write_result

from repro.simulation import run_manual_skip_scenario


def test_sc1_manual_program_change(benchmark, bench_world):
    user_id = bench_world.commuters[2].user_id

    result = benchmark.pedantic(
        run_manual_skip_scenario, args=(bench_world,), kwargs={"user_id": user_id}, rounds=3, iterations=1
    )

    # The paper's narrative: a couple of skips, then a favourite programme.
    assert len(result.skipped_programme_ids) == 2
    assert result.final_clip is not None
    assert result.final_clip_matches_taste
    assert not result.channel_changed
    # The suggestion surfing stayed short (Greg reached it "after two skips").
    assert len(result.played_clip_ids) <= 5

    commuter = bench_world.commuter(user_id)
    lines = [
        "SC-1: manual program change",
        "",
        f"listener: {user_id}",
        f"preferred categories: {', '.join(commuter.preferred_categories)}",
        f"live programmes skipped: {len(result.skipped_programme_ids)}",
        f"suggestions surfed before a match: {len(result.played_clip_ids)}",
        f"final clip: {result.final_clip.title} [{result.final_clip.primary_category}]",
        f"changed channel: {result.channel_changed}",
        "",
        "playback timeline:",
    ] + [f"  {line}" for line in result.timeline]
    path = write_result("sc1_manual_skip", lines)

    benchmark.extra_info["suggestions_surfed"] = len(result.played_clip_ids)
    benchmark.extra_info["results_file"] = path

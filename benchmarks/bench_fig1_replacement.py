"""FIG-1 — the audio replacement concept (paper Figure 1).

One listener tuned to a live service has part of the linear audio seamlessly
replaced by a recommended clip; the live signal keeps filling the buffer so
playback can resume where the broadcast moved on.  The bench times a full
replacement cycle and regenerates the replacement timeline.
"""

from __future__ import annotations

from conftest import write_result

from repro.client import ClientApp
from repro.delivery import SegmentSource


def run_replacement_cycle(world, user_id, clip):
    """Tune, listen, replace with a clip, resume live: one Figure-1 cycle."""
    server = world.server
    app = ClientApp(user_id, server.users)
    schedule = server.content.schedule("radio-uno")
    start_s = schedule.coverage_window().start_s + 1800.0
    app.tune("radio-uno", schedule, at_s=start_s)
    app.listen_live(600.0)
    app.play_recommended_clip(clip)
    app.listen_live(600.0)
    return app


def test_fig1_seamless_replacement(benchmark, bench_world):
    user_id = bench_world.commuters[0].user_id
    clip = next(c for c in bench_world.server.content.clips() if c.duration_s <= 400.0)

    app = benchmark.pedantic(
        run_replacement_cycle, args=(bench_world, user_id, clip), rounds=5, iterations=1
    )

    segments = app.player.segments()
    sources = [segment.source for segment in segments]
    # The concept of Figure 1: live audio, a replacing clip, live again.
    assert sources[0] == SegmentSource.LIVE
    assert SegmentSource.CLIP in sources
    assert sources[-1] in (SegmentSource.LIVE, SegmentSource.TIME_SHIFTED)
    # After the replacement the listener is behind live by the clip duration.
    assert app.player.playback_offset_s > 0.0
    # No audio was lost: everything broadcast during the clip stayed in the buffer.
    assert app.player.buffer.max_time_shift_s() >= app.player.playback_offset_s

    lines = ["FIG-1: audio replacement concept (one listener, one clip)", ""]
    lines += app.timeline()
    lines.append("")
    lines.append(f"playback offset after replacement: {app.player.playback_offset_s:.0f} s")
    lines.append(f"clip share of listening time: {app.player.clip_share():.2f}")
    path = write_result("fig1_replacement", lines)
    benchmark.extra_info["clip_share"] = round(app.player.clip_share(), 3)
    benchmark.extra_info["results_file"] = path

"""Q-6 — distraction-aware delivery timing.

The scheduler takes "driving conditions as well as driver's projected
distraction levels at intersections and roundabouts" into account: clip
boundaries (the moments when content changes) must not fall inside
high-distraction windows.  The bench compares the number of boundaries
landing in distraction zones with and without the distraction model across
the commuter population.  Expected shape: ~0 offending boundaries with the
model, a clearly positive number without it.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.recommender import DistractionModel, Scheduler
from repro.recommender.compound import CompoundScorer
from repro.recommender.content_based import ContentBasedScorer
from repro.roadnet.intersections import distraction_zones_along


def evaluate_population(world, *, max_users=8):
    """Count clip boundaries inside high-distraction windows, with/without the model."""
    server = world.server
    planner = server.route_planner
    content_scorer = ContentBasedScorer(server.content, server.users)
    compound = CompoundScorer(content_scorer, context_weight=server.config.context_weight)
    scheduler = Scheduler()
    rows = []
    totals = {"with_model": 0, "without_model": 0, "boundaries": 0}

    for commuter in world.commuters[:max_users]:
        drive = world.commuter_generator.live_drive(commuter, day=world.today)
        observe = drive.departure_s + max(90.0, 0.3 * drive.expected_duration_s)
        server.users.ingest_fixes(drive.fixes(until_s=observe), skip_stale=True)
        context = server.build_context(commuter.user_id, now_s=observe)
        if not context.is_driving or context.destination is None or context.available_time_s is None:
            continue
        route = planner.route_between_points(context.position, context.destination.center)
        zones = distraction_zones_along(world.city.network, route, departure_s=observe)
        if not zones:
            continue
        model = DistractionModel(zones)
        candidates = server.proactive_engine._filter.candidates(  # noqa: SLF001
            commuter.user_id, now_s=observe
        )
        ranked = compound.rank(candidates, context)
        try:
            aware = scheduler.build_plan(ranked, context, distraction=model)
            unaware = scheduler.build_plan(ranked, context, distraction=None)
        except Exception:  # noqa: BLE001 - no feasible plan for this drive
            continue
        if not aware.items or not unaware.items:
            continue
        aware_hits = model.boundaries_in_blocked(aware.boundaries())
        unaware_hits = model.boundaries_in_blocked(unaware.boundaries())
        totals["with_model"] += aware_hits
        totals["without_model"] += unaware_hits
        totals["boundaries"] += len(unaware.boundaries())
        rows.append(
            {
                "listener": commuter.user_id,
                "high_distraction_zones": sum(1 for z in zones if z.is_high),
                "blocked_time_s": round(model.total_blocked_s(), 1),
                "boundaries_in_zones_without_model": unaware_hits,
                "boundaries_in_zones_with_model": aware_hits,
            }
        )
    return rows, totals


def test_q6_distraction_aware_timing(benchmark, bench_world):
    rows, totals = benchmark.pedantic(
        evaluate_population, args=(bench_world,), rounds=1, iterations=1
    )

    assert rows, "no drive produced distraction zones and a feasible plan"
    # Shape: the distraction-aware scheduler never places boundaries inside
    # high-distraction windows; the unaware scheduler does at least sometimes
    # (or, at worst, the aware one is never worse).
    assert totals["with_model"] == 0
    assert totals["without_model"] >= totals["with_model"]

    lines = (
        ["Q-6: clip boundaries inside high-distraction windows", ""]
        + format_table(rows)
        + [
            "",
            f"total boundaries examined: {totals['boundaries']}",
            f"in-zone boundaries without the distraction model: {totals['without_model']}",
            f"in-zone boundaries with the distraction model:    {totals['with_model']}",
        ]
    )
    path = write_result("q6_distraction", lines)
    benchmark.extra_info["without_model_hits"] = totals["without_model"]
    benchmark.extra_info["with_model_hits"] = totals["with_model"]
    benchmark.extra_info["results_file"] = path

"""PERF — index-aware query planning vs. the full-scan reference path.

The seed's ``Query`` evaluated every predicate as a full table scan; the
stores compensated with hand-rolled sidecar structures.  The storage
engine now declares indexes on the schema (hash, sorted, spatial
:class:`~repro.storage.spec.IndexSpec`) and the planner routes equality,
range and ordered/limited reads through them — so the same fluent query
is O(bucket), O(log n + k) or O(limit) instead of O(n).

Workload: a clip-metadata-shaped table (50 kinds, a publish-time sorted
index) and a mixed read workload of equality lookups, publish-window
range queries and newest-window ordered reads with a limit — the shapes
the content repository and the feedback log actually issue per recommend
tick.  The reference path runs the *same* ``Query`` objects with the
planner disabled (``scan_only()``); the bench asserts a >= 5x speedup
and that every indexed result equals its scan twin exactly.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_storage_engine.py -q
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from conftest import write_result

from repro.storage import Column, Database, IndexSpec, Schema
from repro.util.rng import DeterministicRng

ROWS = 20000
KINDS = 50
QUERIES = 150
#: Scan-side queries actually timed (the reference is the slow side being
#: replaced; the full-workload cost is scaled from this subset).
SCAN_SUBSET = 30
TIME_SPAN_S = 100000.0


def build_workload(seed: int = 17) -> Tuple[Database, List[dict]]:
    """The indexed table plus a mixed query workload description."""
    rng = DeterministicRng(seed)
    db = Database("bench")
    table = db.create_table(
        Schema(
            name="clips",
            primary_key="clip_id",
            columns=[
                Column("clip_id", str),
                Column("kind", str),
                Column("duration_s", float),
                Column("published_s", float),
            ],
            indexes=[
                IndexSpec("kind"),
                IndexSpec("published_s", kind="sorted", columns=("published_s",)),
            ],
        )
    )
    for index in range(ROWS):
        table.insert(
            {
                "clip_id": f"clip-{index:06d}",
                "kind": f"kind-{rng.randint(0, KINDS - 1):02d}",
                "duration_s": 30.0 + rng.uniform(0.0, 570.0),
                "published_s": rng.uniform(0.0, TIME_SPAN_S),
            }
        )
    queries: List[dict] = []
    for index in range(QUERIES):
        shape = index % 3
        if shape == 0:
            queries.append({"shape": "eq", "kind": f"kind-{rng.randint(0, KINDS - 1):02d}"})
        elif shape == 1:
            low = rng.uniform(0.0, TIME_SPAN_S * 0.95)
            queries.append({"shape": "range", "low": low, "high": low + TIME_SPAN_S * 0.02})
        else:
            queries.append({"shape": "newest", "limit": rng.randint(20, 49)})
    return db, queries


def _build_query(db: Database, spec: dict, *, scan: bool):
    query = db.query("clips")
    if scan:
        query = query.scan_only()
    if spec["shape"] == "eq":
        return query.where_eq("kind", spec["kind"]).order_by("published_s")
    if spec["shape"] == "range":
        return query.where_range("published_s", spec["low"], spec["high"]).order_by(
            "published_s"
        )
    return query.order_by("published_s").limit(spec["limit"])


def run_workload(db: Database, queries: List[dict], *, scan: bool) -> Tuple[float, List[list]]:
    """Execute the workload; returns (elapsed_s, per-query results)."""
    results: List[list] = []
    start = time.perf_counter()
    for spec in queries:
        results.append(_build_query(db, spec, scan=scan).all())
    return time.perf_counter() - start, results


def assert_parity(db: Database, queries: List[dict]) -> None:
    """Every indexed query result must equal its scan-only twin exactly."""
    for spec in queries:
        fast = _build_query(db, spec, scan=False)
        slow = _build_query(db, spec, scan=True)
        assert fast.explain()["strategy"] != "scan", spec
        assert fast.all() == slow.all(), spec


def run_cursor_walk(db: Database, *, page_size: int = 100) -> int:
    """Walk the whole table through keyset pages (exercises Page tokens)."""
    table = db.table("clips")
    token, rows = None, 0
    while True:
        page = table.page_by_index("published_s", limit=page_size, after_token=token)
        rows += len(page.items)
        token = page.next_token
        if token is None:
            return rows


# The benchmark ------------------------------------------------------------


def test_perf_storage_engine(benchmark):
    db, queries = build_workload()
    assert_parity(db, queries[:20])

    scan_elapsed, scan_results = run_workload(db, queries[:SCAN_SUBSET], scan=True)
    scan_scaled = scan_elapsed * (QUERIES / SCAN_SUBSET)

    fast_elapsed, fast_results = run_workload(db, queries, scan=False)
    assert fast_results[:SCAN_SUBSET] == scan_results

    walked = run_cursor_walk(db)
    assert walked == ROWS

    results = benchmark.pedantic(
        lambda: run_workload(db, queries, scan=False), rounds=3, iterations=1
    )
    fast_elapsed = min(fast_elapsed, results[0])

    speedup = scan_scaled / max(fast_elapsed, 1e-9)
    assert speedup >= 5.0, (
        f"planner only {speedup:.1f}x faster than the scan reference "
        f"({fast_elapsed * 1000:.1f}ms vs {scan_scaled * 1000:.1f}ms scaled)"
    )

    stats = db.table("clips").stats()
    lines = [
        "storage engine: index-aware planner vs. full-scan reference",
        f"rows: {ROWS}   queries: {QUERIES} (eq / range / newest-limit mix)",
        f"scan reference: {scan_scaled * 1000:.1f} ms (scaled from {SCAN_SUBSET} queries)",
        f"planner: {fast_elapsed * 1000:.1f} ms   speedup: {speedup:.1f}x",
        f"index hits: {stats['index_hits']}   scans: {stats['scans']}",
        f"keyset cursor walk: {walked} rows in pages of 100",
    ]
    write_result("perf_storage_engine", lines)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["queries_per_s"] = round(QUERIES / max(fast_elapsed, 1e-9))

"""PERF — gateway request throughput: batch vs. per-call, cached vs. cold.

The gateway redesign's two throughput claims, measured at the wire level
(JSON text in / JSON text out via ``Gateway.handle_wire``, auth enabled —
what an HTTP server in front of the gateway pays per request):

* **Batch tracking ingest** — a mobile client buffers a drive and uploads
  it as one ``POST /v1/tracking/batch`` request instead of one
  ``POST /v1/tracking`` call per fix.  The batch path pays the per-request
  costs (routing, middleware, auth, metrics, JSON codec, response
  envelope) once per drive instead of once per fix, and feeds the
  streaming engine through the bulk listener.  The bench asserts a >= 5x
  ingest throughput improvement for a 200-fix drive and that the two
  paths leave *identical* tracking stores and streaming mobility models.

* **Cacheable recommendation reads** — ``GET /v1/recommendations`` carries
  a freshness ETag keyed on the streaming-model epoch; a client that
  revalidates with ``If-None-Match`` while nothing changed gets a 304
  from O(1) counter reads instead of a recommender tick.  The bench
  asserts the revalidating path is >= 5x the cold path (in practice it is
  orders of magnitude faster).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_api_gateway.py -q
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Tuple

from conftest import format_table, write_result

from repro.content.model import AudioClip, ContentKind
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.pipeline import Gateway, GatewayConfig, PphcrServer
from repro.spatialdb import GpsFix
from repro.users.profile import UserProfile
from repro.util.rng import DeterministicRng

USERS = 20
#: One buffered drive per user — the acceptance workload.
DRIVE_FIXES = 200
FIX_INTERVAL_S = 20.0
SINGLE_ROUNDS = 2
BATCH_ROUNDS = 3

READ_USERS = 12
HISTORY_DAYS = 3
REVALIDATION_ROUNDS = 50


# Ingest workload ----------------------------------------------------------


def _drive(rng: DeterministicRng, *, t0: float, n: int = DRIVE_FIXES) -> List[dict]:
    base = GeoPoint(45.07 + rng.uniform(-0.05, 0.05), 7.68 + rng.uniform(-0.05, 0.05))
    bearing = rng.uniform(0.0, 360.0)
    speed = rng.uniform(9.0, 14.0)
    fixes = []
    for index in range(n):
        position = destination_point(base, bearing, speed * FIX_INTERVAL_S * index)
        position = destination_point(
            position, rng.uniform(0.0, 360.0), abs(rng.gauss(0.0, 6.0))
        )
        fixes.append(
            {
                "lat": position.lat,
                "lon": position.lon,
                "timestamp_s": t0 + FIX_INTERVAL_S * index,
                "speed_mps": speed,
            }
        )
    return fixes


def build_ingest_workload(seed: int = 11) -> Dict[str, List[dict]]:
    """One 200-fix drive per user, as wire-format fix dictionaries."""
    rng = DeterministicRng(seed)
    return {
        f"user-{index:03d}": _drive(rng.fork("drive", index), t0=7.5 * 3600.0)
        for index in range(USERS)
    }


def _gateway_with_users(user_ids) -> Tuple[PphcrServer, Gateway, Dict[str, dict]]:
    """An auth-requiring gateway with one issued token per user."""
    server = PphcrServer()
    gateway = Gateway(server, GatewayConfig(require_auth=True))
    headers = {}
    for user_id in user_ids:
        server.register_user(UserProfile(user_id=user_id, display_name=user_id))
        headers[user_id] = {"authorization": f"Bearer {gateway.auth.issue(user_id)}"}
    return server, gateway, headers


def run_single_fix_ingest(
    drives: Dict[str, List[dict]], payloads: Dict[str, List[str]]
) -> Tuple[float, PphcrServer]:
    """Replay every drive one ``POST /v1/tracking`` request per fix."""
    server, gateway, headers = _gateway_with_users(drives)
    handle_wire = gateway.handle_wire
    start = time.perf_counter()
    for user_id in drives:
        user_headers = headers[user_id]
        for payload in payloads[user_id]:
            status, _body, _response_headers = handle_wire(
                "POST", "/v1/tracking", payload, headers=user_headers
            )
            assert status == 202
    return time.perf_counter() - start, server


def run_batch_ingest(
    drives: Dict[str, List[dict]], payloads: Dict[str, str]
) -> Tuple[float, PphcrServer]:
    """Upload every drive as one ``POST /v1/tracking/batch`` request."""
    server, gateway, headers = _gateway_with_users(drives)
    handle_wire = gateway.handle_wire
    start = time.perf_counter()
    for user_id in drives:
        status, body, _response_headers = handle_wire(
            "POST", "/v1/tracking/batch", payloads[user_id], headers=headers[user_id]
        )
        assert status == 202
        assert json.loads(body)["accepted"] == DRIVE_FIXES
    return time.perf_counter() - start, server


def encode_payloads(
    drives: Dict[str, List[dict]]
) -> Tuple[Dict[str, List[str]], Dict[str, str]]:
    """Pre-encode the wire payloads (client-side cost, excluded from both)."""
    single = {
        user_id: [json.dumps({"user_id": user_id, **fix}) for fix in drive]
        for user_id, drive in drives.items()
    }
    batch = {
        user_id: json.dumps({"user_id": user_id, "fixes": drive})
        for user_id, drive in drives.items()
    }
    return single, batch


def assert_ingest_equivalent(server_a: PphcrServer, server_b: PphcrServer, user_ids) -> None:
    """Both ingest paths must leave identical stores and mobility models."""
    for user_id in user_ids:
        assert server_a.users.tracking.fixes_for(user_id) == server_b.users.tracking.fixes_for(user_id), user_id
        snap_a = server_a.streaming.model_snapshot(user_id, include_open_tail=True)
        snap_b = server_b.streaming.model_snapshot(user_id, include_open_tail=True)
        assert (snap_a is None) == (snap_b is None), user_id
        if snap_a is None:
            continue
        assert snap_a.trip_count == snap_b.trip_count, user_id
        assert [
            (sp.stay_point_id, sp.center, sp.support, sp.total_dwell_s)
            for sp in snap_a.stay_points
        ] == [
            (sp.stay_point_id, sp.center, sp.support, sp.total_dwell_s)
            for sp in snap_b.stay_points
        ], user_id
        assert [
            (c.cluster_id, c.origin_stay_point, c.destination_stay_point, c.support)
            for c in snap_a.clusters
        ] == [
            (c.cluster_id, c.origin_stay_point, c.destination_stay_point, c.support)
            for c in snap_b.clusters
        ], user_id


# Read workload ------------------------------------------------------------


def build_read_world(seed: int = 23) -> Tuple[Gateway, List[str], float]:
    """A server with commute histories and clips, behind a plain gateway."""
    rng = DeterministicRng(seed)
    server = PphcrServer()
    categories = ["news-national", "economics", "culture", "cinema", "history"]
    for index in range(60):
        server.content.add_clip(
            AudioClip(
                clip_id=f"clip-{index:03d}",
                title=f"Clip {index}",
                kind=ContentKind.PODCAST,
                duration_s=90.0 + 10.0 * (index % 12),
                category_scores={categories[index % len(categories)]: 1.0},
                published_s=float(index),
            )
        )
    gateway = Gateway(server)
    user_ids = []
    for index in range(READ_USERS):
        user_id = f"reader-{index:03d}"
        user_ids.append(user_id)
        server.register_user(UserProfile(user_id=user_id, display_name=user_id))
        urng = rng.fork("reader", index)
        history: List[dict] = []
        for day in range(HISTORY_DAYS):
            history.extend(
                _drive(urng.fork("am", day), t0=day * 86400.0 + 7.5 * 3600.0, n=60)
            )
            history.extend(
                _drive(urng.fork("pm", day), t0=day * 86400.0 + 17.75 * 3600.0, n=60)
            )
        # A partial "today" commute so every reader is mid-drive at now_s —
        # the cold read then runs the whole pipeline (context building,
        # destination prediction, scoring), not the parked short-circuit.
        history.extend(
            _drive(urng.fork("am", HISTORY_DAYS), t0=HISTORY_DAYS * 86400.0 + 7.5 * 3600.0, n=30)
        )
        server.users.ingest_fixes(
            [
                GpsFix(
                    user_id,
                    fix["timestamp_s"],
                    GeoPoint(fix["lat"], fix["lon"]),
                    speed_mps=fix["speed_mps"],
                )
                for fix in history
            ],
            skip_stale=True,
        )
    now_s = HISTORY_DAYS * 86400.0 + 7.5 * 3600.0 + 30 * FIX_INTERVAL_S
    return gateway, user_ids, now_s


def run_cold_reads(gateway: Gateway, user_ids: List[str], now_s: float) -> Tuple[float, Dict[str, str]]:
    """First (uncached) recommendation read per user — a full pipeline run."""
    etags: Dict[str, str] = {}
    start = time.perf_counter()
    for user_id in user_ids:
        response = gateway.request(
            "GET", f"/v1/recommendations/{user_id}", query={"now_s": repr(now_s)}
        )
        assert response.status == 200, response.body
        etags[user_id] = response.header("etag")
    return time.perf_counter() - start, etags


def run_conditional_reads(
    gateway: Gateway, user_ids: List[str], etags: Dict[str, str], now_s: float, rounds: int
) -> float:
    """Revalidating reads while nothing changed — all must 304."""
    start = time.perf_counter()
    for _ in range(rounds):
        for user_id in user_ids:
            response = gateway.request(
                "GET",
                f"/v1/recommendations/{user_id}",
                query={"now_s": repr(now_s)},
                headers={"if-none-match": etags[user_id]},
            )
            assert response.status == 304
    return time.perf_counter() - start


# The benchmark ------------------------------------------------------------


def test_perf_api_gateway(benchmark):
    drives = build_ingest_workload()
    single_payloads, batch_payloads = encode_payloads(drives)
    total_fixes = USERS * DRIVE_FIXES

    single_elapsed = float("inf")
    single_server = None
    for _ in range(SINGLE_ROUNDS):
        elapsed, single_server = run_single_fix_ingest(drives, single_payloads)
        single_elapsed = min(single_elapsed, elapsed)

    batch_results = benchmark.pedantic(
        run_batch_ingest,
        args=(drives, batch_payloads),
        rounds=BATCH_ROUNDS,
        iterations=1,
    )
    batch_elapsed, batch_server = batch_results
    for _ in range(BATCH_ROUNDS - 1):
        elapsed, server = run_batch_ingest(drives, batch_payloads)
        if elapsed < batch_elapsed:
            batch_elapsed, batch_server = elapsed, server

    # Correctness first: both paths leave identical models.
    assert_ingest_equivalent(single_server, batch_server, drives.keys())

    ingest_speedup = single_elapsed / batch_elapsed
    assert ingest_speedup >= 5.0, (
        f"batch ingest only {ingest_speedup:.1f}x over per-call post_location "
        f"({single_elapsed * 1000.0:.0f}ms vs {batch_elapsed * 1000.0:.0f}ms "
        f"for {USERS} x {DRIVE_FIXES}-fix drives)"
    )

    gateway, readers, now_s = build_read_world()
    cold_elapsed, etags = run_cold_reads(gateway, readers, now_s)
    conditional_elapsed = run_conditional_reads(
        gateway, readers, etags, now_s, REVALIDATION_ROUNDS
    )
    cold_reads_per_s = len(readers) / cold_elapsed
    cached_reads_per_s = len(readers) * REVALIDATION_ROUNDS / conditional_elapsed
    read_speedup = cached_reads_per_s / cold_reads_per_s
    assert read_speedup >= 5.0, (
        f"ETag revalidation only {read_speedup:.1f}x over cold recommendation reads"
    )

    rows = [
        {
            "path": "per-call POST /v1/tracking (wire-level, auth)",
            "requests": total_fixes,
            "fixes": total_fixes,
            "elapsed_ms": f"{single_elapsed * 1000.0:.1f}",
            "throughput": f"{total_fixes / single_elapsed:.0f} fixes/s",
        },
        {
            "path": "batched POST /v1/tracking/batch (one request per drive)",
            "requests": USERS,
            "fixes": total_fixes,
            "elapsed_ms": f"{batch_elapsed * 1000.0:.1f}",
            "throughput": f"{total_fixes / batch_elapsed:.0f} fixes/s",
        },
        {
            "path": "cold GET /v1/recommendations (full pipeline)",
            "requests": len(readers),
            "fixes": "-",
            "elapsed_ms": f"{cold_elapsed * 1000.0:.1f}",
            "throughput": f"{cold_reads_per_s:.0f} reads/s",
        },
        {
            "path": "revalidating GET /v1/recommendations (ETag -> 304)",
            "requests": len(readers) * REVALIDATION_ROUNDS,
            "fixes": "-",
            "elapsed_ms": f"{conditional_elapsed * 1000.0:.1f}",
            "throughput": f"{cached_reads_per_s:.0f} reads/s",
        },
    ]
    lines = format_table(rows)
    lines.append("")
    lines.append(
        f"batch ingest speedup: {ingest_speedup:.1f}x   "
        f"ETag revalidation speedup: {read_speedup:.1f}x"
    )
    write_result("perf_api_gateway", lines)

    benchmark.extra_info["ingest_speedup"] = round(ingest_speedup, 1)
    benchmark.extra_info["read_speedup"] = round(read_speedup, 1)
    benchmark.extra_info["batch_fixes_per_s"] = round(total_fixes / batch_elapsed)
    benchmark.extra_info["single_fixes_per_s"] = round(total_fixes / single_elapsed)
    benchmark.extra_info["cached_reads_per_s"] = round(cached_reads_per_s)

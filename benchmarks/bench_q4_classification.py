"""Q-4 — 30-category Bayesian classification of (noisy) ASR transcripts.

The clip data management component classifies speech content into the 30
categories after automatic speech recognition.  The bench measures accuracy
and macro-F1 of the from-scratch Naive Bayes classifier on clean text and on
transcripts corrupted at increasing word error rates.  Expected shape: high
accuracy on clean text, graceful degradation with WER, always far above the
1/30 chance level for realistic recognizer error rates.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.asr import SimulatedTranscriber, SyntheticNewsCorpus
from repro.textclass import NaiveBayesClassifier, evaluate_classifier

WER_LEVELS = (0.0, 0.15, 0.3, 0.5, 0.7)


def build_task(seed=71, documents_per_category=14):
    corpus = SyntheticNewsCorpus(seed=seed)
    # Short documents make the 30-way task realistically hard: a one-minute
    # news item yields only a few tens of informative tokens after stopword
    # removal.
    train, test = corpus.train_test_split(documents_per_category=documents_per_category, word_count=60)
    classifier = NaiveBayesClassifier().fit([d.text for d in train], [d.category for d in train])
    # A realistic recognizer substitutes *real* words (often words that belong
    # to other topics), so the confusion vocabulary is the corpus vocabulary.
    confusion = []
    for category in corpus.categories():
        confusion.extend(corpus.model(category).topic_words[:10])
    return corpus, classifier, test, confusion


def evaluate_at_wer(classifier, test, wer, confusion):
    if wer == 0.0:
        texts = [d.text for d in test]
    else:
        transcriber = SimulatedTranscriber(
            target_wer=wer, seed=int(wer * 100) + 1, confusion_vocabulary=confusion
        )
        texts = [transcriber.transcribe(d.text, clip_id=str(i)).text for i, d in enumerate(test)]
    return evaluate_classifier(classifier, texts, [d.category for d in test])


def test_q4_classification_vs_wer(benchmark):
    _corpus, classifier, test, confusion = build_task()

    def sweep():
        return {wer: evaluate_at_wer(classifier, test, wer, confusion) for wer in WER_LEVELS}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        {
            "target_wer": wer,
            "accuracy": round(report.accuracy, 3),
            "macro_f1": round(report.macro_f1, 3),
            "documents": report.total,
        }
        for wer, report in sorted(reports.items())
    ]

    # Shape claims.
    clean = reports[0.0]
    assert clean.accuracy > 0.9
    accuracies = [reports[wer].accuracy for wer in WER_LEVELS]
    # Accuracy is non-increasing with noise (small tolerance for sampling).
    for earlier, later in zip(accuracies, accuracies[1:]):
        assert later <= earlier + 0.05
    # Heavy recognition noise visibly hurts, so the sweep is informative...
    assert accuracies[-1] < accuracies[0]
    # ...but even at 70% WER the classifier stays far above the 1/30 chance level.
    assert reports[WER_LEVELS[-1]].accuracy > 5 * (1.0 / 30.0)

    most_confused = clean.most_confused_pairs(3)
    lines = (
        ["Q-4: 30-category classification accuracy vs ASR word error rate", ""]
        + format_table(rows)
        + ["", "most confused category pairs on clean text:"]
        + [f"  {truth} -> {predicted}: {count}" for (truth, predicted), count in most_confused]
    )
    path = write_result("q4_classification", lines)

    benchmark.extra_info["clean_accuracy"] = round(clean.accuracy, 3)
    benchmark.extra_info["accuracy_at_worst_wer"] = round(reports[WER_LEVELS[-1]].accuracy, 3)
    benchmark.extra_info["results_file"] = path


def test_q4_classifier_training_throughput(benchmark):
    corpus = SyntheticNewsCorpus(seed=73)
    train, _ = corpus.train_test_split(documents_per_category=10)
    texts = [d.text for d in train]
    labels = [d.category for d in train]

    classifier = benchmark(lambda: NaiveBayesClassifier().fit(texts, labels))
    assert classifier.is_trained
    assert len(classifier.classes) == 30

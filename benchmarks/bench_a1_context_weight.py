"""A-1 — ablation: the context weight in the compound relevance score.

The compound score is ``(1-w)·content + w·context``.  The bench sweeps the
context weight from 0 (pure content-based personalization) to 1 (pure
context) and measures listener satisfaction and skip rate over simulated
commutes.  Expected shape: pure content and pure context are both worse than
(or at best equal to) an intermediate mixture — context information helps,
but not at the cost of ignoring learned preferences entirely.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.simulation import PersonalizationStrategy, SimulationRunner

CONTEXT_WEIGHTS = (0.0, 0.25, 0.45, 0.7, 1.0)


def sweep_context_weight(world, *, max_users=16):
    """Skip rate and enjoyment of the full pipeline at several context weights."""
    server = world.server
    original = server.compound_scorer.context_weight
    rows = []
    for weight in CONTEXT_WEIGHTS:
        # Swap the engine's scorer for one with the ablated weight.
        server.proactive_engine._scorer = server.compound_scorer.with_context_weight(weight)  # noqa: SLF001
        runner = SimulationRunner(world, seed=37)
        comparison = runner.compare_strategies([PersonalizationStrategy.PPHCR], max_users=max_users)
        rows.append(
            {
                "context_weight": weight,
                "skip_rate": comparison.mean_skip_rate("pphcr"),
                "mean_enjoyment": round(comparison.mean_enjoyment("pphcr"), 4),
                "listened_share": round(comparison.mean_listened_share("pphcr"), 4),
            }
        )
    server.proactive_engine._scorer = server.compound_scorer.with_context_weight(original)  # noqa: SLF001
    return rows


def test_a1_context_weight_ablation(benchmark, population_world):
    rows = benchmark.pedantic(
        sweep_context_weight, args=(population_world,), rounds=1, iterations=1
    )

    by_weight = {row["context_weight"]: row for row in rows}
    best_weight = max(rows, key=lambda row: row["mean_enjoyment"])["context_weight"]
    # Shape: some context helps — the best enjoyment is not at w = 1.0
    # (pure context, preferences ignored), and an intermediate weight is at
    # least as good as ignoring context completely.
    assert best_weight < 1.0
    intermediate_best = max(
        row["mean_enjoyment"] for row in rows if 0.0 < row["context_weight"] < 1.0
    )
    assert intermediate_best >= by_weight[0.0]["mean_enjoyment"] - 0.03
    assert intermediate_best >= by_weight[1.0]["mean_enjoyment"] - 0.03

    lines = ["A-1: ablation of the context weight w in the compound score", ""] + format_table(rows)
    path = write_result("a1_context_weight", lines)
    benchmark.extra_info["best_context_weight"] = best_weight
    benchmark.extra_info["results_file"] = path

"""FIG-5 — control dashboard: map of the listener's movements (paper Figure 5).

Times the dashboard's trajectory analytics (trip splitting, DBSCAN stay
points, recurring-route clustering, movement summary) over a listener's full
GPS history and regenerates the textual version of the map panel.
"""

from __future__ import annotations

from conftest import format_table, write_result

from repro.client import ControlDashboard


def test_fig5_trajectory_report(benchmark, bench_world):
    server = bench_world.server
    dashboard = ControlDashboard(server.users, server.content, editorial=server.editorial)
    user_id = bench_world.commuters[0].user_id

    report = benchmark(lambda: dashboard.trajectory_report(user_id))

    # A week of commuting yields two major stay points (home, work) and
    # recurring routes between them.
    assert report.fix_count > 100
    assert report.trip_count >= 6
    assert len(report.stay_points) >= 2
    assert report.recurring_routes >= 1
    assert report.total_distance_km > 10.0
    assert report.bounding_box is not None

    rows = [
        {
            "stay_point": stay_point.stay_point_id,
            "lat": round(stay_point.center.lat, 5),
            "lon": round(stay_point.center.lon, 5),
            "support": stay_point.support,
        }
        for stay_point in report.stay_points[:6]
    ]
    lines = [
        "FIG-5: dashboard map of the listener's movements",
        "",
        f"listener: {user_id}",
        f"GPS fixes: {report.fix_count}, trips: {report.trip_count}, "
        f"distance: {report.total_distance_km:.1f} km, recurring routes: {report.recurring_routes}",
        "",
        "major stay points (density-based clustering):",
    ] + format_table(rows)
    path = write_result("fig5_dashboard_trajectories", lines)

    benchmark.extra_info["trips"] = report.trip_count
    benchmark.extra_info["stay_points"] = len(report.stay_points)
    benchmark.extra_info["results_file"] = path


def test_fig5_all_listeners_overview(benchmark, bench_world):
    """The dashboard landing page counters over the whole population."""
    server = bench_world.server
    dashboard = ControlDashboard(server.users, server.content, editorial=server.editorial)

    overview = benchmark(dashboard.overview)

    assert overview["users"] == len(bench_world.commuters)
    assert overview["tracked_users"] == len(bench_world.commuters)
    assert overview["clips"] == bench_world.config.broadcaster.clips_per_day
    write_result(
        "fig5_dashboard_overview",
        ["FIG-5: dashboard overview counters", ""] + [f"{k}: {v}" for k, v in overview.items()],
    )

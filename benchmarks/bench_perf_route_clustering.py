"""PERF — signature-cached route clustering vs. the pairwise reference path.

``RouteCluster.geometric_coherence`` was the last O(trips²)-with-resampling
path on the ingest loop: every pairwise ``route_similarity`` call rebuilt
both polylines and re-interpolated 20 sample points.  The fast path builds
one cached :class:`~repro.trajectory.features.RouteSignature` per trip
(arc-length samples with precomputed radians/cosines, shared across every
pair, cluster and streaming repair) and accumulates a running pairwise
similarity sum per cluster, so coherence is O(1) to read and O(members) to
update when a trip joins.

Workload (from the issue's acceptance criteria): a 1 000-trip commuter
history over four recurring routes.  The reference path is timed on a
subset of each cluster's pairs and scaled (it is the slow side being
replaced); the fast path clusters the full history and reads every
cluster's coherence cold.  The bench asserts a >= 5x speedup and that
coherence values and per-pair similarities agree with the reference within
1e-9.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_perf_route_clustering.py -q
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from conftest import format_table, write_result

from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point, initial_bearing_deg
from repro.trajectory.clustering import RouteCluster, cluster_trips
from repro.trajectory.features import (
    route_signature,
    route_similarity,
    route_similarity_signatures,
)
from repro.trajectory.model import Trajectory, TrajectoryPoint
from repro.trajectory.staypoints import StayPoint
from repro.util.rng import DeterministicRng

TRIP_COUNT = 1000
#: Trips per cluster timed on the reference path (it is ~an order of
#: magnitude slower per pair; the full-history cost is scaled from this).
REFERENCE_SUBSET = 40
TRIP_POINTS = 24
BASE = GeoPoint(45.07, 7.68)


def _trip(rng: DeterministicRng, user_id: str, origin: GeoPoint, destination: GeoPoint,
          departure_s: float) -> Trajectory:
    """A direct drive between two anchors with per-trip jitter."""
    bearing = initial_bearing_deg(origin, destination) + rng.uniform(-3.0, 3.0)
    total = origin.distance_m(destination)
    points: List[TrajectoryPoint] = []
    for step in range(TRIP_POINTS):
        position = destination_point(origin, bearing, total * step / (TRIP_POINTS - 1))
        position = destination_point(
            position, rng.uniform(0.0, 360.0), abs(rng.gauss(0.0, 8.0))
        )
        points.append(TrajectoryPoint(departure_s + step * 20.0, position, 11.0))
    return Trajectory(user_id, points)


def build_history(seed: int = 11) -> Tuple[List[Trajectory], List[StayPoint]]:
    """A 1 000-trip commuter history over four recurring routes.

    Three stay anchors (home, work, gym) give four (origin, destination)
    route clusters of 250 trips each; the stay points are constructed
    directly at the anchors so the bench isolates the clustering/coherence
    cost from stay-point mining.
    """
    rng = DeterministicRng(seed)
    home = BASE
    work = destination_point(home, 52.0, 5200.0)
    gym = destination_point(home, 165.0, 3800.0)
    anchors = {0: home, 1: work, 2: gym}
    stay_points = [
        StayPoint(stay_point_id=sp_id, center=center, support=10, total_dwell_s=3600.0)
        for sp_id, center in anchors.items()
    ]
    routes = [(0, 1), (1, 0), (0, 2), (2, 0)]
    trips: List[Trajectory] = []
    per_route = TRIP_COUNT // len(routes)
    for repetition in range(per_route):
        for route_index, (origin_id, destination_id) in enumerate(routes):
            trng = rng.fork("trip", repetition, route_index)
            trips.append(
                _trip(
                    trng,
                    "commuter-0",
                    anchors[origin_id],
                    anchors[destination_id],
                    departure_s=repetition * 86400.0 + (7.5 + 3.0 * route_index) * 3600.0,
                )
            )
    return trips, stay_points


def _cluster_key(cluster: RouteCluster) -> Tuple[int, int]:
    return (cluster.origin_stay_point, cluster.destination_stay_point)


def reference_coherence(trips: List[Trajectory]) -> float:
    """The seed implementation: pairwise ``route_similarity``, resampling per pair."""
    if len(trips) < 2:
        return 1.0
    total = 0.0
    pairs = 0
    for index, trip_a in enumerate(trips):
        for trip_b in trips[index + 1 :]:
            total += route_similarity(trip_a, trip_b)
            pairs += 1
    return total / pairs


def reference_subset_run(
    clusters: List[RouteCluster], subset: int
) -> Tuple[Dict[Tuple[int, int], float], int]:
    """Reference coherence over each cluster's first ``subset`` trips.

    Returns the values and the number of pairs actually evaluated (the
    full-history reference cost is scaled from it).
    """
    values: Dict[Tuple[int, int], float] = {}
    pairs = 0
    for cluster in clusters:
        members = cluster.trips[:subset]
        values[_cluster_key(cluster)] = reference_coherence(members)
        pairs += len(members) * (len(members) - 1) // 2
    return values, pairs


def fast_run(
    trips: List[Trajectory], stay_points: List[StayPoint]
) -> Tuple[List[RouteCluster], Dict[Tuple[int, int], float]]:
    """Cluster the full history and read every coherence via signatures."""
    clusters = cluster_trips(trips, stay_points)
    return clusters, {_cluster_key(c): c.geometric_coherence() for c in clusters}


def incremental_replay(
    trips: List[Trajectory], stay_points: List[StayPoint]
) -> int:
    """Stream the history trip-by-trip with a coherence read per join.

    Mirrors the streaming engine's maintenance pattern: each join updates
    the running sum in O(members) and the read is O(1).  Returns the number
    of joins performed.
    """
    clusters = cluster_trips(trips, stay_points)
    by_key = {_cluster_key(c): c for c in clusters}
    live: Dict[Tuple[int, int], RouteCluster] = {}
    joins = 0
    for key, source in by_key.items():
        live[key] = RouteCluster(
            cluster_id=source.cluster_id,
            origin_stay_point=key[0],
            destination_stay_point=key[1],
        )
    for key, source in by_key.items():
        target = live[key]
        for trip in source.trips:
            target.add_trip(trip)
            target.geometric_coherence()
            joins += 1
    return joins


def test_perf_route_clustering_fast_path(benchmark):
    trips, stay_points = build_history()

    # Reference path: cluster once (shared cost), then time the pairwise
    # coherence loop over a subset of each cluster and scale by pair count.
    reference_clusters = cluster_trips(trips, stay_points)
    total_pairs = sum(
        len(c.trips) * (len(c.trips) - 1) // 2 for c in reference_clusters
    )
    start = time.perf_counter()
    reference_values, subset_pairs = reference_subset_run(
        reference_clusters, REFERENCE_SUBSET
    )
    reference_elapsed = time.perf_counter() - start
    reference_scaled = reference_elapsed * (total_pairs / subset_pairs)

    # Fast path, cold signature cache: cluster + all coherences.
    start = time.perf_counter()
    fast_clusters, fast_values = fast_run(trips, stay_points)
    fast_elapsed = time.perf_counter() - start

    # Correctness first: (a) the same subsets score identically through the
    # running-sum path, (b) sampled pairs match the reference per pair.
    max_diff = 0.0
    for cluster in fast_clusters:
        subset_cluster = RouteCluster(
            cluster_id=cluster.cluster_id,
            origin_stay_point=cluster.origin_stay_point,
            destination_stay_point=cluster.destination_stay_point,
            trips=list(cluster.trips[:REFERENCE_SUBSET]),
        )
        diff = abs(
            subset_cluster.geometric_coherence() - reference_values[_cluster_key(cluster)]
        )
        max_diff = max(max_diff, diff)
    rng = DeterministicRng(99)
    for _ in range(200):
        a = trips[int(rng.uniform(0, len(trips) - 1))]
        b = trips[int(rng.uniform(0, len(trips) - 1))]
        pair_diff = abs(
            route_similarity_signatures(route_signature(a), route_signature(b))
            - route_similarity(a, b)
        )
        max_diff = max(max_diff, pair_diff)
    assert max_diff <= 1e-9, f"fast path diverged from reference by {max_diff}"

    speedup = reference_scaled / max(fast_elapsed, 1e-9)
    assert speedup >= 5.0, (
        f"fast path only {speedup:.1f}x faster "
        f"({reference_scaled * 1000:.0f}ms scaled vs {fast_elapsed * 1000:.0f}ms)"
    )

    # Streaming maintenance pattern (warm cache): joins with O(1) reads.
    start = time.perf_counter()
    joins = incremental_replay(trips, stay_points)
    incremental_elapsed = time.perf_counter() - start

    # Steady-state coherence reads for the benchmark stats (sums are warm).
    benchmark.pedantic(
        lambda: [cluster.geometric_coherence() for cluster in fast_clusters],
        rounds=3,
        iterations=1,
    )

    rows = [
        {
            "path": f"reference (pairwise resample, {REFERENCE_SUBSET}/cluster scaled)",
            "trips": len(trips),
            "pairs": total_pairs,
            "elapsed_ms": f"{reference_scaled * 1000:.1f}",
            "pairs_per_s": f"{total_pairs / reference_scaled:.0f}",
        },
        {
            "path": "fast (cached signatures + running sums, cold)",
            "trips": len(trips),
            "pairs": total_pairs,
            "elapsed_ms": f"{fast_elapsed * 1000:.1f}",
            "pairs_per_s": f"{total_pairs / fast_elapsed:.0f}",
        },
        {
            "path": "incremental joins (O(members) update + O(1) read)",
            "trips": joins,
            "pairs": total_pairs,
            "elapsed_ms": f"{incremental_elapsed * 1000:.1f}",
            "pairs_per_s": f"{joins / incremental_elapsed:.0f} joins/s",
        },
    ]
    lines = format_table(rows)
    lines.append("")
    lines.append(
        f"speedup: {speedup:.1f}x   max |fast - reference| = {max_diff:.2e}   "
        f"clusters: {len(fast_clusters)}"
    )
    write_result("perf_route_clustering", lines)

    assert {_cluster_key(c) for c in fast_clusters} == set(fast_values)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["max_coherence_diff"] = max_diff
    benchmark.extra_info["reference_pairs_per_s"] = round(total_pairs / reference_scaled)
    benchmark.extra_info["fast_pairs_per_s"] = round(total_pairs / fast_elapsed)
    benchmark.extra_info["incremental_joins_per_s"] = round(joins / incremental_elapsed)

"""PERF — streaming mobility mining vs. per-tick batch rebuilds.

The seed compaction path re-mines every user's *entire* GPS history on
every pass: split the full trajectory into trips, DBSCAN the endpoints,
re-cluster the routes — O(users × history²) as histories grow.  The
streaming subsystem sessionizes fixes online and folds completed trips
into incremental models, so keeping models fresh costs O(new fixes).

Workload (from the issue's acceptance criteria): a 1 000-user commute
replay delivered in daily ticks, where after every tick each user's
mobility model must be fresh.  The baseline runs the batch miner per user
per tick (timed on a subset and scaled — it is the slow side being
replaced); the streaming path ingests the same fixes once and snapshots
every user's model per tick.  The bench asserts a >= 5x ingest-to-fresh-
model throughput improvement and that the streamed models are equivalent
to batch rebuilds over the full history.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_streaming_ingest.py -q
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from conftest import format_table, write_result

from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point, initial_bearing_deg
from repro.spatialdb import GpsFix
from repro.streaming import StreamingMobilityEngine
from repro.trajectory.clustering import cluster_trips
from repro.trajectory.model import Trajectory, split_into_trips
from repro.trajectory.staypoints import stay_points_from_trips
from repro.util.rng import DeterministicRng

USERS = 1000
#: Replay length matches the compaction keep-window the paper's pipeline
#: maintains: the baseline re-mines up to 14 days of history per tick.
DAYS = 14
BASELINE_SUBSET = 40
FIX_INTERVAL_S = 20.0
BASE = GeoPoint(45.07, 7.68)

#: Batch-miner parameters — the server defaults both paths share.
STAY_POINT_EPS_M = 300.0
ASSIGN_RADIUS_M = 500.0


def _drive(rng, user_id, origin, destination, departure_s) -> List[GpsFix]:
    distance = origin.distance_m(destination)
    bearing = initial_bearing_deg(origin, destination) + rng.uniform(-2.0, 2.0)
    speed = rng.uniform(9.0, 14.0)
    steps = max(8, int(distance / (speed * FIX_INTERVAL_S)))
    fixes = []
    for step in range(steps + 1):
        position = destination_point(origin, bearing, distance * step / steps)
        position = destination_point(position, rng.uniform(0.0, 360.0), abs(rng.gauss(0.0, 6.0)))
        fixes.append(
            GpsFix(user_id, departure_s + step * FIX_INTERVAL_S, position, speed_mps=speed)
        )
    return fixes


def build_fix_ticks(
    users: int = USERS, days: int = DAYS, seed: int = 4
) -> Tuple[List[List[GpsFix]], Dict[str, List[GpsFix]]]:
    """Daily ticks of commute fixes, plus the per-user full histories."""
    rng = DeterministicRng(seed)
    anchors = []
    for index in range(users):
        urng = rng.fork("user", index)
        home = destination_point(BASE, urng.uniform(0.0, 360.0), urng.uniform(0.0, 20000.0))
        work = destination_point(home, urng.uniform(0.0, 360.0), urng.uniform(3000.0, 6000.0))
        anchors.append((f"user-{index:04d}", home, work))

    ticks: List[List[GpsFix]] = []
    histories: Dict[str, List[GpsFix]] = {user_id: [] for user_id, _, _ in anchors}
    for day in range(days):
        day_fixes: List[GpsFix] = []
        for index, (user_id, home, work) in enumerate(anchors):
            drng = rng.fork("day", day, index)
            morning = _drive(
                drng.fork("am"), user_id, home, work,
                day * 86400.0 + 7.5 * 3600.0 + drng.uniform(-600.0, 600.0),
            )
            evening = _drive(
                drng.fork("pm"), user_id, work, home,
                day * 86400.0 + 17.75 * 3600.0 + drng.uniform(-600.0, 600.0),
            )
            day_fixes.extend(morning)
            day_fixes.extend(evening)
            histories[user_id].extend(morning)
            histories[user_id].extend(evening)
        ticks.append(day_fixes)
    return ticks, histories


def batch_model(fixes: List[GpsFix]):
    """One full-history batch rebuild (mirrors ``rebuild_mobility_model``)."""
    trips = split_into_trips(Trajectory.from_fixes(fixes[0].user_id, fixes))
    stay_points = stay_points_from_trips(trips, eps_m=STAY_POINT_EPS_M) if trips else []
    clusters = (
        cluster_trips(trips, stay_points, max_endpoint_distance_m=ASSIGN_RADIUS_M)
        if stay_points
        else []
    )
    return trips, stay_points, clusters


def run_batch_replay(
    ticks: List[List[GpsFix]], subset_users: List[str]
) -> Tuple[float, int]:
    """Per-tick batch rebuilds over growing histories for a user subset.

    Returns (elapsed seconds, fixes processed for the subset).
    """
    subset = set(subset_users)
    histories: Dict[str, List[GpsFix]] = {user_id: [] for user_id in subset_users}
    fixes_seen = 0
    start = time.perf_counter()
    for tick in ticks:
        for fix in tick:
            if fix.user_id in subset:
                histories[fix.user_id].append(fix)
                fixes_seen += 1
        for user_id in subset_users:
            if len(histories[user_id]) >= 2:
                batch_model(histories[user_id])
    return time.perf_counter() - start, fixes_seen


def run_streaming_replay(ticks: List[List[GpsFix]]) -> Tuple[float, int, StreamingMobilityEngine]:
    """Stream every fix once; snapshot every user's model after each tick."""
    engine = StreamingMobilityEngine()
    fixes_seen = 0
    start = time.perf_counter()
    for tick in ticks:
        engine.observe_fixes(tick)
        fixes_seen += len(tick)
        for user_id in engine.model.user_ids():
            engine.model_snapshot(user_id)
    return time.perf_counter() - start, fixes_seen, engine


def assert_stream_equivalent(
    engine: StreamingMobilityEngine, histories: Dict[str, List[GpsFix]], sample: List[str]
) -> None:
    """Streamed models (tail folded in) must equal full-history rebuilds."""
    for user_id in sample:
        snapshot = engine.model_snapshot(user_id, include_open_tail=True)
        trips, stay_points, clusters = batch_model(histories[user_id])
        assert snapshot.trip_count == len(trips), user_id
        assert [
            (sp.stay_point_id, sp.center, sp.support, sp.total_dwell_s)
            for sp in snapshot.stay_points
        ] == [
            (sp.stay_point_id, sp.center, sp.support, sp.total_dwell_s) for sp in stay_points
        ], user_id
        assert [
            (c.cluster_id, c.origin_stay_point, c.destination_stay_point, c.support)
            for c in snapshot.clusters
        ] == [
            (c.cluster_id, c.origin_stay_point, c.destination_stay_point, c.support)
            for c in clusters
        ], user_id


def test_perf_streaming_ingest(benchmark):
    ticks, histories = build_fix_ticks()
    total_fixes = sum(len(tick) for tick in ticks)
    subset_users = sorted(histories.keys())[:BASELINE_SUBSET]

    baseline_elapsed, baseline_fixes = run_batch_replay(ticks, subset_users)
    baseline_fixes_per_s = baseline_fixes / baseline_elapsed
    # The full-population baseline cost, scaled from the measured subset.
    baseline_total_elapsed = baseline_elapsed * (USERS / BASELINE_SUBSET)

    streaming_elapsed, streamed_fixes, engine = benchmark.pedantic(
        run_streaming_replay, args=(ticks,), rounds=1, iterations=1
    )
    assert streamed_fixes == total_fixes
    streaming_fixes_per_s = total_fixes / streaming_elapsed

    # Correctness first: streamed models match batch over the full history.
    sample = sorted(histories.keys())[:: max(1, USERS // 25)]
    assert_stream_equivalent(engine, histories, sample)

    speedup = baseline_total_elapsed / streaming_elapsed
    assert speedup >= 5.0, (
        f"streaming only {speedup:.1f}x over per-tick batch rebuilds "
        f"({baseline_total_elapsed:.1f}s scaled vs {streaming_elapsed:.1f}s)"
    )

    rows = [
        {
            "path": f"batch rebuild per tick (subset of {BASELINE_SUBSET}, scaled)",
            "users": USERS,
            "days": DAYS,
            "fixes": total_fixes,
            "elapsed_s": f"{baseline_total_elapsed:.2f}",
            "fixes_per_s": f"{total_fixes / baseline_total_elapsed:.0f}",
        },
        {
            "path": "streaming (sessionize + incremental + snapshot)",
            "users": USERS,
            "days": DAYS,
            "fixes": total_fixes,
            "elapsed_s": f"{streaming_elapsed:.2f}",
            "fixes_per_s": f"{streaming_fixes_per_s:.0f}",
        },
    ]
    lines = format_table(rows)
    lines.append("")
    lines.append(
        f"speedup: {speedup:.1f}x   trips folded: "
        f"{sum(engine.model.trip_count(u) for u in engine.model.user_ids())}   "
        f"stay points spawned online: {engine.model.spawned_stay_points}"
    )
    write_result("perf_streaming_ingest", lines)

    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["streaming_fixes_per_s"] = round(streaming_fixes_per_s)
    benchmark.extra_info["baseline_fixes_per_s"] = round(baseline_fixes_per_s)
    benchmark.extra_info["users"] = USERS
    benchmark.extra_info["total_fixes"] = total_fixes

"""PERF — WAL durability: append overhead on the serving path, and
recovery time of snapshot + log tail vs. full client re-ingest.

Two claims, both over the concurrent-serving bench's mixed wire-level
workload (buffered drive uploads, feedback posts, cold and conditional
recommendation reads, merged listings):

* **append overhead** — serving with the write-ahead log on (every
  committed write framed, checksummed and appended) must cost less than
  ``OVERHEAD_CEILING_PCT`` over the identical durability-off drive.  The
  parity half of the claim is asserted first: the WAL observes writes, it
  never changes them, so both servers' end states are identical.
* **recovery time** — after a mid-drive snapshot and a crash at the end
  of the drive, restoring snapshot + WAL tail must be compared against
  the alternative the WAL replaces: rebuilding the server and re-ingesting
  the *entire* request stream from clients.  The survivor's end state is
  asserted identical to the primary's.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_wal_durability.py -q
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Tuple

from conftest import format_table, write_result

from bench_concurrent_serving import (
    WIRE_IO_S,
    assert_end_state_equal,
    build_server,
    build_workload,
    execute_op,
    run_serial,
)

from repro.pipeline import Gateway, PphcrServer
from repro.storage import DurabilityConfig

#: Hard budget on the WAL's cost over the identical no-WAL wire drive.
OVERHEAD_CEILING_PCT = 10.0
#: Best-of rounds per configuration (the wire sleep dominates; a couple
#: of rounds is enough to shake scheduler noise out of the comparison).
ROUNDS = 2


def _durability(directory) -> DurabilityConfig:
    return DurabilityConfig(enabled=True, directory=str(directory))


# Append overhead ----------------------------------------------------------


def run_overhead_phase(
    payloads, ops, wal_root
) -> Tuple[float, float, float, PphcrServer]:
    """Timed durability-off vs. durability-on serial drives.

    Returns ``(best_off, best_on, overhead_pct, durable_server)``; the
    durable server's WAL stats feed the smoke artifact.  End states are
    asserted identical before any timing is believed.
    """
    best_off = float("inf")
    server_off = gateway_off = None
    for _ in range(ROUNDS):
        server, gateway = build_server(1, parallel=False)
        elapsed, _latencies = run_serial(gateway, payloads, ops)
        if elapsed < best_off:
            best_off, server_off, gateway_off = elapsed, server, gateway

    best_on = float("inf")
    server_on = gateway_on = None
    for round_index in range(ROUNDS):
        server, gateway = build_server(
            1,
            parallel=False,
            durability=_durability(wal_root / f"overhead-{round_index}"),
        )
        elapsed, _latencies = run_serial(gateway, payloads, ops)
        if elapsed < best_on:
            best_on, server_on, gateway_on = elapsed, server, gateway

    # The WAL observes the write path; it must not change it.
    assert_end_state_equal(server_off, gateway_off, server_on, gateway_on)
    overhead_pct = (best_on - best_off) / best_off * 100.0
    return best_off, best_on, overhead_pct, server_on


# Recovery time ------------------------------------------------------------


def run_recovery_phase(payloads, ops, wal_root) -> Dict[str, float]:
    """Snapshot + tail restore vs. full re-ingest, both timed (no sleeps).

    A durable primary serves the stream, snapshotting halfway — so the
    WAL tail carries the second half of the drive.  Recovery A restores
    the snapshot and replays the tail; recovery B rebuilds a server and
    re-dispatches every request from the clients.  A must equal the
    primary exactly.
    """
    directory = wal_root / "recovery"
    server, gateway = build_server(
        1, parallel=False, durability=_durability(directory)
    )
    etags: Dict[str, str] = {}
    mid = len(ops) // 2
    for op in ops[:mid]:
        execute_op(gateway, payloads, op, etags)
    durable = json.loads(json.dumps(server.snapshot()))
    assert "wal_lsn" in durable
    for op in ops[mid:]:
        execute_op(gateway, payloads, op, etags)
    tail_frames = server.durability.last_lsn - durable["wal_lsn"]
    assert tail_frames > 0, "the drive past the snapshot must have logged frames"

    # Recovery A: a fresh process restores snapshot + WAL tail.
    start = time.perf_counter()
    survivor = PphcrServer(config=server.config)
    survivor.restore_snapshot(durable, replay_log=True)
    recovery_elapsed = time.perf_counter() - start
    assert_end_state_equal(server, gateway, survivor, Gateway(survivor))

    # Recovery B: what the WAL replaces — rebuild and re-ingest everything.
    start = time.perf_counter()
    _fresh_server, fresh_gateway = build_server(1, parallel=False)
    fresh_etags: Dict[str, str] = {}
    for op in ops:
        execute_op(fresh_gateway, payloads, op, fresh_etags)
    reingest_elapsed = time.perf_counter() - start

    return {
        "recovery_elapsed_s": recovery_elapsed,
        "reingest_elapsed_s": reingest_elapsed,
        "recovery_speedup": reingest_elapsed / recovery_elapsed,
        "tail_frames": tail_frames,
        "snapshot_lsn": durable["wal_lsn"],
    }


# The benchmark ------------------------------------------------------------


def test_perf_wal_durability(benchmark, tmp_path):
    payloads, ops = build_workload()

    best_off, best_on, overhead_pct, server_on = benchmark.pedantic(
        run_overhead_phase, args=(payloads, ops, tmp_path), rounds=1, iterations=1
    )
    assert overhead_pct < OVERHEAD_CEILING_PCT, (
        f"WAL append overhead {overhead_pct:.2f}% exceeds the "
        f"{OVERHEAD_CEILING_PCT:.0f}% budget "
        f"({best_on * 1000.0:.0f}ms vs {best_off * 1000.0:.0f}ms "
        f"for {len(ops)} mixed requests)"
    )

    recovery = run_recovery_phase(payloads, ops, tmp_path)
    wal_stats = server_on.durability.stats()
    frames = sum(log["frames"] for log in wal_stats["logs"].values())
    wal_bytes = sum(log["bytes"] for log in wal_stats["logs"].values())

    rows: List[Dict[str, object]] = [
        {
            "configuration": "durability off",
            "elapsed_ms": f"{best_off * 1000.0:.0f}",
            "throughput": f"{len(ops) / best_off:.0f} req/s",
        },
        {
            "configuration": "durability on (WAL)",
            "elapsed_ms": f"{best_on * 1000.0:.0f}",
            "throughput": f"{len(ops) / best_on:.0f} req/s",
        },
    ]
    lines = format_table(rows)
    lines.append("")
    lines.append(
        f"WAL append overhead: {overhead_pct:+.2f}% "
        f"(budget {OVERHEAD_CEILING_PCT:.0f}%, {frames} frames, "
        f"{wal_bytes} bytes, wire transfer {WIRE_IO_S * 1000.0:.1f}ms/request)"
    )
    lines.append(
        f"recovery: snapshot + {recovery['tail_frames']}-frame tail in "
        f"{recovery['recovery_elapsed_s'] * 1000.0:.0f}ms vs full re-ingest "
        f"{recovery['reingest_elapsed_s'] * 1000.0:.0f}ms "
        f"({recovery['recovery_speedup']:.1f}x)"
    )
    write_result("wal_durability", lines)
    benchmark.extra_info["overhead_pct"] = round(overhead_pct, 2)
    benchmark.extra_info["recovery_speedup"] = round(
        recovery["recovery_speedup"], 2
    )
    print("\n".join(lines))

"""The stochastic listener behaviour model.

The paper's key outcome claims — higher relevance, fewer skips, less channel
surfing — require a model of how a listener reacts to a piece of audio.  We
use a simple utility model: the listener's *enjoyment* of an item is her
preference-profile affinity for its categories plus a small context bonus
for geo-relevant items, and the probability of skipping before the end (or
zapping away from a live programme) decreases with enjoyment.  The same
model is applied to every strategy under comparison, so differences in skip
rate come only from *what* each strategy chooses to play.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.content.model import AudioClip
from repro.errors import ValidationError
from repro.users.profile import UserPreferenceProfile
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class ListeningOutcome:
    """What happened when one item was played to the listener."""

    content_id: str
    enjoyment: float
    skipped: bool
    listened_s: float
    duration_s: float
    channel_changed: bool = False

    @property
    def completed(self) -> bool:
        """Whether the listener heard the item to the end."""
        return not self.skipped and not self.channel_changed

    @property
    def listened_fraction(self) -> float:
        """Fraction of the item actually heard."""
        if self.duration_s <= 0:
            return 0.0
        return min(1.0, self.listened_s / self.duration_s)


class ListenerBehavior:
    """Converts enjoyment into skip / zap decisions, reproducibly."""

    def __init__(
        self,
        *,
        skip_steepness: float = 6.0,
        base_skip_probability: float = 0.65,
        channel_change_share: float = 0.25,
        min_listen_s: float = 10.0,
        seed: int = 71,
    ) -> None:
        if skip_steepness <= 0:
            raise ValidationError("skip_steepness must be > 0")
        if not 0.0 <= base_skip_probability <= 1.0:
            raise ValidationError("base_skip_probability must be in [0, 1]")
        if not 0.0 <= channel_change_share <= 1.0:
            raise ValidationError("channel_change_share must be in [0, 1]")
        self._steepness = skip_steepness
        self._base_skip = base_skip_probability
        self._channel_change_share = channel_change_share
        self._min_listen_s = min_listen_s
        self._rng = DeterministicRng(seed)

    def enjoyment(
        self,
        profile: UserPreferenceProfile,
        category_scores: Dict[str, float],
        *,
        context_bonus: float = 0.0,
    ) -> float:
        """Enjoyment in [0, 1] of an item with the given category distribution."""
        if not 0.0 <= context_bonus <= 1.0:
            raise ValidationError("context_bonus must be in [0, 1]")
        affinity = profile.affinity(category_scores)
        return min(1.0, 0.85 * affinity + 0.15 * context_bonus + context_bonus * 0.15)

    def skip_probability(self, enjoyment: float) -> float:
        """Probability of not finishing an item with the given enjoyment.

        A logistic curve centred at enjoyment 0.5: items the listener loves
        are almost never skipped, items she dislikes almost always are.
        """
        if not 0.0 <= enjoyment <= 1.0:
            raise ValidationError("enjoyment must be in [0, 1]")
        logistic = 1.0 / (1.0 + math.exp(self._steepness * (enjoyment - 0.5)))
        return self._base_skip * 2.0 * logistic * 0.5 + self._base_skip * logistic * 0.5

    def listen_to_clip(
        self,
        profile: UserPreferenceProfile,
        clip: AudioClip,
        *,
        context_bonus: float = 0.0,
        is_live_programme: bool = False,
        rng: Optional[DeterministicRng] = None,
    ) -> ListeningOutcome:
        """Simulate the listener hearing one item."""
        generator = rng if rng is not None else self._rng
        enjoyment = self.enjoyment(profile, clip.category_scores, context_bonus=context_bonus)
        skip_p = self.skip_probability(enjoyment)
        skipped = generator.bernoulli(skip_p)
        channel_changed = False
        if skipped:
            # A dissatisfied linear-radio listener sometimes zaps instead of skipping;
            # with personalized content a "skip" stays within the app.
            if is_live_programme and generator.bernoulli(self._channel_change_share):
                channel_changed = True
            listened = self._min_listen_s + generator.uniform(0.0, 0.4) * clip.duration_s
            listened = min(listened, clip.duration_s)
        else:
            listened = clip.duration_s
        return ListeningOutcome(
            content_id=clip.clip_id,
            enjoyment=enjoyment,
            skipped=skipped and not channel_changed,
            listened_s=listened,
            duration_s=clip.duration_s,
            channel_changed=channel_changed,
        )

    def fork(self, *labels: object) -> "ListenerBehavior":
        """An independent behaviour model with a derived seed (per listener)."""
        derived = self._rng.fork(*labels)
        clone = ListenerBehavior(
            skip_steepness=self._steepness,
            base_skip_probability=self._base_skip,
            channel_change_share=self._channel_change_share,
            min_listen_s=self._min_listen_s,
            seed=derived.seed,
        )
        return clone

"""Runnable versions of the paper's two demonstration scenarios (§2.1).

* :func:`run_manual_skip_scenario` — "Manual Program Change": Greg dislikes
  the football discussion on his favourite channel, skips the live programme
  twice and lands on content matching his technology/economy tastes, without
  zapping away from the station.
* :func:`run_proactive_commute_scenario` — "Contextual Proactive
  Recommendation": Lilly starts her morning commute; after a few minutes the
  system predicts her destination and remaining time, proactively schedules
  a news clip, a food-related clip and the time-shifted live programme that
  started earlier, and the client plays them seamlessly (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.client.app import ClientApp
from repro.content.model import AudioClip
from repro.datasets.world import SyntheticWorld
from repro.delivery.player import SegmentSource
from repro.errors import ValidationError
from repro.recommender.proactive import ProactiveDecision
from repro.recommender.scheduling import RecommendationPlan
from repro.users.feedback import FeedbackKind


@dataclass
class ManualSkipScenarioResult:
    """Outcome of the Greg scenario."""

    user_id: str
    skipped_programme_ids: List[str] = field(default_factory=list)
    played_clip_ids: List[str] = field(default_factory=list)
    final_clip: Optional[AudioClip] = None
    final_clip_matches_taste: bool = False
    channel_changed: bool = False
    timeline: List[str] = field(default_factory=list)


@dataclass
class ProactiveScenarioResult:
    """Outcome of the Lilly scenario."""

    user_id: str
    decision: ProactiveDecision
    plan: Optional[RecommendationPlan]
    timeline: List[str] = field(default_factory=list)
    played_clip_ids: List[str] = field(default_factory=list)
    time_shift_offset_s: float = 0.0
    listened_without_skips: bool = True
    delta_t_predicted_s: float = 0.0
    delta_t_actual_s: float = 0.0


def run_manual_skip_scenario(
    world: SyntheticWorld,
    *,
    user_id: Optional[str] = None,
    service_id: str = "radio-uno",
    listen_before_skip_s: float = 120.0,
    max_skips: int = 2,
) -> ManualSkipScenarioResult:
    """Run the §2.1.1 manual program change scenario.

    The listener tunes to the live service, dislikes the current programme,
    skips it (twice at most, as in the paper's narrative) and receives
    content-based recommendations instead; the scenario checks that the final
    item matches one of her preferred categories.
    """
    server = world.server
    user = user_id or world.commuters[0].user_id
    commuter = world.commuter(user)
    schedule = server.content.schedule(service_id)
    coverage = schedule.coverage_window()
    if coverage is None:
        raise ValidationError(f"service {service_id!r} has an empty schedule")
    start_s = coverage.start_s + 3 * 3600.0  # mid-morning
    app = ClientApp(user, server.users)
    app.tune(service_id, schedule, at_s=start_s)

    result = ManualSkipScenarioResult(user_id=user)
    preferred = set(commuter.preferred_categories)

    # Listen briefly to the live programme, then skip it (implicit negative).
    now = start_s
    for _skip in range(max_skips):
        app.listen_live(listen_before_skip_s)
        now = app.player.current_time_s
        current = schedule.programme_at(now - app.player.playback_offset_s)
        if current is not None:
            result.skipped_programme_ids.append(current.programme_id)
        app.skip()

    # Surf the content-based suggestion list, skipping until a preferred item.
    context_now = now
    candidates = server.proactive_engine._filter.candidates(user, now_s=context_now)  # noqa: SLF001
    from repro.recommender.context import stationary_context

    ranked = server.compound_scorer.rank(candidates, stationary_context(user, context_now))
    final_clip: Optional[AudioClip] = None
    for scored in ranked:
        clip = scored.clip
        result.played_clip_ids.append(clip.clip_id)
        if clip.primary_category in preferred:
            final_clip = clip
            app.play_recommended_clip(clip)
            break
        # Not interesting: brief listen, then skip to the next suggestion.
        server.users.record_feedback(
            user, clip.clip_id, FeedbackKind.SKIP, timestamp_s=app.player.current_time_s
        )
        if len(result.played_clip_ids) >= 5:
            break

    result.final_clip = final_clip
    result.final_clip_matches_taste = (
        final_clip is not None and final_clip.primary_category in preferred
    )
    result.channel_changed = False  # Greg never leaves his favourite station
    result.timeline = app.timeline()
    return result


def run_proactive_commute_scenario(
    world: SyntheticWorld,
    *,
    user_id: Optional[str] = None,
    service_id: str = "radio-uno",
    observe_s: float = 300.0,
) -> ProactiveScenarioResult:
    """Run the §2.1.2 contextual proactive recommendation scenario.

    The listener starts her usual morning commute; after ``observe_s`` of
    driving the server predicts destination and ΔT and produces a plan.  The
    client then plays the plan's clips and finally resumes the live service
    time-shifted from the buffer, producing the Figure 4 timeline.
    """
    server = world.server
    user = user_id or world.commuters[0].user_id
    commuter = world.commuter(user)

    # Today's drive: emit the first ``observe_s`` of GPS fixes to the server.
    drive = world.commuter_generator.live_drive(commuter, day=world.today)
    # Never observe more than a third of the drive, or there is nothing left
    # to personalize; never less than the proactive engine's minimum.
    observe_s = min(observe_s, max(90.0, 0.35 * drive.expected_duration_s))
    observe_until = drive.departure_s + observe_s
    server.users.ingest_fixes(drive.fixes(until_s=observe_until), skip_stale=True)

    # The client was already listening to the live service since departure.
    schedule = server.content.schedule(service_id)
    app = ClientApp(user, server.users)
    schedule_time = drive.departure_s % 86400.0
    app.tune(service_id, schedule, at_s=schedule_time)
    app.listen_live(observe_s)

    # Proactive evaluation.
    decision = server.recommend(user, now_s=observe_until, drive_elapsed_s=observe_s)
    result = ProactiveScenarioResult(
        user_id=user,
        decision=decision,
        plan=decision.plan,
        delta_t_actual_s=max(0.0, drive.arrival_s - observe_until),
    )
    if decision.plan is None:
        result.timeline = app.timeline()
        return result
    result.delta_t_predicted_s = decision.plan.available_s

    # Play the plan: recommended clips replace the live audio.
    for item in decision.plan.items:
        app.play_recommended_clip(item.scored.clip)
        result.played_clip_ids.append(item.clip_id)

    # After the clips, resume the live programme time-shifted from the buffer
    # ("the program began 20 minutes ago, but the app can still present it").
    remaining = max(0.0, result.delta_t_actual_s - decision.plan.total_scheduled_s)
    result.time_shift_offset_s = app.player.playback_offset_s
    if remaining > 30.0:
        app.listen_live(remaining)

    result.timeline = app.timeline()
    result.listened_without_skips = all(
        segment.source in (SegmentSource.CLIP, SegmentSource.LIVE, SegmentSource.TIME_SHIFTED)
        for segment in app.player.segments()
    )
    return result

"""Listener behaviour simulation and the paper's demonstration scenarios.

Provides: a stochastic listener satisfaction/skip model
(:mod:`repro.simulation.listener`), runnable versions of the two
demonstration scenarios — Greg's manual program change and Lilly's
contextual proactive recommendation (:mod:`repro.simulation.scenario`) —
and a population-level comparison runner that measures skip/channel-change
rates under different personalization strategies
(:mod:`repro.simulation.runner`).
"""

from repro.simulation.listener import ListenerBehavior, ListeningOutcome
from repro.simulation.metrics import SessionMetrics, StrategyComparison, summarize_sessions
from repro.simulation.runner import PersonalizationStrategy, SimulationRunner
from repro.simulation.scenario import (
    ManualSkipScenarioResult,
    ProactiveScenarioResult,
    run_manual_skip_scenario,
    run_proactive_commute_scenario,
)

__all__ = [
    "ListenerBehavior",
    "ListeningOutcome",
    "ManualSkipScenarioResult",
    "PersonalizationStrategy",
    "ProactiveScenarioResult",
    "SessionMetrics",
    "SimulationRunner",
    "StrategyComparison",
    "run_manual_skip_scenario",
    "run_proactive_commute_scenario",
    "summarize_sessions",
]

"""Session-level metrics and strategy comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ValidationError
from repro.simulation.listener import ListeningOutcome


@dataclass(frozen=True)
class SessionMetrics:
    """Aggregated outcome of one listening session."""

    user_id: str
    strategy: str
    items_played: int
    skips: int
    channel_changes: int
    total_listened_s: float
    total_duration_s: float
    mean_enjoyment: float

    @property
    def skip_rate(self) -> float:
        """Skips (including channel changes) per item played."""
        if self.items_played == 0:
            return 0.0
        return (self.skips + self.channel_changes) / self.items_played

    @property
    def completion_rate(self) -> float:
        """Fraction of items played to the end."""
        if self.items_played == 0:
            return 0.0
        return 1.0 - self.skip_rate

    @property
    def listened_share(self) -> float:
        """Fraction of offered audio actually listened to."""
        if self.total_duration_s <= 0:
            return 0.0
        return min(1.0, self.total_listened_s / self.total_duration_s)


def session_metrics_from_outcomes(
    user_id: str, strategy: str, outcomes: Sequence[ListeningOutcome]
) -> SessionMetrics:
    """Aggregate per-item outcomes into session metrics."""
    if not outcomes:
        return SessionMetrics(user_id, strategy, 0, 0, 0, 0.0, 0.0, 0.0)
    skips = sum(1 for outcome in outcomes if outcome.skipped)
    channel_changes = sum(1 for outcome in outcomes if outcome.channel_changed)
    return SessionMetrics(
        user_id=user_id,
        strategy=strategy,
        items_played=len(outcomes),
        skips=skips,
        channel_changes=channel_changes,
        total_listened_s=sum(outcome.listened_s for outcome in outcomes),
        total_duration_s=sum(outcome.duration_s for outcome in outcomes),
        mean_enjoyment=sum(outcome.enjoyment for outcome in outcomes) / len(outcomes),
    )


@dataclass
class StrategyComparison:
    """Population-level comparison across personalization strategies."""

    sessions: Dict[str, List[SessionMetrics]] = field(default_factory=dict)

    def add(self, metrics: SessionMetrics) -> None:
        """Record one session."""
        self.sessions.setdefault(metrics.strategy, []).append(metrics)

    def strategies(self) -> List[str]:
        """Strategy names present in the comparison."""
        return sorted(self.sessions.keys())

    def mean_skip_rate(self, strategy: str) -> float:
        """Average skip rate for one strategy."""
        sessions = self._require(strategy)
        return sum(session.skip_rate for session in sessions) / len(sessions)

    def mean_channel_change_rate(self, strategy: str) -> float:
        """Average channel changes per item for one strategy."""
        sessions = self._require(strategy)
        return sum(
            session.channel_changes / session.items_played
            for session in sessions
            if session.items_played > 0
        ) / len(sessions)

    def mean_enjoyment(self, strategy: str) -> float:
        """Average per-item enjoyment for one strategy."""
        sessions = self._require(strategy)
        return sum(session.mean_enjoyment for session in sessions) / len(sessions)

    def mean_listened_share(self, strategy: str) -> float:
        """Average fraction of offered audio listened to."""
        sessions = self._require(strategy)
        return sum(session.listened_share for session in sessions) / len(sessions)

    def as_table(self) -> List[Dict[str, float]]:
        """One row per strategy, with the headline metrics (bench Q-1 output)."""
        rows: List[Dict[str, float]] = []
        for strategy in self.strategies():
            rows.append(
                {
                    "strategy": strategy,
                    "sessions": float(len(self.sessions[strategy])),
                    "skip_rate": round(self.mean_skip_rate(strategy), 4),
                    "channel_change_rate": round(self.mean_channel_change_rate(strategy), 4),
                    "mean_enjoyment": round(self.mean_enjoyment(strategy), 4),
                    "listened_share": round(self.mean_listened_share(strategy), 4),
                }
            )
        return rows

    def _require(self, strategy: str) -> List[SessionMetrics]:
        sessions = self.sessions.get(strategy)
        if not sessions:
            raise ValidationError(f"no sessions recorded for strategy {strategy!r}")
        return sessions


def summarize_sessions(sessions: Sequence[SessionMetrics]) -> StrategyComparison:
    """Build a comparison from a flat list of session metrics."""
    comparison = StrategyComparison()
    for session in sessions:
        comparison.add(session)
    return comparison

"""Population-level comparison of personalization strategies (bench Q-1).

For every simulated commuter we replay the same morning commute under
several strategies and measure skip / channel-change rates with the shared
listener behaviour model:

* ``LINEAR_ONLY`` — plain broadcast radio: whatever the schedule says plays;
* ``RANDOM`` — the drive is filled with randomly chosen clips;
* ``POPULARITY`` — filled with globally popular clips;
* ``CONTENT_ONLY`` — the paper's content-based relevance, no context;
* ``PPHCR`` — the full proactive context-aware pipeline (compound score,
  ΔT-aware scheduling, geo anchoring, distraction avoidance).

The expected *shape* is the paper's motivating claim: skip and channel-surf
propensity decreases monotonically from linear-only to full PPHCR.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.content.model import AudioClip
from repro.datasets.mobility import Commuter, SimulatedDrive
from repro.datasets.world import SyntheticWorld
from repro.errors import ValidationError
from repro.recommender.baselines import (
    ContentOnlyRecommender,
    PopularityRecommender,
    RandomRecommender,
)
from repro.recommender.compound import ScoredClip
from repro.recommender.content_based import ContentBasedScorer
from repro.recommender.context import ListenerContext
from repro.recommender.context_relevance import ContextScorer
from repro.trajectory.travel_time import TravelTimeEstimate
from repro.simulation.listener import ListenerBehavior, ListeningOutcome
from repro.simulation.metrics import (
    SessionMetrics,
    StrategyComparison,
    session_metrics_from_outcomes,
)
from repro.util.rng import DeterministicRng


class PersonalizationStrategy(enum.Enum):
    """The strategies compared by the simulation."""

    LINEAR_ONLY = "linear_only"
    RANDOM = "random"
    POPULARITY = "popularity"
    CONTENT_ONLY = "content_only"
    PPHCR = "pphcr"


class SimulationRunner:
    """Runs commute listening sessions under each strategy."""

    def __init__(
        self,
        world: SyntheticWorld,
        *,
        behavior: Optional[ListenerBehavior] = None,
        seed: int = 5,
        default_service_id: str = "radio-uno",
    ) -> None:
        self._world = world
        self._behavior = behavior or ListenerBehavior(seed=seed)
        self._rng = DeterministicRng(seed)
        self._service_id = default_service_id
        server = world.server
        self._content_scorer = ContentBasedScorer(server.content, server.users)
        self._content_only = ContentOnlyRecommender(self._content_scorer)
        self._popularity = PopularityRecommender(server.content, server.users)
        self._random = RandomRecommender(seed=seed + 1)
        self._context_scorer = ContextScorer()

    # Public API -----------------------------------------------------------

    def compare_strategies(
        self,
        strategies: Sequence[PersonalizationStrategy],
        *,
        max_users: Optional[int] = None,
    ) -> StrategyComparison:
        """Run one commute session per user per strategy and aggregate."""
        if not strategies:
            raise ValidationError("at least one strategy is required")
        commuters = self._world.commuters
        if max_users is not None:
            commuters = commuters[:max_users]
        comparison = StrategyComparison()
        for commuter in commuters:
            drive = self._world.commuter_generator.live_drive(commuter, day=self._world.today)
            for strategy in strategies:
                metrics = self.run_session(commuter, drive, strategy)
                comparison.add(metrics)
        return comparison

    def run_session(
        self,
        commuter: Commuter,
        drive: SimulatedDrive,
        strategy: PersonalizationStrategy,
    ) -> SessionMetrics:
        """Simulate one commute listening session under one strategy."""
        playlist = self._build_playlist(commuter, drive, strategy)
        profile = self._world.server.users.preference_profile(commuter.user_id)
        # Common random numbers across strategies: the random draws depend only
        # on the listener and the clip, so two strategies that play the same
        # clip observe the same outcome and the comparison is paired.
        behavior = self._behavior.fork(commuter.user_id)
        rng = self._rng.fork("session", commuter.user_id)
        outcomes: List[ListeningOutcome] = []
        for clip, is_live, context_bonus in playlist:
            outcomes.append(
                behavior.listen_to_clip(
                    profile,
                    clip,
                    context_bonus=context_bonus,
                    is_live_programme=is_live,
                    rng=rng.fork(clip.clip_id),
                )
            )
        return session_metrics_from_outcomes(commuter.user_id, strategy.value, outcomes)

    # Playlist construction -------------------------------------------------

    def _build_playlist(
        self,
        commuter: Commuter,
        drive: SimulatedDrive,
        strategy: PersonalizationStrategy,
    ):
        """Return a list of (clip, is_live_programme, context_bonus) tuples."""
        budget_s = drive.expected_duration_s
        if strategy == PersonalizationStrategy.LINEAR_ONLY:
            return self._linear_playlist(drive, budget_s)
        if strategy == PersonalizationStrategy.PPHCR:
            return self._pphcr_playlist(commuter, drive, budget_s)
        return self._ranked_playlist(commuter, drive, budget_s, strategy)

    def _linear_playlist(self, drive: SimulatedDrive, budget_s: float):
        """Whatever the tuned service broadcasts during the drive."""
        schedule = self._world.server.content.schedule(self._service_id)
        entries = schedule.entries_between(drive.departure_s % 86400.0, (drive.departure_s % 86400.0) + budget_s)
        playlist = []
        for entry in entries:
            pseudo_clip = AudioClip(
                clip_id=entry.programme_id,
                title=entry.programme.title,
                kind=_programme_kind(),
                duration_s=min(entry.duration_s, budget_s),
                category_scores={name: 1.0 for name in entry.programme.categories},
            )
            playlist.append((pseudo_clip, True, 0.0))
        return playlist

    def _ranked_playlist(
        self,
        commuter: Commuter,
        drive: SimulatedDrive,
        budget_s: float,
        strategy: PersonalizationStrategy,
    ):
        """Fill the drive with the top items of a baseline ranking."""
        server = self._world.server
        now_s = drive.departure_s
        context = ListenerContext(user_id=commuter.user_id, now_s=now_s, is_driving=True)
        candidates = server.proactive_engine._filter.candidates(  # noqa: SLF001 - shared filter
            commuter.user_id, now_s=now_s
        )
        if strategy == PersonalizationStrategy.RANDOM:
            ranked = self._random.rank(candidates, context)
        elif strategy == PersonalizationStrategy.POPULARITY:
            ranked = self._popularity.rank(candidates, context)
        else:
            ranked = self._content_only.rank(candidates, context)
        return self._fill_budget(ranked, drive, budget_s)

    def _pphcr_playlist(self, commuter: Commuter, drive: SimulatedDrive, budget_s: float):
        """Run the real proactive pipeline on the partially observed drive."""
        server = self._world.server
        elapsed = max(90.0, min(240.0, budget_s * 0.25))
        observe_until = drive.departure_s + elapsed
        server.users.ingest_fixes(drive.fixes(until_s=observe_until), skip_stale=True)
        decision = server.recommend(
            commuter.user_id, now_s=observe_until, drive_elapsed_s=elapsed
        )
        if decision.plan is not None and decision.plan.items:
            playlist = []
            for item in decision.plan.items:
                bonus = self._context_bonus(item.scored.clip, drive)
                playlist.append((item.scored.clip, False, bonus))
            return playlist
        # The proactive trigger did not fire (e.g. low confidence): the listener
        # keeps hearing linear radio, exactly as the real system would behave.
        return self._linear_playlist(drive, budget_s)

    def _fill_budget(self, ranked: Sequence[ScoredClip], drive: SimulatedDrive, budget_s: float):
        playlist = []
        remaining = budget_s
        for scored in ranked:
            if scored.clip.duration_s > remaining:
                continue
            bonus = self._context_bonus(scored.clip, drive)
            playlist.append((scored.clip, False, bonus))
            remaining -= scored.clip.duration_s
            if remaining < 120.0 or len(playlist) >= 8:
                break
        return playlist

    def _context_bonus(self, clip: AudioClip, drive: SimulatedDrive) -> float:
        """Extra enjoyment for content that fits the drive context.

        The simulated listener's satisfaction depends not only on taste but on
        how well the item fits the in-car situation: geographic relevance to
        the route, duration fitting the remaining drive, time-of-day fit and
        attention load — the same dimensions the paper's context model uses.
        The *same* bonus formula is applied to every strategy's items, so
        context-aware strategies gain only by actually picking better-fitting
        content.
        """
        context = self._drive_context(drive)
        fit = self._context_scorer.score(clip, context)
        return max(0.0, fit - 0.5) * 0.8

    def _drive_context(self, drive: SimulatedDrive) -> ListenerContext:
        """The ground-truth drive context used by the satisfaction model."""
        remaining = max(60.0, drive.expected_duration_s * 0.75)
        travel = TravelTimeEstimate(remaining, remaining, remaining, None, remaining, 0.0)
        return ListenerContext(
            user_id=drive.user_id,
            now_s=drive.departure_s,
            position=drive.route.geometry.start,
            speed_mps=drive.mean_speed_mps,
            is_driving=True,
            route=drive.route.geometry,
            travel_time=travel,
        )


def _programme_kind():
    from repro.content.model import ContentKind

    return ContentKind.PODCAST

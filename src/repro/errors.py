"""Exception hierarchy for the PPHCR reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing
programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError):
    """An input value violates a documented precondition."""


class NotFoundError(ReproError):
    """A referenced entity (user, clip, service, table row) does not exist."""


class DuplicateError(ReproError):
    """An entity with the same primary key already exists."""


class SchemaError(ReproError):
    """A record does not match the table schema it is being written to."""


class QueryError(ReproError):
    """A malformed query was issued against one of the in-memory stores."""


class GeometryError(ReproError):
    """A geometric primitive was constructed from invalid coordinates."""


class TrajectoryError(ReproError):
    """A trajectory operation received malformed or insufficient fixes."""


class PredictionError(ReproError):
    """A predictor could not produce a usable prediction."""


class SchedulingError(ReproError):
    """The proactive scheduler could not build a feasible plan."""


class DeliveryError(ReproError):
    """A delivery/buffering operation was requested in an invalid state."""


class PipelineError(ReproError):
    """A pipeline component was used before its dependencies were ready."""


class ClassificationError(ReproError):
    """The text classifier was queried before training or with bad input."""


class ConfigurationError(ReproError):
    """A configuration object contains inconsistent settings."""

"""Baseline recommenders used by the evaluation benches.

The paper does not publish a quantitative comparison, but its central claims
("the relevance of the content for the listeners increases", "decreasing her
tendency to switch channels") are only meaningful against baselines.  We
implement the natural ones:

* :class:`RandomRecommender` — uniform random selection from the candidates;
* :class:`PopularityRecommender` — ranks by global positive-feedback counts;
* :class:`ContentOnlyRecommender` — the paper's own content-based relevance
  with the context weight forced to zero (i.e. a conventional personalized
  podcast recommender with no location/trajectory/ΔT awareness).

Pure linear radio (no replacement at all) is represented in the simulation
layer by simply not invoking any recommender.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.content.model import AudioClip
from repro.content.repository import ContentRepository
from repro.recommender.compound import CompoundScorer, ScoredClip
from repro.recommender.content_based import ContentBasedScorer
from repro.recommender.context import ListenerContext
from repro.users.management import UserManager
from repro.util.rng import DeterministicRng


class RandomRecommender:
    """Selects candidates uniformly at random (lower bound baseline)."""

    def __init__(self, *, seed: int = 99) -> None:
        self._rng = DeterministicRng(seed)

    def rank(
        self, clips: Sequence[AudioClip], context: ListenerContext, *, top_k: Optional[int] = None
    ) -> List[ScoredClip]:
        """Assign random scores and rank by them."""
        scored = [
            ScoredClip(
                clip=clip,
                content_score=0.0,
                context_score=0.0,
                compound_score=self._rng.random(),
            )
            for clip in clips
        ]
        scored.sort(key=lambda item: item.compound_score, reverse=True)
        return scored[:top_k] if top_k is not None else scored


class PopularityRecommender:
    """Ranks clips by their global count of positive feedback events."""

    def __init__(self, content: ContentRepository, users: UserManager) -> None:
        self._content = content
        self._users = users

    def _popularity(self, clip: AudioClip) -> float:
        events = self._users.feedback.events_for_content(clip.clip_id)
        positive = sum(1 for event in events if event.is_positive)
        total = len(events)
        if total == 0:
            return 0.0
        return positive / (total + 2.0)  # shrunk toward zero for tiny samples

    def rank(
        self, clips: Sequence[AudioClip], context: ListenerContext, *, top_k: Optional[int] = None
    ) -> List[ScoredClip]:
        """Rank by smoothed popularity."""
        scored = [
            ScoredClip(
                clip=clip,
                content_score=self._popularity(clip),
                context_score=0.0,
                compound_score=self._popularity(clip),
            )
            for clip in clips
        ]
        scored.sort(key=lambda item: (item.compound_score, item.clip_id), reverse=True)
        return scored[:top_k] if top_k is not None else scored


class ContentOnlyRecommender:
    """The paper's content-based relevance without any context awareness."""

    def __init__(self, content_scorer: ContentBasedScorer) -> None:
        self._scorer = CompoundScorer(content_scorer, context_weight=0.0)

    def rank(
        self, clips: Sequence[AudioClip], context: ListenerContext, *, top_k: Optional[int] = None
    ) -> List[ScoredClip]:
        """Rank by content-based relevance only."""
        return self._scorer.rank(clips, context, top_k=top_k)

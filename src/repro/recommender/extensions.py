"""Richer context and list-level (ensemble) effects — the paper's future work.

Section 3 of the paper plans "to create recommendations list taking into
account richer contexts: time, activity, weather, and the ensemble effect of
the recommendations list".  This module implements both halves:

* :class:`RichContextScorer` extends the base context scorer with weather
  and activity factors (the :class:`~repro.recommender.context.ListenerContext`
  already carries the fields);
* :func:`diversify` re-ranks a scored candidate list with a maximal-marginal-
  relevance style trade-off between relevance and category diversity, and
  :func:`plan_diversity` measures the ensemble property of a produced plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.content.model import AudioClip, ContentKind
from repro.errors import ValidationError
from repro.recommender.compound import ScoredClip
from repro.recommender.context import ListenerContext
from repro.recommender.context_relevance import ContextScorer, ContextScorerWeights

#: How well each content kind suits each weather condition (1 = neutral).
_WEATHER_KIND_FACTOR: Dict[str, Dict[ContentKind, float]] = {
    "rain": {ContentKind.MUSIC: 1.05, ContentKind.PODCAST: 1.0, ContentKind.NEWS: 1.05},
    "snow": {ContentKind.MUSIC: 1.05, ContentKind.PODCAST: 0.95, ContentKind.NEWS: 1.1},
    "storm": {ContentKind.PODCAST: 0.85, ContentKind.TIME_SHIFTED: 0.85, ContentKind.NEWS: 1.1},
    "clear": {},
}

#: Category boosts per weather condition (e.g. traffic/weather info when it snows).
_WEATHER_CATEGORY_BOOST: Dict[str, Dict[str, float]] = {
    "rain": {"traffic-and-weather": 0.2},
    "snow": {"traffic-and-weather": 0.35, "news-local": 0.15},
    "storm": {"traffic-and-weather": 0.4, "news-local": 0.2},
}

#: Attention budget per listener activity (driving handled by DrivingCondition).
_ACTIVITY_ATTENTION: Dict[str, float] = {
    "driving": 0.6,
    "commuting-transit": 0.9,
    "walking": 0.8,
    "running": 0.5,
    "cooking": 0.7,
    "relaxing": 1.0,
}


class RichContextScorer(ContextScorer):
    """Context scorer that also accounts for weather and activity."""

    def __init__(
        self,
        weights: ContextScorerWeights = ContextScorerWeights(),
        *,
        weather_weight: float = 0.15,
        activity_weight: float = 0.15,
    ) -> None:
        super().__init__(weights)
        if weather_weight < 0 or activity_weight < 0:
            raise ValidationError("extension weights must be >= 0")
        self._weather_weight = weather_weight
        self._activity_weight = activity_weight

    def score(self, clip: AudioClip, context: ListenerContext) -> float:
        """Base context score blended with the weather and activity factors."""
        base = super().score(clip, context)
        total_weight = 1.0
        value = base
        if context.weather is not None:
            value += self._weather_weight * self.weather_score(clip, context.weather)
            total_weight += self._weather_weight
        if context.activity is not None:
            value += self._activity_weight * self.activity_score(clip, context.activity)
            total_weight += self._activity_weight
        return min(1.0, value / total_weight)

    def weather_score(self, clip: AudioClip, weather: str) -> float:
        """Fit of the clip for the current weather, in [0, 1]."""
        condition = weather.lower()
        kind_factor = _WEATHER_KIND_FACTOR.get(condition, {}).get(clip.kind, 1.0)
        boost = 0.0
        boosts = _WEATHER_CATEGORY_BOOST.get(condition, {})
        for name, share in clip.normalized_scores().items():
            boost += share * boosts.get(name, 0.0)
        return max(0.0, min(1.0, 0.5 * kind_factor + boost))

    def activity_score(self, clip: AudioClip, activity: str) -> float:
        """Fit of the clip for the listener's activity, in [0, 1].

        Low-attention activities (running, driving) favour music and short
        items; focused/relaxed activities tolerate anything.
        """
        budget = _ACTIVITY_ATTENTION.get(activity.lower(), 0.8)
        load = {
            ContentKind.MUSIC: 0.1,
            ContentKind.ADVERTISEMENT: 0.2,
            ContentKind.NEWS: 0.4,
            ContentKind.PODCAST: 0.5,
            ContentKind.TIME_SHIFTED: 0.5,
        }.get(clip.kind, 0.5)
        headroom = budget - load
        return max(0.0, min(1.0, 0.5 + headroom))


@dataclass(frozen=True)
class DiversifiedItem:
    """A re-ranked item with its marginal (diversity-adjusted) score."""

    scored: ScoredClip
    marginal_score: float
    rank: int


def _category_overlap(a: AudioClip, b: AudioClip) -> float:
    """Similarity of two clips' category distributions (0..1)."""
    scores_a = a.normalized_scores()
    scores_b = b.normalized_scores()
    if not scores_a or not scores_b:
        return 1.0 if a.primary_category == b.primary_category else 0.0
    return sum(min(scores_a.get(name, 0.0), scores_b.get(name, 0.0)) for name in scores_a)


def diversify(
    ranked: Sequence[ScoredClip],
    *,
    diversity_weight: float = 0.3,
    top_k: Optional[int] = None,
) -> List[DiversifiedItem]:
    """Maximal-marginal-relevance re-ranking of a scored candidate list.

    Each step picks the item maximizing
    ``(1 - λ)·relevance − λ·max_overlap_with_already_picked`` so the final
    list covers several categories instead of five episodes of the same show
    (the paper's "ensemble effect of the recommendations list").
    """
    if not 0.0 <= diversity_weight <= 1.0:
        raise ValidationError("diversity_weight must be in [0, 1]")
    remaining = list(ranked)
    limit = len(remaining) if top_k is None else min(top_k, len(remaining))
    picked: List[DiversifiedItem] = []
    while remaining and len(picked) < limit:
        best_index = 0
        best_marginal = float("-inf")
        for index, candidate in enumerate(remaining):
            if picked:
                overlap = max(
                    _category_overlap(candidate.clip, item.scored.clip) for item in picked
                )
            else:
                overlap = 0.0
            marginal = (1.0 - diversity_weight) * candidate.final_score - diversity_weight * overlap
            if marginal > best_marginal:
                best_marginal = marginal
                best_index = index
        chosen = remaining.pop(best_index)
        picked.append(DiversifiedItem(scored=chosen, marginal_score=best_marginal, rank=len(picked)))
    return picked


def list_diversity(items: Sequence[ScoredClip]) -> float:
    """Ensemble diversity of a list in [0, 1]: 1 − mean pairwise category overlap."""
    clips = [item.clip for item in items]
    if len(clips) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for index, a in enumerate(clips):
        for b in clips[index + 1 :]:
            total += _category_overlap(a, b)
            pairs += 1
    return 1.0 - total / pairs


def plan_diversity(plan) -> float:
    """Diversity of a :class:`~repro.recommender.scheduling.RecommendationPlan`."""
    return list_diversity([item.scored for item in plan.items])

"""Candidate filtering and content-based relevance.

"For each user the recommender filters a candidate set of media items using
content-based relevance based on past listener's feedbacks."  The filter
removes content the listener has already heard or explicitly rejected and
keeps recent items; the scorer combines the category-profile affinity with a
TF-IDF similarity to positively rated clips and a recency prior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.content.model import AudioClip
from repro.content.repository import ContentRepository
from repro.errors import ValidationError
from repro.textclass.tfidf import SparseVector, TfIdfVectorizer, cosine_similarity
from repro.users.management import UserManager


@dataclass(frozen=True)
class CandidateFilterConfig:
    """Controls which clips survive candidate filtering."""

    max_candidates: int = 200
    exclude_heard: bool = True
    exclude_disliked_categories: bool = True
    max_age_s: Optional[float] = 7 * 86400.0  # only recent podcasts by default
    min_duration_s: float = 30.0
    max_duration_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_candidates < 1:
            raise ValidationError("max_candidates must be >= 1")
        if self.min_duration_s < 0 or self.max_duration_s <= self.min_duration_s:
            raise ValidationError("duration bounds must satisfy 0 <= min < max")


class CandidateFilter:
    """Builds the per-user candidate set from the content repository."""

    def __init__(
        self,
        content: ContentRepository,
        users: UserManager,
        config: CandidateFilterConfig = CandidateFilterConfig(),
    ) -> None:
        self._content = content
        self._users = users
        self._config = config

    @property
    def content(self) -> ContentRepository:
        """The backing content repository (exposed for index reuse)."""
        return self._content

    def lookup_clip(self, clip_id: str) -> Optional[AudioClip]:
        """Fetch a clip from the repository regardless of filtering (or ``None``).

        Used by the proactive engine to make editorially injected clips
        eligible even when the normal candidate filter would exclude them.
        """
        try:
            return self._content.clip(clip_id)
        except Exception:  # noqa: BLE001 - absence is a legitimate outcome
            return None

    def candidates(self, user_id: str, *, now_s: float) -> List[AudioClip]:
        """The candidate clips for a user at a given time.

        The recency cut runs against the repository's publish-time index,
        which already yields newest-first order, so the scan stops as soon
        as the candidate cap is reached instead of visiting every clip.
        """
        config = self._config
        heard = set(self._users.feedback.positive_content_ids(user_id)) | set(
            self._users.feedback.negative_content_ids(user_id)
        )
        disliked = set(self._users.preference_profile(user_id).disliked_categories())
        cutoff = now_s - config.max_age_s if config.max_age_s is not None else None

        pool = (
            self._content.clips_published_after(cutoff)
            if cutoff is not None
            else self._content.clips_newest_first()
        )
        selected: List[AudioClip] = []
        for clip in pool:
            if config.exclude_heard and clip.clip_id in heard:
                continue
            if not config.min_duration_s <= clip.duration_s <= config.max_duration_s:
                continue
            if config.exclude_disliked_categories and clip.primary_category in disliked:
                continue
            selected.append(clip)
            if len(selected) >= config.max_candidates:
                break
        return selected


class ContentBasedScorer:
    """Content-based relevance of a clip for a listener, in [0, 1]."""

    def __init__(
        self,
        content: ContentRepository,
        users: UserManager,
        *,
        profile_weight: float = 0.6,
        similarity_weight: float = 0.3,
        recency_weight: float = 0.1,
        recency_halflife_s: float = 2 * 86400.0,
    ) -> None:
        total = profile_weight + similarity_weight + recency_weight
        if total <= 0:
            raise ValidationError("scorer weights must sum to a positive value")
        self._content = content
        self._users = users
        self._profile_weight = profile_weight / total
        self._similarity_weight = similarity_weight / total
        self._recency_weight = recency_weight / total
        self._recency_halflife_s = recency_halflife_s
        self._vectorizer: Optional[TfIdfVectorizer] = None
        self._clip_vectors: Dict[str, SparseVector] = {}

    @property
    def has_text_model(self) -> bool:
        """Whether a fitted TF-IDF model is in use (snapshot metadata)."""
        return self._vectorizer is not None

    def clear_text_model(self) -> None:
        """Drop the fitted TF-IDF model (similarity falls back to neutral).

        Used by snapshot restore when the captured server had never
        fitted one — keeping a stale model would score restored clips
        against vectors from the pre-restore catalogue.
        """
        self._vectorizer = None
        self._clip_vectors = {}

    def fit_text_model(self) -> None:
        """Fit the TF-IDF model over all clips that carry transcripts.

        Optional: when no transcripts exist the similarity term falls back to
        a neutral 0.5 and only the category profile and recency matter.
        """
        documents: List[str] = []
        clip_ids: List[str] = []
        for clip in self._content.clips():
            if clip.transcript:
                documents.append(clip.transcript)
                clip_ids.append(clip.clip_id)
        if not documents:
            self._vectorizer = None
            self._clip_vectors = {}
            return
        self._vectorizer = TfIdfVectorizer()
        vectors = self._vectorizer.fit_transform(documents)
        self._clip_vectors = dict(zip(clip_ids, vectors))

    def score(self, user_id: str, clip: AudioClip, *, now_s: float) -> float:
        """Content-based relevance of one clip for one user."""
        profile = self._users.preference_profile(user_id)
        liked_vectors = self._liked_vectors(user_id)
        return self._score_with(profile, liked_vectors, clip, now_s)

    def score_many(
        self, user_id: str, clips: Sequence[AudioClip], *, now_s: float
    ) -> Dict[str, float]:
        """Scores for a batch of clips keyed by clip id.

        The preference profile and the liked-clip TF-IDF vectors are fetched
        once for the whole batch instead of once per clip.
        """
        profile = self._users.preference_profile(user_id)
        liked_vectors = self._liked_vectors(user_id)
        return {
            clip.clip_id: self._score_with(profile, liked_vectors, clip, now_s)
            for clip in clips
        }

    # Internal ----------------------------------------------------------------

    def _score_with(self, profile, liked_vectors, clip: AudioClip, now_s: float) -> float:
        profile_term = profile.affinity(clip.category_scores)
        similarity_term = self._similarity_to_liked(clip, liked_vectors)
        recency_term = self._recency(clip, now_s)
        return (
            self._profile_weight * profile_term
            + self._similarity_weight * similarity_term
            + self._recency_weight * recency_term
        )

    def _liked_vectors(self, user_id: str) -> List[SparseVector]:
        if self._vectorizer is None:
            return []
        liked_ids = self._users.feedback.positive_content_ids(user_id)
        return [
            self._clip_vectors[content_id]
            for content_id in liked_ids[-20:]
            if content_id in self._clip_vectors
        ]

    def _similarity_to_liked(self, clip: AudioClip, liked_vectors: List[SparseVector]) -> float:
        if self._vectorizer is None:
            return 0.5
        clip_vector = self._clip_vectors.get(clip.clip_id)
        if clip_vector is None and clip.transcript:
            clip_vector = self._vectorizer.transform(clip.transcript)
        if not clip_vector:
            return 0.5
        if not liked_vectors:
            return 0.5
        best = max(cosine_similarity(clip_vector, other) for other in liked_vectors)
        return best

    def _recency(self, clip: AudioClip, now_s: float) -> float:
        age_s = max(0.0, now_s - clip.published_s)
        if self._recency_halflife_s <= 0:
            return 1.0
        return 0.5 ** (age_s / self._recency_halflife_s)

"""Context-based relevance.

The second half of the compound score: how well a clip fits the listener's
*situation* — location and projected route (geographic relevance), time of
day, available time ΔT (duration fit), and driving conditions (spoken-word
versus demanding traffic).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.content.geo_relevance import RouteRelevanceScorer
from repro.content.model import AudioClip, ContentKind
from repro.errors import ValidationError
from repro.geo import GridIndex
from repro.recommender.context import DrivingCondition, ListenerContext

#: Which categories fit which time-of-day bucket particularly well.  The
#: boost is mild (the learned profile stays dominant) but reproduces the
#: paper's example of playing "the last news" at the start of a morning drive.
_TIME_OF_DAY_AFFINITY: Dict[str, Dict[str, float]] = {
    "morning": {
        "news-national": 1.0,
        "news-local": 1.0,
        "news-international": 0.9,
        "traffic-and-weather": 1.0,
        "economics": 0.7,
    },
    "afternoon": {"talk-show": 0.7, "music-pop": 0.6, "sport-football": 0.6},
    "evening": {"comedy": 0.8, "talk-show": 0.7, "music-jazz": 0.6, "food-and-wine": 0.7},
    "night": {"music-classical": 0.8, "music-jazz": 0.8, "literature": 0.6},
}

#: How demanding each content kind is on the driver's attention.
_KIND_ATTENTION_LOAD: Dict[ContentKind, float] = {
    ContentKind.MUSIC: 0.1,
    ContentKind.ADVERTISEMENT: 0.2,
    ContentKind.PODCAST: 0.5,
    ContentKind.TIME_SHIFTED: 0.5,
    ContentKind.NEWS: 0.4,
}


@dataclass(frozen=True)
class ContextScorerWeights:
    """Relative weights of the context sub-scores (normalized at use)."""

    geographic: float = 0.35
    time_of_day: float = 0.2
    duration_fit: float = 0.25
    driving_fit: float = 0.2

    def __post_init__(self) -> None:
        total = self.geographic + self.time_of_day + self.duration_fit + self.driving_fit
        if total <= 0:
            raise ValidationError("context weights must sum to a positive value")


class ContextScorer:
    """Context-based relevance of a clip for a listener context, in [0, 1]."""

    def __init__(
        self,
        weights: ContextScorerWeights = ContextScorerWeights(),
        *,
        geo_index: Optional[GridIndex[str]] = None,
    ) -> None:
        self._weights = weights
        total = (
            weights.geographic + weights.time_of_day + weights.duration_fit + weights.driving_fit
        )
        self._norm = total
        self._geo_index = geo_index
        # One-slot cache: ranking a batch scores every clip against the same
        # (immutable) context, so the route is sampled and trig-converted once.
        self._route_cache_ref: Optional[Callable[[], Optional[ListenerContext]]] = None
        self._route_cache_scorer: Optional[RouteRelevanceScorer] = None

    def route_scorer_for(self, context: ListenerContext) -> RouteRelevanceScorer:
        """The batched geographic scorer for ``context`` (cached per context)."""
        if self._route_cache_ref is not None and self._route_cache_ref() is context:
            assert self._route_cache_scorer is not None
            return self._route_cache_scorer
        destination = context.destination.center if context.destination is not None else None
        scorer = RouteRelevanceScorer(
            current_position=context.position,
            route=context.route,
            destination=destination,
        )
        self._route_cache_ref = weakref.ref(context)
        self._route_cache_scorer = scorer
        return scorer

    def score(self, clip: AudioClip, context: ListenerContext) -> float:
        """Overall context relevance."""
        weights = self._weights
        value = (
            weights.geographic * self.geographic_score(clip, context)
            + weights.time_of_day * self.time_of_day_score(clip, context)
            + weights.duration_fit * self.duration_fit_score(clip, context)
            + weights.driving_fit * self.driving_fit_score(clip, context)
        )
        return value / self._norm

    def score_many(
        self,
        clips: Sequence[AudioClip],
        context: ListenerContext,
        *,
        route_scorer: Optional[RouteRelevanceScorer] = None,
    ) -> Dict[str, float]:
        """Context scores for a batch of clips keyed by clip id.

        The geographic term runs through the batched fast path: the route is
        sampled once and far-away geo-tagged clips are pruned through the
        grid index when one was provided at construction.
        """
        scorer = route_scorer if route_scorer is not None else self.route_scorer_for(context)
        geo_scores = scorer.score_many(clips, geo_index=self._geo_index)
        weights = self._weights
        scores: Dict[str, float] = {}
        for clip in clips:
            value = (
                weights.geographic * geo_scores[clip.clip_id]
                + weights.time_of_day * self.time_of_day_score(clip, context)
                + weights.duration_fit * self.duration_fit_score(clip, context)
                + weights.driving_fit * self.driving_fit_score(clip, context)
            )
            scores[clip.clip_id] = value / self._norm
        return scores

    # Sub-scores ---------------------------------------------------------------

    def geographic_score(self, clip: AudioClip, context: ListenerContext) -> float:
        """Relevance of the clip's geographic footprint to the listener's space."""
        return self.route_scorer_for(context).score(clip)

    def time_of_day_score(self, clip: AudioClip, context: ListenerContext) -> float:
        """How well the clip's categories fit the current time of day."""
        affinities = _TIME_OF_DAY_AFFINITY.get(context.time_of_day, {})
        scores = clip.normalized_scores()
        if not scores:
            return 0.5
        boosted = sum(share * affinities.get(name, 0.5) for name, share in scores.items())
        return min(1.0, boosted)

    def duration_fit_score(self, clip: AudioClip, context: ListenerContext) -> float:
        """How well the clip's duration fits the available time ΔT.

        Clips longer than the remaining time are heavily penalized (they
        would be cut off at arrival); short clips are mildly penalized when
        ΔT is long because they fragment the experience.
        """
        available = context.available_time_s
        if available is None or available <= 0:
            return 0.5
        if clip.duration_s > available:
            overshoot = clip.duration_s / available
            return max(0.0, 1.0 - (overshoot - 1.0) * 2.0) * 0.3
        share = clip.duration_s / available
        # Peak at clips covering 20%..80% of the available time.
        if share < 0.2:
            return 0.5 + 2.0 * share  # 0.5..0.9
        if share <= 0.8:
            return 1.0
        return 1.0 - (share - 0.8)

    def driving_fit_score(self, clip: AudioClip, context: ListenerContext) -> float:
        """How appropriate the content kind is for the driving condition.

        Demanding driving favours low-attention content (music), light
        driving is neutral, parked listeners can handle anything.
        """
        condition = context.driving_condition
        load = _KIND_ATTENTION_LOAD.get(clip.kind, 0.5)
        if condition == DrivingCondition.PARKED:
            return 1.0
        if condition == DrivingCondition.LIGHT:
            return 1.0 - 0.2 * load
        if condition == DrivingCondition.MODERATE:
            return 1.0 - 0.5 * load
        return 1.0 - 0.9 * load

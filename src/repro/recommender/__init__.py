"""The proactive, context-aware recommender system (the paper's core).

The pipeline follows Section 1.2 of the paper:

1. for each user, filter a candidate set of media items using
   *content-based* relevance learned from past feedback
   (:mod:`repro.recommender.content_based`);
2. compute a *compound* relevance score as a weighted combination of the
   content-based relevance and the *context-based* relevance — location,
   trajectory, speed and time information
   (:mod:`repro.recommender.context_relevance`,
   :mod:`repro.recommender.compound`);
3. select and schedule the recommendation set against the available time ΔT
   and temporal/presentation constraints, accounting for driving conditions
   and projected distraction at intersections and roundabouts
   (:mod:`repro.recommender.scheduling`, :mod:`repro.recommender.distraction`);
4. decide *when* to deliver proactively, based on movement detection and
   destination-prediction confidence (:mod:`repro.recommender.proactive`).

Baselines used by the evaluation benches live in
:mod:`repro.recommender.baselines`.
"""

from repro.recommender.baselines import (
    ContentOnlyRecommender,
    PopularityRecommender,
    RandomRecommender,
)
from repro.recommender.compound import CompoundScorer, ScoredClip
from repro.recommender.content_based import CandidateFilter, ContentBasedScorer
from repro.recommender.context import DrivingCondition, ListenerContext
from repro.recommender.context_relevance import ContextScorer
from repro.recommender.distraction import DistractionModel
from repro.recommender.extensions import RichContextScorer, diversify, list_diversity, plan_diversity
from repro.recommender.proactive import ProactiveEngine, ProactiveDecision
from repro.recommender.scheduling import (
    RecommendationPlan,
    ScheduledClip,
    Scheduler,
    SchedulerPolicy,
)

__all__ = [
    "CandidateFilter",
    "CompoundScorer",
    "ContentBasedScorer",
    "ContentOnlyRecommender",
    "ContextScorer",
    "DistractionModel",
    "DrivingCondition",
    "ListenerContext",
    "PopularityRecommender",
    "ProactiveDecision",
    "ProactiveEngine",
    "RandomRecommender",
    "RecommendationPlan",
    "RichContextScorer",
    "ScheduledClip",
    "Scheduler",
    "SchedulerPolicy",
    "ScoredClip",
    "diversify",
    "list_diversity",
    "plan_diversity",
]

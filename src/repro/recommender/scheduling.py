"""Recommendation scheduling against the available time ΔT.

"The recommender system then uses this score to identify the recommendation
set of content to be delivered to the listener according to a relevance
objective function and temporal scheduling and presentation constraints,
taking into account driving conditions as well as driver's projected
distraction levels…"

Two selection policies are implemented:

* ``GREEDY``: sort candidates by relevance density (relevance per minute)
  and add them while they fit — fast and near-optimal in practice;
* ``KNAPSACK``: exact 0/1 knapsack over discretised durations maximizing the
  summed final score under the ΔT budget.

After selection, items are *placed* on the drive timeline: geo-tagged items
are anchored near the time the listener passes the relevant location
(Figure 2's item B at L_B), the remaining items fill the gaps in relevance
order, and every clip boundary is shifted out of high-distraction windows
using the :class:`~repro.recommender.distraction.DistractionModel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.content.geo_relevance import (
    RouteSamples,
    best_route_point,
    distance_along_route_to_point,
)
from repro.errors import SchedulingError
from repro.recommender.compound import ScoredClip
from repro.recommender.context import ListenerContext
from repro.recommender.distraction import DistractionModel
from repro.util.timeutils import TimeWindow, format_clock


class SchedulerPolicy(enum.Enum):
    """Item selection strategies."""

    GREEDY = "greedy"
    KNAPSACK = "knapsack"


@dataclass(frozen=True)
class ScheduledClip:
    """One recommended clip placed on the session timeline."""

    scored: ScoredClip
    window: TimeWindow
    reason: str = "relevance"
    anchor_location_s: Optional[float] = None  # when geo-anchored, the ideal start

    @property
    def clip_id(self) -> str:
        """Identifier of the scheduled clip."""
        return self.scored.clip_id

    @property
    def start_s(self) -> float:
        """Scheduled start instant."""
        return self.window.start_s

    @property
    def end_s(self) -> float:
        """Scheduled end instant."""
        return self.window.end_s

    def describe(self) -> str:
        """Human-readable one-line description (used by the dashboard)."""
        return (
            f"{format_clock(self.start_s)}-{format_clock(self.end_s)}  "
            f"{self.scored.clip.title}  (score={self.scored.final_score:.2f}, {self.reason})"
        )


@dataclass
class RecommendationPlan:
    """The full output of the scheduler for one proactive trigger."""

    user_id: str
    created_s: float
    available_s: float
    items: List[ScheduledClip] = field(default_factory=list)
    policy: SchedulerPolicy = SchedulerPolicy.GREEDY

    @property
    def total_scheduled_s(self) -> float:
        """Total playback time scheduled."""
        return sum(item.window.duration_s for item in self.items)

    @property
    def fill_ratio(self) -> float:
        """Fraction of the available time covered by recommendations."""
        if self.available_s <= 0:
            return 0.0
        return min(1.0, self.total_scheduled_s / self.available_s)

    @property
    def objective_value(self) -> float:
        """The relevance objective: sum of final scores of scheduled items."""
        return sum(item.scored.final_score for item in self.items)

    @property
    def mean_relevance(self) -> float:
        """Mean final score of scheduled items (0 for an empty plan)."""
        if not self.items:
            return 0.0
        return self.objective_value / len(self.items)

    def clip_ids(self) -> List[str]:
        """Ids of the scheduled clips in playback order."""
        return [item.clip_id for item in self.items]

    def boundaries(self) -> List[float]:
        """All clip boundary instants (starts and ends)."""
        instants: List[float] = []
        for item in self.items:
            instants.append(item.start_s)
            instants.append(item.end_s)
        return instants

    def timeline(self) -> List[str]:
        """Human-readable timeline rows (Figure 4 style)."""
        return [item.describe() for item in self.items]


class Scheduler:
    """Selects and places recommendations inside the available time."""

    def __init__(
        self,
        *,
        policy: SchedulerPolicy = SchedulerPolicy.GREEDY,
        min_gap_s: float = 2.0,
        knapsack_resolution_s: float = 15.0,
        max_items: int = 12,
    ) -> None:
        if min_gap_s < 0:
            raise SchedulingError("min_gap_s must be >= 0")
        if knapsack_resolution_s <= 0:
            raise SchedulingError("knapsack_resolution_s must be > 0")
        if max_items < 1:
            raise SchedulingError("max_items must be >= 1")
        self._policy = policy
        self._min_gap_s = min_gap_s
        self._resolution_s = knapsack_resolution_s
        self._max_items = max_items

    def build_plan(
        self,
        ranked: Sequence[ScoredClip],
        context: ListenerContext,
        *,
        distraction: Optional[DistractionModel] = None,
        available_s: Optional[float] = None,
    ) -> RecommendationPlan:
        """Select and place clips for the given context.

        ``available_s`` overrides the context's ΔT (useful for the manual
        scenario where the budget is simply "until the next programme").
        """
        budget = available_s if available_s is not None else context.available_time_s
        if budget is None or budget <= 0:
            raise SchedulingError(
                "cannot schedule recommendations without a positive available time"
            )
        selected = self._select(ranked, budget)
        placed = self._place(selected, context, budget, distraction)
        return RecommendationPlan(
            user_id=context.user_id,
            created_s=context.now_s,
            available_s=budget,
            items=placed,
            policy=self._policy,
        )

    # Selection -----------------------------------------------------------------

    def _select(self, ranked: Sequence[ScoredClip], budget_s: float) -> List[ScoredClip]:
        candidates = [item for item in ranked if item.clip.duration_s <= budget_s]
        if not candidates:
            return []
        if self._policy == SchedulerPolicy.KNAPSACK:
            return self._select_knapsack(candidates, budget_s)
        return self._select_greedy(candidates, budget_s)

    def _select_greedy(self, candidates: Sequence[ScoredClip], budget_s: float) -> List[ScoredClip]:
        ordered = sorted(
            candidates, key=lambda item: (item.relevance_density, item.final_score), reverse=True
        )
        chosen: List[ScoredClip] = []
        remaining = budget_s
        for item in ordered:
            if len(chosen) >= self._max_items:
                break
            cost = item.clip.duration_s + (self._min_gap_s if chosen else 0.0)
            if cost <= remaining:
                chosen.append(item)
                remaining -= cost
        return chosen

    def _select_knapsack(self, candidates: Sequence[ScoredClip], budget_s: float) -> List[ScoredClip]:
        # 0/1 knapsack over durations discretised to the configured resolution.
        resolution = self._resolution_s
        capacity = int(budget_s // resolution)
        if capacity <= 0:
            return []
        items: List[Tuple[int, float, ScoredClip]] = []
        for scored in candidates[: 4 * self._max_items]:
            weight = max(1, int(round((scored.clip.duration_s + self._min_gap_s) / resolution)))
            items.append((weight, scored.final_score, scored))
        # dp[c] = (best value, chosen indices) for capacity c.
        best_value = [0.0] * (capacity + 1)
        chosen_sets: List[Tuple[int, ...]] = [tuple() for _ in range(capacity + 1)]
        for index, (weight, value, _scored) in enumerate(items):
            for c in range(capacity, weight - 1, -1):
                candidate_value = best_value[c - weight] + value
                if candidate_value > best_value[c] and len(chosen_sets[c - weight]) < self._max_items:
                    best_value[c] = candidate_value
                    chosen_sets[c] = chosen_sets[c - weight] + (index,)
        best_capacity = max(range(capacity + 1), key=lambda c: best_value[c])
        selected = [items[index][2] for index in chosen_sets[best_capacity]]
        selected.sort(key=lambda item: item.final_score, reverse=True)
        return selected

    # Placement -----------------------------------------------------------------

    def _place(
        self,
        selected: Sequence[ScoredClip],
        context: ListenerContext,
        budget_s: float,
        distraction: Optional[DistractionModel],
    ) -> List[ScheduledClip]:
        if not selected:
            return []
        start_s = context.now_s
        end_s = context.now_s + budget_s

        # Determine geo anchors: the instant the driver is expected to pass the
        # clip's most relevant point, assuming uniform progress along the route.
        anchors: Dict[str, float] = {}
        if context.route is not None and context.route.length_m > 0 and context.travel_time is not None:
            expected_total = max(1.0, context.travel_time.expected_s)
            # Sample the route once per plan; every geo-tagged clip shares
            # the tables instead of re-interpolating the route.
            anchor_table: Optional[RouteSamples] = None
            arc_table: Optional[RouteSamples] = None
            for scored in selected:
                if not scored.clip.is_geo_tagged:
                    continue
                if anchor_table is None:
                    anchor_table = RouteSamples.from_route(context.route, 50)
                    arc_table = RouteSamples.from_route(context.route, 100)
                point = best_route_point(scored.clip, context.route, table=anchor_table)
                if point is None:
                    continue
                arc = distance_along_route_to_point(context.route, point, table=arc_table)
                fraction = arc / context.route.length_m
                anchors[scored.clip_id] = start_s + fraction * expected_total

        anchored = [s for s in selected if s.clip_id in anchors]
        unanchored = [s for s in selected if s.clip_id not in anchors]
        anchored.sort(key=lambda s: anchors[s.clip_id])
        unanchored.sort(key=lambda s: s.final_score, reverse=True)

        placed: List[ScheduledClip] = []
        cursor = start_s
        remaining_anchored = list(anchored)
        remaining_unanchored = list(unanchored)
        while remaining_anchored or remaining_unanchored:
            next_item: Optional[ScoredClip] = None
            reason = "relevance"
            anchor: Optional[float] = None
            if remaining_anchored:
                candidate = remaining_anchored[0]
                ideal_start = anchors[candidate.clip_id] - candidate.clip.duration_s / 2.0
                # Play the geo item now if waiting longer would overshoot its anchor,
                # or if nothing else is pending.
                if ideal_start <= cursor or not remaining_unanchored:
                    next_item = remaining_anchored.pop(0)
                    reason = "geo-anchored"
                    anchor = anchors[next_item.clip_id]
            if next_item is None:
                if remaining_unanchored:
                    # Pick the best unanchored item that still leaves room to reach
                    # the next anchor roughly on time.
                    limit = None
                    if remaining_anchored:
                        next_anchor = remaining_anchored[0]
                        limit = (
                            anchors[next_anchor.clip_id]
                            - next_anchor.clip.duration_s / 2.0
                            - cursor
                        )
                    index = self._pick_unanchored(remaining_unanchored, limit)
                    if index is None:
                        # Nothing fits before the anchor: fall back to the anchor item.
                        next_item = remaining_anchored.pop(0)
                        reason = "geo-anchored"
                        anchor = anchors[next_item.clip_id]
                    else:
                        next_item = remaining_unanchored.pop(index)
                else:
                    break
            clip_start = self._clear_boundaries(cursor, next_item.clip.duration_s, distraction)
            clip_end = clip_start + next_item.clip.duration_s
            if clip_end > end_s + 1e-6:
                # The shift (or accumulated gaps) pushed this item past arrival.
                continue
            placed.append(
                ScheduledClip(
                    scored=next_item,
                    window=TimeWindow(clip_start, clip_end),
                    reason=reason,
                    anchor_location_s=anchor,
                )
            )
            cursor = clip_end + self._min_gap_s
            if cursor >= end_s:
                break
        return placed

    @staticmethod
    def _clear_boundaries(
        start_s: float, duration_s: float, distraction: Optional[DistractionModel]
    ) -> float:
        """Shift a clip start so that neither boundary falls in a blocked window.

        The clip may *play through* a distraction zone — only the start and
        end instants (when the listener's attention is drawn to the content
        change) must avoid the zones.  A bounded number of passes handles
        consecutive zones; if no clear placement is found the last candidate
        is returned and the budget check upstream decides whether it fits.
        """
        if distraction is None:
            return start_s
        candidate = start_s
        for _ in range(8):
            moved = False
            start_assessment = distraction.assess_boundary(candidate)
            if start_assessment.blocked and start_assessment.suggested_shift_s > 0:
                candidate += start_assessment.suggested_shift_s
                moved = True
            end_assessment = distraction.assess_boundary(candidate + duration_s)
            if end_assessment.blocked and end_assessment.suggested_shift_s > 0:
                candidate += end_assessment.suggested_shift_s
                moved = True
            if not moved:
                return candidate
        return candidate

    @staticmethod
    def _pick_unanchored(
        candidates: Sequence[ScoredClip], limit_s: Optional[float]
    ) -> Optional[int]:
        if limit_s is None:
            return 0 if candidates else None
        for index, candidate in enumerate(candidates):
            if candidate.clip.duration_s <= limit_s:
                return index
        return None

"""The listener context model.

The paper's context includes "profile, emotional state, activity,
geographical position, weather, or other factors contributing to the state
of the listener"; the prototype concretely uses location, movement
(trajectory, speed), predicted destination/route and time.  This module
bundles those signals into one immutable object the scorers consume, plus a
coarse *driving condition* derived from speed and route complexity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.geo import GeoPoint, Polyline
from repro.roadnet.intersections import DistractionZone
from repro.trajectory.prediction import DestinationPrediction
from repro.trajectory.travel_time import TravelTimeEstimate
from repro.util.timeutils import time_of_day_bucket


class DrivingCondition(enum.Enum):
    """Coarse assessment of how demanding the current driving is."""

    PARKED = "parked"
    LIGHT = "light"        # cruising, low complexity
    MODERATE = "moderate"  # urban driving
    DEMANDING = "demanding"  # dense junctions, high speed variance


@dataclass(frozen=True)
class ListenerContext:
    """Everything the recommender knows about the listener *right now*."""

    user_id: str
    now_s: float
    position: Optional[GeoPoint] = None
    speed_mps: float = 0.0
    is_driving: bool = False
    route: Optional[Polyline] = None
    destination: Optional[DestinationPrediction] = None
    travel_time: Optional[TravelTimeEstimate] = None
    distraction_zones: List[DistractionZone] = field(default_factory=list)
    route_complexity: float = 0.0
    weather: Optional[str] = None
    activity: Optional[str] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.speed_mps < 0:
            raise ValidationError(f"speed_mps must be >= 0, got {self.speed_mps}")
        if not 0.0 <= self.route_complexity <= 1.0:
            raise ValidationError(
                f"route_complexity must be in [0, 1], got {self.route_complexity}"
            )

    @property
    def time_of_day(self) -> str:
        """Name of the current time-of-day bucket."""
        return time_of_day_bucket(self.now_s).name

    @property
    def available_time_s(self) -> Optional[float]:
        """The usable ΔT the scheduler should plan against, if known."""
        if self.travel_time is None:
            return None
        return self.travel_time.usable_s

    @property
    def destination_confidence(self) -> float:
        """Probability of the predicted destination (0 when unknown)."""
        return self.destination.probability if self.destination is not None else 0.0

    @property
    def driving_condition(self) -> DrivingCondition:
        """Coarse driving condition from speed and route complexity."""
        if not self.is_driving or self.speed_mps < 0.5:
            return DrivingCondition.PARKED
        if self.route_complexity >= 0.6 or self.speed_mps > 27.0:
            return DrivingCondition.DEMANDING
        if self.route_complexity >= 0.3 or self.speed_mps > 15.0:
            return DrivingCondition.MODERATE
        return DrivingCondition.LIGHT

    def with_travel_time(self, travel_time: TravelTimeEstimate) -> "ListenerContext":
        """Copy of the context with an updated ΔT estimate."""
        return ListenerContext(
            user_id=self.user_id,
            now_s=self.now_s,
            position=self.position,
            speed_mps=self.speed_mps,
            is_driving=self.is_driving,
            route=self.route,
            destination=self.destination,
            travel_time=travel_time,
            distraction_zones=list(self.distraction_zones),
            route_complexity=self.route_complexity,
            weather=self.weather,
            activity=self.activity,
            extras=dict(self.extras),
        )


def stationary_context(user_id: str, now_s: float, position: Optional[GeoPoint] = None) -> ListenerContext:
    """A minimal context for a listener who is not moving (manual-skip scenario)."""
    return ListenerContext(user_id=user_id, now_s=now_s, position=position, is_driving=False)

"""Offline evaluation metrics for recommendation rankings and plans."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set

from repro.errors import ValidationError
from repro.recommender.compound import ScoredClip
from repro.recommender.scheduling import RecommendationPlan


def precision_at_k(ranked_ids: Sequence[str], relevant_ids: Set[str], k: int) -> float:
    """Fraction of the top-``k`` recommendations that are relevant."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    top = list(ranked_ids)[:k]
    if not top:
        return 0.0
    hits = sum(1 for clip_id in top if clip_id in relevant_ids)
    return hits / len(top)


def recall_at_k(ranked_ids: Sequence[str], relevant_ids: Set[str], k: int) -> float:
    """Fraction of the relevant items retrieved in the top ``k``."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if not relevant_ids:
        return 0.0
    top = set(list(ranked_ids)[:k])
    return len(top & relevant_ids) / len(relevant_ids)


def ndcg_at_k(ranked_ids: Sequence[str], relevance: Dict[str, float], k: int) -> float:
    """Normalized discounted cumulative gain with graded relevance."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    top = list(ranked_ids)[:k]
    dcg = sum(
        relevance.get(clip_id, 0.0) / math.log2(rank + 2) for rank, clip_id in enumerate(top)
    )
    ideal = sorted(relevance.values(), reverse=True)[:k]
    idcg = sum(value / math.log2(rank + 2) for rank, value in enumerate(ideal))
    if idcg == 0.0:
        return 0.0
    return dcg / idcg


def mean_reciprocal_rank(ranked_ids: Sequence[str], relevant_ids: Set[str]) -> float:
    """Reciprocal rank of the first relevant item (0 when none appears)."""
    for rank, clip_id in enumerate(ranked_ids, start=1):
        if clip_id in relevant_ids:
            return 1.0 / rank
    return 0.0


def ranking_relevance(ranked: Sequence[ScoredClip], k: int = 10) -> float:
    """Mean final score of the top-``k`` of a ranking (internal relevance)."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    top = list(ranked)[:k]
    if not top:
        return 0.0
    return sum(item.final_score for item in top) / len(top)


def plan_relevance_per_minute(plan: RecommendationPlan) -> float:
    """Objective value per scheduled minute (how densely ΔT is used)."""
    minutes = plan.total_scheduled_s / 60.0
    if minutes <= 0:
        return 0.0
    return plan.objective_value / minutes


def category_diversity(ranked: Sequence[ScoredClip], k: int = 10) -> float:
    """Distinct primary categories among the top-``k``, normalized by ``k``."""
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    top = list(ranked)[:k]
    if not top:
        return 0.0
    categories = {item.clip.primary_category for item in top if item.clip.primary_category}
    return len(categories) / len(top)


def compare_rankings(
    rankings: Dict[str, Sequence[ScoredClip]], relevant_ids: Set[str], *, k: int = 5
) -> Dict[str, Dict[str, float]]:
    """Precision/recall/MRR for several named rankings against one ground truth."""
    results: Dict[str, Dict[str, float]] = {}
    for name, ranked in rankings.items():
        ids = [item.clip_id for item in ranked]
        results[name] = {
            "precision_at_k": precision_at_k(ids, relevant_ids, k),
            "recall_at_k": recall_at_k(ids, relevant_ids, k),
            "mrr": mean_reciprocal_rank(ids, relevant_ids),
        }
    return results

"""Driver distraction model.

Converts the route's distraction zones (intersections, roundabouts) into a
set of *blocked windows* on the drive timeline.  The scheduler avoids
placing clip boundaries — the moments when the listener's attention is drawn
to the change of content — inside high-distraction windows, and avoids
starting attention-heavy content just before one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ValidationError
from repro.roadnet.intersections import DistractionZone
from repro.util.timeutils import TimeWindow, merge_windows


@dataclass(frozen=True)
class DistractionAssessment:
    """Summary of how a candidate boundary instant relates to distraction."""

    instant_s: float
    blocked: bool
    nearest_zone_weight: float
    suggested_shift_s: float  # 0 when the instant is fine as is


class DistractionModel:
    """Boundary placement rules derived from the route's distraction zones."""

    def __init__(
        self,
        zones: Sequence[DistractionZone],
        *,
        block_threshold: float = 0.5,
        boundary_padding_s: float = 3.0,
    ) -> None:
        if block_threshold < 0 or block_threshold > 1:
            raise ValidationError("block_threshold must be in [0, 1]")
        if boundary_padding_s < 0:
            raise ValidationError("boundary_padding_s must be >= 0")
        self._zones = list(zones)
        self._block_threshold = block_threshold
        self._padding = boundary_padding_s
        self._blocked_windows = merge_windows(
            [
                TimeWindow(zone.window.start_s - boundary_padding_s, zone.window.end_s + boundary_padding_s)
                for zone in self._zones
                if zone.weight >= block_threshold
            ]
        )

    @property
    def zones(self) -> List[DistractionZone]:
        """The underlying distraction zones."""
        return list(self._zones)

    @property
    def blocked_windows(self) -> List[TimeWindow]:
        """Merged windows during which clip boundaries must not occur."""
        return list(self._blocked_windows)

    def total_blocked_s(self) -> float:
        """Total blocked time on the drive."""
        return sum(window.duration_s for window in self._blocked_windows)

    def is_blocked(self, instant_s: float) -> bool:
        """Whether a boundary at ``instant_s`` falls inside a blocked window."""
        return any(window.contains(instant_s) for window in self._blocked_windows)

    def distraction_at(self, instant_s: float) -> float:
        """Maximum zone weight active at an instant (0 when clear)."""
        active = [zone.weight for zone in self._zones if zone.window.contains(instant_s)]
        return max(active) if active else 0.0

    def next_clear_instant(self, instant_s: float, *, horizon_s: float = 600.0) -> Optional[float]:
        """The earliest instant >= ``instant_s`` not inside a blocked window.

        Returns ``None`` if no clear instant exists within the horizon.
        """
        candidate = instant_s
        for _ in range(len(self._blocked_windows) + 1):
            blocking = [w for w in self._blocked_windows if w.contains(candidate)]
            if not blocking:
                return candidate if candidate - instant_s <= horizon_s else None
            candidate = max(w.end_s for w in blocking)
        return candidate if candidate - instant_s <= horizon_s else None

    def assess_boundary(self, instant_s: float) -> DistractionAssessment:
        """Assess a candidate clip boundary and suggest a shift if needed."""
        blocked = self.is_blocked(instant_s)
        weight = self.distraction_at(instant_s)
        shift = 0.0
        if blocked:
            clear = self.next_clear_instant(instant_s)
            shift = (clear - instant_s) if clear is not None else 0.0
        return DistractionAssessment(
            instant_s=instant_s,
            blocked=blocked,
            nearest_zone_weight=weight,
            suggested_shift_s=shift,
        )

    def boundaries_in_blocked(self, boundaries: Sequence[float]) -> int:
        """How many of the given boundary instants fall in blocked windows."""
        return sum(1 for instant in boundaries if self.is_blocked(instant))

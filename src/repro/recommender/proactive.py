"""The proactive recommendation engine: deciding *when* to recommend.

Following the proactive recommender systems the paper builds on (Woerndl et
al., Braunhofer et al.), the engine watches the listener's context and fires
a recommendation only when the situation warrants it:

* the listener has started moving (a drive is in progress),
* the destination prediction is confident enough,
* the predicted remaining time ΔT is long enough to fit at least one clip,
* and the current driving condition is not too demanding to start new audio.

When it fires, the engine assembles the full pipeline — candidate filter,
compound scoring, ΔT-bounded scheduling with distraction avoidance — and
returns a :class:`ProactiveDecision` carrying the plan (or the reason for
not recommending).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.content.model import AudioClip
from repro.errors import SchedulingError
from repro.recommender.compound import CompoundScorer, ScoredClip
from repro.recommender.content_based import CandidateFilter
from repro.recommender.context import DrivingCondition, ListenerContext
from repro.recommender.distraction import DistractionModel
from repro.recommender.scheduling import RecommendationPlan, Scheduler
from repro.util.validation import require_in_range, require_positive


@dataclass(frozen=True)
class ProactiveConfig:
    """Trigger thresholds for the proactive engine."""

    min_destination_confidence: float = 0.45
    min_available_s: float = 120.0
    min_drive_elapsed_s: float = 90.0
    max_driving_condition: DrivingCondition = DrivingCondition.MODERATE
    top_k_candidates: int = 50

    def __post_init__(self) -> None:
        require_in_range(self.min_destination_confidence, 0.0, 1.0, "min_destination_confidence")
        require_positive(self.min_available_s, "min_available_s")
        require_positive(self.min_drive_elapsed_s, "min_drive_elapsed_s", strict=False)


@dataclass(frozen=True)
class ProactiveDecision:
    """The outcome of one proactive evaluation of the listener's context."""

    user_id: str
    now_s: float
    should_recommend: bool
    reason: str
    plan: Optional[RecommendationPlan] = None
    ranked: Optional[List[ScoredClip]] = None

    @property
    def recommended_clip_ids(self) -> List[str]:
        """Ids of scheduled clips (empty when no plan was produced)."""
        return self.plan.clip_ids() if self.plan is not None else []


_CONDITION_ORDER = {
    DrivingCondition.PARKED: 0,
    DrivingCondition.LIGHT: 1,
    DrivingCondition.MODERATE: 2,
    DrivingCondition.DEMANDING: 3,
}


class ProactiveEngine:
    """Watches contexts and produces recommendation plans proactively."""

    def __init__(
        self,
        candidate_filter: CandidateFilter,
        compound_scorer: CompoundScorer,
        scheduler: Optional[Scheduler] = None,
        config: ProactiveConfig = ProactiveConfig(),
    ) -> None:
        self._filter = candidate_filter
        self._scorer = compound_scorer
        self._scheduler = scheduler or Scheduler()
        self._config = config

    @property
    def config(self) -> ProactiveConfig:
        """The trigger configuration."""
        return self._config

    def should_trigger(self, context: ListenerContext, *, drive_elapsed_s: float) -> Optional[str]:
        """Return a refusal reason, or ``None`` when the engine should fire."""
        config = self._config
        if not context.is_driving:
            return "listener is not driving"
        if drive_elapsed_s < config.min_drive_elapsed_s:
            return (
                f"drive has lasted only {drive_elapsed_s:.0f}s "
                f"(< {config.min_drive_elapsed_s:.0f}s)"
            )
        if context.destination_confidence < config.min_destination_confidence:
            return (
                f"destination confidence {context.destination_confidence:.2f} below "
                f"threshold {config.min_destination_confidence:.2f}"
            )
        available = context.available_time_s
        if available is None or available < config.min_available_s:
            return "not enough predicted available time"
        if _CONDITION_ORDER[context.driving_condition] > _CONDITION_ORDER[config.max_driving_condition]:
            return f"driving condition {context.driving_condition.value} too demanding"
        return None

    def evaluate(
        self,
        context: ListenerContext,
        *,
        drive_elapsed_s: float,
        distraction: Optional[DistractionModel] = None,
        editorial_boosts: Optional[Dict[str, float]] = None,
        extra_candidates: Optional[Sequence[AudioClip]] = None,
    ) -> ProactiveDecision:
        """Evaluate the context; build a plan when the trigger conditions hold."""
        refusal = self.should_trigger(context, drive_elapsed_s=drive_elapsed_s)
        if refusal is not None:
            return ProactiveDecision(
                user_id=context.user_id,
                now_s=context.now_s,
                should_recommend=False,
                reason=refusal,
            )
        candidates = list(self._filter.candidates(context.user_id, now_s=context.now_s))
        if extra_candidates:
            known = {clip.clip_id for clip in candidates}
            candidates.extend(c for c in extra_candidates if c.clip_id not in known)
        if editorial_boosts:
            # Editorially injected clips bypass the candidate filter: the
            # editor's explicit choice overrides heard/disliked exclusions.
            known = {clip.clip_id for clip in candidates}
            for clip_id in editorial_boosts:
                if clip_id in known:
                    continue
                injected = self._filter.lookup_clip(clip_id)
                if injected is not None:
                    candidates.append(injected)
        if not candidates:
            return ProactiveDecision(
                user_id=context.user_id,
                now_s=context.now_s,
                should_recommend=False,
                reason="no candidate content available",
            )
        # Materialize the sampled route (and its precomputed trigonometry)
        # once per tick; ranking reuses it across the whole candidate batch.
        route_scorer = self._scorer.route_scorer_for(context)
        ranked = self._scorer.rank(
            candidates,
            context,
            editorial_boosts=editorial_boosts,
            top_k=self._config.top_k_candidates,
            route_scorer=route_scorer,
        )
        try:
            plan = self._scheduler.build_plan(ranked, context, distraction=distraction)
        except SchedulingError as exc:
            return ProactiveDecision(
                user_id=context.user_id,
                now_s=context.now_s,
                should_recommend=False,
                reason=f"scheduling failed: {exc}",
                ranked=ranked,
            )
        if not plan.items:
            return ProactiveDecision(
                user_id=context.user_id,
                now_s=context.now_s,
                should_recommend=False,
                reason="no clip fits the available time",
                ranked=ranked,
            )
        return ProactiveDecision(
            user_id=context.user_id,
            now_s=context.now_s,
            should_recommend=True,
            reason="context trigger satisfied",
            plan=plan,
            ranked=ranked,
        )

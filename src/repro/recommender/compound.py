"""The compound relevance score.

"Then a compound relevance score is calculated through weighted combination
of the content-based relevance and the context-based relevance (location,
trajectory, speed and time information)."  The context weight ``w`` is the
primary ablation knob of the reproduction (bench A-1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.content.geo_relevance import RouteRelevanceScorer
from repro.content.model import AudioClip
from repro.errors import ValidationError
from repro.recommender.content_based import ContentBasedScorer
from repro.recommender.context import ListenerContext
from repro.recommender.context_relevance import ContextScorer


@dataclass(frozen=True)
class ScoredClip:
    """A candidate clip with its relevance breakdown."""

    clip: AudioClip
    content_score: float
    context_score: float
    compound_score: float
    editorial_boost: float = 0.0

    @property
    def clip_id(self) -> str:
        """Identifier of the underlying clip."""
        return self.clip.clip_id

    @property
    def final_score(self) -> float:
        """Compound score plus any editorial boost, clamped to [0, 1]."""
        return min(1.0, self.compound_score + self.editorial_boost)

    @property
    def relevance_density(self) -> float:
        """Relevance per minute of playback (used by the greedy scheduler)."""
        minutes = max(1.0 / 60.0, self.clip.duration_s / 60.0)
        return self.final_score / minutes


class CompoundScorer:
    """Combines content-based and context-based relevance."""

    def __init__(
        self,
        content_scorer: ContentBasedScorer,
        context_scorer: Optional[ContextScorer] = None,
        *,
        context_weight: float = 0.45,
    ) -> None:
        if not 0.0 <= context_weight <= 1.0:
            raise ValidationError(f"context_weight must be in [0, 1], got {context_weight}")
        self._content_scorer = content_scorer
        self._context_scorer = context_scorer or ContextScorer()
        self._context_weight = context_weight

    @property
    def context_weight(self) -> float:
        """The weight ``w`` given to the context-based relevance."""
        return self._context_weight

    def with_context_weight(self, context_weight: float) -> "CompoundScorer":
        """A copy with a different context weight (ablation helper)."""
        return CompoundScorer(
            self._content_scorer, self._context_scorer, context_weight=context_weight
        )

    def route_scorer_for(self, context: ListenerContext) -> RouteRelevanceScorer:
        """The per-context batched geographic scorer (see :class:`ContextScorer`)."""
        return self._context_scorer.route_scorer_for(context)

    def score(
        self,
        clip: AudioClip,
        context: ListenerContext,
        *,
        editorial_boosts: Optional[Dict[str, float]] = None,
    ) -> ScoredClip:
        """Score one candidate clip for the listener context."""
        content_score = self._content_scorer.score(context.user_id, clip, now_s=context.now_s)
        context_score = self._context_scorer.score(clip, context)
        weight = self._context_weight
        compound = (1.0 - weight) * content_score + weight * context_score
        boost = (editorial_boosts or {}).get(clip.clip_id, 0.0)
        return ScoredClip(
            clip=clip,
            content_score=content_score,
            context_score=context_score,
            compound_score=compound,
            editorial_boost=boost,
        )

    def rank(
        self,
        clips: Sequence[AudioClip],
        context: ListenerContext,
        *,
        editorial_boosts: Optional[Dict[str, float]] = None,
        top_k: Optional[int] = None,
        route_scorer: Optional[RouteRelevanceScorer] = None,
    ) -> List[ScoredClip]:
        """Score and rank candidates by final score (descending).

        Scoring runs through the batched fast paths: the user's profile and
        liked-clip vectors are fetched once, and the geographic term shares
        one materialized route sample table across the whole candidate set.
        """
        content_scores = self._content_scorer.score_many(
            context.user_id, clips, now_s=context.now_s
        )
        context_scores = self._context_scorer.score_many(
            clips, context, route_scorer=route_scorer
        )
        weight = self._context_weight
        boosts = editorial_boosts or {}
        scored = [
            ScoredClip(
                clip=clip,
                content_score=content_scores[clip.clip_id],
                context_score=context_scores[clip.clip_id],
                compound_score=(
                    (1.0 - weight) * content_scores[clip.clip_id]
                    + weight * context_scores[clip.clip_id]
                ),
                editorial_boost=boosts.get(clip.clip_id, 0.0),
            )
            for clip in clips
        ]
        scored.sort(key=lambda item: (item.final_score, item.clip_id), reverse=True)
        if top_k is not None:
            if top_k < 0:
                raise ValidationError(f"top_k must be >= 0, got {top_k}")
            scored = scored[:top_k]
        return scored

"""Scripted fault injection for world replays.

A :class:`ChaosController` rides along a
:class:`~repro.loadgen.replay.WorldReplay` and fires injections at
scripted event indices.  Six fault families are supported, matching the
recovery surfaces the storage and pipeline layers expose:

* ``kill_restore`` — snapshot the server at index *s*, then at index *k*
  throw the server away, restore a fresh one from the snapshot, and
  re-dispatch the lost window of write traffic (the device-side retry);
* ``shard_move`` — ``snapshot_shard`` at *s*, drop/move the shard via
  ``restore_shard`` at *k*, then re-ingest only the lost-window writes of
  users living on that shard;
* ``worker_fault`` — arm a :class:`~repro.storage.sharding.ShardWorkerPool`
  fault hook so the next pooled task raises mid-group, observe the 500,
  disarm and retry the failed request once;
* ``bus_dead_letter`` — subscribe a once-raising handler to a bus topic
  so one delivery dead-letters, proving producers survive consumer bugs;
* ``torn_log`` — on a durability-enabled server: snapshot at *s*, mark a
  tear point at *t* (everything after it is "still in the page cache"),
  crash at *k* by truncating the WAL files to the tear point and leaving
  a half-written frame on one tail; a rebuilt process salvages the torn
  tail, restores snapshot + log tail (no client re-ingest for the logged
  window ``[s, t)``) and only the post-tear window ``[t, k)`` is retried;
* ``replica_failover`` — build a log-shipped
  :class:`~repro.storage.replica.ReadReplica` from the primary's WAL,
  catch it up to lag 0, byte-compare cacheable reads against the primary,
  then promote it and point the rest of the replay at it.

Every injection appends to :attr:`ChaosController.log`, so tests can
assert each scheduled fault actually fired.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from repro.errors import PipelineError, ValidationError
from repro.loadgen.script import WireEvent
from repro.storage.sharding import shard_of
from repro.storage.wal import log_paths


def _snapshot_roundtrip(payload: Dict) -> Dict:
    """Serialize + reparse, so restores see exactly what disk would hold."""
    return json.loads(json.dumps(payload))


class ChaosController:
    """Injects scripted faults into a replay and records what fired."""

    def __init__(
        self,
        server,
        gateway,
        *,
        rebuild: Optional[Callable[[], Any]] = None,
        gateway_factory: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self._server = server
        self._gateway = gateway
        self._rebuild = rebuild
        self._gateway_factory = gateway_factory or self._default_gateway
        self._replay = None
        self._injections: List[Dict[str, Any]] = []
        #: Audit trail of injections that actually fired.
        self.log: List[Dict[str, Any]] = []
        # Lost-window bookkeeping for kill/shard recovery.
        self._dispatched: List[WireEvent] = []
        # Worker-fault state.
        self._fault_armed = False
        self._fault_fired_shards: List[int] = []

    @staticmethod
    def _default_gateway(server):
        from repro.pipeline.gateway.gateway import Gateway

        return Gateway(server)

    @property
    def server(self):
        """The server currently behind the gateway (swapped on kill_restore)."""
        return self._server

    def attach(self, replay) -> None:
        self._replay = replay

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule_kill_restore(self, *, snapshot_at: int, kill_at: int) -> None:
        """Snapshot at event ``snapshot_at``; kill + restore at ``kill_at``."""
        if kill_at <= snapshot_at:
            raise ValidationError("kill_at must come after snapshot_at")
        if self._rebuild is None:
            raise ValidationError("kill_restore needs a rebuild factory")
        self._injections.append(
            {
                "fault": "kill_restore",
                "snapshot_at": snapshot_at,
                "kill_at": kill_at,
                "snapshot": None,
            }
        )

    def schedule_shard_move(self, *, shard: int, snapshot_at: int, restore_at: int) -> None:
        """Snapshot one shard at ``snapshot_at``; drop + move it at ``restore_at``."""
        if restore_at <= snapshot_at:
            raise ValidationError("restore_at must come after snapshot_at")
        self._injections.append(
            {
                "fault": "shard_move",
                "shard": shard,
                "snapshot_at": snapshot_at,
                "restore_at": restore_at,
                "snapshot": None,
            }
        )

    def schedule_torn_log(self, *, snapshot_at: int, tear_at: int, kill_at: int) -> None:
        """Crash at ``kill_at`` losing everything after ``tear_at``, plus a torn tail.

        The window ``[snapshot_at, tear_at)`` reached the log and is
        recovered from snapshot + WAL tail without any client re-ingest;
        only ``[tear_at, kill_at)`` (writes the crash caught in flight) is
        re-dispatched as the device retry.
        """
        if not snapshot_at < tear_at < kill_at:
            raise ValidationError("need snapshot_at < tear_at < kill_at")
        if self._rebuild is None:
            raise ValidationError("torn_log needs a rebuild factory")
        if getattr(self._server, "durability", None) is None:
            raise ValidationError("torn_log needs a durability-enabled server")
        self._injections.append(
            {
                "fault": "torn_log",
                "snapshot_at": snapshot_at,
                "tear_at": tear_at,
                "kill_at": kill_at,
                "snapshot": None,
                "cut_sizes": None,
            }
        )

    def schedule_replica_failover(
        self, *, promote_at: int, build_server: Callable[[], Any]
    ) -> None:
        """Fail over to a log-shipped read replica at ``promote_at``.

        ``build_server`` must build a fresh, config-compatible server with
        durability *disabled* (see :class:`~repro.storage.replica.ReadReplica`).
        """
        if getattr(self._server, "durability", None) is None:
            raise ValidationError("replica_failover needs a durability-enabled primary")
        self._injections.append(
            {
                "fault": "replica_failover",
                "promote_at": promote_at,
                "build_server": build_server,
            }
        )

    def schedule_worker_fault(self, *, arm_at: int) -> None:
        """Make the next pooled shard task after ``arm_at`` raise mid-group."""
        self._injections.append({"fault": "worker_fault", "arm_at": arm_at})

    def schedule_bus_dead_letter(self, *, topic: str, arm_at: int) -> None:
        """Subscribe a once-raising handler to ``topic`` at ``arm_at``."""
        self._injections.append(
            {"fault": "bus_dead_letter", "topic": topic, "arm_at": arm_at}
        )

    # ------------------------------------------------------------------
    # Replay hooks
    # ------------------------------------------------------------------

    def before_event(self, index: int, event: WireEvent) -> None:
        for injection in self._injections:
            fault = injection["fault"]
            if fault == "kill_restore":
                if index == injection["snapshot_at"] and injection["snapshot"] is None:
                    injection["snapshot"] = _snapshot_roundtrip(self._server.snapshot())
                elif index == injection["kill_at"] and injection["snapshot"] is not None:
                    self._kill_and_restore(injection, index)
            elif fault == "shard_move":
                if index == injection["snapshot_at"] and injection["snapshot"] is None:
                    injection["snapshot"] = _snapshot_roundtrip(
                        self._server.snapshot_shard(injection["shard"])
                    )
                elif index == injection["restore_at"] and injection["snapshot"] is not None:
                    self._move_shard(injection, index)
            elif fault == "torn_log":
                if index == injection["snapshot_at"] and injection["snapshot"] is None:
                    injection["snapshot"] = _snapshot_roundtrip(self._server.snapshot())
                elif index == injection["tear_at"] and injection["cut_sizes"] is None:
                    durability = self._server.durability
                    durability.flush()
                    injection["cut_sizes"] = {
                        path: path.stat().st_size
                        for path in log_paths(durability.directory)
                    }
                elif index == injection["kill_at"] and injection["cut_sizes"] is not None:
                    self._tear_log_and_recover(injection, index)
            elif fault == "replica_failover":
                if index == injection["promote_at"] and not injection.get("fired_once"):
                    injection["fired_once"] = True
                    self._promote_replica(injection, index)
            elif fault == "worker_fault":
                if index == injection["arm_at"] and not injection.get("armed_once"):
                    injection["armed_once"] = True
                    self._arm_worker_fault()
            elif fault == "bus_dead_letter":
                if index == injection["arm_at"] and not injection.get("armed_once"):
                    injection["armed_once"] = True
                    self._arm_bus_dead_letter(injection["topic"], index)

    def after_event(self, index: int, event: WireEvent, status: int) -> None:
        self._dispatched.append(event)
        if self._fault_armed and self._fault_fired_shards:
            # The armed fault took this request down; the pool rejected the
            # whole group before any write, so one clean retry must succeed.
            self._disarm_worker_fault()
            retry_status, _body = self._replay.dispatch(event)
            self.log.append(
                {
                    "fault": "worker_fault",
                    "at": index,
                    "failed_status": status,
                    "retry_status": retry_status,
                    "shards": sorted(set(self._fault_fired_shards)),
                }
            )
            self._fault_fired_shards = []

    # ------------------------------------------------------------------
    # Fault implementations
    # ------------------------------------------------------------------

    def _kill_and_restore(self, injection: Dict[str, Any], index: int) -> None:
        """The server dies; a fresh process restores and devices retry."""
        lost = self._lost_window(injection["snapshot_at"], index)
        server = self._rebuild()
        server.restore_snapshot(injection["snapshot"])
        self._server = server
        self._gateway = self._gateway_factory(server)
        self._replay.use_gateway(self._gateway)
        replayed = self._redispatch(lost)
        injection["snapshot"] = None  # fire once
        self.log.append(
            {
                "fault": "kill_restore",
                "at": index,
                "snapshot_at": injection["snapshot_at"],
                "lost_events": len(lost),
                "replayed": replayed,
            }
        )

    def _move_shard(self, injection: Dict[str, Any], index: int) -> None:
        """Drop a shard's live state and restore it from its snapshot."""
        shard = injection["shard"]
        self._server.restore_shard(shard, _snapshot_roundtrip(injection["snapshot"]))
        shards = self._server.config.sharding.shards
        lost = [
            event
            for event in self._lost_window(injection["snapshot_at"], index)
            if any(shard_of(user, shards) == shard for user in event.user_ids())
        ]
        replayed = self._redispatch(lost, only_shard=shard, shards=shards)
        injection["snapshot"] = None  # fire once
        self.log.append(
            {
                "fault": "shard_move",
                "at": index,
                "shard": shard,
                "snapshot_at": injection["snapshot_at"],
                "lost_events": len(lost),
                "replayed": replayed,
            }
        )

    def _tear_log_and_recover(self, injection: Dict[str, Any], index: int) -> None:
        """The crash: WAL tails past the tear point never reached disk."""
        durability = self._server.durability
        durability.flush()
        directory = durability.directory
        cut_sizes = injection["cut_sizes"]
        for path in log_paths(directory):
            with open(path, "r+b") as handle:
                handle.truncate(cut_sizes.get(path, 0))
        # One log additionally keeps a half-written frame: the append the
        # crash interrupted.  Startup salvage must cut it cleanly.
        torn_path = max(log_paths(directory), key=lambda p: p.stat().st_size)
        with open(torn_path, "ab") as handle:
            handle.write(b"\x00\x00\x30\x39\xde\xad\xbe\xeftorn")
        lost = self._lost_window(injection["tear_at"], index)
        server = self._rebuild()  # construction salvages the torn tail
        salvaged = [
            report
            for report in server.durability.recovery_report
            if report["bytes_dropped"]
        ]
        snapshot_lsn = injection["snapshot"]["wal_lsn"]
        server.restore_snapshot(injection["snapshot"], replay_log=True)
        self._server = server
        self._gateway = self._gateway_factory(server)
        self._replay.use_gateway(self._gateway)
        replayed = self._redispatch(lost)
        injection["cut_sizes"] = None  # fire once
        self.log.append(
            {
                "fault": "torn_log",
                "at": index,
                "snapshot_at": injection["snapshot_at"],
                "tear_at": injection["tear_at"],
                "wal_frames_replayed": server.durability.last_lsn - snapshot_lsn,
                "salvaged": salvaged,
                "lost_events": len(lost),
                "replayed": replayed,
            }
        )

    def _promote_replica(self, injection: Dict[str, Any], index: int) -> None:
        """Catch a log-shipped replica up to lag 0, verify reads, promote."""
        from repro.storage.replica import ReadReplica

        durability = self._server.durability
        durability.flush()
        replica = ReadReplica(
            durability.directory, build_server=injection["build_server"]
        )
        applied = replica.catch_up()
        lag = replica.lag_frames()
        # Byte-compare the most recent cacheable reads against the primary
        # before cutting over: at lag 0 bodies and validators must match.
        probes = matches = 0
        for event in reversed(self._dispatched):
            if probes >= 5:
                break
            if event.method != "GET":
                continue
            p_status, p_body, p_headers = self._gateway.handle_wire(
                "GET", event.path, None, query=event.query
            )
            if "etag" not in p_headers:
                continue
            probes += 1
            r_status, r_body, r_headers = replica.handle_wire(
                "GET", event.path, None, query=event.query
            )
            if (
                p_status == r_status
                and p_body == r_body
                and p_headers.get("etag") == r_headers.get("etag")
            ):
                matches += 1
        replica.promote()
        self._server = replica.server
        self._gateway = replica
        self._replay.use_gateway(replica)
        self.log.append(
            {
                "fault": "replica_failover",
                "at": index,
                "applied": applied,
                "lag": lag,
                "etag_probes": probes,
                "etag_matches": matches,
            }
        )

    def _lost_window(self, start: int, end: int) -> List[WireEvent]:
        """State-changing events dispatched in ``[start, end)``."""
        return [
            event for event in self._dispatched[start:end] if event.method != "GET"
        ]

    def _redispatch(
        self,
        events: List[WireEvent],
        *,
        only_shard: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> int:
        """Replay lost writes against the restored server (the device retry).

        For shard recovery, batch bodies are filtered down to the affected
        shard's users: everyone else's fixes are still present, and
        re-posting them would duplicate boundary fixes.
        """
        replayed = 0
        for event in events:
            body = event.body
            if only_shard is not None and body and "fixes" in body:
                kept = [
                    item
                    for item in body["fixes"]
                    if shard_of(item.get("user_id", ""), shards) == only_shard
                ]
                if not kept:
                    continue
                body = dict(body, fixes=kept)
                event = WireEvent(
                    t_s=event.t_s,
                    method=event.method,
                    path=event.path,
                    body=body,
                    query=event.query,
                    tags=event.tags,
                )
            status, response = self._replay.dispatch(event)
            if status >= 400:
                raise PipelineError(
                    f"recovery re-dispatch of {event.method} {event.path} "
                    f"failed with {status}: {response}"
                )
            replayed += 1
        return replayed

    def _arm_worker_fault(self) -> None:
        pool = self._server.workers
        if pool is None:
            raise ValidationError("worker_fault needs a sharded, parallel server")
        self._fault_armed = True
        self._fault_fired_shards = []

        def hook(shard: int) -> None:
            self._fault_fired_shards.append(shard)
            raise PipelineError(f"chaos: injected worker fault on shard {shard}")

        pool.set_fault_hook(hook)

    def _disarm_worker_fault(self) -> None:
        pool = self._server.workers
        if pool is not None:
            pool.set_fault_hook(None)
        self._fault_armed = False

    def _arm_bus_dead_letter(self, topic: str, index: int) -> None:
        state = {"raised": False}

        def failing_handler(message) -> None:
            if not state["raised"]:
                state["raised"] = True
                self.log.append(
                    {"fault": "bus_dead_letter", "at": index, "topic": topic}
                )
                raise PipelineError(f"chaos: injected handler crash on {topic}")

        self._server.bus.subscribe(topic, failing_handler)

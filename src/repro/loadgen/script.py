"""Recorded wire scripts: the replayable unit of the load generator.

A scenario is a time-ordered list of :class:`WireEvent` — exactly the
arguments one :meth:`Gateway.handle_wire
<repro.pipeline.gateway.gateway.Gateway.handle_wire>` call takes, plus the
scenario time the request "arrives" and free-form tags (owning user,
scenario beat, delivery mode) the chaos controller filters on.

Scripts serialize to canonical JSON lines — sorted keys, compact
separators, no floats ever reformatted — so the same world and seed
produce byte-identical artifacts, and :meth:`ScenarioScript.fingerprint`
is a stable content address for "this exact traffic".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ValidationError

#: Version stamp of the serialized script format.
SCRIPT_FORMAT_VERSION = 1


def canonical_json(value: Any) -> str:
    """The one JSON encoding used everywhere a byte-level claim is made."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class WireEvent:
    """One scripted request: when it arrives and what goes on the wire."""

    t_s: float
    method: str
    path: str
    body: Optional[Dict[str, Any]] = None
    query: Optional[Dict[str, str]] = None
    tags: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.method or not self.path:
            raise ValidationError("event method and path must be non-empty")

    def body_json(self) -> Optional[str]:
        """The canonical request body text handed to ``handle_wire``."""
        return canonical_json(self.body) if self.body is not None else None

    def tag(self, name: str) -> Optional[str]:
        """The first tag value with the given name, or None."""
        for key, value in self.tags:
            if key == name:
                return value
        return None

    def user_ids(self) -> List[str]:
        """Every user the event's body is about (batch items included)."""
        users: List[str] = []
        body = self.body or {}
        envelope = body.get("user_id")
        if isinstance(envelope, str):
            users.append(envelope)
        for item in body.get("fixes", []) or []:
            owner = item.get("user_id") if isinstance(item, dict) else None
            if isinstance(owner, str) and owner not in users:
                users.append(owner)
        for item in body.get("events", []) or []:
            owner = item.get("user_id") if isinstance(item, dict) else None
            if isinstance(owner, str) and owner not in users:
                users.append(owner)
        return users

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "t_s": self.t_s,
            "method": self.method,
            "path": self.path,
        }
        if self.body is not None:
            payload["body"] = self.body
        if self.query is not None:
            payload["query"] = self.query
        if self.tags:
            payload["tags"] = [list(pair) for pair in self.tags]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "WireEvent":
        if not isinstance(payload, dict):
            raise ValidationError("event payload must be an object")
        try:
            return cls(
                t_s=float(payload["t_s"]),
                method=payload["method"],
                path=payload["path"],
                body=payload.get("body"),
                query=payload.get("query"),
                tags=tuple(
                    (str(name), str(value)) for name, value in payload.get("tags", [])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"invalid event payload: {exc}") from None


@dataclass(frozen=True)
class ScenarioScript:
    """A named, seeded, time-ordered recording of wire traffic."""

    name: str
    seed: int
    events: Tuple[WireEvent, ...]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("script name must be non-empty")
        previous = float("-inf")
        for event in self.events:
            if event.t_s < previous:
                raise ValidationError(
                    f"script events must be time-ordered: {event.t_s} after {previous}"
                )
            previous = event.t_s

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[WireEvent]:
        return iter(self.events)

    def to_jsonl(self) -> str:
        """Canonical serialization: one header line, one line per event."""
        lines = [
            canonical_json(
                {
                    "format": SCRIPT_FORMAT_VERSION,
                    "name": self.name,
                    "seed": self.seed,
                    "events": len(self.events),
                    "metadata": self.metadata,
                }
            )
        ]
        lines.extend(canonical_json(event.to_payload()) for event in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "ScenarioScript":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValidationError("empty script text")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ValidationError(f"malformed script header: {exc.msg}") from None
        if not isinstance(header, dict) or header.get("format") != SCRIPT_FORMAT_VERSION:
            raise ValidationError(
                f"unsupported script format (want {SCRIPT_FORMAT_VERSION})"
            )
        events = []
        for line in lines[1:]:
            try:
                events.append(WireEvent.from_payload(json.loads(line)))
            except json.JSONDecodeError as exc:
                raise ValidationError(f"malformed script event: {exc.msg}") from None
        if len(events) != header.get("events"):
            raise ValidationError(
                f"script header promises {header.get('events')} events, got {len(events)}"
            )
        return cls(
            name=header["name"],
            seed=int(header["seed"]),
            events=tuple(events),
            metadata=dict(header.get("metadata", {})),
        )

    def fingerprint(self) -> str:
        """sha256 of the canonical serialization — the byte-identity check."""
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()

"""Replay a recorded scenario script through the wire gateway.

:class:`WorldReplay` walks a :class:`~repro.loadgen.script.ScenarioScript`
event by event, dispatches each through ``Gateway.handle_wire``, measures
per-request wall-clock latency, and (optionally) hands control to a
:class:`~repro.loadgen.chaos.ChaosController` before and after every
event so faults land at scripted points.  The resulting
:class:`ReplayReport` carries exact nearest-rank latency percentiles and
a sha256 digest over the ``(status, body)`` response sequence — the
artifact byte-determinism claims are made against.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.loadgen.script import ScenarioScript, WireEvent, canonical_json


def percentile(samples: List[float], fraction: float) -> float:
    """Exact nearest-rank percentile (no interpolation)."""
    if not samples:
        raise ValidationError("cannot take a percentile of no samples")
    if not 0.0 < fraction <= 1.0:
        raise ValidationError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * fraction // 1))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class ReplayedEvent:
    """One executed script event and what the wire returned for it."""

    index: int
    event: WireEvent
    status: int
    body: Any
    latency_s: float


@dataclass
class ReplayReport:
    """Everything a replay run produced, summarized."""

    script_name: str
    script_seed: int
    events: List[ReplayedEvent] = field(default_factory=list)

    @property
    def latencies_s(self) -> List[float]:
        return [entry.latency_s for entry in self.events]

    @property
    def status_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for entry in self.events:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return counts

    def percentiles_ms(self) -> Dict[str, float]:
        """p50/p95/p99 request latency in milliseconds (nearest-rank)."""
        samples = self.latencies_s
        return {
            "p50_ms": percentile(samples, 0.50) * 1000.0,
            "p95_ms": percentile(samples, 0.95) * 1000.0,
            "p99_ms": percentile(samples, 0.99) * 1000.0,
        }

    def responses_digest(self) -> str:
        """sha256 over the canonical ``(status, body)`` response sequence.

        Latency and headers are excluded: two runs over identical state
        must produce the same digest regardless of machine speed.
        """
        hasher = hashlib.sha256()
        for entry in self.events:
            hasher.update(canonical_json([entry.status, entry.body]).encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def summary(self) -> Dict[str, Any]:
        """The JSON-friendly rollup the bench writes to its BENCH file."""
        return {
            "scenario": self.script_name,
            "seed": self.script_seed,
            "requests": len(self.events),
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "responses_digest": self.responses_digest(),
            **self.percentiles_ms(),
        }


class WorldReplay:
    """Drives a scenario script through one gateway, fault hooks included."""

    def __init__(self, gateway, *, chaos=None) -> None:
        self._gateway = gateway
        self._chaos = chaos
        if chaos is not None:
            chaos.attach(self)

    @property
    def gateway(self):
        """The gateway currently receiving traffic (chaos may swap it)."""
        return self._gateway

    def use_gateway(self, gateway) -> None:
        """Point the replay at a different gateway (post kill+restore)."""
        self._gateway = gateway

    def dispatch(self, event: WireEvent) -> Tuple[int, Any]:
        """Send one event through the current gateway, untimed."""
        status, body, _headers = self._gateway.handle_wire(
            event.method, event.path, event.body_json(), query=event.query
        )
        return status, body

    def run(self, script: ScenarioScript) -> ReplayReport:
        """Replay every event in order; returns the full report."""
        report = ReplayReport(script_name=script.name, script_seed=script.seed)
        for index, event in enumerate(script):
            if self._chaos is not None:
                self._chaos.before_event(index, event)
            started = time.perf_counter()
            status, body = self.dispatch(event)
            latency_s = time.perf_counter() - started
            report.events.append(
                ReplayedEvent(
                    index=index,
                    event=event,
                    status=status,
                    body=body,
                    latency_s=latency_s,
                )
            )
            if self._chaos is not None:
                self._chaos.after_event(index, event, status)
        return report

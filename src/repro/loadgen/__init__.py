"""Deterministic wire-level load generation and chaos injection.

The package turns a :class:`~repro.datasets.world.SyntheticWorld` into
recorded scripts of ``(t, request)`` events — rush-hour surges, flash
crowds on one broadcaster item, broadcast→unicast handover — replays them
through :meth:`Gateway.handle_wire
<repro.pipeline.gateway.gateway.Gateway.handle_wire>`, and injects faults
at scripted points while an invariant checker compares the surviving
state against an uninjected reference run.  See
``docs/ARCHITECTURE.md`` ("World replay & chaos harness").
"""

from repro.loadgen.chaos import ChaosController
from repro.loadgen.invariants import (
    check_invariants,
    metrics_sanity_violations,
    state_fingerprint,
)
from repro.loadgen.replay import ReplayReport, WorldReplay
from repro.loadgen.scenarios import (
    SCENARIO_NAMES,
    build_scenario,
    flash_crowd_script,
    handover_script,
    rush_hour_script,
)
from repro.loadgen.script import ScenarioScript, WireEvent

__all__ = [
    "ChaosController",
    "ReplayReport",
    "ScenarioScript",
    "SCENARIO_NAMES",
    "WireEvent",
    "WorldReplay",
    "build_scenario",
    "check_invariants",
    "flash_crowd_script",
    "handover_script",
    "metrics_sanity_violations",
    "rush_hour_script",
    "state_fingerprint",
]

"""Scenario builders: synthetic-world traffic recorded as wire scripts.

Each builder derives every random draw from ``DeterministicRng(seed)``
forks and generates each commuter's live drive exactly once (a
:class:`~repro.datasets.mobility.SimulatedDrive` consumes its noise rng
when sampled), so the same world and seed always produce the same
byte-identical :class:`~repro.loadgen.script.ScenarioScript`:

* **rush hour** — the whole commuter population drives at once; GPS
  batches arrive in fixed windows interleaved with recommendation reads
  and en-route listening feedback;
* **flash crowd** — the driving backbone plus a burst where every
  listener hammers one broadcaster clip (item reads, recommendations,
  feedback, catalogue walks);
* **handover** — drives through patchy broadcast coverage: each
  out-of-coverage window triggers a broadcast→unicast handover (a
  unicast clip fetch), annotated with the
  :class:`~repro.delivery.DeliveryCostModel` bandwidth estimate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.datasets.world import SyntheticWorld
from repro.delivery import DeliveryCostModel
from repro.errors import ValidationError
from repro.loadgen.script import ScenarioScript, WireEvent
from repro.spatialdb import GpsFix
from repro.util.rng import DeterministicRng

#: Builders registered for the scenario matrix, by name.
SCENARIO_NAMES = ("rush_hour", "flash_crowd", "handover")

#: Width of one ingest window: all fixes a device buffered since the last
#: upload go out as one batch at the window's end.
DEFAULT_WINDOW_S = 120.0


def _fix_item(fix: GpsFix) -> Dict[str, Any]:
    return {
        "user_id": fix.user_id,
        "lat": fix.position.lat,
        "lon": fix.position.lon,
        "timestamp_s": fix.timestamp_s,
        "speed_mps": fix.speed_mps,
        "accuracy_m": fix.accuracy_m,
    }


class _EventSink:
    """Collects events with a construction sequence for a stable time sort."""

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, WireEvent]] = []

    def add(
        self,
        t_s: float,
        method: str,
        path: str,
        *,
        body: Optional[Dict[str, Any]] = None,
        query: Optional[Dict[str, str]] = None,
        tags: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        event = WireEvent(
            t_s=t_s, method=method, path=path, body=body, query=query, tags=tags
        )
        self._entries.append((t_s, len(self._entries), event))

    def sorted_events(self) -> Tuple[WireEvent, ...]:
        return tuple(event for _t, _seq, event in sorted(self._entries, key=lambda e: (e[0], e[1])))


def _live_fixes(world: SyntheticWorld) -> Dict[str, List[GpsFix]]:
    """Each commuter's full live-day drive, sampled exactly once."""
    fixes: Dict[str, List[GpsFix]] = {}
    for commuter, drive in world.live_drives():
        fixes[commuter.user_id] = drive.fixes()
    return fixes


def _drive_windows(
    fixes_by_user: Dict[str, List[GpsFix]], window_s: float
) -> List[Tuple[float, Dict[str, List[GpsFix]]]]:
    """(window_end, per-user fixes) for every window with traffic."""
    if window_s <= 0:
        raise ValidationError("window_s must be > 0")
    start = min(fixes[0].timestamp_s for fixes in fixes_by_user.values() if fixes)
    end = max(fixes[-1].timestamp_s for fixes in fixes_by_user.values() if fixes)
    windows: List[Tuple[float, Dict[str, List[GpsFix]]]] = []
    w_start = start
    while w_start <= end:
        w_end = w_start + window_s
        in_window: Dict[str, List[GpsFix]] = {}
        for user_id, fixes in fixes_by_user.items():
            chunk = [fix for fix in fixes if w_start <= fix.timestamp_s < w_end]
            if chunk:
                in_window[user_id] = chunk
        if in_window:
            windows.append((w_end, in_window))
        w_start = w_end
    return windows


def _driving_backbone(
    sink: _EventSink,
    windows: List[Tuple[float, Dict[str, List[GpsFix]]]],
    *,
    recommend_every: int,
    beat: str,
) -> None:
    """The shared traffic shape: windowed batch ingest + recommendation reads."""
    for index, (w_end, in_window) in enumerate(windows):
        items = [
            _fix_item(fix)
            for user_id in sorted(in_window)
            for fix in in_window[user_id]
        ]
        sink.add(
            w_end,
            "POST",
            "/v1/tracking/batch",
            body={"fixes": items},
            tags=(("beat", beat),),
        )
        if recommend_every and index % recommend_every == recommend_every - 1:
            for user_id in sorted(in_window):
                sink.add(
                    w_end,
                    "GET",
                    f"/v1/recommendations/{user_id}",
                    query={"now_s": repr(w_end)},
                    tags=(("beat", beat), ("user", user_id)),
                )


def _catalogue_clip_ids(world: SyntheticWorld) -> List[str]:
    return sorted(world.clips_by_id)


def _hot_clip_id(world: SyntheticWorld) -> str:
    """The broadcaster item a flash crowd converges on: the newest clip."""
    return max(
        world.clips_by_id.values(), key=lambda clip: (clip.published_s, clip.clip_id)
    ).clip_id


def rush_hour_script(
    world: SyntheticWorld,
    *,
    seed: int,
    window_s: float = DEFAULT_WINDOW_S,
    recommend_every: int = 2,
) -> ScenarioScript:
    """The whole population commutes at once; devices upload in windows."""
    rng = DeterministicRng(seed).fork("rush_hour")
    fixes_by_user = _live_fixes(world)
    windows = _drive_windows(fixes_by_user, window_s)
    sink = _EventSink()
    _driving_backbone(sink, windows, recommend_every=recommend_every, beat="rush_hour")
    # En-route listening: around mid-drive and on arrival each commuter
    # reports a completed clip, so preference learning runs under load.
    clip_ids = _catalogue_clip_ids(world)
    for user_id in sorted(fixes_by_user):
        fixes = fixes_by_user[user_id]
        user_rng = rng.fork("feedback", user_id)
        for label, fix in (("mid", fixes[len(fixes) // 2]), ("arrival", fixes[-1])):
            sink.add(
                fix.timestamp_s,
                "POST",
                "/v1/feedback",
                body={
                    "user_id": user_id,
                    "content_id": user_rng.choice(clip_ids),
                    "kind": "completed" if user_rng.bernoulli(0.7) else "like",
                    "timestamp_s": fix.timestamp_s,
                    "listened_s": round(user_rng.uniform(60.0, 240.0), 3),
                },
                tags=(("beat", "rush_hour"), ("phase", label)),
            )
    return ScenarioScript(
        name="rush_hour",
        seed=seed,
        events=sink.sorted_events(),
        metadata={
            "commuters": len(fixes_by_user),
            "window_s": window_s,
            "windows": len(windows),
        },
    )


def flash_crowd_script(
    world: SyntheticWorld,
    *,
    seed: int,
    window_s: float = DEFAULT_WINDOW_S,
    burst_requests_per_user: int = 3,
) -> ScenarioScript:
    """Everyone converges on one broadcaster clip mid-commute."""
    rng = DeterministicRng(seed).fork("flash_crowd")
    fixes_by_user = _live_fixes(world)
    windows = _drive_windows(fixes_by_user, window_s)
    sink = _EventSink()
    _driving_backbone(sink, windows, recommend_every=3, beat="drive")
    hot_clip = _hot_clip_id(world)
    # The crowd hits in the middle third of the drive span.
    mid_index = len(windows) // 2
    burst_start = windows[max(0, mid_index - 1)][0]
    burst_span = max(window_s, windows[-1][0] - burst_start) / 3.0
    tags = (("beat", "flash_crowd"), ("clip", hot_clip))
    for user_id in sorted(fixes_by_user):
        user_rng = rng.fork("burst", user_id)
        for _ in range(burst_requests_per_user):
            t = burst_start + user_rng.uniform(0.0, burst_span)
            sink.add(t, "GET", f"/v1/clips/{hot_clip}", tags=tags + (("user", user_id),))
            sink.add(
                t,
                "GET",
                f"/v1/recommendations/{user_id}",
                query={"now_s": repr(t)},
                tags=tags + (("user", user_id),),
            )
        feedback_t = burst_start + user_rng.uniform(0.0, burst_span)
        sink.add(
            feedback_t,
            "POST",
            "/v1/feedback",
            body={
                "user_id": user_id,
                "content_id": hot_clip,
                "kind": "like" if user_rng.bernoulli(0.6) else "completed",
                "timestamp_s": feedback_t,
                "listened_s": round(user_rng.uniform(30.0, 180.0), 3),
            },
            tags=tags + (("user", user_id),),
        )
        # Crowd spillover: catalogue listing walks while the item is hot.
        sink.add(
            burst_start + user_rng.uniform(0.0, burst_span),
            "GET",
            "/v1/clips",
            query={"limit": "10"},
            tags=tags,
        )
    return ScenarioScript(
        name="flash_crowd",
        seed=seed,
        events=sink.sorted_events(),
        metadata={
            "commuters": len(fixes_by_user),
            "window_s": window_s,
            "hot_clip": hot_clip,
            "burst_requests_per_user": burst_requests_per_user,
        },
    )


def handover_script(
    world: SyntheticWorld,
    *,
    seed: int,
    window_s: float = DEFAULT_WINDOW_S,
    broadcast_coverage: float = 0.7,
) -> ScenarioScript:
    """Drives through patchy coverage: each gap is a broadcast→unicast handover.

    While a commuter is inside broadcast coverage the linear programme
    arrives over the air and generates no wire traffic; each
    out-of-coverage window makes the hybrid player fetch its personalized
    clip over IP.  The script's metadata carries the
    :class:`~repro.delivery.DeliveryCostModel` estimate for the same
    coverage, so the recorded traffic and the analytic model are
    comparable.
    """
    if not 0.0 <= broadcast_coverage <= 1.0:
        raise ValidationError("broadcast_coverage must be in [0, 1]")
    rng = DeterministicRng(seed).fork("handover")
    fixes_by_user = _live_fixes(world)
    windows = _drive_windows(fixes_by_user, window_s)
    sink = _EventSink()
    _driving_backbone(sink, windows, recommend_every=3, beat="drive")
    clip_ids = _catalogue_clip_ids(world)
    handovers = 0
    for index, (w_end, in_window) in enumerate(windows):
        for user_id in sorted(in_window):
            user_rng = rng.fork("coverage", user_id, index)
            if user_rng.bernoulli(broadcast_coverage):
                continue  # still inside coverage; the mux carries the audio
            handovers += 1
            clip_id = user_rng.choice(clip_ids)
            sink.add(
                w_end,
                "GET",
                f"/v1/clips/{clip_id}",
                tags=(
                    ("beat", "handover"),
                    ("user", user_id),
                    ("mode", "unicast"),
                    ("handover", "broadcast->unicast"),
                ),
            )
    cost_model = DeliveryCostModel(broadcast_coverage=broadcast_coverage)
    report = cost_model.report(len(fixes_by_user))
    return ScenarioScript(
        name="handover",
        seed=seed,
        events=sink.sorted_events(),
        metadata={
            "commuters": len(fixes_by_user),
            "window_s": window_s,
            "broadcast_coverage": broadcast_coverage,
            "handovers": handovers,
            "unicast_window_s_total": handovers * window_s,
            "cost_model": {
                "hybrid_unicast_bytes": report.hybrid_unicast_bytes,
                "pure_streaming_bytes": report.pure_streaming_bytes,
                "broadcast_equivalent_bytes": report.broadcast_equivalent_bytes,
            },
        },
    )


def build_scenario(name: str, world: SyntheticWorld, *, seed: int) -> ScenarioScript:
    """Build one registered scenario by name (the matrix entry point)."""
    builders = {
        "rush_hour": rush_hour_script,
        "flash_crowd": flash_crowd_script,
        "handover": handover_script,
    }
    builder = builders.get(name)
    if builder is None:
        raise ValidationError(
            f"unknown scenario {name!r} (have {', '.join(SCENARIO_NAMES)})"
        )
    return builder(world, seed=seed)

"""Invariant checking: chaos-surviving state must match the reference run.

After every injection a chaos run's server is fingerprinted and compared
field-by-field against the fingerprint of an identical replay that saw no
faults.  The fingerprint covers the surfaces ISSUE-level recovery claims
are made about:

* **recommendations** — the wire body of ``GET /v1/recommendations`` for
  every probe user at a fixed scenario time;
* **model freshness** — ``PphcrServer.model_freshness`` epochs/trip
  counts and the streaming model's stay-point/cluster geometry;
* **tracking** — per-user fix counts, monotonic ingest counters and the
  latest fix timestamp;
* **preferences + feedback** — learned category affinities and the full
  feedback history *normalized without event ids* (a device retry after
  a crash legitimately draws fresh ids for the same events);
* **merged cursors** — the ``GET /v1/users`` directory walked page by
  page through keyset cursors (exercises the k-way shard merge);
* **ops metrics sanity** — telemetry still answers, histogram
  percentiles are ordered, counters are non-negative.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import NotFoundError

#: Fingerprint dict keys, in comparison order (stable error messages).
FINGERPRINT_SECTIONS = (
    "recommendations",
    "model_freshness",
    "streaming_models",
    "tracking",
    "preferences",
    "feedback",
    "user_directory",
    "clip_count",
)


def _wire(gateway, method: str, path: str, *, query: Optional[Dict[str, str]] = None):
    status, body, _headers = gateway.handle_wire(method, path, None, query=query)
    return status, body


def _normalized_feedback(server, user_id: str) -> List[tuple]:
    events = server.users.feedback.events_for_user(user_id)
    return sorted(
        (e.content_id, e.kind.value, e.timestamp_s, e.listened_s, e.is_clip)
        for e in events
    )


def _streaming_model(server, user_id: str) -> Optional[Dict[str, Any]]:
    snapshot = server.streaming.model_snapshot(user_id)
    if snapshot is None:
        return None
    return {
        "trip_count": snapshot.trip_count,
        "epoch": snapshot.epoch,
        "dirty_trips": snapshot.dirty_trips,
        "stay_points": len(snapshot.stay_points),
        "clusters": len(snapshot.clusters),
    }


def _tracking_state(server, user_id: str) -> Dict[str, Any]:
    tracking = server.users.tracking
    try:
        latest = tracking.latest_fix(user_id).timestamp_s
    except NotFoundError:
        latest = None
    return {
        "fix_count": tracking.fix_count(user_id),
        "fixes_added": tracking.fixes_added(user_id),
        "latest_timestamp_s": latest,
    }


def _user_directory(gateway, *, page_limit: int) -> List[str]:
    """Walk GET /v1/users through its keyset cursor; returns all user ids."""
    import json

    collected: List[str] = []
    cursor: Optional[str] = None
    while True:
        query = {"limit": str(page_limit)}
        if cursor:
            query["cursor"] = cursor
        status, body = _wire(gateway, "GET", "/v1/users", query=query)
        if status != 200:
            raise AssertionError(f"GET /v1/users returned {status}: {body}")
        payload = json.loads(body) if isinstance(body, str) else body
        collected.extend(item["user_id"] for item in payload["users"])
        cursor = payload.get("next_cursor")
        if not cursor:
            return collected


def state_fingerprint(
    server,
    *,
    user_ids: List[str],
    now_s: float,
    page_limit: int = 3,
    gateway=None,
) -> Dict[str, Any]:
    """A comparable snapshot of every surface the chaos claims cover.

    A fresh default gateway is built unless one is passed, so fingerprints
    never depend on rate-limiter or cache state accumulated during the
    replay itself.
    """
    if gateway is None:
        from repro.pipeline.gateway.gateway import Gateway

        gateway = Gateway(server)
    recommendations: Dict[str, Any] = {}
    for user_id in user_ids:
        status, body = _wire(
            gateway,
            "GET",
            f"/v1/recommendations/{user_id}",
            query={"now_s": repr(now_s)},
        )
        recommendations[user_id] = {"status": status, "body": body}
    return {
        "recommendations": recommendations,
        "model_freshness": {u: tuple(server.model_freshness(u)) for u in user_ids},
        "streaming_models": {u: _streaming_model(server, u) for u in user_ids},
        "tracking": {u: _tracking_state(server, u) for u in user_ids},
        "preferences": {
            u: server.users.preference_profile(u).to_payload() for u in user_ids
        },
        "feedback": {u: _normalized_feedback(server, u) for u in user_ids},
        "user_directory": _user_directory(gateway, page_limit=page_limit),
        "clip_count": len(server.content.clips()),
    }


def metrics_sanity_violations(telemetry) -> List[str]:
    """Ops-metrics sanity: the registry still answers and is well-formed."""
    violations: List[str] = []
    snapshot = telemetry.metrics_snapshot()
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            violations.append(f"metrics snapshot missing section {section!r}")
    for name, family in snapshot.get("counters", {}).items():
        for series in family.get("series", []):
            if series.get("value", 0) < 0:
                violations.append(
                    f"counter {name}{series.get('labels')} is negative"
                )
    for name, family in snapshot.get("histograms", {}).items():
        for series in family.get("series", []):
            if series.get("count", 0) < 0:
                violations.append(f"histogram {name} has negative count")
            p50 = series.get("p50")
            p95 = series.get("p95")
            p99 = series.get("p99")
            if None not in (p50, p95, p99) and not p50 <= p95 <= p99:
                violations.append(
                    f"histogram {name}{series.get('labels')} "
                    f"percentiles unordered: p50={p50} p95={p95} p99={p99}"
                )
    return violations


def check_invariants(
    server,
    reference: Dict[str, Any],
    *,
    user_ids: List[str],
    now_s: float,
    page_limit: int = 3,
) -> List[str]:
    """Compare a chaos-survivor against the reference fingerprint.

    Returns a list of human-readable violations — empty means the
    surviving state is indistinguishable from the uninjected run and the
    ops metrics still make sense.
    """
    violations: List[str] = []
    actual = state_fingerprint(
        server, user_ids=user_ids, now_s=now_s, page_limit=page_limit
    )
    for section in FINGERPRINT_SECTIONS:
        if actual[section] != reference[section]:
            violations.append(
                f"{section} diverged from reference:\n"
                f"  reference: {reference[section]!r}\n"
                f"  actual:    {actual[section]!r}"
            )
    violations.extend(metrics_sanity_violations(server.telemetry))
    return violations

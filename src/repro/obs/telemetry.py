"""The telemetry bundle: one object wiring registry, tracer and slow log.

:class:`Telemetry` is what the server constructs from its
:class:`TelemetryConfig` and threads through the layers; it owns

* the :class:`~repro.obs.metrics.MetricsRegistry` every counter/histogram
  records into (or the null registry when disabled),
* the :class:`~repro.obs.tracing.Tracer` whose context flows from the
  gateway through the shard worker pool (or the null tracer),
* the :class:`~repro.obs.slowlog.SlowQueryLog` fed by the query observer.

The ``observe_*`` helpers install the instrumentation:

* :meth:`observe_database` / :meth:`observe_sharded` attach a query
  observer to every table (timing planner queries and keyset page walks)
  and register a pull-time collector folding ``Database.stats()`` row/
  index-hit/scan counters into gauges;
* :meth:`observe_pool` registers a collector over
  ``ShardWorkerPool.stats()`` (queue depth, busy time, imbalance).

Telemetry state is process-lifetime observability: it is deliberately
**excluded** from server snapshot/restore (a restored process starts with
fresh counters, exactly like a restarted one — see
``PphcrServer.snapshot``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.errors import PipelineError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import NullTracer, Tracer


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the unified telemetry subsystem.

    ``enabled=False`` swaps in the null registry/tracer: instrumented call
    sites stay, each costing one no-op call (the <5 % budget asserted by
    ``BENCH_telemetry_overhead.json``).  ``slow_query_threshold_s`` gates
    the slow-query log and slow-span recording;
    ``slow_trace_threshold_s`` gates the slow-trace ring buffer.
    ``keep_samples`` retains raw histogram samples for exact-reference
    percentile tests — debug only, it makes histograms O(n) in memory.
    """

    enabled: bool = True
    slow_query_threshold_s: float = 0.050
    slow_trace_threshold_s: float = 0.500
    trace_buffer: int = 128
    slow_query_buffer: int = 256
    latency_buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    keep_samples: bool = False

    def __post_init__(self) -> None:
        if self.slow_query_threshold_s < 0:
            raise PipelineError("slow_query_threshold_s must be >= 0")
        if self.slow_trace_threshold_s < 0:
            raise PipelineError("slow_trace_threshold_s must be >= 0")
        if self.trace_buffer < 1 or self.slow_query_buffer < 1:
            raise PipelineError("telemetry buffers must be >= 1")


class Telemetry:
    """Registry + tracer + slow-query log behind one enable switch."""

    def __init__(self, config: TelemetryConfig = TelemetryConfig()) -> None:
        self._config = config
        if config.enabled:
            self.metrics: Union[MetricsRegistry, NullRegistry] = MetricsRegistry(
                keep_samples=config.keep_samples
            )
            self.tracer: Union[Tracer, NullTracer] = Tracer(
                buffer=config.trace_buffer,
                slow_threshold_s=config.slow_trace_threshold_s,
            )
        else:
            self.metrics = NullRegistry()
            self.tracer = NullTracer()
        self.slow_queries = SlowQueryLog(maxlen=config.slow_query_buffer)

    @property
    def config(self) -> TelemetryConfig:
        """The telemetry configuration."""
        return self._config

    @property
    def enabled(self) -> bool:
        """Whether real (non-null) telemetry is active."""
        return self._config.enabled

    def latency_histogram(self, name: str, help: str = "", labels=()) :
        """A histogram family on the configured latency buckets."""
        return self.metrics.histogram(
            name, help, labels, buckets=self._config.latency_buckets
        )

    # Storage instrumentation ---------------------------------------------

    def query_observer(
        self, database: str, shard: Optional[int] = None
    ) -> Optional[Callable[[Dict[str, Any], float, int], None]]:
        """The observer a :class:`~repro.storage.table.Table` calls per query.

        Receives ``(plan, elapsed_s, rows)`` where ``plan`` is
        :meth:`Query.explain`-shaped (keyset page walks report strategy
        ``index_page``).  Records a per-database latency histogram and a
        per-strategy counter; anything over the slow threshold also lands
        in the slow-query log and — when a trace is active — as a slow
        span carrying the shard id and the full plan.
        """
        if not self.enabled:
            return None
        queries = self.metrics.counter(
            "storage_queries_total",
            "Observed table operations by access strategy",
            labels=("database", "strategy"),
        )
        latency = self.latency_histogram(
            "storage_query_seconds",
            "Table operation latency by database",
            labels=("database",),
        )
        threshold = self._config.slow_query_threshold_s
        tracer = self.tracer
        slow_log = self.slow_queries
        # The database label is fixed per observer and strategies are a
        # small closed set, so resolved series are cached: one dict lookup
        # (not a labels() validation) per observed query.
        latency_series = latency.labels(database=database)
        strategy_series: Dict[str, Any] = {}

        def observe(plan: Dict[str, Any], elapsed_s: float, rows: int) -> None:
            strategy = plan.get("strategy", "?")
            series = strategy_series.get(strategy)
            if series is None:
                series = queries.labels(database=database, strategy=strategy)
                strategy_series[strategy] = series
            series.inc()
            latency_series.record(elapsed_s)
            if elapsed_s >= threshold:
                slow_log.record(
                    database=database,
                    shard=shard,
                    plan=plan,
                    elapsed_s=elapsed_s,
                    rows=rows,
                )
                tags = dict(plan)
                tags["database"] = database
                tags["rows"] = rows
                if shard is not None:
                    tags["shard"] = shard
                tracer.record_span("storage.query", elapsed_s, slow=True, **tags)

        return observe

    def observe_database(self, database, *, name: Optional[str] = None) -> None:
        """Instrument one plain :class:`~repro.storage.database.Database`."""
        if not self.enabled:
            return
        label = name if name is not None else database.name
        database.set_query_observer(self.query_observer(label))
        self._register_stats_collector(label, database.stats, shard="all")

    def observe_sharded(self, sharded, *, name: Optional[str] = None) -> None:
        """Instrument a :class:`~repro.storage.sharding.ShardedDatabase`.

        Each shard's tables get an observer tagged with the shard id; a
        pull-time collector folds the merged and per-shard stats into
        gauges; fan-out page merges record into a fan-out histogram.
        """
        if not self.enabled:
            return
        label = name if name is not None else sharded.name
        for index, shard_db in enumerate(sharded.databases):
            shard_db.set_query_observer(self.query_observer(label, shard=index))
        fanout = self.latency_histogram(
            "storage_fanout_seconds",
            "Cross-shard fan-out read latency by database",
            labels=("database", "table"),
        )
        fanout_series: Dict[str, Any] = {}

        def observe_fanout(table: str, elapsed_s: float) -> None:
            series = fanout_series.get(table)
            if series is None:
                series = fanout.labels(database=label, table=table)
                fanout_series[table] = series
            series.record(elapsed_s)

        sharded.set_fanout_observer(observe_fanout)

        def collect(registry) -> None:
            stats = sharded.stats()
            self._set_stats_gauges(label, stats, shard="all")
            for index, shard_stats in enumerate(stats["shards"]):
                self._set_stats_gauges(label, shard_stats, shard=str(index))

        self.metrics.register_collector(collect)

    def _stats_gauges(self):
        rows = self.metrics.gauge(
            "storage_rows", "Rows stored by database/shard", labels=("database", "shard")
        )
        hits = self.metrics.gauge(
            "storage_index_hits",
            "Planner index hits by database/shard",
            labels=("database", "shard"),
        )
        scans = self.metrics.gauge(
            "storage_scans",
            "Planner full scans (fallback path) by database/shard",
            labels=("database", "shard"),
        )
        return rows, hits, scans

    def _set_stats_gauges(self, label: str, stats: Dict[str, Any], *, shard: str) -> None:
        rows, hits, scans = self._stats_gauges()
        rows.labels(database=label, shard=shard).set(stats["total_rows"])
        hits.labels(database=label, shard=shard).set(stats["index_hits"])
        scans.labels(database=label, shard=shard).set(stats["scans"])

    def _register_stats_collector(
        self, label: str, stats_fn: Callable[[], Dict[str, Any]], *, shard: str
    ) -> None:
        def collect(registry) -> None:
            self._set_stats_gauges(label, stats_fn(), shard=shard)

        self.metrics.register_collector(collect)

    # Worker instrumentation ----------------------------------------------

    def observe_pool(self, pool) -> None:
        """Fold :meth:`ShardWorkerPool.stats` into gauges at pull time."""
        if not self.enabled:
            return
        depth = self.metrics.gauge(
            "shard_queue_depth", "Tasks submitted but not finished", labels=("shard",)
        )
        busy = self.metrics.gauge(
            "shard_busy_seconds", "Cumulative task wall time per shard", labels=("shard",)
        )
        imbalance = self.metrics.gauge(
            "shard_busy_imbalance", "Max over mean per-shard busy time (1.0 = balanced)"
        )

        def collect(registry) -> None:
            stats = pool.stats()
            for shard_stats in stats["shards"]:
                shard = str(shard_stats["shard"])
                depth.labels(shard=shard).set(shard_stats["queue_depth"])
                busy.labels(shard=shard).set(shard_stats["busy_s"])
            imbalance.labels().set(stats["busy_imbalance"])

        self.metrics.register_collector(collect)

    # Wire payloads --------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry's JSON payload (collectors run first)."""
        return self.metrics.snapshot()

    def prometheus_text(self) -> str:
        """The registry's Prometheus text exposition."""
        return self.metrics.prometheus_text()

    def traces_snapshot(self, limit: int = 50) -> Dict[str, Any]:
        """Recent traces, slow traces and the slow-query log, newest first."""
        return {
            "recent": self.tracer.recent(limit),
            "slow": self.tracer.slow(limit),
            "slow_queries": self.slow_queries.entries(limit),
        }

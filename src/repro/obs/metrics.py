"""Labeled metrics: counters, gauges and fixed-bucket streaming histograms.

The registry is the one sink every instrumented layer reports through
(gateway middleware, storage planner, shard workers, streaming engines,
compactor).  Three design rules keep it cheap enough to leave on in
production:

* **O(1) record** — a histogram observation is one bisect into a fixed
  bucket table plus a few integer adds; no sample list is retained unless
  the registry was built with ``keep_samples=True`` (a debug/test mode).
* **Quantiles with bounded error** — p50/p95/p99 are estimated from the
  bucket counts: the estimate is the upper edge of the bucket holding the
  nearest-rank sample, clamped into ``[min, max]`` of the observed values.
  The estimate therefore always lands in the *same bucket* as the exact
  nearest-rank reference, so the error is at most one bucket width (the
  guarantee ``tests/test_telemetry.py`` asserts against a sorted-list
  reference).
* **Pull-time collection** — gauges derived from live state
  (``Database.stats()`` counters, worker queue depths) are folded in by
  registered collector callbacks when a snapshot or exposition is taken,
  so the hot path never pays for them.

A disabled deployment uses :class:`NullRegistry`: every family/series
method is a shared no-op object, so instrumented call sites cost one
attribute lookup and one no-op call (the <5 % overhead budget gated by
``BENCH_telemetry_overhead.json``).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError

#: Log-spaced latency buckets (seconds): 0.5 ms doubling up to ~8.2 s, plus
#: an implicit overflow bucket.  Doubling keeps the relative quantile error
#: bounded (an estimate is off by at most one bucket width ≈ the value
#: itself), which is the right trade for request/query latencies spanning
#: microseconds to seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(0.0005 * (2 ** i) for i in range(15))


def _label_values(declared: Tuple[str, ...], kwargs: Dict[str, Any]) -> Tuple[str, ...]:
    if set(kwargs) != set(declared):
        raise ValidationError(
            f"labels {sorted(kwargs)} do not match declared {sorted(declared)}"
        )
    return tuple(str(kwargs[name]) for name in declared)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class CounterSeries:
    """One labeled counter: a monotonically increasing float."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class GaugeSeries:
    """One labeled gauge: a value that can move in either direction."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self.inc(-amount)


class HistogramSeries:
    """One labeled histogram: fixed buckets, O(1) record, bounded-error quantiles."""

    __slots__ = (
        "_lock",
        "bounds",
        "counts",
        "count",
        "total",
        "min",
        "max",
        "samples",
    )

    def __init__(
        self,
        bounds: Tuple[float, ...],
        lock: threading.Lock,
        *,
        keep_samples: bool = False,
    ) -> None:
        self._lock = lock
        self.bounds = bounds
        # counts[i] holds values <= bounds[i] (and > bounds[i-1]); the last
        # slot is the overflow bucket for values above every bound.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: Optional[List[float]] = [] if keep_samples else None

    def record(self, value: float) -> None:
        """Record one observation (one bisect + integer adds)."""
        value = float(value)
        bucket = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[bucket] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if self.samples is not None:
                self.samples.append(value)

    observe = record

    def bucket_range(self, value: float) -> Tuple[float, float]:
        """``(low, high]`` edges of the bucket holding ``value``.

        The overflow bucket's high edge is reported as ``inf``.  Used by
        the quantile-accuracy tests: the estimate and the exact reference
        must share a bucket.
        """
        bucket = bisect_left(self.bounds, value)
        low = self.bounds[bucket - 1] if bucket > 0 else float("-inf")
        high = self.bounds[bucket] if bucket < len(self.bounds) else float("inf")
        return low, high

    def quantile(self, q: float) -> Optional[float]:
        """Bounded-error quantile estimate from the bucket counts.

        Matches the nearest-rank definition (``rank = ceil(q * n)``, 1-based
        over the sorted samples): the estimate is the upper edge of the
        bucket containing the rank-th sample, clamped into
        ``[min, max]`` of everything observed — which keeps it inside the
        reference sample's own bucket, so ``|estimate - exact| <= bucket
        width`` always holds.
        """
        if not 0.0 < q <= 1.0:
            raise ValidationError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return None
            rank = max(1, math.ceil(q * self.count))
            cumulative = 0
            bucket = len(self.counts) - 1
            for index, bucket_count in enumerate(self.counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    bucket = index
                    break
            if bucket >= len(self.bounds):
                estimate = self.max
            else:
                estimate = self.bounds[bucket]
            return min(max(estimate, self.min), self.max)

    def snapshot(self) -> Dict[str, Any]:
        """Counts, sum, min/max, per-bucket breakdown and p50/p95/p99."""
        with self._lock:
            counts = list(self.counts)
            count = self.count
            total = self.total
            low, high = self.min, self.max
        summary: Dict[str, Any] = {
            "count": count,
            "sum": round(total, 9),
            "min": low,
            "max": high,
            "buckets": [
                {"le": bound, "count": counts[index]}
                for index, bound in enumerate(self.bounds)
                if counts[index]
            ],
            "overflow": counts[-1],
        }
        if count:
            for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                summary[name] = self.quantile(q)
        return summary


class _Family:
    """Shared machinery of one named metric family with declared labels."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._lock = lock
        self._series: Dict[Tuple[str, ...], Any] = {}

    def _new_series(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **kwargs: Any) -> Any:
        """The series for one label-value combination (created on first use)."""
        values = _label_values(self.label_names, kwargs)
        series = self._series.get(values)
        if series is None:
            with self._lock:
                series = self._series.get(values)
                if series is None:
                    series = self._new_series()
                    self._series[values] = series
        return series

    def series(self) -> List[Tuple[Dict[str, str], Any]]:
        """``(labels, series)`` pairs in creation order."""
        return [
            (dict(zip(self.label_names, values)), series)
            for values, series in list(self._series.items())
        ]


class CounterFamily(_Family):
    kind = "counter"

    def _new_series(self) -> CounterSeries:
        return CounterSeries(self._lock)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Shorthand: ``family.labels(**labels).inc(amount)``."""
        self.labels(**labels).inc(amount)


class GaugeFamily(_Family):
    kind = "gauge"

    def _new_series(self) -> GaugeSeries:
        return GaugeSeries(self._lock)

    def set(self, value: float, **labels: Any) -> None:
        """Shorthand: ``family.labels(**labels).set(value)``."""
        self.labels(**labels).set(value)


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
        *,
        buckets: Tuple[float, ...],
        keep_samples: bool = False,
    ) -> None:
        super().__init__(name, help_text, label_names, lock)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValidationError("histogram buckets must be distinct and ascending")
        self.buckets = tuple(float(bound) for bound in buckets)
        self._keep_samples = keep_samples

    def _new_series(self) -> HistogramSeries:
        return HistogramSeries(self.buckets, self._lock, keep_samples=self._keep_samples)

    def record(self, value: float, **labels: Any) -> None:
        """Shorthand: ``family.labels(**labels).record(value)``."""
        self.labels(**labels).record(value)


class MetricsRegistry:
    """The process-wide registry of metric families.

    Family declarations are idempotent: asking for an existing name with
    the same kind and labels returns the existing family (so call sites
    can declare where they record without threading family objects
    around); a conflicting redeclaration raises.

    ``collectors`` registered with :meth:`register_collector` run at
    snapshot/exposition time to fold pull-style state (storage counters,
    queue depths) into gauges — the hot path never updates them.
    """

    enabled = True

    def __init__(self, *, keep_samples: bool = False) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._keep_samples = keep_samples

    def _declare(self, name: str, factory: Callable[[], _Family], kind: str, labels: Tuple[str, ...]) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = factory()
                    self._families[name] = family
                    return family
        if family.kind != kind or family.label_names != labels:
            raise ValidationError(
                f"metric {name!r} already declared as {family.kind} with labels "
                f"{family.label_names}, not {kind} with {labels}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> CounterFamily:
        """Declare (or fetch) a counter family."""
        names = tuple(labels)
        return self._declare(
            name, lambda: CounterFamily(name, help, names, self._lock), "counter", names
        )

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> GaugeFamily:
        """Declare (or fetch) a gauge family."""
        names = tuple(labels)
        return self._declare(
            name, lambda: GaugeFamily(name, help, names, self._lock), "gauge", names
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        """Declare (or fetch) a histogram family with fixed buckets."""
        names = tuple(labels)
        return self._declare(
            name,
            lambda: HistogramFamily(
                name,
                help,
                names,
                self._lock,
                buckets=tuple(buckets),
                keep_samples=self._keep_samples,
            ),
            "histogram",
            names,
        )

    def register_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Run ``collector(self)`` before every snapshot/exposition."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run all registered collectors (folding pull-style state in)."""
        for collector in list(self._collectors):
            collector(self)

    def families(self) -> List[_Family]:
        """All declared families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """All families and series as one JSON-serializable payload.

        Histogram entries carry precomputed ``p50``/``p95``/``p99`` so wire
        clients of ``GET /v1/ops/metrics`` read percentiles directly.
        """
        self.collect()
        payload: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for family in self.families():
            entry: Dict[str, Any] = {
                "help": family.help,
                "labels": list(family.label_names),
                "series": [],
            }
            for label_map, series in family.series():
                if family.kind == "histogram":
                    record: Dict[str, Any] = {"labels": label_map}
                    record.update(series.snapshot())
                else:
                    record = {"labels": label_map, "value": series.value}
                entry["series"].append(record)
            payload[family.kind + "s"][family.name] = entry
        return payload

    def prometheus_text(self) -> str:
        """Prometheus text exposition (``# HELP``/``# TYPE`` + samples)."""
        self.collect()
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for label_map, series in family.series():
                label_text = ",".join(
                    f'{key}="{_escape_label(value)}"' for key, value in label_map.items()
                )
                if family.kind == "histogram":
                    cumulative = 0
                    for index, bound in enumerate(series.bounds):
                        cumulative += series.counts[index]
                        bucket_labels = label_text + ("," if label_text else "")
                        lines.append(
                            f'{family.name}_bucket{{{bucket_labels}le="{bound:g}"}} {cumulative}'
                        )
                    cumulative += series.counts[-1]
                    bucket_labels = label_text + ("," if label_text else "")
                    lines.append(
                        f'{family.name}_bucket{{{bucket_labels}le="+Inf"}} {cumulative}'
                    )
                    suffix = f"{{{label_text}}}" if label_text else ""
                    lines.append(f"{family.name}_sum{suffix} {series.total:g}")
                    lines.append(f"{family.name}_count{suffix} {series.count}")
                else:
                    suffix = f"{{{label_text}}}" if label_text else ""
                    lines.append(f"{family.name}{suffix} {series.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


class _NullSeries:
    """Shared no-op series: every mutation is a constant-time no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    observe = record


class _NullFamily:
    """Shared no-op family returned by every NullRegistry declaration."""

    __slots__ = ()
    _series = _NullSeries()

    def labels(self, **kwargs: Any) -> _NullSeries:
        return self._series

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def record(self, value: float, **labels: Any) -> None:
        pass


class NullRegistry:
    """The disabled-telemetry registry: declarations and records are no-ops.

    Instrumented call sites keep a single code path — the family objects
    they hold are shared no-ops, so the per-record cost is one attribute
    lookup plus an empty call (benchmarked under the 5 % budget by
    ``benchmarks/bench_telemetry_overhead.py``).
    """

    enabled = False
    _family = _NullFamily()

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> _NullFamily:
        return self._family

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> _NullFamily:
        return self._family

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _NullFamily:
        return self._family

    def register_collector(self, collector: Callable[[Any], None]) -> None:
        pass

    def collect(self) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def prometheus_text(self) -> str:
        return ""

"""Unified observability: metrics registry, tracer, slow-query log.

The substrate every layer reports through (see ``docs/ARCHITECTURE.md``,
"Observability"):

* :class:`MetricsRegistry` — labeled counters/gauges and fixed-bucket
  streaming histograms with O(1) record and bounded-error p50/p95/p99;
* :class:`Tracer` — trace/span context that follows a request from
  ``Gateway.handle_wire`` across the shard worker threads, with ring
  buffers of recent and slow traces;
* :class:`SlowQueryLog` — table operations over a threshold, with their
  ``explain()`` plan and shard;
* :class:`Telemetry` — the bundle the server wires through the layers,
  with null variants behind ``TelemetryConfig(enabled=False)`` keeping
  the disabled hot path negligible.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    HistogramSeries,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.obs.tracing import NullTracer, Span, Trace, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "HistogramSeries",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "SlowQueryLog",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "Trace",
    "Tracer",
]

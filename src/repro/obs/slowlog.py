"""The slow-query log: table operations over a threshold, with their plan.

Every instrumented storage operation — planner-routed :class:`Query`
terminals, keyset ``page_by_index`` walks, sharded fan-out merges —
reports its plan and wall time to the telemetry query observer; anything
over the configured threshold lands here with enough context to act on:
which database and table, which shard, which access path
(:meth:`Query.explain`-shaped plan), how long, how many rows.

The log is a ring buffer (``deque(maxlen=...)``), so it is O(1) per entry
and never grows: an ops surface, not an audit trail.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional


class SlowQueryLog:
    """A bounded, newest-first log of over-threshold table operations."""

    def __init__(self, *, maxlen: int = 256) -> None:
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=maxlen)
        self._recorded = 0

    @property
    def recorded(self) -> int:
        """Slow operations ever recorded (including ones evicted)."""
        return self._recorded

    def record(
        self,
        *,
        database: str,
        shard: Optional[int],
        plan: Dict[str, Any],
        elapsed_s: float,
        rows: int,
    ) -> Dict[str, Any]:
        """Append one slow operation; returns the stored entry."""
        entry = {
            "database": database,
            "shard": shard,
            "table": plan.get("table"),
            "plan": dict(plan),
            "elapsed_ms": round(elapsed_s * 1000.0, 3),
            "rows": rows,
        }
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return entry

    def entries(self, limit: int = 50) -> List[Dict[str, Any]]:
        """The most recent slow operations, newest first."""
        with self._lock:
            entries = list(self._entries)
        return [dict(entry) for entry in reversed(entries[-limit:])]

    def clear(self) -> None:
        """Drop all entries (benchmark isolation)."""
        with self._lock:
            self._entries.clear()

"""Request tracing: spans that follow work across the shard worker threads.

One trace covers one logical operation (usually one gateway request).  The
active ``(trace, span)`` context is thread-local; crossing into a
:class:`~repro.storage.sharding.ShardWorkerPool` worker is explicit —
Python thread pools do not inherit thread-locals, so the submitter calls
:meth:`Tracer.capture` and the worker re-enters the context with
:meth:`Tracer.adopt` (the pool does this automatically when built with a
tracer).  Spans carry tags — the shard id for worker tasks, the planner's
``explain()`` output for storage queries — so a slow response can be tied
to the shard and access path that caused it.

Finished traces land in two ring buffers (recent and slow) sized by
configuration; ``GET /v1/ops/traces`` serves both.  A trace is *slow* when
its wall time crosses the threshold **or** when any slow-query span was
recorded into it (:meth:`Tracer.record_span` with ``slow=True``), so a
fast-looking request that hid a slow query still surfaces.

The :class:`NullTracer` keeps the disabled path allocation-free: ``trace``
and ``span`` return one shared no-op context manager.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

_span_ids = itertools.count(1)


class Span:
    """One timed unit of work inside a trace."""

    __slots__ = ("span_id", "parent_id", "name", "started", "elapsed_s", "tags")

    def __init__(self, name: str, parent_id: Optional[int], tags: Dict[str, Any]) -> None:
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.name = name
        self.started = time.perf_counter()
        self.elapsed_s: Optional[float] = None
        self.tags = tags

    def to_dict(self) -> Dict[str, Any]:
        elapsed = self.elapsed_s if self.elapsed_s is not None else 0.0
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "elapsed_ms": round(elapsed * 1000.0, 3),
            "tags": dict(self.tags),
        }


class Trace:
    """One logical operation: a root span plus everything under it.

    A trace is its own context manager (``with tracer.trace(...) as t:``) —
    entering pushes it onto the tracer's thread-local stack, exiting stamps
    the wall time and hands it to the ring buffers.  Keeping enter/exit on
    the trace object itself (no wrapper allocation, no helper-call layers)
    is part of the per-request overhead budget.
    """

    __slots__ = (
        "trace_id",
        "name",
        "tags",
        "spans",
        "started",
        "elapsed_s",
        "slow",
        "_tracer",
    )

    def __init__(
        self, tracer: "Tracer", trace_id: int, name: str, tags: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.name = name
        self.tags = tags
        self.spans: List[Span] = []
        self.started = time.perf_counter()
        self.elapsed_s: Optional[float] = None
        self.slow = False

    def set_tag(self, key: str, value: Any) -> None:
        """Attach one tag to the trace (status codes, error markers)."""
        self.tags[key] = value

    def __enter__(self) -> "Trace":
        self._tracer._push((self, None))
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_s = time.perf_counter() - self.started
        tracer = self._tracer
        tracer._pop()
        if exc is not None:
            self.tags["error"] = repr(exc)
        tracer._finish(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        elapsed = self.elapsed_s if self.elapsed_s is not None else 0.0
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "elapsed_ms": round(elapsed * 1000.0, 3),
            "slow": self.slow,
            "tags": dict(self.tags),
            "spans": [span.to_dict() for span in self.spans],
        }


class _NoopHandle:
    """What disabled trace/span context managers yield."""

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> None:
        pass


class _NoopContext:
    __slots__ = ()
    _handle = _NoopHandle()

    def __enter__(self) -> _NoopHandle:
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_CONTEXT = _NoopContext()


class _SpanContext:
    """Context manager for one child span inside the active trace."""

    __slots__ = ("_tracer", "_trace", "_span")

    def __init__(self, tracer: "Tracer", trace: Trace, span: Span) -> None:
        self._tracer = tracer
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push((self._trace, self._span))
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop()
        span = self._span
        span.elapsed_s = time.perf_counter() - span.started
        if exc is not None:
            span.tags["error"] = repr(exc)
        self._trace.spans.append(span)
        return False


class _AdoptContext:
    """Installs a captured (trace, span) context on another thread."""

    __slots__ = ("_tracer", "_entry")

    def __init__(self, tracer: "Tracer", entry: Optional[Tuple[Trace, Optional[Span]]]) -> None:
        self._tracer = tracer
        self._entry = entry

    def __enter__(self) -> Optional[Tuple[Trace, Optional[Span]]]:
        if self._entry is not None:
            self._tracer._push(self._entry)
        return self._entry

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._entry is not None:
            self._tracer._pop()
        return False


class Tracer:
    """Thread-local trace/span context plus the recent/slow ring buffers."""

    enabled = True

    def __init__(self, *, buffer: int = 128, slow_threshold_s: float = 0.5) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=buffer)
        self._slow: deque = deque(maxlen=buffer)
        self._trace_ids = itertools.count(1)
        self.slow_threshold_s = slow_threshold_s

    # Context plumbing -----------------------------------------------------

    def _stack(self) -> List[Tuple[Trace, Optional[Span]]]:
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    def _push(self, entry: Tuple[Trace, Optional[Span]]) -> None:
        self._stack().append(entry)

    def _pop(self) -> None:
        self._stack().pop()

    def _finish(self, trace: Trace) -> None:
        with self._lock:
            self._recent.append(trace)
            if trace.slow or trace.elapsed_s >= self.slow_threshold_s:
                trace.slow = True
                self._slow.append(trace)

    # Public API -----------------------------------------------------------

    def trace(self, name: str, **tags: Any) -> Trace:
        """Open a new trace on this thread (use as a context manager)."""
        return Trace(self, next(self._trace_ids), name, tags)

    def span(self, name: str, **tags: Any):
        """Open a child span of the active trace (no-op when none is active)."""
        entry = self.current()
        if entry is None:
            return _NOOP_CONTEXT
        trace, parent = entry
        parent_id = parent.span_id if parent is not None else None
        return _SpanContext(self, trace, Span(name, parent_id, tags))

    def current(self) -> Optional[Tuple[Trace, Optional[Span]]]:
        """The active (trace, span) on this thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def capture(self) -> Optional[Tuple[Trace, Optional[Span]]]:
        """The context to hand to another thread (see :meth:`adopt`)."""
        return self.current()

    def adopt(self, entry: Optional[Tuple[Trace, Optional[Span]]]) -> _AdoptContext:
        """Re-enter a :meth:`capture`-d context on the current thread.

        The shard worker pool wraps every submitted task in this, so spans
        opened on the worker attach to the submitting request's trace.
        """
        return _AdoptContext(self, entry)

    def record_span(
        self, name: str, elapsed_s: float, *, slow: bool = False, **tags: Any
    ) -> bool:
        """Attach an already-completed span to the active trace.

        The slow-query observer uses this: query timing is measured at the
        storage layer, and the finished span (plan + shard + elapsed) is
        retro-attached here.  ``slow=True`` marks the whole trace slow.
        Returns whether a trace was active to receive it.
        """
        entry = self.current()
        if entry is None:
            return False
        trace, parent = entry
        span = Span(name, parent.span_id if parent is not None else None, tags)
        span.elapsed_s = elapsed_s
        trace.spans.append(span)
        if slow:
            trace.slow = True
        return True

    def recent(self, limit: int = 50) -> List[Dict[str, Any]]:
        """The most recently finished traces, newest first."""
        with self._lock:
            traces = list(self._recent)
        return [trace.to_dict() for trace in reversed(traces[-limit:])]

    def slow(self, limit: int = 50) -> List[Dict[str, Any]]:
        """The most recent slow traces, newest first."""
        with self._lock:
            traces = list(self._slow)
        return [trace.to_dict() for trace in reversed(traces[-limit:])]


class NullTracer:
    """Disabled tracer: every context manager is one shared no-op object."""

    enabled = False
    slow_threshold_s = float("inf")

    def trace(self, name: str, **tags: Any) -> _NoopContext:
        return _NOOP_CONTEXT

    def span(self, name: str, **tags: Any) -> _NoopContext:
        return _NOOP_CONTEXT

    def current(self) -> None:
        return None

    def capture(self) -> None:
        return None

    def adopt(self, entry: Any) -> _NoopContext:
        return _NOOP_CONTEXT

    def record_span(self, name: str, elapsed_s: float, *, slow: bool = False, **tags: Any) -> bool:
        return False

    def recent(self, limit: int = 50) -> List[Dict[str, Any]]:
        return []

    def slow(self, limit: int = 50) -> List[Dict[str, Any]]:
        return []

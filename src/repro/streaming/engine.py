"""The streaming mobility engine: fixes in, live mobility models out.

Glues the online :class:`~repro.streaming.sessionizer.TripSessionizer` to
the :class:`~repro.streaming.incremental.IncrementalMobilityModel` and
narrates progress on the message bus:

* ``tracking.trip_completed`` — the sessionizer closed a trip;
* ``tracking.staypoint_spawned`` — a density neighbourhood formed online;
* ``tracking.model_repaired`` — a drift repair re-mined a trip list.

The engine is registered as a fix listener on the
:class:`~repro.users.management.UserManager`, so every fix accepted into
the tracking DB flows through it at O(1) amortized cost, and a fresh model
is available per user at any time without touching the raw history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import ValidationError
from repro.spatialdb.tracking_store import GpsFix
from repro.streaming.incremental import (
    IncrementalConfig,
    IncrementalMobilityModel,
    MobilitySnapshot,
)
from repro.streaming.sessionizer import SessionizerConfig, TripSessionizer
from repro.trajectory.model import Trajectory

if TYPE_CHECKING:  # imported lazily to keep streaming importable on its own
    from repro.pipeline.messaging import MessageBus


@dataclass(frozen=True)
class StreamingConfig:
    """Switchboard for the streaming mobility subsystem.

    ``sessionizer`` and ``incremental`` carry the trip-boundary and mining
    parameters; the server overrides ``incremental.eps_m`` with its own
    ``stay_point_eps_m`` so the streaming and batch paths mine with
    identical parameters — a precondition for the decision-equality
    invariants below (see ``docs/ARCHITECTURE.md``, "Streaming-ingest
    flow").  With ``enabled`` false the server never instantiates the
    engine and every model request takes the batch path.
    """

    enabled: bool = True
    sessionizer: SessionizerConfig = SessionizerConfig()
    incremental: IncrementalConfig = IncrementalConfig()


class StreamingMobilityEngine:
    """Maintains per-user mobility models incrementally as fixes arrive.

    Invariants (asserted by the equivalence tests; the data flow is drawn
    in ``docs/ARCHITECTURE.md``):

    * **batch equality on demand** — ``model_snapshot(user,
      include_open_tail=True)`` equals what the batch miner
      (``split_into_trips`` + ``stay_points_from_trips`` +
      ``cluster_trips``) produces over the user's full fix history, because
      the sessionizer is decision-equal to the batch splitter and the
      full snapshot re-mines the compact trip list with the batch
      algorithms;
    * **monotonic observability** — ``fixes_observed`` and
      ``observed_fix_count(user)`` only grow; comparing the latter against
      ``TrackingStore.fixes_added`` tells callers whether this engine saw
      every fix (fixes written directly to the store bypass it, and such
      users must take the batch path);
    * **bus narration** — every completed trip, online stay-point spawn and
      drift repair publishes a ``tracking.*`` message, so dashboards and
      tests can follow ingest without polling the models.
    """

    def __init__(
        self,
        config: StreamingConfig = StreamingConfig(),
        *,
        bus: Optional[MessageBus] = None,
    ) -> None:
        self._config = config
        self._bus = bus
        self._sessionizer = TripSessionizer(config.sessionizer)
        self._model = IncrementalMobilityModel(config.incremental)
        self._fixes_observed = 0
        self._observed_per_user: dict = {}

    @property
    def config(self) -> StreamingConfig:
        """The subsystem configuration."""
        return self._config

    @property
    def sessionizer(self) -> TripSessionizer:
        """The online trip segmenter."""
        return self._sessionizer

    @property
    def model(self) -> IncrementalMobilityModel:
        """The incremental mobility miner."""
        return self._model

    @property
    def fixes_observed(self) -> int:
        """Fixes consumed since the engine started."""
        return self._fixes_observed

    # Fix intake ------------------------------------------------------------

    def observe_fix(self, fix: GpsFix) -> List[Trajectory]:
        """Consume one fix; returns any trips it completed."""
        self._fixes_observed += 1
        counts = self._observed_per_user
        counts[fix.user_id] = counts.get(fix.user_id, 0) + 1
        completed = self._sessionizer.add_fix(fix)
        for trip in completed:
            self._fold_trip(trip)
        return completed

    def observe_fixes(self, fixes) -> List[Trajectory]:
        """Consume a batch of fixes; returns all trips they completed."""
        completed: List[Trajectory] = []
        add_fix = self._sessionizer.add_fix
        fold = self._fold_trip
        counts = self._observed_per_user
        count = 0
        for fix in fixes:
            count += 1
            counts[fix.user_id] = counts.get(fix.user_id, 0) + 1
            for trip in add_fix(fix):
                fold(trip)
                completed.append(trip)
        self._fixes_observed += count
        return completed

    def model_freshness(self, user_id: str) -> Tuple[int, int]:
        """``(repair epoch, folded trip count)`` — an O(1) model validator.

        The pair changes whenever the user's live model materially changes
        (a trip folds in, or a drift repair re-mines the trip list), and
        never changes otherwise.  The server folds it into its snapshot
        cache key and the gateway into recommendation ETags, so "has
        anything changed?" costs two dictionary reads instead of a model
        comparison.
        """
        return (self._model.epoch(user_id), self._model.trip_count(user_id))

    def observed_fix_count(self, user_id: str) -> int:
        """Fixes this engine has consumed for a user (monotonic).

        Comparing it against ``TrackingStore.fixes_added`` tells callers
        whether the engine's model is complete for the user, or whether
        fixes bypassed the listener (direct store writes) and a batch
        rebuild over the raw history is required instead.
        """
        return self._observed_per_user.get(user_id, 0)

    def close_user(self, user_id: str) -> List[Trajectory]:
        """Flush a user's open tail (device gone / end of replay)."""
        completed = self._sessionizer.close_user(user_id)
        for trip in completed:
            self._fold_trip(trip)
        return completed

    def _fold_trip(self, trip: Trajectory) -> None:
        outcome = self._model.add_trip(trip)
        if self._bus is not None:
            self._bus.publish(
                "tracking.trip_completed",
                {
                    "user_id": trip.user_id,
                    "points": len(trip),
                    "length_m": round(trip.length_m, 1),
                    "duration_s": round(trip.duration_s, 1),
                    "trips_total": self._model.trip_count(trip.user_id),
                },
            )
            if outcome["spawned_stay_points"]:
                self._bus.publish(
                    "tracking.staypoint_spawned",
                    {
                        "user_id": trip.user_id,
                        "spawned": outcome["spawned_stay_points"],
                        "stay_points_total": self._model.stay_point_count(trip.user_id),
                    },
                )

    # Model access ----------------------------------------------------------

    def model_snapshot(
        self, user_id: str, *, include_open_tail: bool = False
    ) -> Optional[MobilitySnapshot]:
        """The user's live model (None if the engine has nothing for them).

        With ``include_open_tail`` the snapshot also folds in the trips the
        open tail would yield if the stream ended now — that makes it match
        the batch miner over the user's full history exactly, at the cost of
        a repair-grade re-mine, so reserve it for compaction/equivalence.
        """
        if include_open_tail:
            tail = self._sessionizer.peek_tail_trips(user_id)
            return self._model.full_snapshot(user_id, tail)
        return self._model.snapshot(user_id)

    # Persistence ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """The whole engine as a JSON-serializable payload.

        Composes the sessionizer's open-tail state, the incremental
        miner's per-user models and the observability counters.  Restoring
        it into an engine built with the *same configuration* yields a
        process that serves identical model snapshots and keeps consuming
        the fix stream exactly where this one stopped — the
        restart-persistence path for streaming deployments.
        """
        return {
            "version": 1,
            "fixes_observed": self._fixes_observed,
            "observed_per_user": dict(self._observed_per_user),
            "sessionizer": self._sessionizer.snapshot_state(),
            "model": self._model.snapshot_state(),
        }

    def restore_state(self, payload: dict) -> None:
        """Reload a :meth:`snapshot_state` payload, replacing engine state."""
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise ValidationError("unsupported streaming engine snapshot payload")
        self._sessionizer.restore_state(payload["sessionizer"])
        self._model.restore_state(payload["model"])
        self._fixes_observed = payload["fixes_observed"]
        self._observed_per_user = dict(payload["observed_per_user"])

    def repair_user(self, user_id: str) -> Optional[MobilitySnapshot]:
        """Force a drift repair for one user (used by the compactor)."""
        if not self._model.has_user(user_id):
            return None
        snapshot = self._model.repair(user_id)
        if self._bus is not None:
            self._bus.publish(
                "tracking.model_repaired",
                {
                    "user_id": user_id,
                    "epoch": snapshot.epoch,
                    "trips": snapshot.trip_count,
                    "stay_points": len(snapshot.stay_points),
                    "clusters": len(snapshot.clusters),
                },
            )
        return snapshot

"""Sharded, budgeted compaction over the tracking store.

The seed ``compact_tracking_data`` visited *every* tracked user on *every*
pass and re-mined each one's full raw history — O(users × history²) per
tick.  The compactor turns the pass into incremental maintenance:

* **dirty tracking** — the tracking store counts fixes ever added per user;
  the compactor remembers the count at its last visit and skips users whose
  counter has not moved (they are reported as *unchanged*, not re-mined);
* **sharding** — users hash-partition into ``shards`` stable shards so a
  deployment can run one shard per tick (or per worker) and still cover the
  whole population round-robin;
* **budgeting** — an optional per-pass cap on visited users; users over
  budget stay dirty and are reported as *deferred* for the next pass.

Model refresh itself is delegated to a callback so the server can route it
to the streaming engine (O(trips) repair) with the batch miner as fallback.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import PipelineError
from repro.spatialdb.tracking_store import TrackingStore
from repro.storage.sharding import ShardWorkerPool


@dataclass(frozen=True)
class CompactionConfig:
    """Parameters of the compaction scheduler.

    ``shards`` partitions the user population stably (see
    :meth:`ShardedCompactor.shard_of`); changing it reshuffles every
    user's shard, so treat it as a deployment constant.  ``keep_window_s``
    is how much raw history survives a visit, relative to each user's
    latest fix (the streaming models, not the raw fixes, are the durable
    record — see ``docs/ARCHITECTURE.md``).
    """

    shards: int = 4
    max_users_per_pass: Optional[int] = None
    keep_window_s: float = 14 * 86400.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise PipelineError("shards must be >= 1")
        if self.max_users_per_pass is not None and self.max_users_per_pass < 1:
            raise PipelineError("max_users_per_pass must be >= 1 when set")
        if self.keep_window_s <= 0:
            raise PipelineError("keep_window_s must be > 0")


@dataclass
class CompactionReport:
    """Outcome of one compaction pass.

    ``visited_users`` + ``unchanged_users`` + ``deferred_users`` accounts
    for every user considered (in the selected shard): visited users were
    re-mined and pruned, unchanged users had no new fixes (only a cheap
    window check), deferred users stayed dirty because the pass budget ran
    out and will be picked up by a later pass.

    ``shard_elapsed_s`` is the wall-time breakdown per shard — the time
    spent considering that shard's users, whether the pass ran serially
    (attributed via :meth:`ShardedCompactor.shard_of`) or in parallel
    (each worker times its own shard).  It is the report's only
    *timing* field: serial and parallel passes over the same state agree
    on every other field exactly, while the timings naturally differ.
    """

    removed: Dict[str, int] = field(default_factory=dict)
    visited_users: List[str] = field(default_factory=list)
    unchanged_users: int = 0
    deferred_users: int = 0
    skipped_users: int = 0  # visited but lacking enough data for a model
    shard: Optional[int] = None
    shard_elapsed_s: Dict[int, float] = field(default_factory=dict)

    @property
    def fixes_removed(self) -> int:
        """Total raw fixes pruned in the pass."""
        return sum(self.removed.values())


class ShardedCompactor:
    """Schedules incremental compaction passes over dirty users only.

    Invariants (see ``docs/ARCHITECTURE.md`` for the surrounding flow):

    * **shard stability** — ``shard_of`` hashes with crc32, not Python's
      salted ``hash``, so a user maps to the same shard across processes
      and restarts; running shards round-robin therefore covers the whole
      population;
    * **dirty tracking** — a user is dirty iff their
      ``TrackingStore.fixes_added`` counter moved since the compactor's
      last visit; the counter is recorded *before* the refresh callback
      runs, so fixes racing in during a visit leave the user dirty for the
      next pass (work is never lost, at worst repeated);
    * **budget honesty** — users skipped over budget are reported as
      deferred, never silently dropped, and remain dirty.
    """

    def __init__(
        self,
        tracking: TrackingStore,
        refresh_model: Callable[[str], bool],
        *,
        config: CompactionConfig = CompactionConfig(),
    ) -> None:
        self._tracking = tracking
        self._refresh_model = refresh_model
        self._config = config
        self._seen_counts: Dict[str, int] = {}

    @property
    def config(self) -> CompactionConfig:
        """The scheduler's parameters."""
        return self._config

    def shard_of(self, user_id: str) -> int:
        """Stable shard assignment for a user (crc32, not salted ``hash``)."""
        return zlib.crc32(user_id.encode("utf-8")) % self._config.shards

    def is_dirty(self, user_id: str) -> bool:
        """Whether the user has fixes the compactor has not yet visited."""
        return self._tracking.fixes_added(user_id) != self._seen_counts.get(user_id)

    def dirty_users(self, *, shard: Optional[int] = None) -> List[str]:
        """Dirty users, optionally restricted to one shard."""
        users = []
        for user_id in self._users_in(shard):
            if self.is_dirty(user_id):
                users.append(user_id)
        return users

    def _users_in(self, shard: Optional[int]) -> List[str]:
        """The tracked users a pass over ``shard`` must consider, sorted.

        When the tracking store is partitioned into the same number of
        shards as the compactor (the server wires them identically), a
        single-shard pass reads the owning partition directly instead of
        filtering the whole population — the per-shard walk is O(shard),
        not O(users).
        """
        if shard is None:
            return self._tracking.user_ids()
        if self._tracking.shard_count == self._config.shards:
            return self._tracking.user_ids_for_shard(shard)
        return [
            user_id
            for user_id in self._tracking.user_ids()
            if self.shard_of(user_id) == shard
        ]

    def run_pass(
        self,
        *,
        keep_window_s: Optional[float] = None,
        shard: Optional[int] = None,
        budget: Optional[int] = None,
        parallel: bool = False,
        pool: Optional[ShardWorkerPool] = None,
    ) -> CompactionReport:
        """Visit dirty users (in one shard, up to a budget) and compact them.

        Each visited user gets a refreshed mobility model (via the injected
        callback) and their raw fixes older than ``keep_window_s`` relative
        to their latest fix pruned.  Clean users are counted, not touched.

        With ``parallel=True`` (and no ``shard`` restriction) the pass
        covers *all* shards at once: each dirty shard runs as its own
        single-shard pass on a worker thread (``pool``'s, or a transient
        pool), while shards with no dirty users run inline on the caller —
        they only count unchanged users and apply window pruning, which is
        too cheap to ship to a worker.  Shard passes touch disjoint users,
        models and ``_seen_counts`` keys, so each worker is the single
        writer of its shard; the merged report is the same accounting a
        serial full pass produces (``budget`` then applies per shard, and
        ``visited_users`` orders by shard rather than globally).
        """
        window = self._config.keep_window_s if keep_window_s is None else keep_window_s
        if window <= 0:
            raise PipelineError("keep_window_s must be > 0")
        if shard is not None and not 0 <= shard < self._config.shards:
            raise PipelineError(
                f"shard must be in [0, {self._config.shards}), got {shard}"
            )
        cap = self._config.max_users_per_pass if budget is None else budget
        if cap is not None and cap < 1:
            raise PipelineError("budget must be >= 1 when set")
        if parallel and shard is None and self._config.shards > 1:
            return self._run_parallel(window, cap, pool)

        report = CompactionReport(shard=shard)
        for user_id in self._users_in(shard):
            user_shard = shard if shard is not None else self.shard_of(user_id)
            started = time.perf_counter()
            try:
                if not self.is_dirty(user_id):
                    report.unchanged_users += 1
                    # A clean user needs no re-mining, but a *tightened* window
                    # must still prune: check the cheap O(1) bound first.
                    latest = self._tracking.latest_fix(user_id).timestamp_s
                    cutoff = latest - window
                    if self._tracking.earliest_fix(user_id).timestamp_s < cutoff:
                        report.removed[user_id] = self._tracking.prune_before(
                            user_id, cutoff
                        )
                    continue
                if cap is not None and len(report.visited_users) >= cap:
                    report.deferred_users += 1
                    continue
                report.visited_users.append(user_id)
                # Record the counter before refreshing so fixes racing in during
                # the visit leave the user dirty for the next pass.
                self._seen_counts[user_id] = self._tracking.fixes_added(user_id)
                if not self._refresh_model(user_id):
                    report.skipped_users += 1
                    continue
                latest = self._tracking.latest_fix(user_id).timestamp_s
                report.removed[user_id] = self._tracking.prune_before(
                    user_id, latest - window
                )
            finally:
                report.shard_elapsed_s[user_shard] = report.shard_elapsed_s.get(
                    user_shard, 0.0
                ) + (time.perf_counter() - started)
        return report

    def _run_parallel(
        self, window: float, cap: Optional[int], pool: Optional[ShardWorkerPool]
    ) -> CompactionReport:
        """All shards in one pass: dirty shards on workers, clean inline."""
        shards = self._config.shards
        dirty_shards = {
            shard for shard in range(shards) if self.dirty_users(shard=shard)
        }
        reports: Dict[int, CompactionReport] = {}
        if dirty_shards:
            own_pool = pool is None or pool.shard_count < shards
            workers = ShardWorkerPool(shards) if own_pool else pool
            try:
                reports = workers.map_shards(
                    {
                        shard: (
                            lambda shard=shard: self.run_pass(
                                keep_window_s=window, shard=shard, budget=cap
                            )
                        )
                        for shard in sorted(dirty_shards)
                    }
                )
            finally:
                if own_pool:
                    workers.shutdown()
        for shard in range(shards):
            if shard not in reports:
                reports[shard] = self.run_pass(
                    keep_window_s=window, shard=shard, budget=cap
                )
        merged = CompactionReport(shard=None)
        for shard in range(shards):
            report = reports[shard]
            merged.removed.update(report.removed)
            merged.visited_users.extend(report.visited_users)
            merged.unchanged_users += report.unchanged_users
            merged.deferred_users += report.deferred_users
            merged.skipped_users += report.skipped_users
            # Per-shard passes key their timing by their own shard, so the
            # union is disjoint and mirrors a serial pass's attribution.
            merged.shard_elapsed_s.update(report.shard_elapsed_s)
        return merged

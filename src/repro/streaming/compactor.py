"""Sharded, budgeted compaction over the tracking store.

The seed ``compact_tracking_data`` visited *every* tracked user on *every*
pass and re-mined each one's full raw history — O(users × history²) per
tick.  The compactor turns the pass into incremental maintenance:

* **dirty tracking** — the tracking store counts fixes ever added per user;
  the compactor remembers the count at its last visit and skips users whose
  counter has not moved (they are reported as *unchanged*, not re-mined);
* **sharding** — users hash-partition into ``shards`` stable shards so a
  deployment can run one shard per tick (or per worker) and still cover the
  whole population round-robin;
* **budgeting** — an optional per-pass cap on visited users; users over
  budget stay dirty and are reported as *deferred* for the next pass.

Model refresh itself is delegated to a callback so the server can route it
to the streaming engine (O(trips) repair) with the batch miner as fallback.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import PipelineError
from repro.spatialdb.tracking_store import TrackingStore


@dataclass(frozen=True)
class CompactionConfig:
    """Parameters of the compaction scheduler.

    ``shards`` partitions the user population stably (see
    :meth:`ShardedCompactor.shard_of`); changing it reshuffles every
    user's shard, so treat it as a deployment constant.  ``keep_window_s``
    is how much raw history survives a visit, relative to each user's
    latest fix (the streaming models, not the raw fixes, are the durable
    record — see ``docs/ARCHITECTURE.md``).
    """

    shards: int = 4
    max_users_per_pass: Optional[int] = None
    keep_window_s: float = 14 * 86400.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise PipelineError("shards must be >= 1")
        if self.max_users_per_pass is not None and self.max_users_per_pass < 1:
            raise PipelineError("max_users_per_pass must be >= 1 when set")
        if self.keep_window_s <= 0:
            raise PipelineError("keep_window_s must be > 0")


@dataclass
class CompactionReport:
    """Outcome of one compaction pass.

    ``visited_users`` + ``unchanged_users`` + ``deferred_users`` accounts
    for every user considered (in the selected shard): visited users were
    re-mined and pruned, unchanged users had no new fixes (only a cheap
    window check), deferred users stayed dirty because the pass budget ran
    out and will be picked up by a later pass.
    """

    removed: Dict[str, int] = field(default_factory=dict)
    visited_users: List[str] = field(default_factory=list)
    unchanged_users: int = 0
    deferred_users: int = 0
    skipped_users: int = 0  # visited but lacking enough data for a model
    shard: Optional[int] = None

    @property
    def fixes_removed(self) -> int:
        """Total raw fixes pruned in the pass."""
        return sum(self.removed.values())


class ShardedCompactor:
    """Schedules incremental compaction passes over dirty users only.

    Invariants (see ``docs/ARCHITECTURE.md`` for the surrounding flow):

    * **shard stability** — ``shard_of`` hashes with crc32, not Python's
      salted ``hash``, so a user maps to the same shard across processes
      and restarts; running shards round-robin therefore covers the whole
      population;
    * **dirty tracking** — a user is dirty iff their
      ``TrackingStore.fixes_added`` counter moved since the compactor's
      last visit; the counter is recorded *before* the refresh callback
      runs, so fixes racing in during a visit leave the user dirty for the
      next pass (work is never lost, at worst repeated);
    * **budget honesty** — users skipped over budget are reported as
      deferred, never silently dropped, and remain dirty.
    """

    def __init__(
        self,
        tracking: TrackingStore,
        refresh_model: Callable[[str], bool],
        *,
        config: CompactionConfig = CompactionConfig(),
    ) -> None:
        self._tracking = tracking
        self._refresh_model = refresh_model
        self._config = config
        self._seen_counts: Dict[str, int] = {}

    @property
    def config(self) -> CompactionConfig:
        """The scheduler's parameters."""
        return self._config

    def shard_of(self, user_id: str) -> int:
        """Stable shard assignment for a user (crc32, not salted ``hash``)."""
        return zlib.crc32(user_id.encode("utf-8")) % self._config.shards

    def is_dirty(self, user_id: str) -> bool:
        """Whether the user has fixes the compactor has not yet visited."""
        return self._tracking.fixes_added(user_id) != self._seen_counts.get(user_id)

    def dirty_users(self, *, shard: Optional[int] = None) -> List[str]:
        """Dirty users, optionally restricted to one shard."""
        users = []
        for user_id in self._tracking.user_ids():
            if shard is not None and self.shard_of(user_id) != shard:
                continue
            if self.is_dirty(user_id):
                users.append(user_id)
        return users

    def run_pass(
        self,
        *,
        keep_window_s: Optional[float] = None,
        shard: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> CompactionReport:
        """Visit dirty users (in one shard, up to a budget) and compact them.

        Each visited user gets a refreshed mobility model (via the injected
        callback) and their raw fixes older than ``keep_window_s`` relative
        to their latest fix pruned.  Clean users are counted, not touched.
        """
        window = self._config.keep_window_s if keep_window_s is None else keep_window_s
        if window <= 0:
            raise PipelineError("keep_window_s must be > 0")
        if shard is not None and not 0 <= shard < self._config.shards:
            raise PipelineError(
                f"shard must be in [0, {self._config.shards}), got {shard}"
            )
        cap = self._config.max_users_per_pass if budget is None else budget
        if cap is not None and cap < 1:
            raise PipelineError("budget must be >= 1 when set")

        report = CompactionReport(shard=shard)
        for user_id in self._tracking.user_ids():
            if shard is not None and self.shard_of(user_id) != shard:
                continue
            if not self.is_dirty(user_id):
                report.unchanged_users += 1
                # A clean user needs no re-mining, but a *tightened* window
                # must still prune: check the cheap O(1) bound first.
                latest = self._tracking.latest_fix(user_id).timestamp_s
                cutoff = latest - window
                if self._tracking.earliest_fix(user_id).timestamp_s < cutoff:
                    report.removed[user_id] = self._tracking.prune_before(user_id, cutoff)
                continue
            if cap is not None and len(report.visited_users) >= cap:
                report.deferred_users += 1
                continue
            report.visited_users.append(user_id)
            # Record the counter before refreshing so fixes racing in during
            # the visit leave the user dirty for the next pass.
            self._seen_counts[user_id] = self._tracking.fixes_added(user_id)
            if not self._refresh_model(user_id):
                report.skipped_users += 1
                continue
            latest = self._tracking.latest_fix(user_id).timestamp_s
            report.removed[user_id] = self._tracking.prune_before(
                user_id, latest - window
            )
        return report

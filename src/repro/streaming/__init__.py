"""Streaming mobility mining: incremental trip sessionization, stay-point
and cluster maintenance, and sharded compaction.

The batch pipeline (:mod:`repro.trajectory` + ``rebuild_mobility_model``)
re-mines each user's entire GPS history on every compaction pass.  This
package maintains the same mobility models *online*: fixes stream through
the :class:`TripSessionizer` (gap/dwell closing rules identical to
``split_into_trips``), completed trips fold into the
:class:`IncrementalMobilityModel` (grid-indexed stay-point assignment and
spawning, route-cluster maintenance through an (origin, destination)
cluster index with signature-cached coherence, dirty/epoch drift repair),
and the :class:`ShardedCompactor` visits only dirty users under a per-pass
budget — turning compaction from O(users × history²) into O(new fixes).
See ``docs/ARCHITECTURE.md`` for the full ingest data flow and the
invariants each class maintains.
"""

from repro.streaming.compactor import CompactionConfig, CompactionReport, ShardedCompactor
from repro.streaming.engine import StreamingConfig, StreamingMobilityEngine
from repro.streaming.sharded import ShardedStreamingEngine
from repro.streaming.incremental import (
    IncrementalConfig,
    IncrementalMobilityModel,
    MobilitySnapshot,
)
from repro.streaming.sessionizer import SessionizerConfig, TripSessionizer

__all__ = [
    "CompactionConfig",
    "CompactionReport",
    "IncrementalConfig",
    "IncrementalMobilityModel",
    "MobilitySnapshot",
    "SessionizerConfig",
    "ShardedCompactor",
    "ShardedStreamingEngine",
    "StreamingConfig",
    "StreamingMobilityEngine",
    "TripSessionizer",
]

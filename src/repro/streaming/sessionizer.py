"""Online trip sessionization over a live GPS fix stream.

The batch pipeline materializes a user's *entire* history into a
:class:`~repro.trajectory.model.Trajectory` and re-runs
:func:`~repro.trajectory.model.split_into_trips` on every compaction pass.
The sessionizer instead consumes fixes one at a time, keeps only the open
trip and the undecided tail of the stream per user, and emits each trip the
moment its end becomes unambiguous.

Equivalence with the batch splitter is by construction: the sessionizer
replays the exact decision loop of ``split_into_trips`` over its buffered
tail, but *defers* any decision whose outcome could still change with
future fixes.  The only such decision is a dwell run that extends to the
end of the data seen so far (more fixes could lengthen the dwell and move
the resume point), so everything up to the last radius break is finalized
eagerly.  Replaying a stream therefore yields, at any prefix,

    emitted trips  +  trips still derivable from the open tail
        ==  split_into_trips(full prefix)

which the test-suite asserts point-for-point on randomized streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import TrajectoryError, ValidationError
from repro.geo.geodesy import haversine_m
from repro.geo.point import GeoPoint
from repro.spatialdb.tracking_store import GpsFix
from repro.trajectory.model import Trajectory, TrajectoryPoint


def _point_payload(point: TrajectoryPoint) -> List[float]:
    return [point.timestamp_s, point.position.lat, point.position.lon, point.speed_mps]


def _point_from_payload(raw: List[float]) -> TrajectoryPoint:
    timestamp_s, lat, lon, speed_mps = raw
    return TrajectoryPoint(timestamp_s, GeoPoint(lat, lon), speed_mps)


@dataclass(frozen=True)
class SessionizerConfig:
    """Trip-boundary rules; defaults mirror ``split_into_trips``.

    Keeping these identical to the batch splitter's parameters is what
    makes the sessionizer's decision-equality invariant (see
    :class:`TripSessionizer` and ``docs/ARCHITECTURE.md``) hold: the same
    gap/dwell thresholds must close trips at the same fixes.
    """

    stop_duration_s: float = 300.0
    stop_radius_m: float = 75.0
    max_gap_s: float = 300.0
    min_trip_points: int = 5
    min_trip_length_m: float = 400.0

    def __post_init__(self) -> None:
        if self.stop_duration_s <= 0:
            raise TrajectoryError("stop_duration_s must be > 0")
        if self.stop_radius_m <= 0:
            raise TrajectoryError("stop_radius_m must be > 0")
        if self.max_gap_s <= 0:
            raise TrajectoryError("max_gap_s must be > 0")
        if self.min_trip_points < 1:
            raise TrajectoryError("min_trip_points must be >= 1")
        if self.min_trip_length_m < 0:
            raise TrajectoryError("min_trip_length_m must be >= 0")


@dataclass
class _SessionState:
    """Per-user segmentation state: the open trip and the undecided tail."""

    trip: List[TrajectoryPoint] = field(default_factory=list)
    buffer: List[TrajectoryPoint] = field(default_factory=list)
    #: Leading ``buffer`` points already verified to lie within
    #: ``stop_radius_m`` of ``trip[-1]`` (valid only between deferred drains,
    #: while the anchor is unchanged); keeps dwell scanning O(1) per fix.
    verified: int = 0
    #: Set while a *confirmed* stop is still running: the dwell already
    #: exceeded ``stop_duration_s`` (the trip was closed and emitted), but
    #: the resume point keeps moving while fixes stay within
    #: ``stop_radius_m`` of this anchor.  Keeps a parked device at O(1)
    #: state instead of buffering the whole dwell.
    stop_anchor: Optional[TrajectoryPoint] = None
    #: Running path length of ``trip``, accumulated segment by segment in
    #: append order so it is bit-identical to ``Trajectory.length_m``.
    trip_length_m: float = 0.0
    total_points: int = 0
    emitted_trips: int = 0

    @property
    def last_timestamp_s(self) -> Optional[float]:
        if self.buffer:
            return self.buffer[-1].timestamp_s
        if self.trip:
            return self.trip[-1].timestamp_s
        return None


class TripSessionizer:
    """Segments per-user GPS fix streams into trips as the fixes arrive.

    Invariants (see the module docstring for the construction, and
    ``docs/ARCHITECTURE.md`` for where this sits in the ingest flow):

    * **decision equality** — at any stream prefix, emitted trips plus the
      trips still derivable from the open tail equal
      ``split_into_trips(prefix)`` point-for-point; only decisions whose
      outcome can no longer change are finalized (asserted on randomized
      streams by the test suite);
    * **bounded state** — per user the sessionizer holds the open trip and
      the undecided tail only; a confirmed long dwell collapses to a single
      ``stop_anchor`` point, so a parked device costs O(1) memory;
    * **ordered intake** — fixes must arrive in non-decreasing timestamp
      order per user (out-of-order fixes raise, they never silently
      corrupt the segmentation).
    """

    def __init__(self, config: SessionizerConfig = SessionizerConfig()) -> None:
        self._config = config
        self._states: Dict[str, _SessionState] = {}

    @property
    def config(self) -> SessionizerConfig:
        """The trip-boundary rules in force."""
        return self._config

    def user_ids(self) -> List[str]:
        """Users with live segmentation state."""
        return sorted(self._states.keys())

    def open_point_count(self, user_id: str) -> int:
        """Points held for a user (open trip + undecided tail)."""
        state = self._states.get(user_id)
        if state is None:
            return 0
        return len(state.trip) + len(state.buffer)

    def emitted_trip_count(self, user_id: str) -> int:
        """Trips emitted so far for a user."""
        state = self._states.get(user_id)
        return state.emitted_trips if state is not None else 0

    # Ingestion -------------------------------------------------------------

    def add_fix(self, fix: GpsFix) -> List[Trajectory]:
        """Consume one fix; returns the trips this fix completed (often [])."""
        state = self._states.setdefault(fix.user_id, _SessionState())
        last = state.last_timestamp_s
        if last is not None and fix.timestamp_s < last:
            raise TrajectoryError(
                "fixes must arrive in non-decreasing timestamp order: "
                f"{fix.timestamp_s} < {last} for user {fix.user_id!r}"
            )
        point = TrajectoryPoint(fix.timestamp_s, fix.position, fix.speed_mps)
        state.total_points += 1
        # Fast path for the overwhelmingly common case — an open trip, no
        # pending dwell, and a fix that plainly keeps driving: the drain
        # loop would just append it, so do that without buffer churn.
        if state.stop_anchor is None and not state.buffer and state.trip:
            anchor = state.trip[-1]
            config = self._config
            if point.timestamp_s - anchor.timestamp_s <= config.max_gap_s:
                distance = haversine_m(anchor.position, point.position)
                if distance > config.stop_radius_m:
                    state.trip.append(point)
                    state.trip_length_m += distance
                    return []
        state.buffer.append(point)
        return self._drain(fix.user_id, state, final=False)

    def add_fixes(self, fixes: Iterable[GpsFix]) -> List[Trajectory]:
        """Consume many fixes (possibly for several users)."""
        completed: List[Trajectory] = []
        for fix in fixes:
            completed.extend(self.add_fix(fix))
        return completed

    def close_user(self, user_id: str) -> List[Trajectory]:
        """Finalize a user's stream (device gone): flush the tail as batch would.

        Resets the user's state; a later fix starts a fresh session.
        """
        state = self._states.pop(user_id, None)
        if state is None:
            return []
        return self._finalize(user_id, state)

    def snapshot_state(self) -> Dict[str, Any]:
        """The live segmentation state as a JSON-serializable payload.

        Captures, per user, the open trip, the undecided tail, the dwell
        bookkeeping and the counters — everything :meth:`restore_state`
        needs to continue the stream *exactly* where it stopped, emitting
        the same trips at the same fixes a never-restarted sessionizer
        would.
        """
        users: Dict[str, Any] = {}
        for user_id, state in self._states.items():
            users[user_id] = {
                "trip": [_point_payload(point) for point in state.trip],
                "buffer": [_point_payload(point) for point in state.buffer],
                "verified": state.verified,
                "stop_anchor": (
                    _point_payload(state.stop_anchor) if state.stop_anchor is not None else None
                ),
                "trip_length_m": state.trip_length_m,
                "total_points": state.total_points,
                "emitted_trips": state.emitted_trips,
            }
        return {"users": users}

    def restore_state(self, payload: Dict[str, Any]) -> None:
        """Reload a :meth:`snapshot_state` payload, replacing live state."""
        if not isinstance(payload, dict) or not isinstance(payload.get("users"), dict):
            raise ValidationError("unsupported sessionizer snapshot payload")
        states: Dict[str, _SessionState] = {}
        for user_id, raw in payload["users"].items():
            anchor = raw.get("stop_anchor")
            states[user_id] = _SessionState(
                trip=[_point_from_payload(point) for point in raw["trip"]],
                buffer=[_point_from_payload(point) for point in raw["buffer"]],
                verified=raw["verified"],
                stop_anchor=_point_from_payload(anchor) if anchor is not None else None,
                trip_length_m=raw["trip_length_m"],
                total_points=raw["total_points"],
                emitted_trips=raw["emitted_trips"],
            )
        self._states = states

    def peek_tail_trips(self, user_id: str) -> List[Trajectory]:
        """Trips the open tail would yield if the stream ended now.

        Non-destructive: the live state is untouched, so this is safe to call
        while fixes keep arriving (used to serve full-history model snapshots).
        """
        state = self._states.get(user_id)
        if state is None:
            return []
        copy = _SessionState(
            trip=list(state.trip),
            buffer=list(state.buffer),
            verified=state.verified,
            stop_anchor=state.stop_anchor,
            trip_length_m=state.trip_length_m,
            total_points=state.total_points,
        )
        return self._finalize(user_id, copy)

    # The split_into_trips decision loop, replayed lazily ------------------

    def _finalize(self, user_id: str, state: _SessionState) -> List[Trajectory]:
        trips = self._drain(user_id, state, final=True)
        # Batch parity: a history of fewer than 2 points yields no trips, and
        # the trailing open trip is subjected to the same noise filters.
        if state.total_points < 2:
            return []
        tail = self._qualify(user_id, state.trip, state.trip_length_m)
        if tail is not None:
            trips.append(tail)
            state.emitted_trips += 1
        state.trip = []
        return trips

    def _drain(self, user_id: str, state: _SessionState, *, final: bool) -> List[Trajectory]:
        config = self._config
        buffer = state.buffer
        trip = state.trip
        completed: List[Trajectory] = []
        verified = state.verified
        i = 0
        while i < len(buffer):
            point = buffer[i]
            if state.stop_anchor is not None:
                # A confirmed stop is running: points still inside the dwell
                # radius only move the resume point; the first point outside
                # it ends the stop and resumes normal segmentation.
                if (
                    haversine_m(state.stop_anchor.position, point.position)
                    <= config.stop_radius_m
                ):
                    state.trip = trip = [point]
                    state.trip_length_m = 0.0
                    i += 1
                    continue
                state.stop_anchor = None
            if not trip:
                trip.append(point)
                state.trip_length_m = 0.0
                i += 1
                verified = 0
                continue
            anchor = trip[-1]
            # Boundary 1: a long reporting gap means the drive ended.
            if point.timestamp_s - anchor.timestamp_s > config.max_gap_s:
                closed = self._qualify(user_id, trip, state.trip_length_m)
                if closed is not None:
                    completed.append(closed)
                    state.emitted_trips += 1
                state.trip = trip = [point]
                state.trip_length_m = 0.0
                i += 1
                verified = 0
                continue
            # Boundary 2: a dwell period while fixes keep arriving.
            lookahead = verified if (i == 0 and verified > i) else i
            while (
                lookahead < len(buffer)
                and haversine_m(anchor.position, buffer[lookahead].position) <= config.stop_radius_m
            ):
                lookahead += 1
            if lookahead == len(buffer) and not final:
                # The dwell run reaches the end of the data seen so far, so
                # future fixes could extend it.  If its duration already
                # proves a stop, the close decision is final (more dwelling
                # only moves the resume point): emit now and keep O(1) state.
                run_duration = (
                    buffer[lookahead - 1].timestamp_s - anchor.timestamp_s
                    if lookahead > i
                    else 0.0
                )
                if run_duration >= config.stop_duration_s:
                    closed = self._qualify(user_id, trip, state.trip_length_m)
                    if closed is not None:
                        completed.append(closed)
                        state.emitted_trips += 1
                    state.stop_anchor = anchor
                    state.trip = trip = [buffer[-1]]
                    state.trip_length_m = 0.0
                    i = len(buffer)
                    verified = 0
                # Otherwise defer the whole decision to the next drain.
                break
            stopped_duration = (
                buffer[lookahead - 1].timestamp_s - anchor.timestamp_s if lookahead > i else 0.0
            )
            if stopped_duration >= config.stop_duration_s:
                closed = self._qualify(user_id, trip, state.trip_length_m)
                if closed is not None:
                    completed.append(closed)
                    state.emitted_trips += 1
                state.trip = trip = [buffer[lookahead - 1]]
                state.trip_length_m = 0.0
                i = lookahead
            else:
                state.trip_length_m += haversine_m(anchor.position, point.position)
                trip.append(point)
                i += 1
            verified = 0
        del buffer[:i]
        # The loop only leaves points behind when a dwell run was scanned to
        # the (current) end of the buffer, so the next drain can skip them.
        state.verified = len(buffer)
        return completed

    def _qualify(
        self, user_id: str, points: List[TrajectoryPoint], length_m: float
    ) -> Optional[Trajectory]:
        """Apply the batch splitter's noise filters to a closed point run.

        ``length_m`` is the running path length maintained at append time —
        segment sums in the same order as ``Trajectory.length_m``, so the
        minimum-length filter decides exactly as the batch splitter does
        without re-walking the trip.
        """
        if len(points) < self._config.min_trip_points:
            return None
        if length_m < self._config.min_trip_length_m:
            return None
        return Trajectory(user_id, list(points))

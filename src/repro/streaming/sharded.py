"""Shard-partitioned streaming mobility engines behind one façade.

The per-user state of :class:`~repro.streaming.engine.StreamingMobilityEngine`
(open trip tails, incremental models, observation counters) is exactly the
kind of state the shard router partitions: every fix belongs to one user,
every user to one crc32 shard.  :class:`ShardedStreamingEngine` keeps one
inner engine per shard and routes by user, so a per-shard ingest worker
only ever touches its own engine — the single-writer-per-shard invariant
extends from the stores to the live mobility models.

The façade exposes the same API the server and the compactor use, and its
:meth:`snapshot_state` payload is the *flat* single-engine format (per-user
maps merged across shards), so server snapshots are identical in shape
whatever the shard count and restore into any layout — the same
portability contract the sharded stores have.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import PipelineError, ValidationError
from repro.spatialdb.tracking_store import GpsFix
from repro.storage.sharding import shard_of
from repro.streaming.engine import StreamingConfig, StreamingMobilityEngine
from repro.streaming.incremental import MobilitySnapshot
from repro.trajectory.model import Trajectory

if TYPE_CHECKING:  # imported lazily to keep streaming importable on its own
    from repro.pipeline.messaging import MessageBus


class ShardedStreamingEngine:
    """One :class:`StreamingMobilityEngine` per shard, routed by user id.

    All inner engines share one configuration and one message bus, so the
    narration topics and mining parameters are indistinguishable from a
    single engine's.  With ``shards == 1`` the façade is a transparent
    wrapper around one engine.
    """

    def __init__(
        self,
        config: StreamingConfig = StreamingConfig(),
        *,
        shards: int = 1,
        bus: Optional["MessageBus"] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        if shards < 1:
            raise PipelineError("shards must be >= 1")
        self._shards = shards
        self._engines = [
            StreamingMobilityEngine(config, bus=bus) for _ in range(shards)
        ]
        # Batch-level telemetry only: ingest and repair are timed per call,
        # never per fix, so the O(1)-per-fix streaming budget is untouched.
        self._ingest_seconds = None
        self._repair_seconds = None
        if metrics is not None and getattr(metrics, "enabled", True):
            self._ingest_seconds = metrics.histogram(
                "streaming_ingest_seconds",
                help="Wall time of streaming fix-batch ingests per shard.",
                labels=("shard",),
            )
            self._repair_seconds = metrics.histogram(
                "streaming_repair_seconds",
                help="Wall time of per-user model repairs per shard.",
                labels=("shard",),
            )

    @property
    def config(self) -> StreamingConfig:
        """The subsystem configuration (shared by every shard engine)."""
        return self._engines[0].config

    @property
    def shard_count(self) -> int:
        """Number of shard engines."""
        return self._shards

    @property
    def engines(self) -> List[StreamingMobilityEngine]:
        """The per-shard engines, in shard order."""
        return list(self._engines)

    def shard_of(self, user_id: str) -> int:
        """The shard owning a user (stable crc32 assignment)."""
        return shard_of(user_id, self._shards)

    def engine_for(self, user_id: str) -> StreamingMobilityEngine:
        """The engine owning a user's live model."""
        return self._engines[self.shard_of(user_id)]

    @property
    def fixes_observed(self) -> int:
        """Fixes consumed since the engines started (summed)."""
        return sum(engine.fixes_observed for engine in self._engines)

    # Fix intake ------------------------------------------------------------

    def observe_fix(self, fix: GpsFix) -> List[Trajectory]:
        """Consume one fix on the owning shard; returns completed trips."""
        return self.engine_for(fix.user_id).observe_fix(fix)

    def observe_fixes(self, fixes) -> List[Trajectory]:
        """Consume a batch of fixes; returns all trips they completed.

        Fixes group by shard (per-user order preserved — a user's fixes
        all share one shard) and each group feeds its engine's batch
        path.  Completed trips return grouped in shard order; per-user
        trip order is identical to the single-engine walk.
        """
        histogram = self._ingest_seconds
        if self._shards == 1:
            start = time.perf_counter() if histogram is not None else 0.0
            completed = self._engines[0].observe_fixes(fixes)
            if histogram is not None:
                histogram.labels(shard="0").record(time.perf_counter() - start)
            return completed
        groups: Dict[int, List[GpsFix]] = {}
        for fix in fixes:
            groups.setdefault(self.shard_of(fix.user_id), []).append(fix)
        completed = []
        for shard in sorted(groups):
            start = time.perf_counter() if histogram is not None else 0.0
            completed.extend(self._engines[shard].observe_fixes(groups[shard]))
            if histogram is not None:
                histogram.labels(shard=str(shard)).record(time.perf_counter() - start)
        return completed

    # Model access ----------------------------------------------------------

    def model_freshness(self, user_id: str) -> Tuple[int, int]:
        """``(repair epoch, folded trip count)`` from the owning shard."""
        return self.engine_for(user_id).model_freshness(user_id)

    def observed_fix_count(self, user_id: str) -> int:
        """Fixes consumed for a user (monotonic, owning shard)."""
        return self.engine_for(user_id).observed_fix_count(user_id)

    def model_snapshot(
        self, user_id: str, *, include_open_tail: bool = False
    ) -> Optional[MobilitySnapshot]:
        """The user's live model from the owning shard's engine."""
        return self.engine_for(user_id).model_snapshot(
            user_id, include_open_tail=include_open_tail
        )

    def close_user(self, user_id: str) -> List[Trajectory]:
        """Flush a user's open tail (device gone / end of replay)."""
        return self.engine_for(user_id).close_user(user_id)

    def repair_user(self, user_id: str) -> Optional[MobilitySnapshot]:
        """Force a drift repair for one user (used by the compactor)."""
        histogram = self._repair_seconds
        if histogram is None:
            return self.engine_for(user_id).repair_user(user_id)
        shard = self.shard_of(user_id)
        start = time.perf_counter()
        snapshot = self._engines[shard].repair_user(user_id)
        histogram.labels(shard=str(shard)).record(time.perf_counter() - start)
        return snapshot

    # Persistence ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """All shard engines merged into the flat single-engine payload.

        Per-user maps are disjoint across shards (a user lives on exactly
        one), so the merge is lossless, and the result is bit-compatible
        with :meth:`StreamingMobilityEngine.snapshot_state
        <repro.streaming.engine.StreamingMobilityEngine.snapshot_state>` —
        server snapshots restore across any shard layout.
        """
        observed: Dict[str, int] = {}
        sessionizer_users: Dict[str, dict] = {}
        model_users: Dict[str, dict] = {}
        for engine in self._engines:
            state = engine.snapshot_state()
            observed.update(state["observed_per_user"])
            sessionizer_users.update(state["sessionizer"]["users"])
            model_users.update(state["model"]["users"])
        return {
            "version": 1,
            "fixes_observed": self.fixes_observed,
            "observed_per_user": observed,
            "sessionizer": {"users": sessionizer_users},
            "model": {"users": model_users},
        }

    def restore_state(self, payload: dict) -> None:
        """Reload a flat engine payload, splitting per-user state by shard.

        A single engine counts every observed fix both globally and per
        user, so each shard's ``fixes_observed`` is recoverable as the sum
        of its users' counters — the split loses nothing.
        """
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise ValidationError("unsupported streaming engine snapshot payload")
        observed = payload["observed_per_user"]
        sessionizer_users = payload["sessionizer"]["users"]
        model_users = payload["model"]["users"]
        for shard, engine in enumerate(self._engines):
            shard_observed = {
                user_id: count
                for user_id, count in observed.items()
                if self.shard_of(user_id) == shard
            }
            engine.restore_state(
                {
                    "version": 1,
                    "fixes_observed": sum(shard_observed.values()),
                    "observed_per_user": shard_observed,
                    "sessionizer": {
                        "users": {
                            user_id: state
                            for user_id, state in sessionizer_users.items()
                            if self.shard_of(user_id) == shard
                        }
                    },
                    "model": {
                        "users": {
                            user_id: state
                            for user_id, state in model_users.items()
                            if self.shard_of(user_id) == shard
                        }
                    },
                }
            )

    def snapshot_shard(self, shard: int) -> dict:
        """One shard engine's payload — the migration/rebalancing unit."""
        return self._engines[shard].snapshot_state()

    def restore_shard(self, shard: int, payload: dict) -> None:
        """Replace one shard engine's state without touching the others.

        Every user in the payload must route to ``shard`` under this
        façade's layout.
        """
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise ValidationError("unsupported streaming engine snapshot payload")
        for user_id in payload.get("observed_per_user", {}):
            if self.shard_of(user_id) != shard:
                raise ValidationError(
                    f"user {user_id!r} does not belong to streaming shard {shard}"
                )
        self._engines[shard].restore_state(payload)

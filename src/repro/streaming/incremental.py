"""Incremental per-user mobility models over a stream of completed trips.

The batch pipeline recomputes each user's whole mobility model (stay-point
DBSCAN + route clustering) from the full GPS history on every compaction
pass.  This module instead folds one completed trip at a time into a live
model:

* trip endpoints are matched to existing stay points through a
  :class:`~repro.geo.grid_index.GridIndex` ``nearest`` query (no O(n²)
  scan), updating support/dwell and the running centroid;
* endpoints matching nothing accumulate as *pending observations* in a
  second grid index, and a new stay point is spawned as soon as a density
  neighbourhood (``min_samples`` within ``eps_m``) forms around one — the
  streaming analogue of a DBSCAN core point;
* the trip joins its (origin, destination) route cluster through the
  per-user :class:`~repro.trajectory.clustering.RouteClusterIndex` (an O(1)
  dict lookup, not a linear scan), or starts a new one; joins go through
  ``RouteCluster.add_trip`` so cluster coherence stays incrementally
  maintained over the shared route-signature cache.

Incremental maintenance drifts from the batch reference (centroids move,
stay points are never merged or re-ranked online), so every user carries a
dirty-trip counter and an epoch: once ``repair_every`` trips accumulate, a
*repair* re-runs the batch miner over the user's **compact trip list**
(never the raw fixes) and resets the drift.  A repaired model is exactly
what ``rebuild_mobility_model`` would produce on the same trips, which the
equivalence tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TrajectoryError
from repro.geo import GeoPoint, GridIndex
from repro.geo.geodesy import haversine_m
from repro.trajectory.clustering import RouteCluster, RouteClusterIndex, cluster_trips
from repro.trajectory.model import Trajectory, TrajectoryPoint
from repro.trajectory.staypoints import StayPoint, stay_points_from_trips

#: Below this many items a direct scan beats the grid index's cell walk.
_LINEAR_SCAN_LIMIT = 12


@dataclass(frozen=True)
class IncrementalConfig:
    """Parameters of the incremental mobility miner.

    ``eps_m``, ``min_samples`` and ``assign_radius_m`` mirror the batch
    miner's parameters — repairs re-run the batch algorithms with these
    values, so keeping them aligned (the server copies its
    ``stay_point_eps_m`` in) is what makes a repaired model *equal* to a
    batch rebuild, not merely similar.  ``repair_every`` bounds drift,
    ``max_trips_per_user`` bounds state (see ``docs/ARCHITECTURE.md``).
    """

    #: DBSCAN radius for stay-point formation (server passes its
    #: ``stay_point_eps_m`` so streaming and batch agree).
    eps_m: float = 300.0
    #: Observations within ``eps_m`` needed to spawn a stay point
    #: (mirrors ``stay_points_from_trips``'s ``min_samples``).
    min_samples: int = 2
    #: Endpoint-to-stay-point assignment radius for route clustering
    #: (mirrors ``cluster_trips``'s ``max_endpoint_distance_m``).
    assign_radius_m: float = 500.0
    #: Dirty trips tolerated before a full repair re-mines the trip list.
    repair_every: int = 32
    #: Retained trips per user: the compact model only needs the recurring
    #: recent behaviour, so older trips are dropped at repair time — this is
    #: what keeps long-running streaming state (and repair cost) bounded
    #: after the raw fixes have been pruned.
    max_trips_per_user: int = 512

    def __post_init__(self) -> None:
        if self.eps_m <= 0:
            raise TrajectoryError("eps_m must be > 0")
        if self.min_samples < 1:
            raise TrajectoryError("min_samples must be >= 1")
        if self.assign_radius_m <= 0:
            raise TrajectoryError("assign_radius_m must be > 0")
        if self.repair_every < 1:
            raise TrajectoryError("repair_every must be >= 1")
        if self.max_trips_per_user < 1:
            raise TrajectoryError("max_trips_per_user must be >= 1")


@dataclass
class _LiveStayPoint:
    """A mutable stay point whose centroid tracks its member observations."""

    stay_point_id: int
    lat_sum: float
    lon_sum: float
    support: int
    total_dwell_s: float
    label: Optional[str] = None
    #: Cached centroid, refreshed on absorb (reads vastly outnumber writes).
    center: GeoPoint = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.center is None:
            self.center = GeoPoint(self.lat_sum / self.support, self.lon_sum / self.support)

    def absorb(self, observation: GeoPoint, dwell_s: float) -> None:
        self.lat_sum += observation.lat
        self.lon_sum += observation.lon
        self.support += 1
        self.total_dwell_s += dwell_s
        self.center = GeoPoint(self.lat_sum / self.support, self.lon_sum / self.support)

    def freeze(self) -> StayPoint:
        return StayPoint(
            stay_point_id=self.stay_point_id,
            center=self.center,
            support=self.support,
            total_dwell_s=self.total_dwell_s,
            label=self.label,
        )


@dataclass(frozen=True)
class MobilitySnapshot:
    """An immutable view of one user's mobility model.

    Stay points and clusters are snapshot-grade copies: later online
    appends to the live state never leak into a handed-out snapshot.
    ``epoch`` counts repairs (0 = never repaired) and ``dirty_trips`` the
    trips folded in since the last one, so callers can judge drift: a
    snapshot with ``dirty_trips == 0`` is exactly what the batch miner
    would produce over the same trip list (see ``docs/ARCHITECTURE.md``,
    "dirty/epoch semantics").
    """

    stay_points: List[StayPoint]
    clusters: List[RouteCluster]
    trip_count: int
    epoch: int
    dirty_trips: int


@dataclass
class _UserModelState:
    trips: List[Trajectory] = field(default_factory=list)
    stay_points: Dict[int, _LiveStayPoint] = field(default_factory=dict)
    sp_index: GridIndex = field(default_factory=lambda: GridIndex(500.0))
    clusters: List[RouteCluster] = field(default_factory=list)
    #: (origin, destination) → cluster lookup kept in lockstep with
    #: ``clusters`` so per-trip resolution is O(1), not a linear scan.
    cluster_index: RouteClusterIndex = field(default_factory=RouteClusterIndex)
    pending_index: GridIndex = field(default_factory=lambda: GridIndex(500.0))
    pending_points: Dict[int, GeoPoint] = field(default_factory=dict)
    #: Which (trip index, endpoint slot) each pending observation came from,
    #: so a spawned stay point can retroactively resolve the trips whose
    #: endpoints formed it.
    pending_owners: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: Per trip: resolved [origin, destination] stay-point ids (None = open).
    trip_endpoints: List[List[Optional[int]]] = field(default_factory=list)
    #: Per trip: whether it has been attached to a route cluster.
    trip_clustered: List[bool] = field(default_factory=list)
    next_stay_point_id: int = 0
    next_observation_id: int = 0
    next_cluster_id: int = 0
    dirty_trips: int = 0
    epoch: int = 0


class IncrementalMobilityModel:
    """Maintains stay points and route clusters as completed trips arrive.

    Invariants (see the module docstring for the mechanism and
    ``docs/ARCHITECTURE.md`` for the surrounding flow):

    * **repair equality** — :meth:`repair` (and any snapshot taken when it
      runs) produces exactly what the batch miner yields over the user's
      compact trip list: same stay points, same clusters, same numbering
      (asserted by the equivalence tests);
    * **dirty/epoch semantics** — ``dirty_trips(user)`` counts trips folded
      in since the last repair and triggers one at ``repair_every``;
      ``epoch(user)`` increments per repair, letting callers (the server's
      snapshot cache) detect staleness with one integer compare;
    * **bounded state** — the compact trip list is capped at
      ``max_trips_per_user`` (oldest age out at repair), and cluster
      resolution is O(1) per trip through the per-user
      :class:`~repro.trajectory.clustering.RouteClusterIndex`, with
      coherence sums maintained through the shared signature cache.
    """

    def __init__(self, config: IncrementalConfig = IncrementalConfig()) -> None:
        self._config = config
        self._states: Dict[str, _UserModelState] = {}
        self._spawned_stay_points = 0
        self._repairs = 0

    @property
    def config(self) -> IncrementalConfig:
        """The miner's parameters."""
        return self._config

    @property
    def spawned_stay_points(self) -> int:
        """Stay points spawned online (across all users, since start)."""
        return self._spawned_stay_points

    @property
    def repairs(self) -> int:
        """Full-repair passes executed (across all users, since start)."""
        return self._repairs

    def user_ids(self) -> List[str]:
        """Users with a live model."""
        return sorted(self._states.keys())

    def has_user(self, user_id: str) -> bool:
        """Whether the user has a live model."""
        return user_id in self._states

    def trip_count(self, user_id: str) -> int:
        """Completed trips folded in for a user."""
        state = self._states.get(user_id)
        return len(state.trips) if state is not None else 0

    def stay_point_count(self, user_id: str) -> int:
        """Live stay points for a user (no snapshot materialization)."""
        state = self._states.get(user_id)
        return len(state.stay_points) if state is not None else 0

    def dirty_trips(self, user_id: str) -> int:
        """Trips folded in since the user's last repair."""
        state = self._states.get(user_id)
        return state.dirty_trips if state is not None else 0

    def epoch(self, user_id: str) -> int:
        """Repair epoch of the user's model (0 = never repaired)."""
        state = self._states.get(user_id)
        return state.epoch if state is not None else 0

    def needs_repair(self, user_id: str) -> bool:
        """Whether drift exceeded the configured repair cadence."""
        state = self._states.get(user_id)
        if state is None:
            return False
        return state.dirty_trips >= self._config.repair_every

    # Trip ingestion --------------------------------------------------------

    def add_trip(self, trip: Trajectory) -> Dict[str, int]:
        """Fold one completed trip into its user's model.

        Returns a small summary for observability (``spawned`` stay points,
        ``new_cluster`` flag, assigned stay-point ids where found).
        """
        state = self._states.setdefault(trip.user_id, _UserModelState())
        trip_index = len(state.trips)
        state.trips.append(trip)
        state.trip_endpoints.append([None, None])
        state.trip_clustered.append(False)
        state.dirty_trips += 1

        spawned = 0
        for slot, observation in enumerate((trip.origin, trip.destination)):
            did_spawn = self._assign_observation(state, observation, trip_index, slot)
            if did_spawn:
                spawned += 1
                self._spawned_stay_points += 1
        new_cluster = self._maybe_cluster(state, trip_index)

        origin_id, destination_id = state.trip_endpoints[trip_index]
        # Backstop for pure-ingest users nobody snapshots: once the trip list
        # overshoots the retention cap by a repair period, repair (and trim)
        # inline so state cannot grow without bound.
        config = self._config
        if len(state.trips) >= config.max_trips_per_user + config.repair_every:
            self.repair(trip.user_id)
        return {
            "spawned_stay_points": spawned,
            "new_cluster": new_cluster,
            "origin_stay_point": -1 if origin_id is None else origin_id,
            "destination_stay_point": -1 if destination_id is None else destination_id,
        }

    def _assign_observation(
        self, state: _UserModelState, observation: GeoPoint, trip_index: int, slot: int
    ) -> bool:
        """Match one endpoint to a stay point, spawning one if density forms.

        Returns whether a new stay point was spawned.
        """
        config = self._config
        hit: Optional[Tuple[int, float]] = None
        stay_points = state.stay_points
        if stay_points and len(stay_points) <= _LINEAR_SCAN_LIMIT:
            # Typical users have a handful of stay points: a direct scan
            # beats the grid walk's cell bookkeeping.
            best_id = -1
            best_distance = config.assign_radius_m
            for live in stay_points.values():
                distance = haversine_m(live.center, observation)
                if distance <= best_distance:
                    best_distance = distance
                    best_id = live.stay_point_id
            if best_id >= 0:
                hit = (best_id, best_distance)
        elif stay_points:
            hit = state.sp_index.nearest(observation, max_radius_m=config.assign_radius_m)
        if hit is not None:
            stay_point_id, distance = hit
            if distance <= config.eps_m:
                # A genuine member observation: fold it into the centroid.
                live = state.stay_points[stay_point_id]
                live.absorb(observation, 1.0)
                state.sp_index.insert(stay_point_id, live.center)
            # Within the assignment radius either way: the trip endpoint
            # resolves to this stay point for clustering purposes.
            state.trip_endpoints[trip_index][slot] = stay_point_id
            return False

        # No stay point in reach: remember the observation and check whether
        # a density neighbourhood has formed around it (grid lookup, not a
        # scan over the user's whole history).
        observation_id = state.next_observation_id
        state.next_observation_id += 1
        state.pending_points[observation_id] = observation
        state.pending_owners[observation_id] = (trip_index, slot)
        state.pending_index.insert(observation_id, observation)
        if len(state.pending_points) <= _LINEAR_SCAN_LIMIT:
            neighbours = [
                (obs_id, distance)
                for obs_id, pending in state.pending_points.items()
                if (distance := haversine_m(pending, observation)) <= config.eps_m
            ]
        else:
            neighbours = state.pending_index.query_radius(observation, config.eps_m)
        if len(neighbours) < config.min_samples:
            return False

        members = [state.pending_points[obs_id] for obs_id, _distance in neighbours]
        live = _LiveStayPoint(
            stay_point_id=state.next_stay_point_id,
            lat_sum=sum(p.lat for p in members),
            lon_sum=sum(p.lon for p in members),
            support=len(members),
            total_dwell_s=float(len(members)),
        )
        state.next_stay_point_id += 1
        state.stay_points[live.stay_point_id] = live
        state.sp_index.insert(live.stay_point_id, live.center)
        # Retroactively resolve every endpoint that formed the neighbourhood:
        # their trips may now be cluster-assignable.
        for obs_id, _distance in neighbours:
            del state.pending_points[obs_id]
            state.pending_index.remove(obs_id)
            owner_trip, owner_slot = state.pending_owners.pop(obs_id)
            state.trip_endpoints[owner_trip][owner_slot] = live.stay_point_id
            if owner_trip != trip_index:
                self._maybe_cluster(state, owner_trip)
        return True

    def _maybe_cluster(self, state: _UserModelState, trip_index: int) -> int:
        """Attach a trip to its route cluster once both endpoints resolved.

        Returns 1 when a brand-new cluster was created, else 0.
        """
        if state.trip_clustered[trip_index]:
            return 0
        origin_id, destination_id = state.trip_endpoints[trip_index]
        if origin_id is None or destination_id is None or origin_id == destination_id:
            return 0
        state.trip_clustered[trip_index] = True
        cluster = state.cluster_index.find(origin_id, destination_id)
        created = 0
        if cluster is None:
            cluster = RouteCluster(
                cluster_id=state.next_cluster_id,
                origin_stay_point=origin_id,
                destination_stay_point=destination_id,
            )
            state.next_cluster_id += 1
            state.clusters.append(cluster)
            state.cluster_index.add(cluster)
            created = 1
        # add_trip keeps the running coherence sum maintained over the
        # shared signature cache (deferred until a reader consumes it, then
        # O(members) per join), so coherence readers never pay the seed's
        # O(pairs) polyline-resampling recompute.
        cluster.add_trip(state.trips[trip_index])
        return created

    # Repair and snapshots --------------------------------------------------

    def repair(self, user_id: str) -> MobilitySnapshot:
        """Re-mine the user's compact trip list with the batch algorithms.

        Resets centroid drift and stay-point/cluster numbering to exactly
        what the batch pipeline would produce over the same trips.
        """
        state = self._states.setdefault(user_id, _UserModelState())
        if len(state.trips) > self._config.max_trips_per_user:
            # Retention: the compact model describes *recurring recent*
            # behaviour; oldest trips age out here, bounding state and
            # repair cost for long-running deployments.
            state.trips = state.trips[-self._config.max_trips_per_user :]
        stay_points, clusters = self._mine(state.trips)
        self._install(state, state.trips, stay_points, clusters)
        state.dirty_trips = 0
        state.epoch += 1
        self._repairs += 1
        return MobilitySnapshot(
            stay_points=list(stay_points),
            clusters=self._copy_clusters(clusters),
            trip_count=len(state.trips),
            epoch=state.epoch,
            dirty_trips=0,
        )

    def full_snapshot(
        self, user_id: str, extra_trips: Optional[List[Trajectory]] = None
    ) -> Optional[MobilitySnapshot]:
        """A batch-exact model over the user's trips plus ``extra_trips``.

        Mines the combined trip list once with the batch algorithms and
        returns the result *without* persisting it — ``extra_trips`` (e.g.
        a peeked open tail) may still change, so the live state keeps only
        finalized trips and repairs on its own cadence.  Works even for a
        user whose only trips are still in the open tail.
        """
        state = self._states.get(user_id)
        finalized = state.trips if state is not None else []
        extras = list(extra_trips or [])
        if not finalized and not extras:
            return None
        stay_points, clusters = self._mine(finalized + extras)
        return MobilitySnapshot(
            stay_points=stay_points,
            clusters=clusters,
            trip_count=len(finalized) + len(extras),
            epoch=state.epoch if state is not None else 0,
            dirty_trips=state.dirty_trips if state is not None else 0,
        )

    @staticmethod
    def _copy_clusters(clusters: List[RouteCluster]) -> List[RouteCluster]:
        """Snapshot-grade copies: later online appends must not leak in.

        The copies carry the running similarity state, so coherence reads on
        a snapshot stay O(1) instead of re-accumulating the pair sums.
        """
        return [cluster.copy() for cluster in clusters]

    def _mine(self, trips: List[Trajectory]) -> Tuple[List[StayPoint], List[RouteCluster]]:
        config = self._config
        stay_points = (
            stay_points_from_trips(trips, eps_m=config.eps_m, min_samples=config.min_samples)
            if trips
            else []
        )
        clusters = (
            cluster_trips(trips, stay_points, max_endpoint_distance_m=config.assign_radius_m)
            if stay_points
            else []
        )
        return stay_points, clusters

    def _install(
        self,
        state: _UserModelState,
        trips: List[Trajectory],
        stay_points: List[StayPoint],
        clusters: List[RouteCluster],
    ) -> None:
        """Rebuild the live (mutable, indexed) state from batch-mined results."""
        config = self._config
        state.stay_points = {}
        state.sp_index = GridIndex(max(config.assign_radius_m, 250.0))
        for frozen in stay_points:
            live = _LiveStayPoint(
                stay_point_id=frozen.stay_point_id,
                lat_sum=frozen.center.lat * frozen.support,
                lon_sum=frozen.center.lon * frozen.support,
                support=frozen.support,
                total_dwell_s=frozen.total_dwell_s,
                label=frozen.label,
                center=frozen.center,
            )
            state.stay_points[live.stay_point_id] = live
            state.sp_index.insert(live.stay_point_id, frozen.center)
        state.next_stay_point_id = (
            max((sp.stay_point_id for sp in stay_points), default=-1) + 1
        )
        state.clusters = list(clusters)
        state.cluster_index = RouteClusterIndex(state.clusters)
        state.next_cluster_id = (
            max((cluster.cluster_id for cluster in clusters), default=-1) + 1
        )
        clustered_trip_ids = {
            id(trip) for cluster in clusters for trip in cluster.trips
        }
        # Endpoints the repaired model left unexplained become the new
        # pending observations (with their owning trips remembered), so
        # online spawning and retroactive clustering continue seamlessly.
        state.pending_points = {}
        state.pending_owners = {}
        state.pending_index = GridIndex(max(config.eps_m, 250.0))
        state.next_observation_id = 0
        state.trip_endpoints = []
        state.trip_clustered = []
        for trip_index, trip in enumerate(trips):
            endpoints: List[Optional[int]] = [None, None]
            for slot, observation in enumerate((trip.origin, trip.destination)):
                hit = state.sp_index.nearest(
                    observation, max_radius_m=config.assign_radius_m
                )
                if hit is not None:
                    endpoints[slot] = hit[0]
                else:
                    observation_id = state.next_observation_id
                    state.next_observation_id += 1
                    state.pending_points[observation_id] = observation
                    state.pending_owners[observation_id] = (trip_index, slot)
                    state.pending_index.insert(observation_id, observation)
            state.trip_endpoints.append(endpoints)
            state.trip_clustered.append(id(trip) in clustered_trip_ids)

    def snapshot(self, user_id: str, *, auto_repair: bool = True) -> Optional[MobilitySnapshot]:
        """The user's current model (repairing first when drift is due)."""
        state = self._states.get(user_id)
        if state is None:
            return None
        if auto_repair and state.dirty_trips >= self._config.repair_every:
            return self.repair(user_id)
        stay_points = sorted(
            (live.freeze() for live in state.stay_points.values()),
            key=lambda sp: (-sp.support, sp.stay_point_id),
        )
        return MobilitySnapshot(
            stay_points=stay_points,
            clusters=self._copy_clusters(state.clusters),
            trip_count=len(state.trips),
            epoch=state.epoch,
            dirty_trips=state.dirty_trips,
        )

    def forget_user(self, user_id: str) -> None:
        """Drop a user's model entirely."""
        self._states.pop(user_id, None)

    # Snapshot / restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """The live mining state as a JSON-serializable payload.

        Exact-state capture: centroid sums (not just centroids), pending
        observations with their owning trips, cluster membership as trip
        indices, grid cell sizes, and the dirty/epoch counters — so a
        restored model answers every query identically *and* keeps evolving
        identically as further trips fold in.
        """
        users: Dict[str, object] = {}
        for user_id, state in self._states.items():
            trip_positions = {id(trip): index for index, trip in enumerate(state.trips)}
            users[user_id] = {
                "trips": [
                    [
                        [p.timestamp_s, p.position.lat, p.position.lon, p.speed_mps]
                        for p in trip.points
                    ]
                    for trip in state.trips
                ],
                "stay_points": [
                    [
                        live.stay_point_id,
                        live.lat_sum,
                        live.lon_sum,
                        live.support,
                        live.total_dwell_s,
                        live.label,
                        live.center.lat,
                        live.center.lon,
                    ]
                    for live in state.stay_points.values()
                ],
                "sp_cell_m": state.sp_index.cell_size_m,
                "clusters": [
                    [
                        cluster.cluster_id,
                        cluster.origin_stay_point,
                        cluster.destination_stay_point,
                        [trip_positions[id(trip)] for trip in cluster.trips],
                    ]
                    for cluster in state.clusters
                ],
                "pending": [
                    [
                        observation_id,
                        point.lat,
                        point.lon,
                        state.pending_owners[observation_id][0],
                        state.pending_owners[observation_id][1],
                    ]
                    for observation_id, point in state.pending_points.items()
                ],
                "pending_cell_m": state.pending_index.cell_size_m,
                "trip_endpoints": [list(pair) for pair in state.trip_endpoints],
                "trip_clustered": list(state.trip_clustered),
                "next_stay_point_id": state.next_stay_point_id,
                "next_observation_id": state.next_observation_id,
                "next_cluster_id": state.next_cluster_id,
                "dirty_trips": state.dirty_trips,
                "epoch": state.epoch,
            }
        return {"users": users}

    def restore_state(self, payload: Dict[str, object]) -> None:
        """Reload a :meth:`snapshot_state` payload, replacing live state."""
        if not isinstance(payload, dict) or not isinstance(payload.get("users"), dict):
            raise TrajectoryError("unsupported incremental-model snapshot payload")
        states: Dict[str, _UserModelState] = {}
        for user_id, raw in payload["users"].items():
            state = _UserModelState()
            state.trips = [
                Trajectory(
                    user_id,
                    [
                        # Rebuilt in stored order, so grid iteration and
                        # cluster membership match the captured model.
                        _trajectory_point(point)
                        for point in points
                    ],
                )
                for points in raw["trips"]
            ]
            state.sp_index = GridIndex(raw["sp_cell_m"])
            for sp_id, lat_sum, lon_sum, support, dwell_s, label, center_lat, center_lon in raw[
                "stay_points"
            ]:
                live = _LiveStayPoint(
                    stay_point_id=sp_id,
                    lat_sum=lat_sum,
                    lon_sum=lon_sum,
                    support=support,
                    total_dwell_s=dwell_s,
                    label=label,
                    center=GeoPoint(center_lat, center_lon),
                )
                state.stay_points[sp_id] = live
                state.sp_index.insert(sp_id, live.center)
            state.clusters = []
            state.cluster_index = RouteClusterIndex()
            for cluster_id, origin_id, destination_id, trip_indices in raw["clusters"]:
                cluster = RouteCluster(
                    cluster_id=cluster_id,
                    origin_stay_point=origin_id,
                    destination_stay_point=destination_id,
                    trips=[state.trips[index] for index in trip_indices],
                )
                state.clusters.append(cluster)
                state.cluster_index.add(cluster)
            state.pending_index = GridIndex(raw["pending_cell_m"])
            for observation_id, lat, lon, owner_trip, owner_slot in raw["pending"]:
                point = GeoPoint(lat, lon)
                state.pending_points[observation_id] = point
                state.pending_owners[observation_id] = (owner_trip, owner_slot)
                state.pending_index.insert(observation_id, point)
            state.trip_endpoints = [list(pair) for pair in raw["trip_endpoints"]]
            state.trip_clustered = list(raw["trip_clustered"])
            state.next_stay_point_id = raw["next_stay_point_id"]
            state.next_observation_id = raw["next_observation_id"]
            state.next_cluster_id = raw["next_cluster_id"]
            state.dirty_trips = raw["dirty_trips"]
            state.epoch = raw["epoch"]
            states[user_id] = state
        self._states = states


def _trajectory_point(raw) -> "TrajectoryPoint":
    timestamp_s, lat, lon, speed_mps = raw
    return TrajectoryPoint(timestamp_s, GeoPoint(lat, lon), speed_mps)

"""Shortest-path routing with travel-time estimates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import networkx as nx

from repro.errors import NotFoundError
from repro.geo import GeoPoint, Polyline
from repro.roadnet.network import RoadNetwork


@dataclass(frozen=True)
class Route:
    """A routed path through the network."""

    node_ids: List[str]
    geometry: Polyline
    length_m: float
    travel_time_s: float

    @property
    def mean_speed_mps(self) -> float:
        """Average speed implied by the route's length and travel time."""
        if self.travel_time_s <= 0:
            return 0.0
        return self.length_m / self.travel_time_s


class RoutePlanner:
    """Plans minimum-travel-time routes on a :class:`RoadNetwork`."""

    def __init__(self, network: RoadNetwork) -> None:
        self._network = network

    def route_between_nodes(self, start_id: str, end_id: str) -> Route:
        """Fastest route between two existing nodes."""
        graph = self._network.graph
        if start_id not in graph or end_id not in graph:
            raise NotFoundError(
                f"route endpoints must exist in the network: {start_id!r}, {end_id!r}"
            )
        try:
            node_ids = nx.shortest_path(graph, start_id, end_id, weight="travel_time_s")
        except nx.NetworkXNoPath as exc:
            raise NotFoundError(
                f"no drivable path between {start_id!r} and {end_id!r}"
            ) from exc
        return self._assemble(node_ids)

    def route_between_points(self, origin: GeoPoint, destination: GeoPoint) -> Route:
        """Fastest route between the nodes nearest to two geographic points."""
        start = self._network.nearest_node(origin)
        end = self._network.nearest_node(destination)
        return self.route_between_nodes(start.node_id, end.node_id)

    def travel_time_s(self, origin: GeoPoint, destination: GeoPoint) -> float:
        """Estimated driving time between two points."""
        return self.route_between_points(origin, destination).travel_time_s

    def reachable_nodes(self, origin: GeoPoint, max_travel_time_s: float) -> List[str]:
        """Node ids reachable from ``origin`` within a time budget (isochrone)."""
        start = self._network.nearest_node(origin)
        lengths = nx.single_source_dijkstra_path_length(
            self._network.graph, start.node_id, cutoff=max_travel_time_s, weight="travel_time_s"
        )
        return sorted(lengths.keys())

    def remaining_route(self, route: Route, current_position: GeoPoint) -> Optional[Route]:
        """The tail of ``route`` from the node nearest to the current position.

        Returns ``None`` when the driver is already at (or past) the final
        node.  Used to re-estimate the remaining ΔT while a drive is in
        progress.
        """
        nearest_index = 0
        best_distance = float("inf")
        for index, node_id in enumerate(route.node_ids):
            node = self._network.node(node_id)
            distance = node.position.distance_m(current_position)
            if distance < best_distance:
                best_distance = distance
                nearest_index = index
        if nearest_index >= len(route.node_ids) - 1:
            return None
        return self._assemble(route.node_ids[nearest_index:])

    def _assemble(self, node_ids: List[str]) -> Route:
        points = [self._network.node(node_id).position for node_id in node_ids]
        geometry = Polyline(points)
        length = 0.0
        travel_time = 0.0
        graph = self._network.graph
        for start, end in zip(node_ids, node_ids[1:]):
            data = graph.get_edge_data(start, end)
            length += data["length_m"]
            travel_time += data["travel_time_s"]
        return Route(
            node_ids=list(node_ids),
            geometry=geometry,
            length_m=length,
            travel_time_s=travel_time,
        )

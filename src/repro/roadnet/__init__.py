"""Road network substrate.

The paper's proactive recommender reasons about a driver's projected path,
travel time and distraction at intersections/roundabouts.  This package
provides the missing substrate: a road graph with travel-time weighted
edges, a synthetic city generator used by the benchmarks, shortest-path
routing and intersection complexity analysis.
"""

from repro.roadnet.generator import City, CityGeneratorConfig, generate_city
from repro.roadnet.intersections import (
    DistractionZone,
    IntersectionKind,
    classify_intersections,
    distraction_zones_along,
)
from repro.roadnet.network import RoadNetwork, RoadNode, RoadSegment
from repro.roadnet.routing import Route, RoutePlanner

__all__ = [
    "City",
    "CityGeneratorConfig",
    "DistractionZone",
    "IntersectionKind",
    "RoadNetwork",
    "RoadNode",
    "RoadSegment",
    "Route",
    "RoutePlanner",
    "classify_intersections",
    "distraction_zones_along",
    "generate_city",
]

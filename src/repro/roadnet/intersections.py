"""Intersection classification and driver-distraction zones.

The paper schedules content "taking into account driving conditions as well
as driver's projected distraction levels at intersections and roundabouts at
user's projected driving path".  This module classifies network nodes by how
demanding they are for the driver and converts a planned route into a list
of *distraction zones*: time windows during which the proactive scheduler
avoids starting or ending an audio clip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ValidationError
from repro.roadnet.network import RoadNetwork
from repro.roadnet.routing import Route
from repro.util.timeutils import TimeWindow


class IntersectionKind(enum.Enum):
    """Driver-workload classes for network nodes."""

    PLAIN = "plain"              # degree <= 2, negligible workload
    MINOR_JUNCTION = "minor"     # degree 3
    MAJOR_JUNCTION = "major"     # degree >= 4
    ROUNDABOUT = "roundabout"    # explicitly marked roundabout nodes


#: Relative distraction weight per intersection kind (0 = none, 1 = maximal).
DISTRACTION_WEIGHT: Dict[IntersectionKind, float] = {
    IntersectionKind.PLAIN: 0.0,
    IntersectionKind.MINOR_JUNCTION: 0.35,
    IntersectionKind.MAJOR_JUNCTION: 0.7,
    IntersectionKind.ROUNDABOUT: 0.9,
}


@dataclass(frozen=True)
class DistractionZone:
    """A time window on the drive during which the driver is busy."""

    node_id: str
    kind: IntersectionKind
    window: TimeWindow
    weight: float

    @property
    def is_high(self) -> bool:
        """Whether the zone is demanding enough to block clip boundaries."""
        return self.weight >= 0.5


def classify_node(network: RoadNetwork, node_id: str) -> IntersectionKind:
    """Classify a single node."""
    node = network.node(node_id)
    if node.kind == "roundabout":
        return IntersectionKind.ROUNDABOUT
    degree = network.degree(node_id)
    if degree <= 2:
        return IntersectionKind.PLAIN
    if degree == 3:
        return IntersectionKind.MINOR_JUNCTION
    return IntersectionKind.MAJOR_JUNCTION


def classify_intersections(network: RoadNetwork) -> Dict[str, IntersectionKind]:
    """Classify every node in the network."""
    return {node_id: classify_node(network, node_id) for node_id in network.node_ids()}


def distraction_zones_along(
    network: RoadNetwork,
    route: Route,
    *,
    departure_s: float = 0.0,
    approach_margin_s: float = 8.0,
    clearance_margin_s: float = 6.0,
) -> List[DistractionZone]:
    """Distraction zones encountered along a route.

    Each non-plain intersection on the route produces a window starting
    ``approach_margin_s`` before the driver reaches the node and ending
    ``clearance_margin_s`` after, expressed on the same timeline as
    ``departure_s`` (seconds since midnight of the simulated day).
    """
    if approach_margin_s < 0 or clearance_margin_s < 0:
        raise ValidationError("margins must be >= 0")
    zones: List[DistractionZone] = []
    elapsed = 0.0
    graph = network.graph
    for index, node_id in enumerate(route.node_ids):
        if index > 0:
            data = graph.get_edge_data(route.node_ids[index - 1], node_id)
            elapsed += data["travel_time_s"]
        kind = classify_node(network, node_id)
        weight = DISTRACTION_WEIGHT[kind]
        if weight <= 0.0:
            continue
        arrival = departure_s + elapsed
        window = TimeWindow(
            max(departure_s, arrival - approach_margin_s),
            arrival + clearance_margin_s,
        )
        zones.append(DistractionZone(node_id=node_id, kind=kind, window=window, weight=weight))
    return zones


def route_complexity(network: RoadNetwork, route: Route) -> float:
    """Aggregate route complexity in [0, 1].

    Defined as the distraction weight accumulated per kilometre, squashed to
    [0, 1).  Routes dominated by roundabouts and major junctions score close
    to 1; a straight arterial scores close to 0.  This is the route-level
    counterpart of the trajectory complexity feature of
    :mod:`repro.trajectory.features`.
    """
    if route.length_m <= 0:
        return 0.0
    total_weight = 0.0
    for node_id in route.node_ids:
        total_weight += DISTRACTION_WEIGHT[classify_node(network, node_id)]
    per_km = total_weight / (route.length_m / 1000.0)
    return per_km / (1.0 + per_km)

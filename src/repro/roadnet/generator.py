"""Synthetic city generator.

Builds a grid-with-diagonals road network around a reference point (by
default a Torino-like location, matching the paper's deployment), with a
ring road, a few arterial roads, roundabouts, and named points of interest
(home/work/shopping areas) that the mobility generator assigns to commuters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ValidationError
from repro.geo import GeoPoint
from repro.geo.geodesy import destination_point
from repro.roadnet.network import RoadNetwork, RoadNode
from repro.util.rng import DeterministicRng

#: Default city centre: central Torino, where the paper's broadcaster is based.
DEFAULT_CENTER = GeoPoint(45.0703, 7.6869)


@dataclass(frozen=True)
class CityGeneratorConfig:
    """Parameters controlling the synthetic city layout."""

    center: GeoPoint = DEFAULT_CENTER
    grid_rows: int = 12
    grid_cols: int = 12
    block_size_m: float = 900.0
    roundabout_fraction: float = 0.12
    diagonal_fraction: float = 0.15
    arterial_every: int = 4
    poi_count: int = 24
    seed: int = 7

    def __post_init__(self) -> None:
        if self.grid_rows < 2 or self.grid_cols < 2:
            raise ValidationError("city grid must be at least 2x2")
        if self.block_size_m <= 0:
            raise ValidationError("block_size_m must be > 0")
        if not 0.0 <= self.roundabout_fraction <= 1.0:
            raise ValidationError("roundabout_fraction must be in [0, 1]")
        if not 0.0 <= self.diagonal_fraction <= 1.0:
            raise ValidationError("diagonal_fraction must be in [0, 1]")
        if self.poi_count < 0:
            raise ValidationError("poi_count must be >= 0")


@dataclass
class City:
    """A generated road network plus named points of interest."""

    network: RoadNetwork
    pois: Dict[str, GeoPoint] = field(default_factory=dict)
    config: CityGeneratorConfig = field(default_factory=CityGeneratorConfig)

    def poi_names(self) -> List[str]:
        """Names of all points of interest."""
        return sorted(self.pois.keys())

    def poi(self, name: str) -> GeoPoint:
        """Location of a named point of interest."""
        if name not in self.pois:
            raise ValidationError(f"city has no POI named {name!r}")
        return self.pois[name]


def _grid_node_id(row: int, col: int) -> str:
    return f"n-{row:03d}-{col:03d}"


def generate_city(config: CityGeneratorConfig = CityGeneratorConfig()) -> City:
    """Generate a deterministic synthetic city from the configuration."""
    rng = DeterministicRng(config.seed)
    network = RoadNetwork()
    positions: Dict[Tuple[int, int], GeoPoint] = {}

    # Lay out grid nodes: rows go north, columns go east from the centre.
    for row in range(config.grid_rows):
        northing = (row - config.grid_rows / 2.0) * config.block_size_m
        row_anchor = destination_point(config.center, 0.0, northing) if northing >= 0 else destination_point(config.center, 180.0, -northing)
        for col in range(config.grid_cols):
            easting = (col - config.grid_cols / 2.0) * config.block_size_m
            position = (
                destination_point(row_anchor, 90.0, easting)
                if easting >= 0
                else destination_point(row_anchor, 270.0, -easting)
            )
            # Jitter junctions slightly so routes are not perfectly rectilinear.
            jitter_m = config.block_size_m * 0.05
            position = destination_point(
                position, rng.uniform(0.0, 360.0), rng.uniform(0.0, jitter_m)
            )
            positions[(row, col)] = position
            kind = "roundabout" if rng.bernoulli(config.roundabout_fraction) else "junction"
            network.add_node(RoadNode(_grid_node_id(row, col), position, kind))

    # Connect the grid with urban streets; arterial roads every few blocks.
    for row in range(config.grid_rows):
        for col in range(config.grid_cols):
            node_id = _grid_node_id(row, col)
            if col + 1 < config.grid_cols:
                arterial = row % config.arterial_every == 0
                network.connect(
                    node_id,
                    _grid_node_id(row, col + 1),
                    speed_limit_mps=16.7 if arterial else 13.9,
                    road_class="arterial" if arterial else "urban",
                )
            if row + 1 < config.grid_rows:
                arterial = col % config.arterial_every == 0
                network.connect(
                    node_id,
                    _grid_node_id(row + 1, col),
                    speed_limit_mps=16.7 if arterial else 13.9,
                    road_class="arterial" if arterial else "urban",
                )
            # Occasional diagonal shortcut.
            if (
                row + 1 < config.grid_rows
                and col + 1 < config.grid_cols
                and rng.bernoulli(config.diagonal_fraction)
            ):
                network.connect(
                    node_id,
                    _grid_node_id(row + 1, col + 1),
                    speed_limit_mps=13.9,
                    road_class="urban",
                )

    # Ring road (highway class) around the grid perimeter.
    perimeter: List[str] = []
    for col in range(config.grid_cols):
        perimeter.append(_grid_node_id(0, col))
    for row in range(1, config.grid_rows):
        perimeter.append(_grid_node_id(row, config.grid_cols - 1))
    for col in range(config.grid_cols - 2, -1, -1):
        perimeter.append(_grid_node_id(config.grid_rows - 1, col))
    for row in range(config.grid_rows - 2, 0, -1):
        perimeter.append(_grid_node_id(row, 0))
    for start, end in zip(perimeter, perimeter[1:] + perimeter[:1]):
        if network.graph.has_edge(start, end):
            # Upgrade the existing perimeter street to ring-road characteristics.
            data = network.graph.get_edge_data(start, end)
            data["road_class"] = "highway"
            data["speed_limit_mps"] = 25.0
            data["travel_time_s"] = data["length_m"] / 25.0
        else:
            network.connect(start, end, speed_limit_mps=25.0, road_class="highway")

    # Points of interest: home/work/leisure anchors for the mobility model.
    poi_kinds = ["home", "work", "market", "school", "gym", "station", "park", "mall"]
    pois: Dict[str, GeoPoint] = {}
    counters: Dict[str, int] = {}
    for _index in range(config.poi_count):
        kind = rng.choice(poi_kinds)
        counters[kind] = counters.get(kind, 0) + 1
        row = rng.randint(0, config.grid_rows - 1)
        col = rng.randint(0, config.grid_cols - 1)
        name = f"{kind}-{counters[kind]}"
        pois[name] = positions[(row, col)]

    return City(network=network, pois=pois, config=config)

"""Road network model backed by a networkx graph."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import NotFoundError, ValidationError
from repro.geo import GeoPoint, GridIndex
from repro.geo.geodesy import haversine_m


@dataclass(frozen=True)
class RoadNode:
    """A junction or endpoint in the road network."""

    node_id: str
    position: GeoPoint
    kind: str = "junction"  # junction | roundabout | dead_end | poi


@dataclass(frozen=True)
class RoadSegment:
    """A drivable edge between two nodes."""

    start_id: str
    end_id: str
    length_m: float
    speed_limit_mps: float
    road_class: str = "urban"  # urban | arterial | highway

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ValidationError(f"segment length must be > 0, got {self.length_m}")
        if self.speed_limit_mps <= 0:
            raise ValidationError(
                f"speed limit must be > 0, got {self.speed_limit_mps}"
            )

    @property
    def free_flow_time_s(self) -> float:
        """Traversal time at the speed limit."""
        return self.length_m / self.speed_limit_mps


class RoadNetwork:
    """An undirected road graph with geographic nodes and weighted edges."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._nodes: Dict[str, RoadNode] = {}
        self._index: GridIndex[str] = GridIndex(500.0)

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read-mostly)."""
        return self._graph

    def add_node(self, node: RoadNode) -> None:
        """Add a node; replaces any node with the same id."""
        self._nodes[node.node_id] = node
        self._graph.add_node(node.node_id)
        self._index.insert(node.node_id, node.position)

    def add_segment(self, segment: RoadSegment) -> None:
        """Add an edge; both endpoints must already exist."""
        for node_id in (segment.start_id, segment.end_id):
            if node_id not in self._nodes:
                raise NotFoundError(f"road network has no node {node_id!r}")
        self._graph.add_edge(
            segment.start_id,
            segment.end_id,
            length_m=segment.length_m,
            speed_limit_mps=segment.speed_limit_mps,
            road_class=segment.road_class,
            travel_time_s=segment.free_flow_time_s,
        )

    def connect(
        self,
        start_id: str,
        end_id: str,
        *,
        speed_limit_mps: float = 13.9,
        road_class: str = "urban",
        length_m: Optional[float] = None,
    ) -> RoadSegment:
        """Convenience: add a segment whose length defaults to the geo distance."""
        start = self.node(start_id)
        end = self.node(end_id)
        if length_m is None:
            length_m = max(1.0, haversine_m(start.position, end.position))
        segment = RoadSegment(start_id, end_id, length_m, speed_limit_mps, road_class)
        self.add_segment(segment)
        return segment

    def node(self, node_id: str) -> RoadNode:
        """Look up a node by id."""
        node = self._nodes.get(node_id)
        if node is None:
            raise NotFoundError(f"road network has no node {node_id!r}")
        return node

    def has_node(self, node_id: str) -> bool:
        """Whether the node exists."""
        return node_id in self._nodes

    def node_ids(self) -> List[str]:
        """All node ids."""
        return sorted(self._nodes.keys())

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def segment_count(self) -> int:
        """Number of edges."""
        return self._graph.number_of_edges()

    def neighbors(self, node_id: str) -> List[str]:
        """Adjacent node ids."""
        if node_id not in self._nodes:
            raise NotFoundError(f"road network has no node {node_id!r}")
        return sorted(self._graph.neighbors(node_id))

    def degree(self, node_id: str) -> int:
        """Number of road segments meeting at the node."""
        if node_id not in self._nodes:
            raise NotFoundError(f"road network has no node {node_id!r}")
        return self._graph.degree[node_id]

    def segment_between(self, start_id: str, end_id: str) -> RoadSegment:
        """The segment connecting two adjacent nodes."""
        data = self._graph.get_edge_data(start_id, end_id)
        if data is None:
            raise NotFoundError(f"no segment between {start_id!r} and {end_id!r}")
        return RoadSegment(
            start_id,
            end_id,
            data["length_m"],
            data["speed_limit_mps"],
            data["road_class"],
        )

    def nearest_node(self, point: GeoPoint) -> RoadNode:
        """The node geographically closest to ``point``."""
        hit = self._index.nearest(point, max_radius_m=200000.0)
        if hit is None:
            raise NotFoundError("road network is empty")
        return self._nodes[hit[0]]

    def nodes_within(self, center: GeoPoint, radius_m: float) -> List[RoadNode]:
        """Nodes within a radius of a point (nearest first)."""
        return [self._nodes[node_id] for node_id, _d in self._index.query_radius(center, radius_m)]

    def nodes(self) -> Iterable[RoadNode]:
        """Iterate over all nodes."""
        return list(self._nodes.values())

    def total_length_m(self) -> float:
        """Total length of all road segments."""
        return float(sum(data["length_m"] for _u, _v, data in self._graph.edges(data=True)))

    def apply_congestion(self, factor_by_class: Dict[str, float]) -> None:
        """Scale edge travel times by a per-road-class congestion factor.

        A factor of 1.0 leaves the free-flow time; 1.5 means 50% slower.
        Used by the travel-time predictor to model rush-hour conditions.
        """
        for _u, _v, data in self._graph.edges(data=True):
            factor = factor_by_class.get(data["road_class"], 1.0)
            if factor <= 0:
                raise ValidationError(f"congestion factor must be > 0, got {factor}")
            free_flow = data["length_m"] / data["speed_limit_mps"]
            data["travel_time_s"] = free_flow * factor

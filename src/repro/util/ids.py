"""Identifier helpers.

Entities (users, clips, services, recommendations) are identified by short
deterministic string ids.  ``new_id`` produces sequential ids per prefix so
runs are reproducible and ids are stable across a session, which keeps
benchmark output readable.
"""

from __future__ import annotations

import itertools
import re
import threading
from collections import defaultdict
from typing import Dict, Iterator

from repro.errors import ValidationError

_counters: Dict[str, Iterator[int]] = defaultdict(lambda: itertools.count(1))
_lock = threading.Lock()


def new_id(prefix: str) -> str:
    """Return the next id for ``prefix``, e.g. ``clip-000017``.

    Ids are process-global and monotonically increasing per prefix.  Tests
    that need isolation should use :func:`reset_ids`.
    """
    if not prefix or not isinstance(prefix, str):
        raise ValidationError("prefix must be a non-empty string")
    with _lock:
        value = next(_counters[prefix])
    return f"{prefix}-{value:06d}"


def reset_ids() -> None:
    """Reset all id counters (intended for test isolation only)."""
    with _lock:
        _counters.clear()


_slug_invalid = re.compile(r"[^a-z0-9]+")


def slugify(text: str) -> str:
    """Turn arbitrary text into a lowercase dash-separated slug."""
    if not isinstance(text, str):
        raise ValidationError("slugify expects a string")
    slug = _slug_invalid.sub("-", text.lower()).strip("-")
    return slug or "item"

"""Time handling for schedules, trajectories and playback timelines.

The whole library works with *seconds since an arbitrary day origin*
(``t = 0`` is midnight of the simulated day).  Wall-clock formatting helpers
are provided so benches can print timelines in the same ``HH:MM:SS`` form
used by Figure 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ValidationError

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400


def parse_clock(text: str) -> float:
    """Parse ``"HH:MM"`` or ``"HH:MM:SS"`` into seconds since midnight."""
    parts = text.strip().split(":")
    if len(parts) not in (2, 3):
        raise ValidationError(f"clock string must be HH:MM or HH:MM:SS, got {text!r}")
    try:
        numbers = [int(part) for part in parts]
    except ValueError as exc:
        raise ValidationError(f"clock string contains non-integers: {text!r}") from exc
    hours, minutes = numbers[0], numbers[1]
    seconds = numbers[2] if len(numbers) == 3 else 0
    if not (0 <= hours < 24 and 0 <= minutes < 60 and 0 <= seconds < 60):
        raise ValidationError(f"clock fields out of range: {text!r}")
    return float(hours * SECONDS_PER_HOUR + minutes * SECONDS_PER_MINUTE + seconds)


def format_clock(seconds: float) -> str:
    """Format seconds-since-midnight as ``HH:MM:SS`` (wraps past 24 h)."""
    total = int(round(seconds)) % SECONDS_PER_DAY
    hours, remainder = divmod(total, SECONDS_PER_HOUR)
    minutes, secs = divmod(remainder, SECONDS_PER_MINUTE)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


@dataclass(frozen=True)
class TimeOfDay:
    """A coarse time-of-day bucket used as a context dimension."""

    name: str
    start_s: float
    end_s: float

    def contains(self, seconds: float) -> bool:
        """Whether the given second-of-day falls in this bucket."""
        second = seconds % SECONDS_PER_DAY
        return self.start_s <= second < self.end_s


#: The canonical time-of-day buckets used by the context model.
TIME_OF_DAY_BUCKETS: Tuple[TimeOfDay, ...] = (
    TimeOfDay("night", 0.0, 6 * SECONDS_PER_HOUR),
    TimeOfDay("morning", 6 * SECONDS_PER_HOUR, 12 * SECONDS_PER_HOUR),
    TimeOfDay("afternoon", 12 * SECONDS_PER_HOUR, 18 * SECONDS_PER_HOUR),
    TimeOfDay("evening", 18 * SECONDS_PER_HOUR, 24 * SECONDS_PER_HOUR),
)


def time_of_day_bucket(seconds: float) -> TimeOfDay:
    """Return the :class:`TimeOfDay` bucket containing ``seconds``."""
    second = seconds % SECONDS_PER_DAY
    for bucket in TIME_OF_DAY_BUCKETS:
        if bucket.contains(second):
            return bucket
    # Unreachable: buckets cover the whole day.
    raise ValidationError(f"no time-of-day bucket for {seconds}")


@dataclass(frozen=True)
class TimeWindow:
    """A half-open interval ``[start_s, end_s)`` on the session timeline."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValidationError(
                f"TimeWindow end ({self.end_s}) must be >= start ({self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        """Length of the window in seconds."""
        return self.end_s - self.start_s

    def contains(self, instant: float) -> bool:
        """Whether ``instant`` falls inside the window."""
        return self.start_s <= instant < self.end_s

    def overlaps(self, other: "TimeWindow") -> bool:
        """Whether this window intersects ``other`` with positive measure."""
        return self.start_s < other.end_s and other.start_s < self.end_s

    def intersection(self, other: "TimeWindow") -> "TimeWindow":
        """The overlapping window (zero-length if disjoint)."""
        start = max(self.start_s, other.start_s)
        end = min(self.end_s, other.end_s)
        if end < start:
            end = start
        return TimeWindow(start, end)

    def shift(self, offset_s: float) -> "TimeWindow":
        """A copy shifted later (positive) or earlier (negative) in time."""
        return TimeWindow(self.start_s + offset_s, self.end_s + offset_s)

    def split(self, at: float) -> Tuple["TimeWindow", "TimeWindow"]:
        """Split at an instant inside the window."""
        if not self.contains(at) and at != self.end_s:
            raise ValidationError(f"split point {at} outside window {self}")
        return TimeWindow(self.start_s, at), TimeWindow(at, self.end_s)

    def iter_steps(self, step_s: float) -> Iterator[float]:
        """Yield instants from start to end (exclusive) every ``step_s``."""
        if step_s <= 0:
            raise ValidationError(f"step_s must be > 0, got {step_s}")
        current = self.start_s
        while current < self.end_s:
            yield current
            current += step_s

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{format_clock(self.start_s)} - {format_clock(self.end_s)})"


def merge_windows(windows: List[TimeWindow]) -> List[TimeWindow]:
    """Merge overlapping or adjacent windows into a minimal sorted cover."""
    if not windows:
        return []
    ordered = sorted(windows, key=lambda w: (w.start_s, w.end_s))
    merged: List[TimeWindow] = [ordered[0]]
    for window in ordered[1:]:
        last = merged[-1]
        if window.start_s <= last.end_s:
            merged[-1] = TimeWindow(last.start_s, max(last.end_s, window.end_s))
        else:
            merged.append(window)
    return merged


def total_coverage(windows: List[TimeWindow]) -> float:
    """Total duration covered by the union of ``windows``."""
    return sum(window.duration_s for window in merge_windows(windows))

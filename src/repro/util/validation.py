"""Precondition helpers used across the library.

All helpers raise :class:`repro.errors.ValidationError` with a descriptive
message; they return the validated value so they can be used inline::

    self.speed_mps = require_finite(speed_mps, "speed_mps")
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sized, Tuple, Type, Union

from repro.errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> Any:
    """Ensure ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        raise ValidationError(
            f"{name} must be of type {types!r}, got {type(value).__name__}"
        )
    return value


def require_finite(value: float, name: str) -> float:
    """Ensure ``value`` is a finite real number and return it as ``float``."""
    try:
        numeric = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(numeric) or math.isinf(numeric):
        raise ValidationError(f"{name} must be finite, got {numeric!r}")
    return numeric


def require_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Ensure ``value`` is positive (or non-negative when ``strict=False``)."""
    numeric = require_finite(value, name)
    if strict and numeric <= 0:
        raise ValidationError(f"{name} must be > 0, got {numeric}")
    if not strict and numeric < 0:
        raise ValidationError(f"{name} must be >= 0, got {numeric}")
    return numeric


def require_in_range(
    value: float,
    low: float,
    high: float,
    name: str,
    *,
    inclusive: bool = True,
) -> float:
    """Ensure ``low <= value <= high`` (or strict inequality)."""
    numeric = require_finite(value, name)
    if inclusive:
        if not (low <= numeric <= high):
            raise ValidationError(f"{name} must be in [{low}, {high}], got {numeric}")
    else:
        if not (low < numeric < high):
            raise ValidationError(f"{name} must be in ({low}, {high}), got {numeric}")
    return numeric


def require_non_empty(value: Union[Sized, Iterable], name: str) -> Any:
    """Ensure a sized collection or string is not empty."""
    try:
        size = len(value)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ValidationError(f"{name} must be a sized collection") from exc
    if size == 0:
        raise ValidationError(f"{name} must not be empty")
    return value

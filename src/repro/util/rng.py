"""Deterministic random number generation.

Every stochastic component of the library (synthetic data generators, the
GPS noise model, the listener behaviour simulation, the simulated ASR) takes
an explicit seed or a :class:`DeterministicRng`.  This keeps benchmark runs
and tests reproducible, which is essential for regenerating the paper's
scenarios.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

from repro.errors import ValidationError

T = TypeVar("T")


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from ``base_seed`` and a label path.

    The derivation hashes the labels so independent subsystems seeded from
    the same base do not produce correlated streams.
    """
    material = repr((int(base_seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


class DeterministicRng:
    """A thin, explicitly-seeded wrapper around :class:`random.Random`.

    Provides the handful of sampling primitives the library needs plus
    :meth:`fork`, which derives an independent child generator for a named
    subsystem.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise ValidationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, *labels: object) -> "DeterministicRng":
        """Return an independent generator derived from this seed and labels."""
        return DeterministicRng(derive_seed(self._seed, *labels))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Normal sample."""
        return self._random.gauss(mu, sigma)

    def exponential(self, mean: float) -> float:
        """Exponential sample with the given mean."""
        if mean <= 0:
            raise ValidationError(f"mean must be > 0, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly."""
        if not items:
            raise ValidationError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with probability proportional to ``weights``."""
        if not items:
            raise ValidationError("cannot choose from an empty sequence")
        if len(items) != len(weights):
            raise ValidationError("items and weights must have the same length")
        total = float(sum(weights))
        if total <= 0:
            raise ValidationError("weights must sum to a positive value")
        return self._random.choices(items, weights=weights, k=1)[0]

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        if k < 0:
            raise ValidationError(f"k must be >= 0, got {k}")
        if k > len(items):
            raise ValidationError(
                f"cannot sample {k} items from a sequence of {len(items)}"
            )
        return self._random.sample(list(items), k)

    def shuffle(self, items: Iterable[T]) -> List[T]:
        """Return a shuffled copy of ``items``."""
        copied = list(items)
        self._random.shuffle(copied)
        return copied

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValidationError(f"probability must be in [0, 1], got {probability}")
        return self._random.random() < probability

    def poisson(self, lam: float) -> int:
        """Poisson sample via inversion (adequate for the small rates used here)."""
        if lam < 0:
            raise ValidationError(f"lam must be >= 0, got {lam}")
        if lam == 0:
            return 0
        # Knuth's algorithm; lam in this library is always small (< 50).
        threshold = pow(2.718281828459045, -lam)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count

    def pick_index(self, weights: Sequence[float]) -> int:
        """Return an index sampled proportionally to ``weights``."""
        return self.weighted_choice(list(range(len(weights))), weights)

    def maybe(self, probability: float, value: Optional[T], default: Optional[T] = None):
        """Return ``value`` with ``probability`` else ``default``."""
        return value if self.bernoulli(probability) else default

"""Small shared utilities: deterministic RNG, time handling, identifiers."""

from repro.util.ids import new_id, slugify
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.timeutils import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    TimeOfDay,
    TimeWindow,
    format_clock,
    parse_clock,
)
from repro.util.validation import (
    require,
    require_finite,
    require_in_range,
    require_non_empty,
    require_positive,
    require_type,
)

__all__ = [
    "new_id",
    "slugify",
    "DeterministicRng",
    "derive_seed",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_MINUTE",
    "TimeOfDay",
    "TimeWindow",
    "format_clock",
    "parse_clock",
    "require",
    "require_finite",
    "require_in_range",
    "require_non_empty",
    "require_positive",
    "require_type",
]
